//! Run a slice of the CypherEval benchmark and inspect per-question
//! behavior: the generated Cypher vs the gold query, correctness, and all
//! four metric scores — a magnifying glass over what the figure binaries
//! aggregate.
//!
//! Run with:
//! ```text
//! cargo run --example evaluate            # 30 questions
//! cargo run --example evaluate -- 100     # custom count
//! ```

use chatiyp_bench::{run_evaluation, ExperimentConfig};
use cypher_eval::EvalConfig;
use iyp_metrics::MetricKind;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);
    let config = ExperimentConfig {
        eval: EvalConfig {
            seed: 42,
            target_size: n,
        },
        ..Default::default()
    };
    eprintln!("evaluating {n} questions ...");
    let run = run_evaluation(&config);

    for r in &run.records {
        println!("──────────────────────────────────────────────────────");
        println!(
            "#{:<3} [{} | {}] {}",
            r.id, r.difficulty, r.domain, r.question
        );
        println!("  gold:      {}", r.gold_cypher);
        match &r.generated_cypher {
            Some(cy) if *cy == r.gold_cypher => println!("  generated: (identical)"),
            Some(cy) => println!("  generated: {cy}"),
            None => println!("  generated: — (no query; route {})", r.route),
        }
        if let Some(err) = r.injected_error {
            println!("  injected error: {err:?}");
        }
        println!("  reference: {}", r.reference);
        println!("  answer:    {}", r.answer);
        println!(
            "  correct: {}   BLEU {:.2}  ROUGE {:.2}  BERTScore {:.2}  G-Eval {:.2}   ({} µs)",
            if r.correct { "yes" } else { "NO " },
            r.bleu,
            r.rouge,
            r.bertscore,
            r.geval,
            r.latency_us
        );
    }

    println!();
    println!("══════════════════════════════════════════════════════");
    println!(
        "accuracy {:.1}% over {} questions",
        100.0 * run.accuracy(),
        run.records.len()
    );
    for kind in MetricKind::ALL {
        let s = iyp_metrics::summarize(&run.scores(kind));
        println!(
            "{:<10} mean {:.3}  median {:.3}  std {:.3}",
            kind.name(),
            s.mean,
            s.median,
            s.std
        );
    }
}
