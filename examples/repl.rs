//! An interactive console for the ChatIYP stack: type natural-language
//! questions, or prefix a line with `:cypher ` to run raw Cypher — the
//! two access modes the paper contrasts.
//!
//! Run with:
//! ```text
//! cargo run --example repl
//! ```
//!
//! Commands:
//! ```text
//! <question>            ask ChatIYP in natural language
//! :cypher <query>       run a read-only Cypher query directly
//! :explain <query>      show the query plan without executing
//! :schema               print the IYP schema summary
//! :stats                print graph statistics
//! :quit                 exit
//! ```

use chatiyp_core::{ChatIyp, ChatIypConfig};
use iyp_cypher::query;
use iyp_data::{generate, IypConfig};
use iyp_graphdb::GraphStats;
use std::io::{BufRead, Write};

fn main() {
    println!("Generating the synthetic IYP graph ...");
    let dataset = generate(&IypConfig::default());
    println!(
        "  {} nodes, {} relationships",
        dataset.graph.node_count(),
        dataset.graph.rel_count()
    );
    let chat = ChatIyp::new(dataset, ChatIypConfig::default());
    println!("Ask a question, or :cypher <query>, :explain <query>, :schema, :stats, :quit");

    let stdin = std::io::stdin();
    loop {
        print!("chatiyp> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":schema" {
            println!("{}", iyp_data::schema::schema_summary());
            continue;
        }
        if line == ":stats" {
            let snap = chat.snapshot();
            let stats = GraphStats::compute(snap.graph());
            println!("snapshot version {}", snap.version());
            println!(
                "{} nodes / {} rels; mean degree {:.1}",
                stats.nodes, stats.rels, stats.degree.mean
            );
            for (label, n) in &stats.nodes_by_label {
                println!("  :{label:<14} {n}");
            }
            continue;
        }
        if let Some(cy) = line.strip_prefix(":explain ") {
            match iyp_cypher::explain(chat.snapshot().graph(), cy) {
                Ok(plan) => print!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Some(cy) = line.strip_prefix(":cypher ") {
            match query(chat.snapshot().graph(), cy) {
                Ok(result) => print!("{result}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        let response = chat.ask(line);
        println!("{response}");
    }
    println!("bye");
}
