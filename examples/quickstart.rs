//! Quickstart: the paper's worked example, end to end.
//!
//! Builds the synthetic IYP graph, assembles the ChatIYP pipeline, and
//! asks the question from the paper's introduction — "What is the
//! percentage of Japan's population in AS2497?" — printing the answer,
//! the generated Cypher (ChatIYP's transparency output) and the route.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use chatiyp_core::{ChatIyp, ChatIypConfig};
use iyp_data::{generate, IypConfig};
use iyp_llm::LmConfig;

fn main() {
    println!("Generating the synthetic IYP graph (seed 42) ...");
    let dataset = generate(&IypConfig::default());
    println!(
        "  {} nodes, {} relationships",
        dataset.graph.node_count(),
        dataset.graph.rel_count()
    );

    println!("Assembling the ChatIYP pipeline ...");
    // `skill: 1.0` disables the simulated-LLM error injection for a clean
    // demo; the evaluation binaries use the calibrated default (0.72) to
    // reproduce the paper's accuracy gradient.
    let chat = ChatIyp::new(
        dataset,
        ChatIypConfig {
            lm: LmConfig {
                seed: 42,
                skill: 1.0,
                variety: 0.5,
            },
            ..Default::default()
        },
    );

    for question in [
        "What is the percentage of Japan's population in AS2497?",
        "What is the name of AS2497?",
        "How many ASes are registered in Japan?",
        "Which ASes does AS2497 depend on directly or indirectly?",
    ] {
        println!();
        println!("──────────────────────────────────────────────────────");
        let response = chat.ask(question);
        println!("{response}");
    }
}
