//! Serve the ChatIYP JSON API over HTTP — the stand-in for the paper's
//! public web application.
//!
//! Run with:
//! ```text
//! cargo run --example serve            # listens on 127.0.0.1:8047
//! cargo run --example serve -- 9000    # custom port
//! ```
//!
//! Then, from another shell:
//! ```text
//! curl -s localhost:8047/healthz          # 503 while loading, then 200
//! curl -s localhost:8047/schema
//! curl -s -X POST localhost:8047/ask \
//!      -d '{"question": "What is the percentage of Japan'\''s population in AS2497?"}'
//! curl -s -X POST localhost:8047/cypher \
//!      -d '{"query": "MATCH (a:AS) RETURN count(a)"}'
//! ```

use chatiyp_core::{ChatIyp, ChatIypConfig};
use chatiyp_server::{Server, ServerConfig};
use iyp_data::{generate, IypConfig};

fn main() {
    let port: u16 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8047);

    let config = ServerConfig {
        addr: format!("127.0.0.1:{port}").parse().expect("valid address"),
        ..Default::default()
    };
    // The socket binds immediately; dataset generation happens on the
    // loader thread while early requests get 503 + Retry-After.
    let server = Server::start_deferred(config, || {
        println!("Generating the synthetic IYP graph ...");
        let dataset = generate(&IypConfig::default());
        println!(
            "  {} nodes, {} relationships",
            dataset.graph.node_count(),
            dataset.graph.rel_count()
        );
        ChatIyp::new(dataset, ChatIypConfig::default())
    })
    .expect("bind");
    println!("ChatIYP API listening on http://{}", server.addr());
    println!("endpoints: POST /ask, POST /cypher, POST /admin/ingest, GET /healthz, GET /schema");
    println!("press Ctrl-C to stop");

    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
    }
}
