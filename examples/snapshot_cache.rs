//! Snapshot caching: generate the synthetic IYP graph once, save it to a
//! JSON snapshot, and reload it on subsequent runs — the workflow a
//! downstream user wants when iterating on queries against a fixed graph.
//!
//! Run with:
//! ```text
//! cargo run --example snapshot_cache            # first run: generates + saves
//! cargo run --example snapshot_cache            # later runs: loads the snapshot
//! ```

use iyp_cypher::query;
use iyp_data::{generate, IypConfig};
use iyp_graphdb::{snapshot, GraphSnapshot};
use std::time::Instant;

fn main() {
    let path = std::env::temp_dir().join("chatiyp_iyp_snapshot.json");

    let snap = if path.exists() {
        let t = Instant::now();
        let s = snapshot::load_snapshot(&path).expect("snapshot loads");
        println!(
            "loaded snapshot v{} {} ({} nodes) in {:?}",
            s.version(),
            path.display(),
            s.node_count(),
            t.elapsed()
        );
        s
    } else {
        let t = Instant::now();
        let dataset = generate(&IypConfig::default());
        println!(
            "generated graph ({} nodes) in {:?}",
            dataset.graph.node_count(),
            t.elapsed()
        );
        let s = GraphSnapshot::new(dataset.graph, 1);
        let t = Instant::now();
        snapshot::save_snapshot(&s, &path).expect("snapshot saves");
        println!("saved snapshot to {} in {:?}", path.display(), t.elapsed());
        s
    };
    let graph = snap.graph();

    // The snapshot preserves everything queries need — including indexes.
    let r = query(
        graph,
        "MATCH (a:AS {asn: 2497})-[p:POPULATION]->(c:Country {country_code: 'JP'}) \
         RETURN a.name, p.percent",
    )
    .unwrap();
    print!("{r}");

    let r = query(
        graph,
        "MATCH (a:AS)-[r:RANK]->(:Ranking {name: 'CAIDA ASRank'}) \
         WHERE r.rank <= 3 RETURN a.name, r.rank ORDER BY r.rank",
    )
    .unwrap();
    print!("{r}");
}
