//! Explore the IYP graph directly with Cypher — the expert workflow the
//! paper says ChatIYP lowers the barrier to.
//!
//! Runs a tour of queries across the schema: lookups, joins,
//! aggregations, rankings and multi-hop dependency analysis, printing
//! each query with its result table.
//!
//! Run with:
//! ```text
//! cargo run --example explore_iyp
//! ```

use iyp_cypher::query;
use iyp_data::{generate, IypConfig};
use iyp_graphdb::GraphStats;

fn main() {
    let dataset = generate(&IypConfig::default());
    let g = &dataset.graph;

    println!("Graph statistics");
    println!("================");
    let stats = GraphStats::compute(g);
    println!(
        "{} nodes / {} relationships; mean degree {:.1}, max degree {}",
        stats.nodes, stats.rels, stats.degree.mean, stats.degree.max
    );
    for (label, n) in &stats.nodes_by_label {
        println!("  :{label:<14} {n}");
    }

    let tour: &[(&str, &str)] = &[
        (
            "The paper's example: population share of AS2497 in Japan",
            "MATCH (a:AS {asn: 2497})-[p:POPULATION]->(c:Country {country_code: 'JP'}) \
             RETURN a.name, p.percent",
        ),
        (
            "Who are the tier-1-ish networks? (top 5 by CAIDA rank)",
            "MATCH (a:AS)-[r:RANK]->(:Ranking {name: 'CAIDA ASRank'}) \
             RETURN a.asn, a.name, r.rank ORDER BY r.rank LIMIT 5",
        ),
        (
            "Countries by registered ASes (top 8)",
            "MATCH (a:AS)-[:COUNTRY]->(c:Country) \
             RETURN c.name, count(a) AS ases ORDER BY ases DESC, c.name LIMIT 8",
        ),
        (
            "Largest IXPs by membership",
            "MATCH (a:AS)-[:MEMBER_OF]->(x:IXP) \
             RETURN x.name, count(a) AS members ORDER BY members DESC, x.name LIMIT 5",
        ),
        (
            "IPv6 adoption: v6 prefix share per country (top 5)",
            "MATCH (a:AS)-[:COUNTRY]->(c:Country) MATCH (a)-[:ORIGINATE]->(p:Prefix) \
             WITH c.country_code AS cc, count(p) AS total, \
                  sum(CASE WHEN p.af = 6 THEN 1 ELSE 0 END) AS v6 \
             WHERE total >= 50 \
             RETURN cc, round(100.0 * v6 / total, 1) AS v6_pct, total \
             ORDER BY v6_pct DESC, cc LIMIT 5",
        ),
        (
            "Multi-hop: what does AS2497's dependency cone look like?",
            "MATCH (a:AS {asn: 2497})-[:DEPENDS_ON*1..3]->(u:AS) \
             RETURN DISTINCT u.asn, u.name ORDER BY u.asn",
        ),
        (
            "Top Tranco domains and where they resolve",
            "MATCH (d:DomainName)-[r:RANK]->(:Ranking {name: 'Tranco'}) \
             MATCH (d)-[:RESOLVES_TO]->(p:Prefix)<-[:ORIGINATE]-(a:AS) \
             RETURN d.name, r.rank, a.name ORDER BY r.rank, d.name LIMIT 5",
        ),
        (
            "Most hegemonic transit networks (IHR-style centrality)",
            "MATCH (a:AS) WHERE a.hegemony > 0.1 \
             RETURN a.asn, a.name, a.hegemony ORDER BY a.hegemony DESC, a.asn LIMIT 5",
        ),
        (
            "Eyeball networks serving >20% of their country",
            "MATCH (a:AS)-[p:POPULATION]->(c:Country) WHERE p.percent > 20 \
             RETURN c.country_code, a.name, p.percent \
             ORDER BY p.percent DESC, a.name LIMIT 10",
        ),
    ];

    for (title, cy) in tour {
        println!();
        println!("{title}");
        println!("{}", "-".repeat(title.len()));
        println!("cypher> {cy}");
        match query(g, cy) {
            Ok(result) => print!("{result}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
