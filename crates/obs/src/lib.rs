//! # iyp-obs
//!
//! The observability core of the ChatIYP workspace: structured tracing,
//! fixed-bucket latency histograms, and a metric registry that renders
//! Prometheus text exposition format. Std-only — no external
//! dependencies, consistent with the workspace's offline `shims/` policy.
//!
//! Three layers, each usable on its own:
//!
//! * [`span`] — per-request trace trees: a [`Trace`] hands out RAII
//!   [`SpanGuard`]s that record span IDs, parent links, wall-clock
//!   durations, and key/value fields. A disabled trace costs one branch
//!   per call.
//! * [`sink`] — where finished traces go: a bounded [`RingSink`] for
//!   "recent requests" introspection, or a [`TestSink`] for assertions.
//! * [`hist`] / [`registry`] — lock-free fixed-bucket [`Histogram`]s
//!   (p50/p90/p99 from 2× exponential buckets) aggregated in a
//!   [`Registry`] keyed by metric name + label, rendered with
//!   [`Registry::render_prometheus`].
//!
//! ```
//! use iyp_obs::{Registry, Trace};
//! use std::time::Duration;
//!
//! // Tracing: build a span tree for one request.
//! let trace = Trace::new();
//! {
//!     let _ask = trace.span("ask");
//!     let retrieve = trace.span("retrieve");
//!     retrieve.field("route", "cypher");
//! } // guards close their spans on drop
//! let tree = trace.finish();
//! assert_eq!(tree.spans.len(), 2);
//! assert_eq!(tree.spans[1].parent, Some(tree.spans[0].id));
//!
//! // Metrics: record a stage latency and render Prometheus text.
//! let registry = Registry::new();
//! registry.observe("stage_seconds", &[("stage", "parse")], Duration::from_micros(250));
//! let text = registry.render_prometheus();
//! assert!(text.contains("stage_seconds_bucket{stage=\"parse\",le="));
//! ```

#![deny(missing_docs)]

pub mod hist;
pub mod registry;
pub mod sink;
pub mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use sink::{RingSink, TestSink, TraceSink};
pub use span::{SpanGuard, SpanId, SpanRecord, Trace, TraceTree};
