//! Fixed-bucket latency histograms.
//!
//! Buckets are fixed at compile time — 1µs doubling up to ~8.4s, plus an
//! overflow bucket — so recording is a couple of relaxed atomic adds
//! (lock-free, shareable across a worker pool) and snapshots from
//! different histograms are always mergeable. Quantiles (p50/p90/p99)
//! are read from a [`HistogramSnapshot`] as the upper bound of the
//! bucket containing the quantile, i.e. conservative to within one 2×
//! bucket.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (inclusive) of the finite buckets, in nanoseconds:
/// `1µs · 2^k` for `k = 0..24`.
pub const BUCKET_BOUNDS_NS: [u64; 24] = {
    let mut bounds = [0u64; 24];
    let mut k = 0;
    while k < 24 {
        bounds[k] = 1_000u64 << k;
        k += 1;
    }
    bounds
};

/// Number of counters: the finite buckets plus one overflow bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS_NS.len() + 1;

/// A lock-free fixed-bucket histogram of durations.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one duration given in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of the counters (relaxed reads; a
    /// concurrent `observe` may straddle the snapshot by one sample).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKET_COUNT];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s counters.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (not cumulative). The last entry is the
    /// overflow bucket.
    pub buckets: [u64; BUCKET_COUNT],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing it. Overflow-bucket samples report the largest finite
    /// bound. [`Duration::ZERO`] when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let bound = BUCKET_BOUNDS_NS
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1]);
                return Duration::from_nanos(bound);
            }
        }
        Duration::from_nanos(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1])
    }

    /// Median (p50).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Duration {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Arithmetic mean, [`Duration::ZERO`] when empty.
    pub fn mean(&self) -> Duration {
        match self.sum_ns.checked_div(self.count) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }

    /// Adds another snapshot's samples into this one (fixed buckets make
    /// snapshots from any two histograms mergeable).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_double_from_one_microsecond() {
        assert_eq!(BUCKET_BOUNDS_NS[0], 1_000);
        assert_eq!(BUCKET_BOUNDS_NS[1], 2_000);
        assert_eq!(BUCKET_BOUNDS_NS[23], 1_000 << 23);
    }

    #[test]
    fn observe_lands_in_the_right_bucket() {
        let h = Histogram::new();
        h.observe(Duration::from_nanos(500)); // <= 1µs → bucket 0
        h.observe(Duration::from_micros(1)); // boundary is inclusive → bucket 0
        h.observe(Duration::from_micros(3)); // <= 4µs → bucket 2
        h.observe(Duration::from_secs(3600)); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[BUCKET_COUNT - 1], 1);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(Duration::from_micros(10)); // <= 16µs
        }
        for _ in 0..10 {
            h.observe(Duration::from_millis(5)); // <= 8.192ms
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), Duration::from_micros(16));
        assert_eq!(s.p90(), Duration::from_micros(16));
        assert_eq!(s.p99(), Duration::from_nanos(8_192_000));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50(), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn mean_and_merge() {
        let a = Histogram::new();
        a.observe(Duration::from_micros(2));
        a.observe(Duration::from_micros(4));
        let b = Histogram::new();
        b.observe(Duration::from_micros(6));
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.mean(), Duration::from_micros(4));
    }

    #[test]
    fn concurrent_observes_are_all_counted() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.observe_ns(i * 1000);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 4000);
    }
}
