//! Structured tracing: per-request span trees.
//!
//! A [`Trace`] is created at the edge of a request (or disabled for a
//! zero-cost pass-through) and hands out RAII [`SpanGuard`]s. Guards
//! nest: a span opened while another is open records the open one as its
//! parent, so the finished [`TraceTree`] reconstructs the call tree
//! without any thread-local or global state.
//!
//! The trace is deliberately single-threaded (interior mutability via
//! [`std::cell::RefCell`]): one trace belongs to one request on one
//! worker thread. Cross-request aggregation happens in
//! [`crate::registry::Registry`] instead.

use std::borrow::Cow;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Identifier of a span within one trace. Dense, starting at 0, in span
/// *open* order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

/// One recorded span: a named, timed section of a request with optional
/// key/value fields and a link to the span it was opened under.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// The span that was open when this one started (`None` for roots).
    pub parent: Option<SpanId>,
    /// Span name (e.g. `"execute"`). Borrowed for the common static-name
    /// case so opening a span does not allocate for it.
    pub name: Cow<'static, str>,
    /// Offset from the trace's start to this span's start.
    pub start: Duration,
    /// Wall-clock time between open and close. Spans still open when the
    /// trace finishes are closed at finish time.
    pub elapsed: Duration,
    /// Key/value annotations added while the span was open. Keys are
    /// borrowed for the common static-key case.
    pub fields: Vec<(Cow<'static, str>, String)>,
}

struct TraceInner {
    spans: Vec<SpanRecord>,
    /// Open spans, innermost last.
    stack: Vec<SpanId>,
}

/// A per-request trace under construction. See the [module docs](self).
pub struct Trace {
    /// `None` means disabled: every operation is a cheap no-op.
    inner: Option<RefCell<TraceInner>>,
    t0: Instant,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// An enabled trace; the clock starts now.
    pub fn new() -> Trace {
        Trace {
            inner: Some(RefCell::new(TraceInner {
                spans: Vec::with_capacity(8),
                stack: Vec::with_capacity(4),
            })),
            t0: Instant::now(),
        }
    }

    /// A disabled trace: spans and fields cost one branch and record
    /// nothing. Lets callers thread one code path for traced and
    /// untraced requests.
    pub fn disabled() -> Trace {
        Trace {
            inner: None,
            t0: Instant::now(),
        }
    }

    /// Is this trace recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name` under the innermost open span. Close it
    /// by dropping the guard.
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> SpanGuard<'_> {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                trace: self,
                id: None,
            };
        };
        let mut t = inner.borrow_mut();
        let id = SpanId(t.spans.len() as u32);
        let parent = t.stack.last().copied();
        t.spans.push(SpanRecord {
            id,
            parent,
            name: name.into(),
            start: self.t0.elapsed(),
            elapsed: Duration::ZERO,
            fields: Vec::new(),
        });
        t.stack.push(id);
        SpanGuard {
            trace: self,
            id: Some(id),
        }
    }

    /// Attaches a key/value field to the innermost open span. No-op when
    /// disabled or when no span is open.
    pub fn field(&self, key: impl Into<Cow<'static, str>>, value: impl ToString) {
        if let Some(inner) = &self.inner {
            let mut t = inner.borrow_mut();
            if let Some(&open) = t.stack.last() {
                t.spans[open.0 as usize]
                    .fields
                    .push((key.into(), value.to_string()));
            }
        }
    }

    fn close(&self, id: SpanId) {
        if let Some(inner) = &self.inner {
            let now = self.t0.elapsed();
            let mut t = inner.borrow_mut();
            let rec = &mut t.spans[id.0 as usize];
            rec.elapsed = now.saturating_sub(rec.start);
            // Pop through the stack in case inner guards were leaked.
            while let Some(open) = t.stack.pop() {
                if open == id {
                    break;
                }
            }
        }
    }

    /// Finishes the trace: closes any still-open spans and returns the
    /// completed tree. An empty tree is returned for a disabled trace.
    pub fn finish(self) -> TraceTree {
        let total = self.t0.elapsed();
        let Some(inner) = self.inner else {
            return TraceTree {
                spans: Vec::new(),
                total,
            };
        };
        let mut t = inner.into_inner();
        while let Some(open) = t.stack.pop() {
            let rec = &mut t.spans[open.0 as usize];
            rec.elapsed = total.saturating_sub(rec.start);
        }
        TraceTree {
            spans: t.spans,
            total,
        }
    }
}

/// RAII guard of one open span; dropping it closes the span.
pub struct SpanGuard<'t> {
    trace: &'t Trace,
    id: Option<SpanId>,
}

impl SpanGuard<'_> {
    /// Attaches a key/value field to this span (not the innermost one —
    /// useful after child spans have already opened and closed).
    pub fn field(&self, key: impl Into<Cow<'static, str>>, value: impl ToString) {
        if let (Some(inner), Some(id)) = (&self.trace.inner, self.id) {
            inner.borrow_mut().spans[id.0 as usize]
                .fields
                .push((key.into(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.trace.close(id);
        }
    }
}

/// A finished trace: every span recorded, in open order, plus the
/// end-to-end wall clock.
#[derive(Debug, Clone, Default)]
pub struct TraceTree {
    /// All spans, indexed by [`SpanId`] (span `i` has id `SpanId(i)`).
    pub spans: Vec<SpanRecord>,
    /// Wall clock from trace creation to finish.
    pub total: Duration,
}

impl TraceTree {
    /// The first span with the given name, if any.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Direct children of `id`, in open order.
    pub fn children(&self, id: SpanId) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Root spans (no parent), in open order.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent.is_none()).collect()
    }

    /// Renders the tree as indented text, one span per line:
    /// `name  12.3µs  [key=value ...]`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in self.roots() {
            self.render_span(root, 0, &mut out);
        }
        out
    }

    fn render_span(&self, span: &SpanRecord, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        write!(out, "{indent}{}  {:?}", span.name, span.elapsed).expect("write to string");
        if !span.fields.is_empty() {
            let fields: Vec<String> = span
                .fields
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            write!(out, "  [{}]", fields.join(" ")).expect("write to string");
        }
        out.push('\n');
        for child in self.children(span.id) {
            self.render_span(child, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_parents() {
        let trace = Trace::new();
        {
            let _outer = trace.span("outer");
            {
                let inner = trace.span("inner");
                inner.field("rows", 3);
            }
            let _sibling = trace.span("sibling");
        }
        let tree = trace.finish();
        assert_eq!(tree.spans.len(), 3);
        assert_eq!(tree.spans[0].parent, None);
        assert_eq!(tree.spans[1].parent, Some(SpanId(0)));
        assert_eq!(tree.spans[2].parent, Some(SpanId(0)));
        assert_eq!(tree.spans[1].fields, vec![("rows".into(), "3".into())]);
        assert_eq!(tree.roots().len(), 1);
        assert_eq!(tree.children(SpanId(0)).len(), 2);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let trace = Trace::disabled();
        assert!(!trace.is_enabled());
        {
            let g = trace.span("x");
            g.field("k", "v");
            trace.field("k2", "v2");
        }
        let tree = trace.finish();
        assert!(tree.spans.is_empty());
    }

    #[test]
    fn open_spans_are_closed_at_finish() {
        let trace = Trace::new();
        let g = trace.span("leaked");
        std::mem::forget(g); // never dropped
        let tree = trace.finish();
        assert_eq!(tree.spans.len(), 1);
        assert!(tree.spans[0].elapsed <= tree.total);
    }

    #[test]
    fn elapsed_is_monotone_with_nesting() {
        let trace = Trace::new();
        {
            let _outer = trace.span("outer");
            let _inner = trace.span("inner");
            std::thread::sleep(Duration::from_millis(2));
        }
        let tree = trace.finish();
        let outer = tree.find("outer").unwrap();
        let inner = tree.find("inner").unwrap();
        assert!(outer.elapsed >= inner.elapsed);
        assert!(tree.total >= outer.elapsed);
    }

    #[test]
    fn render_shows_tree_shape_and_fields() {
        let trace = Trace::new();
        {
            let _a = trace.span("ask");
            let r = trace.span("retrieve");
            r.field("route", "cypher");
        }
        let text = trace.finish().render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("ask"));
        assert!(lines[1].starts_with("  retrieve"));
        assert!(lines[1].contains("[route=cypher]"));
    }
}
