//! Metric registry: named histograms and counters, rendered as
//! Prometheus text exposition format.
//!
//! A [`Registry`] is shared (behind an [`std::sync::Arc`]) by every
//! component that records metrics. Series are keyed by metric name plus
//! a pre-rendered label string (e.g. `stage="parse"`), so looking one up
//! is a single map probe and recording into it is lock-free once the
//! [`Histogram`] handle is held.

use crate::hist::{Histogram, HistogramSnapshot, BUCKET_BOUNDS_NS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

type SeriesKey = (String, String);

/// A shared collection of histograms and counters. See the
/// [module docs](self).
#[derive(Default)]
pub struct Registry {
    histograms: Mutex<BTreeMap<SeriesKey, Arc<Histogram>>>,
    counters: Mutex<BTreeMap<SeriesKey, Arc<AtomicU64>>>,
}

/// Renders `[("stage", "parse")]` as `stage="parse"`. Values are quoted
/// with backslash escaping per the Prometheus text format.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
        write!(out, "{k}=\"{escaped}\"").expect("write to string");
    }
    out
}

/// Formats nanoseconds as decimal seconds (Prometheus base unit).
fn seconds(ns: u64) -> String {
    format!("{}", ns as f64 / 1e9)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The histogram for `name` + `labels`, created empty on first use.
    /// Hold the returned handle to skip the map probe on later records.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = (name.to_string(), render_labels(labels));
        Arc::clone(
            lock(&self.histograms)
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Records one duration into the histogram for `name` + `labels`.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], d: std::time::Duration) {
        self.histogram(name, labels).observe(d);
    }

    /// The counter for `name` + `labels`, created at zero on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let key = (name.to_string(), render_labels(labels));
        Arc::clone(
            lock(&self.counters)
                .entry(key)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Adds `n` to the counter for `name` + `labels`.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        self.counter(name, labels).fetch_add(n, Ordering::Relaxed);
    }

    /// A snapshot of one histogram series, if it exists.
    pub fn snapshot_of(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSnapshot> {
        let key = (name.to_string(), render_labels(labels));
        lock(&self.histograms).get(&key).map(|h| h.snapshot())
    }

    /// Every histogram series as `(name, labels, snapshot)`, sorted by
    /// name then labels.
    pub fn histogram_snapshots(&self) -> Vec<(String, String, HistogramSnapshot)> {
        lock(&self.histograms)
            .iter()
            .map(|((name, labels), h)| (name.clone(), labels.clone(), h.snapshot()))
            .collect()
    }

    /// Renders every series in Prometheus text exposition format.
    ///
    /// Histograms become `<name>_bucket{...,le="<seconds>"}` cumulative
    /// series plus `<name>_sum` (seconds) and `<name>_count`; counters
    /// become plain `<name>{...}` samples. `# HELP` / `# TYPE` headers
    /// are emitted once per metric name, and output order is
    /// deterministic (sorted by name, then labels).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();

        let mut prev: Option<String> = None;
        for (name, labels, snap) in self.histogram_snapshots() {
            if prev.as_deref() != Some(name.as_str()) {
                writeln!(out, "# HELP {name} Latency histogram (seconds).").unwrap();
                writeln!(out, "# TYPE {name} histogram").unwrap();
                prev = Some(name.clone());
            }
            let sep = if labels.is_empty() { "" } else { "," };
            let mut cumulative = 0u64;
            for (i, &bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
                cumulative += snap.buckets[i];
                writeln!(
                    out,
                    "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
                    seconds(bound)
                )
                .unwrap();
            }
            writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
                snap.count
            )
            .unwrap();
            let braced = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            writeln!(out, "{name}_sum{braced} {}", seconds(snap.sum_ns)).unwrap();
            writeln!(out, "{name}_count{braced} {}", snap.count).unwrap();
        }

        let counters: Vec<(SeriesKey, u64)> = lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let mut prev: Option<String> = None;
        for ((name, labels), value) in counters {
            if prev.as_deref() != Some(name.as_str()) {
                writeln!(out, "# HELP {name} Monotonic counter.").unwrap();
                writeln!(out, "# TYPE {name} counter").unwrap();
                prev = Some(name.clone());
            }
            let braced = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            writeln!(out, "{name}{braced} {value}").unwrap();
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn observe_creates_and_fills_a_series() {
        let r = Registry::new();
        r.observe(
            "stage_seconds",
            &[("stage", "parse")],
            Duration::from_micros(5),
        );
        r.observe(
            "stage_seconds",
            &[("stage", "parse")],
            Duration::from_micros(7),
        );
        let snap = r
            .snapshot_of("stage_seconds", &[("stage", "parse")])
            .unwrap();
        assert_eq!(snap.count, 2);
        assert!(r
            .snapshot_of("stage_seconds", &[("stage", "plan")])
            .is_none());
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_with_inf() {
        let r = Registry::new();
        r.observe(
            "stage_seconds",
            &[("stage", "parse")],
            Duration::from_nanos(500),
        );
        r.observe(
            "stage_seconds",
            &[("stage", "parse")],
            Duration::from_micros(3),
        );
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE stage_seconds histogram"));
        // 1µs bucket holds the 500ns sample...
        assert!(text.contains("stage_seconds_bucket{stage=\"parse\",le=\"0.000001\"} 1"));
        // ...and the 4µs bucket is cumulative: both samples.
        assert!(text.contains("stage_seconds_bucket{stage=\"parse\",le=\"0.000004\"} 2"));
        assert!(text.contains("stage_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 2"));
        assert!(text.contains("stage_seconds_count{stage=\"parse\"} 2"));
        assert!(text.contains("stage_seconds_sum{stage=\"parse\"} 0.0000035"));
    }

    #[test]
    fn unlabelled_series_render_without_braces_on_sum_and_count() {
        let r = Registry::new();
        r.observe("http_seconds", &[], Duration::from_micros(1));
        let text = r.render_prometheus();
        assert!(text.contains("http_seconds_bucket{le=\"0.000001\"} 1"));
        assert!(text.contains("\nhttp_seconds_sum 0.000001\n"));
        assert!(text.contains("\nhttp_seconds_count 1\n"));
    }

    #[test]
    fn counters_render_as_counter_type() {
        let r = Registry::new();
        r.inc("requests_total", &[("path", "/ask")], 3);
        r.inc("requests_total", &[("path", "/ask")], 2);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{path=\"/ask\"} 5"));
    }

    #[test]
    fn help_and_type_appear_once_per_metric_name() {
        let r = Registry::new();
        r.observe(
            "stage_seconds",
            &[("stage", "parse")],
            Duration::from_micros(1),
        );
        r.observe(
            "stage_seconds",
            &[("stage", "plan")],
            Duration::from_micros(1),
        );
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE stage_seconds histogram").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.inc("weird_total", &[("q", "say \"hi\"")], 1);
        let text = r.render_prometheus();
        assert!(text.contains("weird_total{q=\"say \\\"hi\\\"\"} 1"));
    }

    #[test]
    fn output_order_is_deterministic() {
        let build = || {
            let r = Registry::new();
            r.observe("b_seconds", &[("stage", "x")], Duration::from_micros(1));
            r.observe("a_seconds", &[("stage", "y")], Duration::from_micros(1));
            r.inc("z_total", &[], 1);
            r.render_prometheus()
        };
        assert_eq!(build(), build());
        let text = build();
        let a = text.find("a_seconds").unwrap();
        let b = text.find("b_seconds").unwrap();
        assert!(a < b);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.observe("s", &[("t", "w")], Duration::from_micros(2));
                        r.inc("c", &[], 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot_of("s", &[("t", "w")]).unwrap().count, 400);
        assert_eq!(r.counter("c", &[]).load(Ordering::Relaxed), 400);
    }
}
