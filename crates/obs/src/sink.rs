//! Trace sinks: where finished [`TraceTree`]s go.
//!
//! The pipeline records every traced request into a sink; the server (or
//! a test) reads recent traces back out. Sinks are `Send + Sync` so one
//! instance can be shared by a worker pool.

use crate::span::TraceTree;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// A destination for finished traces. Trees are shared via [`Arc`] so
/// recording one (and reading it back) never deep-copies the spans.
pub trait TraceSink: Send + Sync {
    /// Records one finished trace.
    fn record(&self, trace: Arc<TraceTree>);
}

/// A bounded ring buffer of the most recent traces — the production sink
/// behind "show me the last N requests" introspection. Recording is
/// O(1); when full, the oldest trace is dropped.
pub struct RingSink {
    capacity: usize,
    inner: Mutex<VecDeque<Arc<TraceTree>>>,
}

impl RingSink {
    /// A ring holding at most `capacity` traces. A capacity of 0
    /// disables retention (records are dropped immediately).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<Arc<TraceTree>>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The newest `n` traces, most recent first.
    pub fn recent(&self, n: usize) -> Vec<Arc<TraceTree>> {
        self.lock().iter().rev().take(n).cloned().collect()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingSink {
    fn record(&self, trace: Arc<TraceTree>) {
        if self.capacity == 0 {
            return;
        }
        let mut q = self.lock();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(trace);
    }
}

/// An unbounded sink for tests: records everything, hands it all back.
#[derive(Default)]
pub struct TestSink {
    inner: Mutex<Vec<Arc<TraceTree>>>,
}

impl TestSink {
    /// An empty test sink.
    pub fn new() -> TestSink {
        TestSink::default()
    }

    /// Takes every recorded trace, leaving the sink empty.
    pub fn take(&self) -> Vec<Arc<TraceTree>> {
        std::mem::take(&mut *self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of recorded traces.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for TestSink {
    fn record(&self, trace: Arc<TraceTree>) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Trace;

    fn named_trace(name: &'static str) -> Arc<TraceTree> {
        let t = Trace::new();
        drop(t.span(name));
        Arc::new(t.finish())
    }

    #[test]
    fn ring_keeps_only_the_newest() {
        let ring = RingSink::new(2);
        for name in ["a", "b", "c"] {
            ring.record(named_trace(name));
        }
        assert_eq!(ring.len(), 2);
        let recent = ring.recent(10);
        assert_eq!(recent[0].spans[0].name, "c");
        assert_eq!(recent[1].spans[0].name, "b");
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let ring = RingSink::new(0);
        ring.record(named_trace("x"));
        assert!(ring.is_empty());
    }

    #[test]
    fn test_sink_takes_all() {
        let sink = TestSink::new();
        sink.record(named_trace("a"));
        sink.record(named_trace("b"));
        assert_eq!(sink.len(), 2);
        let all = sink.take();
        assert_eq!(all.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn sinks_are_shareable_across_threads() {
        let ring = std::sync::Arc::new(RingSink::new(64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        ring.record(named_trace("t"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.len(), 40);
    }
}
