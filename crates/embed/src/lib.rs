//! # iyp-embed
//!
//! Deterministic text embeddings and cosine vector search — the substitute
//! for the neural embedding model behind ChatIYP's VectorContextRetriever.
//!
//! [`embedder::Embedder`] hashes word unigrams/bigrams and character
//! trigrams into a fixed-dimension signed vector (the feature-hashing
//! trick) and L2-normalizes it. [`index`] provides exact and bucketed
//! cosine search; [`docs::DocStore`] pairs texts with their vectors.
//!
//! ```
//! use iyp_embed::DocStore;
//!
//! let mut store = DocStore::new();
//! store.add("AS2497 IIJ", "IIJ is an autonomous system in Japan", 2497);
//! store.add("AS15169 Google", "Google operates cloud networks", 15169);
//! let hits = store.search("Japanese autonomous systems", 1);
//! assert_eq!(hits[0].doc.tag, 2497);
//! ```

#![deny(missing_docs)]

pub mod docs;
pub mod embedder;
pub mod index;
pub mod tokenize;

pub use docs::{Doc, DocHit, DocStore};
pub use embedder::{Embedder, Vector, DEFAULT_DIM};
pub use index::{BucketIndex, FlatIndex, Hit};
