//! Cosine-similarity vector index.
//!
//! A flat (exact) index plus a bucketed variant that partitions vectors by
//! their dominant dimension for faster approximate search on larger
//! corpora. Both return identical results when `probe` covers all buckets.
//!
//! Both indexes are **tombstone-aware**: a document can be removed (its
//! slot is skipped by searches) or overwritten in place, which is what
//! lets a live system refresh single documents after an ingest instead of
//! rebuilding the whole index.

use crate::embedder::Vector;

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Index of the document in insertion order.
    pub doc: usize,
    /// Cosine similarity to the query.
    pub score: f32,
}

/// Exact flat index: brute-force cosine over all live vectors.
#[derive(Debug, Clone, Default)]
pub struct FlatIndex {
    vectors: Vec<Vector>,
    /// Tombstones: `live[doc]` is false once `doc` was removed. Dead
    /// slots keep their (stale) vector but are invisible to `search`
    /// until [`FlatIndex::set`] revives them.
    live: Vec<bool>,
    live_count: usize,
}

impl FlatIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vector, returning its document id.
    pub fn add(&mut self, v: Vector) -> usize {
        self.vectors.push(v);
        self.live.push(true);
        self.live_count += 1;
        self.vectors.len() - 1
    }

    /// Overwrites slot `doc` with `v`, reviving it if it was tombstoned.
    /// Panics if `doc` was never allocated by [`FlatIndex::add`].
    pub fn set(&mut self, doc: usize, v: Vector) {
        if !self.live[doc] {
            self.live[doc] = true;
            self.live_count += 1;
        }
        self.vectors[doc] = v;
    }

    /// Tombstones slot `doc`: searches skip it from now on. Removing an
    /// already-dead slot is a no-op. Panics if `doc` was never allocated.
    pub fn remove(&mut self, doc: usize) {
        if self.live[doc] {
            self.live[doc] = false;
            self.live_count -= 1;
        }
    }

    /// Is slot `doc` live (allocated and not tombstoned)?
    pub fn is_live(&self, doc: usize) -> bool {
        self.live.get(doc).copied().unwrap_or(false)
    }

    /// Number of slots ever allocated (live + tombstoned).
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Number of live (searchable) vectors.
    pub fn live_len(&self) -> usize {
        self.live_count
    }

    /// True if no live vectors remain.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Top-`k` most similar live documents, sorted by descending score
    /// (ties by ascending doc id, so results are fully deterministic).
    pub fn search(&self, query: &Vector, k: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self
            .vectors
            .iter()
            .enumerate()
            .filter(|(doc, _)| self.live[*doc])
            .map(|(doc, v)| Hit {
                doc,
                score: query.cosine(v),
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }
}

/// Bucketed approximate index: vectors are grouped by argmax dimension;
/// queries probe the `probe` buckets with the largest |query| components.
///
/// Removal and re-insertion are tombstone-aware: [`BucketIndex::remove`]
/// hides a document, and [`BucketIndex::insert`] places (or replaces) a
/// document under an explicit id, so callers can keep bucket ids aligned
/// with an external document store across updates.
#[derive(Debug, Clone)]
pub struct BucketIndex {
    dim: usize,
    buckets: Vec<Vec<(usize, Vector)>>,
    /// doc id → bucket holding it (`None` once removed).
    slots: Vec<Option<usize>>,
    live_count: usize,
}

impl BucketIndex {
    /// Creates an index for vectors of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        BucketIndex {
            dim,
            buckets: (0..dim).map(|_| Vec::new()).collect(),
            slots: Vec::new(),
            live_count: 0,
        }
    }

    /// Adds a vector under the next fresh document id, returning the id.
    pub fn add(&mut self, v: Vector) -> usize {
        let doc = self.slots.len();
        self.insert(doc, v);
        doc
    }

    /// Inserts (or replaces) the vector for document `doc`. A live `doc`
    /// is moved to its new bucket; a tombstoned `doc` is revived; a `doc`
    /// past the current range extends it (intermediate ids stay dead).
    pub fn insert(&mut self, doc: usize, v: Vector) {
        assert_eq!(v.dim(), self.dim);
        if doc >= self.slots.len() {
            self.slots.resize(doc + 1, None);
        }
        if self.slots[doc].is_some() {
            self.remove(doc);
        }
        let bucket = argmax_abs(&v);
        self.buckets[bucket].push((doc, v));
        self.slots[doc] = Some(bucket);
        self.live_count += 1;
    }

    /// Tombstones document `doc`: searches skip it until a future
    /// [`BucketIndex::insert`] revives the id. Unknown or already-dead
    /// ids are a no-op.
    pub fn remove(&mut self, doc: usize) {
        let Some(bucket) = self.slots.get(doc).copied().flatten() else {
            return;
        };
        self.buckets[bucket].retain(|(d, _)| *d != doc);
        self.slots[doc] = None;
        self.live_count -= 1;
    }

    /// Number of live (searchable) vectors.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True if no live vectors remain.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Top-`k` hits probing the `probe` most promising buckets.
    ///
    /// Edge cases are defined, not incidental:
    /// * `probe == 0` is treated as `probe == 1` — a search that probes
    ///   nothing would silently return nothing, which has never been what
    ///   a caller meant (a `debug_assert` flags the call in debug builds).
    /// * `probe > dim` covers every bucket, making the result identical
    ///   to [`FlatIndex::search`] over the same corpus.
    /// * An all-zero query has no promising direction: every |component|
    ///   ties, the (stable) sort keeps buckets in dimension order, so the
    ///   first `probe` buckets are scanned and all scores are 0, ordered
    ///   by ascending doc id.
    pub fn search(&self, query: &Vector, k: usize, probe: usize) -> Vec<Hit> {
        debug_assert!(
            probe > 0,
            "BucketIndex::search with probe = 0 probes one bucket, not zero; \
             pass the number of buckets you mean"
        );
        let mut dims: Vec<usize> = (0..self.dim).collect();
        dims.sort_by(|&a, &b| {
            query.0[b]
                .abs()
                .partial_cmp(&query.0[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut hits: Vec<Hit> = Vec::new();
        for &d in dims.iter().take(probe.max(1)) {
            for (doc, v) in &self.buckets[d] {
                hits.push(Hit {
                    doc: *doc,
                    score: query.cosine(v),
                });
            }
        }
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }
}

/// The dominant dimension of `v`: the index of its largest |component|.
///
/// Defined edge cases: an all-zero vector (every |component| ties at 0)
/// maps to bucket 0, as does any vector whose components are all NaN
/// (NaN comparisons are false, so the initial candidate survives). Both
/// are flagged by a `debug_assert` — a NaN embedding is always an
/// upstream bug, and an all-zero embedding (empty text) buckets
/// arbitrarily — but release builds stay deterministic instead of
/// panicking.
fn argmax_abs(v: &Vector) -> usize {
    debug_assert!(
        v.0.iter().all(|x| x.is_finite()),
        "argmax_abs over a non-finite vector buckets arbitrarily"
    );
    let mut best = 0;
    let mut best_val = -1.0f32;
    for (i, x) in v.0.iter().enumerate() {
        if x.abs() > best_val {
            best_val = x.abs();
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedder::Embedder;

    fn corpus() -> (Embedder, Vec<&'static str>) {
        (
            Embedder::default(),
            vec![
                "AS2497 IIJ is an autonomous system registered in Japan",
                "AS15169 Google operates content and cloud networks",
                "Japan has a population of 124 million",
                "JPIX is an Internet exchange point in Tokyo",
                "shop42.com is ranked 17 in the Tranco list",
            ],
        )
    }

    #[test]
    fn flat_search_finds_relevant_doc() {
        let (e, docs) = corpus();
        let mut idx = FlatIndex::new();
        for d in &docs {
            idx.add(e.embed(d));
        }
        let hits = idx.search(&e.embed("Which exchange point is in Tokyo?"), 2);
        assert_eq!(hits[0].doc, 3, "hits: {hits:?}");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn flat_search_is_deterministic() {
        let (e, docs) = corpus();
        let mut idx = FlatIndex::new();
        for d in &docs {
            idx.add(e.embed(d));
        }
        let q = e.embed("google cloud");
        assert_eq!(idx.search(&q, 3), idx.search(&q, 3));
    }

    #[test]
    fn flat_remove_hides_and_set_revives() {
        let (e, docs) = corpus();
        let mut idx = FlatIndex::new();
        for d in &docs {
            idx.add(e.embed(d));
        }
        let q = e.embed("Which exchange point is in Tokyo?");
        assert_eq!(idx.search(&q, 1)[0].doc, 3);

        idx.remove(3);
        assert_eq!(idx.live_len(), docs.len() - 1);
        assert!(!idx.is_live(3));
        assert!(idx.search(&q, docs.len()).iter().all(|h| h.doc != 3));
        // Double-remove is a no-op.
        idx.remove(3);
        assert_eq!(idx.live_len(), docs.len() - 1);

        // Reviving the slot with a fresh vector brings it back.
        idx.set(3, e.embed(docs[3]));
        assert_eq!(idx.live_len(), docs.len());
        assert_eq!(idx.search(&q, 1)[0].doc, 3);
    }

    #[test]
    fn flat_set_overwrites_in_place() {
        let (e, _) = corpus();
        let mut idx = FlatIndex::new();
        idx.add(e.embed("alpha networks"));
        idx.add(e.embed("beta exchange"));
        let q = e.embed("gamma routing");
        idx.set(1, e.embed("gamma routing platform"));
        assert_eq!(idx.search(&q, 1)[0].doc, 1);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.live_len(), 2);
    }

    #[test]
    fn bucket_index_with_full_probe_matches_flat() {
        let (e, docs) = corpus();
        let mut flat = FlatIndex::new();
        let mut bucket = BucketIndex::new(crate::embedder::DEFAULT_DIM);
        for d in &docs {
            flat.add(e.embed(d));
            bucket.add(e.embed(d));
        }
        let q = e.embed("population of Japan");
        let hf = flat.search(&q, 3);
        let hb = bucket.search(&q, 3, crate::embedder::DEFAULT_DIM);
        assert_eq!(hf, hb);
    }

    #[test]
    fn bucket_probe_zero_probes_one_bucket() {
        // probe = 0 is documented to behave exactly like probe = 1 (the
        // debug_assert fires for callers, not for this pinned contract).
        let (e, docs) = corpus();
        let mut idx = BucketIndex::new(crate::embedder::DEFAULT_DIM);
        for d in &docs {
            idx.add(e.embed(d));
        }
        let q = e.embed("internet exchange");
        let zero = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| idx.search(&q, 5, 0)));
        if cfg!(debug_assertions) {
            assert!(zero.is_err(), "probe=0 must trip the debug_assert");
        } else {
            assert_eq!(zero.unwrap(), idx.search(&q, 5, 1));
        }
    }

    #[test]
    fn bucket_probe_beyond_dim_equals_flat() {
        let (e, docs) = corpus();
        let mut flat = FlatIndex::new();
        let mut idx = BucketIndex::new(crate::embedder::DEFAULT_DIM);
        for d in &docs {
            flat.add(e.embed(d));
            idx.add(e.embed(d));
        }
        let q = e.embed("cloud networks");
        // probe far past the dimensionality simply covers all buckets.
        assert_eq!(
            idx.search(&q, 4, crate::embedder::DEFAULT_DIM * 10),
            flat.search(&q, 4)
        );
    }

    #[test]
    fn zero_query_vector_is_deterministic_and_ties_by_doc_id() {
        let (e, docs) = corpus();
        let mut idx = BucketIndex::new(crate::embedder::DEFAULT_DIM);
        for d in &docs {
            idx.add(e.embed(d));
        }
        let zero = Vector(vec![0.0; crate::embedder::DEFAULT_DIM]);
        // Full probe: every doc scores 0.0, ordered by ascending doc id.
        let hits = idx.search(&zero, docs.len(), crate::embedder::DEFAULT_DIM);
        assert_eq!(hits.len(), docs.len());
        assert!(hits.iter().all(|h| h.score == 0.0));
        let ids: Vec<usize> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(ids, (0..docs.len()).collect::<Vec<_>>());
        // And the result is reproducible.
        assert_eq!(
            hits,
            idx.search(&zero, docs.len(), crate::embedder::DEFAULT_DIM)
        );
    }

    #[test]
    fn zero_vector_documents_land_in_bucket_zero() {
        // An all-zero *document* has no dominant dimension; argmax_abs is
        // documented to map it to bucket 0, deterministically.
        let mut idx = BucketIndex::new(8);
        let doc = idx.add(Vector(vec![0.0; 8]));
        let q = Vector(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // Bucket 0 is the top probe for this query; the zero doc shows up
        // (with score 0) once any bucket-0 probe happens.
        let hits = idx.search(&q, 1, 1);
        assert_eq!(hits, vec![Hit { doc, score: 0.0 }]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_vectors_are_rejected_in_debug_builds() {
        let mut idx = BucketIndex::new(4);
        idx.add(Vector(vec![f32::NAN; 4]));
    }

    #[test]
    fn bucket_remove_and_reinsert_stay_aligned() {
        let (e, docs) = corpus();
        let mut idx = BucketIndex::new(crate::embedder::DEFAULT_DIM);
        for d in &docs {
            idx.add(e.embed(d));
        }
        let q = e.embed("Which exchange point is in Tokyo?");
        assert_eq!(idx.search(&q, 1, crate::embedder::DEFAULT_DIM)[0].doc, 3);

        idx.remove(3);
        assert_eq!(idx.len(), docs.len() - 1);
        assert!(idx
            .search(&q, docs.len(), crate::embedder::DEFAULT_DIM)
            .iter()
            .all(|h| h.doc != 3));
        // Unknown / double removes are no-ops.
        idx.remove(3);
        idx.remove(999);
        assert_eq!(idx.len(), docs.len() - 1);

        // Re-insert under the same id (possibly a different bucket).
        idx.insert(3, e.embed("JPIX the Tokyo exchange point, refreshed"));
        assert_eq!(idx.len(), docs.len());
        assert_eq!(idx.search(&q, 1, crate::embedder::DEFAULT_DIM)[0].doc, 3);

        // Replacing a live id moves it, never duplicates it.
        idx.insert(3, e.embed(docs[3]));
        assert_eq!(idx.len(), docs.len());
        let all = idx.search(&q, 100, crate::embedder::DEFAULT_DIM);
        assert_eq!(all.iter().filter(|h| h.doc == 3).count(), 1);
    }

    #[test]
    fn top_k_truncates() {
        let (e, docs) = corpus();
        let mut idx = FlatIndex::new();
        for d in &docs {
            idx.add(e.embed(d));
        }
        assert_eq!(idx.search(&e.embed("network"), 2).len(), 2);
        assert_eq!(idx.search(&e.embed("network"), 99).len(), docs.len());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = FlatIndex::new();
        assert!(idx.search(&Embedder::default().embed("x"), 5).is_empty());
    }
}
