//! Cosine-similarity vector index.
//!
//! A flat (exact) index plus a bucketed variant that partitions vectors by
//! their dominant dimension for faster approximate search on larger
//! corpora. Both return identical results when `probe` covers all buckets.

use crate::embedder::Vector;

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Index of the document in insertion order.
    pub doc: usize,
    /// Cosine similarity to the query.
    pub score: f32,
}

/// Exact flat index: brute-force cosine over all vectors.
#[derive(Debug, Default)]
pub struct FlatIndex {
    vectors: Vec<Vector>,
}

impl FlatIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vector, returning its document id.
    pub fn add(&mut self, v: Vector) -> usize {
        self.vectors.push(v);
        self.vectors.len() - 1
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Top-`k` most similar documents, sorted by descending score (ties by
    /// ascending doc id, so results are fully deterministic).
    pub fn search(&self, query: &Vector, k: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(doc, v)| Hit {
                doc,
                score: query.cosine(v),
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }
}

/// Bucketed approximate index: vectors are grouped by argmax dimension;
/// queries probe the `probe` buckets with the largest |query| components.
#[derive(Debug)]
pub struct BucketIndex {
    dim: usize,
    buckets: Vec<Vec<(usize, Vector)>>,
    len: usize,
}

impl BucketIndex {
    /// Creates an index for vectors of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        BucketIndex {
            dim,
            buckets: (0..dim).map(|_| Vec::new()).collect(),
            len: 0,
        }
    }

    /// Adds a vector, returning its document id.
    pub fn add(&mut self, v: Vector) -> usize {
        assert_eq!(v.dim(), self.dim);
        let doc = self.len;
        self.len += 1;
        let bucket = argmax_abs(&v);
        self.buckets[bucket].push((doc, v));
        doc
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Top-`k` hits probing the `probe` most promising buckets.
    pub fn search(&self, query: &Vector, k: usize, probe: usize) -> Vec<Hit> {
        let mut dims: Vec<usize> = (0..self.dim).collect();
        dims.sort_by(|&a, &b| {
            query.0[b]
                .abs()
                .partial_cmp(&query.0[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut hits: Vec<Hit> = Vec::new();
        for &d in dims.iter().take(probe.max(1)) {
            for (doc, v) in &self.buckets[d] {
                hits.push(Hit {
                    doc: *doc,
                    score: query.cosine(v),
                });
            }
        }
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }
}

fn argmax_abs(v: &Vector) -> usize {
    let mut best = 0;
    let mut best_val = -1.0f32;
    for (i, x) in v.0.iter().enumerate() {
        if x.abs() > best_val {
            best_val = x.abs();
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedder::Embedder;

    fn corpus() -> (Embedder, Vec<&'static str>) {
        (
            Embedder::default(),
            vec![
                "AS2497 IIJ is an autonomous system registered in Japan",
                "AS15169 Google operates content and cloud networks",
                "Japan has a population of 124 million",
                "JPIX is an Internet exchange point in Tokyo",
                "shop42.com is ranked 17 in the Tranco list",
            ],
        )
    }

    #[test]
    fn flat_search_finds_relevant_doc() {
        let (e, docs) = corpus();
        let mut idx = FlatIndex::new();
        for d in &docs {
            idx.add(e.embed(d));
        }
        let hits = idx.search(&e.embed("Which exchange point is in Tokyo?"), 2);
        assert_eq!(hits[0].doc, 3, "hits: {hits:?}");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn flat_search_is_deterministic() {
        let (e, docs) = corpus();
        let mut idx = FlatIndex::new();
        for d in &docs {
            idx.add(e.embed(d));
        }
        let q = e.embed("google cloud");
        assert_eq!(idx.search(&q, 3), idx.search(&q, 3));
    }

    #[test]
    fn bucket_index_with_full_probe_matches_flat() {
        let (e, docs) = corpus();
        let mut flat = FlatIndex::new();
        let mut bucket = BucketIndex::new(crate::embedder::DEFAULT_DIM);
        for d in &docs {
            flat.add(e.embed(d));
            bucket.add(e.embed(d));
        }
        let q = e.embed("population of Japan");
        let hf = flat.search(&q, 3);
        let hb = bucket.search(&q, 3, crate::embedder::DEFAULT_DIM);
        assert_eq!(hf, hb);
    }

    #[test]
    fn top_k_truncates() {
        let (e, docs) = corpus();
        let mut idx = FlatIndex::new();
        for d in &docs {
            idx.add(e.embed(d));
        }
        assert_eq!(idx.search(&e.embed("network"), 2).len(), 2);
        assert_eq!(idx.search(&e.embed("network"), 99).len(), docs.len());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = FlatIndex::new();
        assert!(idx.search(&Embedder::default().embed("x"), 5).is_empty());
    }
}
