//! A deterministic feature-hashing text embedder.
//!
//! Stands in for the dense neural embeddings the paper's
//! VectorContextRetriever uses: each word unigram, bigram and character
//! trigram is hashed into a fixed-dimension vector (with a signed hashing
//! trick), then L2-normalized. Texts sharing vocabulary and phrasing land
//! close in cosine space, which is the property the retriever and
//! BERTScore-style metric rely on.

use crate::tokenize::{char_trigrams, words};
use serde::{Deserialize, Serialize};

/// Default embedding dimensionality.
pub const DEFAULT_DIM: usize = 256;

/// A dense embedding vector (L2-normalized unless all-zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vector(pub Vec<f32>);

impl Vector {
    /// Cosine similarity. Zero vectors yield 0.
    pub fn cosine(&self, other: &Vector) -> f32 {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.0.len()
    }
}

/// The hashing embedder.
#[derive(Debug, Clone)]
pub struct Embedder {
    dim: usize,
}

impl Default for Embedder {
    fn default() -> Self {
        Embedder { dim: DEFAULT_DIM }
    }
}

impl Embedder {
    /// Creates an embedder with the given dimensionality.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 8, "embedding dimension too small");
        Embedder { dim }
    }

    /// Embeds a text into a normalized vector.
    ///
    /// This is the hot loop of every index build, so the grams are
    /// assembled in reused scratch buffers rather than through the
    /// allocating [`char_trigrams`]/[`crate::tokenize::word_ngrams`]
    /// helpers — the hashed bytes (and therefore the resulting vector)
    /// are identical.
    pub fn embed(&self, text: &str) -> Vector {
        let mut v = vec![0f32; self.dim];
        let tokens = words(text);
        // Unigrams (weight 1.0), bigrams (1.5 — phrase structure matters),
        // char trigrams (0.5 — robustness to morphology/typos).
        let mut chars: Vec<char> = Vec::new();
        let mut gram = String::new();
        for t in &tokens {
            self.add_feature(&mut v, t, 1.0);
            chars.clear();
            chars.push('^');
            chars.extend(t.chars());
            chars.push('$');
            if chars.len() < 3 {
                gram.clear();
                gram.extend(chars.iter());
                self.add_feature(&mut v, &gram, 0.5);
            } else {
                for w in chars.windows(3) {
                    gram.clear();
                    gram.extend(w.iter());
                    self.add_feature(&mut v, &gram, 0.5);
                }
            }
        }
        for w in tokens.windows(2) {
            gram.clear();
            gram.push_str(&w[0]);
            gram.push('_');
            gram.push_str(&w[1]);
            self.add_feature(&mut v, &gram, 1.5);
        }
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        Vector(v)
    }

    /// Per-token embedding (used by the BERTScore-style metric's greedy
    /// token matching).
    pub fn embed_token(&self, token: &str) -> Vector {
        let mut v = vec![0f32; self.dim];
        let lower = token.to_lowercase();
        self.add_feature(&mut v, &lower, 1.0);
        for g in char_trigrams(&lower) {
            self.add_feature(&mut v, &g, 0.7);
        }
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        Vector(v)
    }

    fn add_feature(&self, v: &mut [f32], feature: &str, weight: f32) {
        // Each feature lands in two independent signed slots (count-sketch
        // style): a chance collision of two different features must then
        // coincide in both slots to masquerade as similarity, which makes
        // spurious cosine quadratically rarer than with one slot.
        //
        // h2 hashes the feature behind a 0x03 prefix byte; folding the
        // prefix into the FNV state directly avoids materializing the
        // prefixed string (this runs a few hundred times per document).
        let h1 = fnv1a(feature.as_bytes());
        let h2 = fnv1a_from(fnv1a_from(FNV_OFFSET, &[0x03]), feature.as_bytes());
        let w = weight * std::f32::consts::FRAC_1_SQRT_2;
        for h in [h1, h2] {
            let slot = (h % self.dim as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[slot] += w * sign;
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// 64-bit FNV-1a, the deterministic feature hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_from(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a hash from state `h` — hashing a concatenation
/// piecewise gives the same result as hashing it whole.
fn fnv1a_from(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_deterministic_and_normalized() {
        let e = Embedder::default();
        let a = e.embed("What is the name of AS2497?");
        let b = e.embed("What is the name of AS2497?");
        assert_eq!(a, b);
        let norm: f32 = a.0.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar() {
        let e = Embedder::default();
        let q = e.embed("Which ASes are registered in Japan?");
        let close = e.embed("The autonomous systems registered in Japan");
        let far = e.embed("Tranco rank of the domain shop42.com");
        assert!(
            q.cosine(&close) > q.cosine(&far),
            "close={} far={}",
            q.cosine(&close),
            q.cosine(&far)
        );
    }

    #[test]
    fn paraphrase_retains_some_similarity() {
        let e = Embedder::default();
        let a = e.embed("AS2497 serves 33.3 percent of Japan's population");
        let b = e.embed("33.3% of the population of Japan is served by AS2497");
        assert!(a.cosine(&b) > 0.35, "cos={}", a.cosine(&b));
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = Embedder::default();
        let z = e.embed("");
        assert!(z.0.iter().all(|&x| x == 0.0));
        assert_eq!(z.cosine(&e.embed("anything")), 0.0);
    }

    #[test]
    fn scratch_buffer_grams_match_the_tokenize_helpers() {
        // `embed` assembles grams in reused buffers for speed; this pins
        // it to the reference implementation built on the public helpers.
        let e = Embedder::default();
        for text in [
            "What is the name of AS2497?",
            "Tokyo 日本 interconnection — JPIX, 40 members",
            "a",
            "",
        ] {
            let mut v = vec![0f32; e.dim];
            let tokens = words(text);
            for t in &tokens {
                e.add_feature(&mut v, t, 1.0);
                for g in crate::tokenize::char_trigrams(t) {
                    e.add_feature(&mut v, &g, 0.5);
                }
            }
            for g in crate::tokenize::word_ngrams(&tokens, 2) {
                e.add_feature(&mut v, &g, 1.5);
            }
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in &mut v {
                    *x /= norm;
                }
            }
            assert_eq!(e.embed(text), Vector(v), "text {text:?}");
        }
    }

    #[test]
    fn token_embeddings_match_similar_tokens() {
        let e = Embedder::default();
        let a = e.embed_token("networks");
        let b = e.embed_token("network");
        let c = e.embed_token("population");
        assert!(a.cosine(&b) > a.cosine(&c));
    }
}
