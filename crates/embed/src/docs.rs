//! A document store pairing texts with their embeddings and a flat index —
//! the unit the VectorContextRetriever searches over.

use crate::embedder::{Embedder, Vector};
use crate::index::{FlatIndex, Hit};

/// A stored document.
#[derive(Debug, Clone)]
pub struct Doc {
    /// Short title.
    pub title: String,
    /// Full text (what gets embedded and returned as context).
    pub text: String,
    /// Opaque tag the caller can use to map back to its own ids
    /// (e.g. a graph `NodeId`).
    pub tag: u64,
}

/// A searchable corpus of documents.
pub struct DocStore {
    embedder: Embedder,
    docs: Vec<Doc>,
    index: FlatIndex,
}

/// A search result with its document.
#[derive(Debug, Clone)]
pub struct DocHit<'a> {
    /// The matched document.
    pub doc: &'a Doc,
    /// Cosine similarity.
    pub score: f32,
}

impl DocStore {
    /// Creates an empty store with the default embedder.
    pub fn new() -> Self {
        DocStore {
            embedder: Embedder::default(),
            docs: Vec::new(),
            index: FlatIndex::new(),
        }
    }

    /// Adds a document.
    pub fn add(&mut self, title: impl Into<String>, text: impl Into<String>, tag: u64) {
        let doc = Doc {
            title: title.into(),
            text: text.into(),
            tag,
        };
        // Title is embedded twice as heavily as once: it names the entity.
        let embed_text = format!("{} {} {}", doc.title, doc.title, doc.text);
        self.index.add(self.embedder.embed(&embed_text));
        self.docs.push(doc);
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Top-`k` documents for a query.
    pub fn search(&self, query: &str, k: usize) -> Vec<DocHit<'_>> {
        let qv = self.embedder.embed(query);
        self.search_vec(&qv, k)
    }

    /// Top-`k` documents for a pre-embedded query.
    pub fn search_vec(&self, query: &Vector, k: usize) -> Vec<DocHit<'_>> {
        self.index
            .search(query, k)
            .into_iter()
            .map(|Hit { doc, score }| DocHit {
                doc: &self.docs[doc],
                score,
            })
            .collect()
    }

    /// The embedder, for callers that need consistent query embeddings.
    pub fn embedder(&self) -> &Embedder {
        &self.embedder
    }
}

impl Default for DocStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_search() {
        let mut store = DocStore::new();
        store.add(
            "AS2497 IIJ",
            "IIJ is registered in Japan and serves 33% of its population",
            1,
        );
        store.add(
            "AS15169 Google",
            "Google is a content and cloud network in the United States",
            2,
        );
        store.add(
            "JPIX",
            "JPIX is an Internet exchange point in Tokyo with 40 members",
            3,
        );

        let hits = store.search("population of Japan", 2);
        assert_eq!(hits[0].doc.tag, 1, "got {:?}", hits[0].doc.title);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn title_boost_helps_entity_queries() {
        let mut store = DocStore::new();
        store.add("AS2497 IIJ", "an autonomous system", 1);
        store.add("AS7018 ATT", "an autonomous system", 2);
        let hits = store.search("tell me about AS2497", 1);
        assert_eq!(hits[0].doc.tag, 1);
    }

    #[test]
    fn empty_store() {
        let store = DocStore::new();
        assert!(store.search("anything", 3).is_empty());
        assert!(store.is_empty());
    }
}
