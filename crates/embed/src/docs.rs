//! A document store pairing texts with their embeddings and a flat index —
//! the unit the VectorContextRetriever searches over.
//!
//! The store is **incrementally mutable**: documents are keyed by a
//! caller-supplied `tag` (e.g. a graph node id), and [`DocStore::upsert`] /
//! [`DocStore::remove`] patch single documents in place — tombstoned slots
//! are recycled by later upserts — so a refreshed copy of the store can be
//! produced from an ingest delta without re-embedding the whole corpus.

use std::collections::HashMap;

use crate::embedder::{Embedder, Vector};
use crate::index::{FlatIndex, Hit};

/// A stored document.
#[derive(Debug, Clone)]
pub struct Doc {
    /// Short title.
    pub title: String,
    /// Full text (what gets embedded and returned as context).
    pub text: String,
    /// Opaque tag the caller can use to map back to its own ids
    /// (e.g. a graph `NodeId`). Unique within a store: upserting an
    /// existing tag replaces that document.
    pub tag: u64,
}

/// A searchable corpus of documents.
#[derive(Clone)]
pub struct DocStore {
    embedder: Embedder,
    docs: Vec<Doc>,
    index: FlatIndex,
    /// tag → slot in `docs`/`index` for live documents.
    by_tag: HashMap<u64, usize>,
    /// Tombstoned slots available for reuse by the next upsert.
    free: Vec<usize>,
}

/// A search result with its document.
#[derive(Debug, Clone)]
pub struct DocHit<'a> {
    /// The matched document.
    pub doc: &'a Doc,
    /// Cosine similarity.
    pub score: f32,
}

impl DocStore {
    /// Creates an empty store with the default embedder.
    pub fn new() -> Self {
        DocStore {
            embedder: Embedder::default(),
            docs: Vec::new(),
            index: FlatIndex::new(),
            by_tag: HashMap::new(),
            free: Vec::new(),
        }
    }

    /// Adds or replaces the document with this `tag` (alias of
    /// [`DocStore::upsert`], kept for construction-time readability).
    pub fn add(&mut self, title: impl Into<String>, text: impl Into<String>, tag: u64) {
        self.upsert(title, text, tag);
    }

    /// Adds the document if `tag` is new, replaces it (re-embedding the new
    /// text into the same slot) if the tag is already present. Removed
    /// slots are recycled before the store grows.
    pub fn upsert(&mut self, title: impl Into<String>, text: impl Into<String>, tag: u64) {
        let doc = Doc {
            title: title.into(),
            text: text.into(),
            tag,
        };
        let vector = self.embedder.embed(&Self::embed_text(&doc));
        self.insert_embedded(doc, vector);
    }

    /// Adds a whole batch, embedding across all available cores —
    /// equivalent to (but much faster than) upserting each document in
    /// order. Construction-time bulk loads (full index builds, crash
    /// recovery) go through here; single-document churn stays on
    /// [`DocStore::upsert`].
    pub fn upsert_batch(&mut self, batch: Vec<Doc>) {
        const PARALLEL_THRESHOLD: usize = 64;
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let vectors: Vec<Vector> = if batch.len() < PARALLEL_THRESHOLD || workers < 2 {
            batch
                .iter()
                .map(|d| self.embedder.embed(&Self::embed_text(d)))
                .collect()
        } else {
            let chunk = batch.len().div_ceil(workers);
            let embedder = &self.embedder;
            let mut parts: Vec<Vec<Vector>> = Vec::with_capacity(workers);
            std::thread::scope(|s| {
                let handles: Vec<_> = batch
                    .chunks(chunk)
                    .map(|docs| {
                        s.spawn(move || {
                            docs.iter()
                                .map(|d| embedder.embed(&Self::embed_text(d)))
                                .collect::<Vec<Vector>>()
                        })
                    })
                    .collect();
                for h in handles {
                    parts.push(h.join().expect("embed worker panicked"));
                }
            });
            parts.into_iter().flatten().collect()
        };
        for (doc, vector) in batch.into_iter().zip(vectors) {
            self.insert_embedded(doc, vector);
        }
    }

    /// What actually gets embedded for a document. The title is embedded
    /// twice as heavily as once: it names the entity.
    fn embed_text(doc: &Doc) -> String {
        format!("{} {} {}", doc.title, doc.title, doc.text)
    }

    /// The slot bookkeeping shared by the single and batch paths.
    fn insert_embedded(&mut self, doc: Doc, vector: Vector) {
        if let Some(&slot) = self.by_tag.get(&doc.tag) {
            self.index.set(slot, vector);
            self.docs[slot] = doc;
        } else if let Some(slot) = self.free.pop() {
            let tag = doc.tag;
            self.index.set(slot, vector);
            self.docs[slot] = doc;
            self.by_tag.insert(tag, slot);
        } else {
            let slot = self.index.add(vector);
            debug_assert_eq!(slot, self.docs.len());
            self.by_tag.insert(doc.tag, slot);
            self.docs.push(doc);
        }
    }

    /// Removes the document with this `tag`, if present. Its slot is
    /// tombstoned (skipped by searches) and recycled by a later upsert.
    /// Returns whether a document was removed.
    pub fn remove(&mut self, tag: u64) -> bool {
        let Some(slot) = self.by_tag.remove(&tag) else {
            return false;
        };
        self.index.remove(slot);
        self.free.push(slot);
        true
    }

    /// Does the store hold a live document with this `tag`?
    pub fn contains(&self, tag: u64) -> bool {
        self.by_tag.contains_key(&tag)
    }

    /// The live document with this `tag`, if present.
    pub fn get(&self, tag: u64) -> Option<&Doc> {
        self.by_tag.get(&tag).map(|&slot| &self.docs[slot])
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.by_tag.len()
    }

    /// True if no live documents remain.
    pub fn is_empty(&self) -> bool {
        self.by_tag.is_empty()
    }

    /// Top-`k` documents for a query.
    pub fn search(&self, query: &str, k: usize) -> Vec<DocHit<'_>> {
        let qv = self.embedder.embed(query);
        self.search_vec(&qv, k)
    }

    /// Top-`k` documents for a pre-embedded query.
    pub fn search_vec(&self, query: &Vector, k: usize) -> Vec<DocHit<'_>> {
        self.index
            .search(query, k)
            .into_iter()
            .map(|Hit { doc, score }| DocHit {
                doc: &self.docs[doc],
                score,
            })
            .collect()
    }

    /// The embedder, for callers that need consistent query embeddings.
    pub fn embedder(&self) -> &Embedder {
        &self.embedder
    }
}

impl Default for DocStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_search() {
        let mut store = DocStore::new();
        store.add(
            "AS2497 IIJ",
            "IIJ is registered in Japan and serves 33% of its population",
            1,
        );
        store.add(
            "AS15169 Google",
            "Google is a content and cloud network in the United States",
            2,
        );
        store.add(
            "JPIX",
            "JPIX is an Internet exchange point in Tokyo with 40 members",
            3,
        );

        let hits = store.search("population of Japan", 2);
        assert_eq!(hits[0].doc.tag, 1, "got {:?}", hits[0].doc.title);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn title_boost_helps_entity_queries() {
        let mut store = DocStore::new();
        store.add("AS2497 IIJ", "an autonomous system", 1);
        store.add("AS7018 ATT", "an autonomous system", 2);
        let hits = store.search("tell me about AS2497", 1);
        assert_eq!(hits[0].doc.tag, 1);
    }

    #[test]
    fn empty_store() {
        let store = DocStore::new();
        assert!(store.search("anything", 3).is_empty());
        assert!(store.is_empty());
    }

    #[test]
    fn upsert_replaces_existing_tag_in_place() {
        let mut store = DocStore::new();
        store.add("AS2497 IIJ", "an autonomous system in Japan", 2497);
        store.add("JPIX", "an exchange point in Tokyo", 7);
        assert_eq!(store.len(), 2);

        store.upsert("AS2497 Renamed Networks", "now a cloud platform", 2497);
        assert_eq!(
            store.len(),
            2,
            "upsert of a live tag must not grow the store"
        );
        assert_eq!(store.get(2497).unwrap().title, "AS2497 Renamed Networks");
        let hits = store.search("Renamed Networks cloud platform", 1);
        assert_eq!(hits[0].doc.tag, 2497);
    }

    #[test]
    fn remove_hides_doc_and_slot_is_recycled() {
        let mut store = DocStore::new();
        store.add("AS2497 IIJ", "an autonomous system in Japan", 2497);
        store.add("JPIX", "an exchange point in Tokyo", 7);

        assert!(store.remove(2497));
        assert!(!store.remove(2497), "double-remove reports nothing removed");
        assert_eq!(store.len(), 1);
        assert!(!store.contains(2497));
        assert!(store
            .search("autonomous system in Japan", 5)
            .iter()
            .all(|h| h.doc.tag != 2497));

        // The tombstoned slot is reused, so the store does not grow.
        store.upsert("AS64500 Fresh", "a newly ingested network", 64500);
        assert_eq!(store.len(), 2);
        let hits = store.search("newly ingested network", 1);
        assert_eq!(hits[0].doc.tag, 64500);
    }

    #[test]
    fn clone_is_independent() {
        let mut store = DocStore::new();
        store.add("AS2497 IIJ", "an autonomous system in Japan", 2497);
        let mut copy = store.clone();
        copy.remove(2497);
        copy.upsert("AS64500 Fresh", "a newly ingested network", 64500);
        // The original is untouched — this is what lets ingest mutate an
        // off-lock copy while readers keep searching the published one.
        assert!(store.contains(2497));
        assert!(!store.contains(64500));
        assert!(copy.contains(64500));
    }
}
