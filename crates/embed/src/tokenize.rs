//! Text tokenization for the hashing embedder and the lexical metrics.

/// Lower-cases and splits text into word tokens. Alphanumeric runs are
/// kept together; everything else separates. `AS2497` stays one token.
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Word n-grams (joined with `_`) for `n >= 1`. Returns empty when the
/// text has fewer than `n` tokens.
pub fn word_ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join("_")).collect()
}

/// Character trigrams of a single token, with boundary markers, e.g.
/// `"iij"` → `^ii`, `iij`, `ij$`.
pub fn char_trigrams(token: &str) -> Vec<String> {
    let chars: Vec<char> = std::iter::once('^')
        .chain(token.chars())
        .chain(std::iter::once('$'))
        .collect();
    if chars.len() < 3 {
        return vec![chars.iter().collect()];
    }
    chars.windows(3).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_keep_alphanumerics_together() {
        assert_eq!(
            words("What is AS2497's name?"),
            vec!["what", "is", "as2497", "s", "name"]
        );
    }

    #[test]
    fn words_handle_unicode() {
        assert_eq!(words("Tokyo 日本"), vec!["tokyo", "日本"]);
    }

    #[test]
    fn bigrams() {
        let t = words("a b c");
        assert_eq!(word_ngrams(&t, 2), vec!["a_b", "b_c"]);
        assert!(word_ngrams(&t, 4).is_empty());
        assert_eq!(word_ngrams(&t, 1), vec!["a", "b", "c"]);
    }

    #[test]
    fn trigrams_have_boundaries() {
        let t = char_trigrams("iij");
        assert_eq!(t, vec!["^ii", "iij", "ij$"]);
        assert_eq!(char_trigrams("a"), vec!["^a$"]);
    }
}
