//! Property tests for the embedding substrate: normalization, cosine
//! bounds, determinism and index consistency.

use iyp_embed::{DocStore, Embedder, FlatIndex};
use proptest::prelude::*;

fn text() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z0-9]{1,10}", 0..20).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn embeddings_normalized_or_zero(t in text()) {
        let e = Embedder::default();
        let v = e.embed(&t);
        let norm: f32 = v.0.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(
            norm.abs() < 1e-4 || (norm - 1.0).abs() < 1e-4,
            "norm = {norm} for {t:?}"
        );
    }

    #[test]
    fn cosine_bounded_and_self_maximal(a in text(), b in text()) {
        let e = Embedder::default();
        let va = e.embed(&a);
        let vb = e.embed(&b);
        let c = va.cosine(&vb);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&(c as f64)), "cos = {c}");
        // Self-similarity is 1 for non-empty text, and at least the
        // similarity with anything else.
        if !a.trim().is_empty() {
            let selfcos = va.cosine(&va);
            prop_assert!((selfcos - 1.0).abs() < 1e-4);
            prop_assert!(selfcos >= c - 1e-4);
        }
    }

    #[test]
    fn embedding_is_deterministic(t in text()) {
        let e1 = Embedder::default();
        let e2 = Embedder::default();
        prop_assert_eq!(e1.embed(&t), e2.embed(&t));
    }

    #[test]
    fn flat_search_returns_sorted_topk(
        docs in proptest::collection::vec(text(), 1..30),
        q in text(),
        k in 1usize..10,
    ) {
        let e = Embedder::default();
        let mut idx = FlatIndex::new();
        for d in &docs {
            idx.add(e.embed(d));
        }
        let hits = idx.search(&e.embed(&q), k);
        prop_assert_eq!(hits.len(), k.min(docs.len()));
        // Scores are non-increasing.
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-6);
        }
        // Every doc id is valid and unique.
        let mut ids: Vec<usize> = hits.iter().map(|h| h.doc).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), hits.len());
        prop_assert!(ids.iter().all(|&i| i < docs.len()));
    }

    #[test]
    fn docstore_top1_contains_exact_duplicate(
        docs in proptest::collection::vec(text(), 1..20),
        pick in any::<prop::sample::Index>(),
    ) {
        // Searching with a stored document's own text must rank some
        // maximal-similarity document first — in particular the duplicate
        // itself scores 1.0 (title boost aside, identical tokens).
        let non_empty: Vec<&String> = docs.iter().filter(|d| !d.trim().is_empty()).collect();
        if non_empty.is_empty() {
            return Ok(());
        }
        let target = non_empty[pick.index(non_empty.len())];
        let mut store = DocStore::new();
        for (i, d) in docs.iter().enumerate() {
            store.add(format!("doc{i}"), d.clone(), i as u64);
        }
        let hits = store.search(target, docs.len());
        prop_assert!(!hits.is_empty());
        let best = hits[0].score;
        let dup_score = hits
            .iter()
            .find(|h| h.doc.text == *target)
            .map(|h| h.score)
            .expect("duplicate present");
        prop_assert!(dup_score >= best - 1e-4, "dup {dup_score} < best {best}");
    }
}
