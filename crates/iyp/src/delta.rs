//! Deterministic ingest batches for the synthetic IYP dataset.
//!
//! [`growth_batch`] builds a [`DeltaBatch`] that grows a generated graph
//! the way the real IYP grows between weekly dumps: new ASes appear,
//! register in a country, peer with existing networks, and a few
//! existing ASes change their announced name. The batch is a pure
//! function of `(graph schema state, seed, n_new_as)`, so replaying the
//! same batch against equal graphs yields equal graphs — the property
//! the snapshot stress tests and the `ingest_swap` bench rely on.

use crate::schema::{labels, rels};
use iyp_graphdb::{props, DeltaBatch, Graph, NodeId, Props, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Highest `asn` property among live `AS` nodes (0 when none exist).
/// New ASes are numbered above this so ingest never collides with a
/// generated ASN.
pub fn max_asn(graph: &Graph) -> i64 {
    graph
        .nodes_with_label(labels::AS)
        .filter_map(|id| graph.node(id))
        .filter_map(|n| match n.props.get("asn") {
            Some(Value::Int(a)) => Some(*a),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

/// Builds a deterministic growth batch against `graph`.
///
/// Each of the `n_new_as` new ASes gets:
/// * an `AS` node with a fresh ASN above [`max_asn`] and a `Name` node
///   linked via `NAME`;
/// * a `COUNTRY` relationship to an existing country;
/// * 1–3 `PEERS_WITH` relationships to existing ASes.
///
/// The batch also renames one existing AS per three new ones —
/// property churn, so ingest exercises in-place updates and not just
/// appends.
pub fn growth_batch(graph: &Graph, seed: u64, n_new_as: usize) -> DeltaBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = DeltaBatch::new();

    let existing_as: Vec<NodeId> = graph.nodes_with_label(labels::AS).collect();
    let countries: Vec<NodeId> = graph.nodes_with_label(labels::COUNTRY).collect();
    let base_asn = max_asn(graph);

    for i in 0..n_new_as {
        let asn = base_asn + 1 + i as i64;
        let name = format!("Ingest Networks {asn}");
        let node = batch.add_node([labels::AS], props!("asn" => asn, "name" => name.as_str()));
        let name_node = batch.add_node([labels::NAME], props!("name" => name.as_str()));
        batch.add_rel(node, rels::NAME, name_node, Props::new());

        if !countries.is_empty() {
            let c = countries[rng.random_range(0..countries.len())];
            batch.add_rel(node, rels::COUNTRY, c, Props::new());
        }
        if !existing_as.is_empty() {
            let peers = 1 + rng.random_range(0..3usize);
            for _ in 0..peers {
                let p = existing_as[rng.random_range(0..existing_as.len())];
                batch.add_rel(node, rels::PEERS_WITH, p, Props::new());
            }
        }
    }

    // Property churn: rename one existing AS per three new ones.
    if !existing_as.is_empty() {
        for k in 0..n_new_as.div_ceil(3) {
            let target = existing_as[rng.random_range(0..existing_as.len())];
            batch.set_node_prop(
                target,
                "name",
                Value::from(format!("Renamed Networks {}", base_asn + 1 + k as i64)),
            );
        }
    }

    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, IypConfig};

    fn small() -> IypConfig {
        IypConfig {
            n_as: 40,
            n_ixps: 4,
            n_facilities: 6,
            n_domains: 10,
            ..IypConfig::default()
        }
    }

    #[test]
    fn growth_batch_is_deterministic() {
        let g = generate(&small()).graph;
        let a = growth_batch(&g, 7, 5);
        let b = growth_batch(&g, 7, 5);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // A different seed wires different peers.
        let c = growth_batch(&g, 8, 5);
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
    }

    #[test]
    fn applying_grows_the_graph_without_asn_collisions() {
        let mut g = generate(&small()).graph;
        let before_max = max_asn(&g);
        let before_as = g.nodes_with_label(labels::AS).count();
        let batch = growth_batch(&g, 1, 6);
        batch.apply(&mut g).unwrap();
        assert_eq!(g.nodes_with_label(labels::AS).count(), before_as + 6);
        assert_eq!(max_asn(&g), before_max + 6);

        // ASNs stay unique.
        let mut asns: Vec<i64> = g
            .nodes_with_label(labels::AS)
            .filter_map(|id| g.node(id))
            .filter_map(|n| match n.props.get("asn") {
                Some(Value::Int(a)) => Some(*a),
                _ => None,
            })
            .collect();
        asns.sort_unstable();
        let len = asns.len();
        asns.dedup();
        assert_eq!(asns.len(), len, "duplicate ASN after ingest");
    }

    #[test]
    fn batches_chain_across_publishes() {
        let g = generate(&small()).graph;
        let store = iyp_graphdb::GraphStore::new(g);
        for round in 0..4 {
            let snap = store.load();
            let batch = growth_batch(&snap, round, 3);
            let report = store.ingest(&batch).unwrap();
            assert_eq!(report.new_version, round + 2);
        }
        assert_eq!(store.version(), 5);
    }
}
