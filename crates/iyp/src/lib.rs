//! # iyp-data
//!
//! The Internet Yellow Pages dataset substrate: the IYP schema
//! ([`schema`]), a static country table ([`countries`]), an AS-level
//! topology synthesizer ([`topology`]), the full dataset generator
//! ([`generator`]) and node-description rendering for the vector retriever
//! ([`describe`]).
//!
//! The public IYP dump is not available offline, so the generator produces
//! a schema-faithful synthetic Internet: a tiered AS graph with pinned
//! well-known networks (AS2497/IIJ, AS15169/Google, …), prefixes, IXPs,
//! organizations, facilities, domain names, APNIC-style population shares,
//! CAIDA-style AS ranks and a Tranco-style domain list. Everything is a
//! pure function of [`generator::IypConfig`] (seeded), so experiments are
//! reproducible bit-for-bit.
//!
//! ```
//! use iyp_data::generator::{generate, IypConfig};
//! use iyp_cypher::query;
//!
//! let dataset = generate(&IypConfig::tiny());
//! let r = query(&dataset.graph,
//!     "MATCH (a:AS {asn: 2497})-[:COUNTRY]->(c:Country) RETURN c.name").unwrap();
//! assert_eq!(r.rows[0][0].to_string(), "Japan");
//! ```

#![deny(missing_docs)]

pub mod countries;
pub mod delta;
pub mod describe;
pub mod export;
pub mod generator;
pub mod schema;
pub mod topology;

pub use delta::{growth_batch, max_asn};
pub use describe::{describe_all, describe_delta, describe_node, DocDelta, NodeDoc};
pub use generator::{generate, DatasetManifest, IypConfig, IypDataset};
