//! AS-level topology synthesis.
//!
//! The generator produces a three-tier AS hierarchy with
//! preferential-attachment provider selection, region-correlated peering,
//! and a set of pinned, real-world-flavored ASes (AS2497/IIJ among them, so
//! the paper's worked example is generated verbatim).

use crate::countries::{by_code, CountryInfo, COUNTRIES};
use rand::rngs::StdRng;
use rand::RngExt;

/// Commercial tier of an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Global transit-free backbone.
    Tier1,
    /// Large regional/national network.
    Tier2,
    /// Stub / edge network.
    Stub,
}

/// One synthesized AS.
#[derive(Debug, Clone)]
pub struct AsSpec {
    /// AS number.
    pub asn: u32,
    /// Network name.
    pub name: String,
    /// ISO country code.
    pub country: &'static str,
    /// Commercial tier.
    pub tier: Tier,
    /// Category tags.
    pub tags: Vec<&'static str>,
}

/// The synthesized AS-level topology.
#[derive(Debug, Clone)]
pub struct Topology {
    /// All ASes; index is used by the edge lists.
    pub ases: Vec<AsSpec>,
    /// `(customer, provider)` index pairs → DEPENDS_ON edges.
    pub providers: Vec<(usize, usize)>,
    /// `(a, b)` index pairs → PEERS_WITH edges.
    pub peers: Vec<(usize, usize)>,
}

/// Well-known ASes pinned into every dataset (name, asn, cc, tier, tags).
pub const PINNED_ASES: &[(&str, u32, &str, Tier, &[&str])] = &[
    ("AT&T", 7018, "US", Tier::Tier1, &["Transit", "Eyeball"]),
    ("Lumen", 3356, "US", Tier::Tier1, &["Transit"]),
    ("Cogent", 174, "US", Tier::Tier1, &["Transit"]),
    ("Arelion", 1299, "SE", Tier::Tier1, &["Transit"]),
    ("NTT", 2914, "JP", Tier::Tier1, &["Transit"]),
    (
        "Deutsche Telekom",
        3320,
        "DE",
        Tier::Tier1,
        &["Transit", "Eyeball"],
    ),
    ("Tata Communications", 6453, "IN", Tier::Tier1, &["Transit"]),
    ("GTT", 3257, "US", Tier::Tier1, &["Transit"]),
    ("IIJ", 2497, "JP", Tier::Tier2, &["Transit", "Eyeball"]),
    ("Hurricane Electric", 6939, "US", Tier::Tier2, &["Transit"]),
    ("Google", 15169, "US", Tier::Tier2, &["Content", "Cloud"]),
    ("Amazon", 16509, "US", Tier::Tier2, &["Cloud", "Hosting"]),
    ("Microsoft", 8075, "US", Tier::Tier2, &["Cloud"]),
    ("Cloudflare", 13335, "US", Tier::Tier2, &["CDN", "Content"]),
    ("Meta", 32934, "US", Tier::Tier2, &["Content"]),
    ("Akamai", 20940, "US", Tier::Tier2, &["CDN"]),
    ("Comcast", 7922, "US", Tier::Tier2, &["Eyeball"]),
    ("Chinanet", 4134, "CN", Tier::Tier2, &["Eyeball"]),
    (
        "China Mobile",
        9808,
        "CN",
        Tier::Tier2,
        &["Mobile", "Eyeball"],
    ),
    ("Korea Telecom", 4766, "KR", Tier::Tier2, &["Eyeball"]),
    ("HiNet", 3462, "TW", Tier::Tier2, &["Eyeball"]),
    ("Telstra", 1221, "AU", Tier::Tier2, &["Eyeball"]),
    ("Claro", 28573, "BR", Tier::Tier2, &["Eyeball", "Mobile"]),
    ("Free", 12322, "FR", Tier::Tier2, &["Eyeball"]),
    ("Vodafone", 3209, "DE", Tier::Tier2, &["Eyeball", "Mobile"]),
    ("Turk Telekom", 9121, "TR", Tier::Tier2, &["Eyeball"]),
    (
        "Reliance Jio",
        55836,
        "IN",
        Tier::Tier2,
        &["Mobile", "Eyeball"],
    ),
    ("OTE", 6799, "GR", Tier::Tier2, &["Eyeball"]),
];

const NAME_STEMS: &[&str] = &[
    "Net", "Tele", "Giga", "Fiber", "Swift", "Metro", "Nova", "Apex", "Core", "Edge", "Hyper",
    "Quantum", "Stellar", "Pacific", "Atlantic", "Summit", "Vertex", "Pulse", "Orbit", "Zenith",
];
const NAME_TAILS: &[&str] = &[
    "Link", "Com", "Wave", "Path", "Span", "Line", "Bridge", "Port", "Gate", "Stream",
];
const NAME_SUFFIXES: &[&str] = &[
    "Telecom",
    "Networks",
    "Online",
    "Broadband",
    "Hosting",
    "ISP",
    "Datacenter",
    "Connect",
    "Internet",
    "Communications",
];

/// Synthesizes a topology with `n_as` ASes (at least the pinned set).
pub fn generate(rng: &mut StdRng, n_as: usize) -> Topology {
    let n_as = n_as.max(PINNED_ASES.len() + 10);
    let mut ases: Vec<AsSpec> = PINNED_ASES
        .iter()
        .map(|(name, asn, cc, tier, tags)| AsSpec {
            asn: *asn,
            name: (*name).to_string(),
            country: by_code(cc).expect("pinned country exists").code,
            tier: *tier,
            tags: tags.to_vec(),
        })
        .collect();

    // Country weights ∝ population^0.7 so big countries host more ASes.
    let weights: Vec<f64> = COUNTRIES
        .iter()
        .map(|c| (c.population as f64).powf(0.7))
        .collect();
    let total_w: f64 = weights.iter().sum();

    let mut next_asn: u32 = 200_000; // private-ish range, no pinned collisions
    let mut used_names = std::collections::HashSet::new();
    for a in &ases {
        used_names.insert(a.name.clone());
    }

    while ases.len() < n_as {
        let country = pick_weighted(rng, &weights, total_w);
        let country = &COUNTRIES[country];
        let tier = {
            let x: f64 = rng.random();
            if x < 0.10 {
                Tier::Tier2
            } else {
                Tier::Stub
            }
        };
        let name = loop {
            let n = format!(
                "{}{} {}",
                NAME_STEMS[rng.random_range(0..NAME_STEMS.len())],
                NAME_TAILS[rng.random_range(0..NAME_TAILS.len())],
                NAME_SUFFIXES[rng.random_range(0..NAME_SUFFIXES.len())],
            );
            if used_names.insert(n.clone()) {
                break n;
            }
        };
        let mut tags: Vec<&'static str> = Vec::new();
        match tier {
            Tier::Tier2 => {
                tags.push("Transit");
                if rng.random::<f64>() < 0.5 {
                    tags.push("Eyeball");
                }
            }
            Tier::Stub => {
                let roll: f64 = rng.random();
                if roll < 0.40 {
                    tags.push("Eyeball");
                } else if roll < 0.55 {
                    tags.push("Hosting");
                } else if roll < 0.65 {
                    tags.push("Enterprise");
                } else if roll < 0.72 {
                    tags.push("Education");
                } else if roll < 0.78 {
                    tags.push("Content");
                } else if roll < 0.83 {
                    tags.push("Government");
                }
                if rng.random::<f64>() < 0.08 {
                    tags.push("Mobile");
                }
            }
            Tier::Tier1 => tags.push("Transit"),
        }
        ases.push(AsSpec {
            asn: next_asn,
            name,
            country: country.code,
            tier,
            tags,
        });
        next_asn += rng.random_range(1..40);
    }

    let tier1: Vec<usize> = indices_of(&ases, Tier::Tier1);
    let tier2: Vec<usize> = indices_of(&ases, Tier::Tier2);
    let stubs: Vec<usize> = indices_of(&ases, Tier::Stub);

    let mut providers: Vec<(usize, usize)> = Vec::new();
    let mut peers: Vec<(usize, usize)> = Vec::new();
    // Customer counts for preferential attachment.
    let mut customer_count = vec![0usize; ases.len()];

    // Tier-1 clique: settlement-free peering.
    for (i, &a) in tier1.iter().enumerate() {
        for &b in tier1.iter().skip(i + 1) {
            peers.push((a, b));
        }
    }

    // Tier-2s buy transit from 2-3 tier-1s.
    for &t2 in &tier2 {
        let n_up = rng.random_range(2..=3).min(tier1.len());
        for &p in pick_pref(rng, &tier1, &customer_count, n_up, |_| 1.0).iter() {
            providers.push((t2, p));
            customer_count[p] += 1;
        }
    }

    // Tier-2 peering: same-region with probability.
    for (i, &a) in tier2.iter().enumerate() {
        for &b in tier2.iter().skip(i + 1) {
            let ra = region_of(&ases[a]);
            let rb = region_of(&ases[b]);
            let p = if ra == rb { 0.25 } else { 0.06 };
            if rng.random::<f64>() < p {
                peers.push((a, b));
            }
        }
    }

    // Stubs buy transit from 1-3 providers, preferring same-country /
    // same-region tier-2s; fall back to tier-1.
    for &s in &stubs {
        let n_up =
            1 + (rng.random::<f64>() < 0.45) as usize + (rng.random::<f64>() < 0.15) as usize;
        let my_cc = ases[s].country;
        let my_region = region_of(&ases[s]);
        let chosen = pick_pref(rng, &tier2, &customer_count, n_up, |&cand| {
            let c = &ases[cand];
            if c.country == my_cc {
                6.0
            } else if region_of(c) == my_region {
                2.0
            } else {
                0.5
            }
        });
        if chosen.is_empty() {
            // No tier-2s at all (tiny configs): use tier-1.
            if let Some(&p) = tier1.first() {
                providers.push((s, p));
                customer_count[p] += 1;
            }
        } else {
            for &p in &chosen {
                providers.push((s, p));
                customer_count[p] += 1;
            }
        }
    }

    Topology {
        ases,
        providers,
        peers,
    }
}

fn indices_of(ases: &[AsSpec], tier: Tier) -> Vec<usize> {
    ases.iter()
        .enumerate()
        .filter(|(_, a)| a.tier == tier)
        .map(|(i, _)| i)
        .collect()
}

fn region_of(a: &AsSpec) -> crate::countries::Region {
    by_code(a.country).expect("valid country").region
}

fn pick_weighted(rng: &mut StdRng, weights: &[f64], total: f64) -> usize {
    let mut x = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Picks up to `n` distinct candidates with probability proportional to
/// `(1 + customers) * bias(candidate)` — preferential attachment with a
/// locality bias.
fn pick_pref(
    rng: &mut StdRng,
    candidates: &[usize],
    customer_count: &[usize],
    n: usize,
    bias: impl Fn(&usize) -> f64,
) -> Vec<usize> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut picked: Vec<usize> = Vec::new();
    let mut weights: Vec<f64> = candidates
        .iter()
        .map(|c| (1.0 + customer_count[*c] as f64) * bias(c))
        .collect();
    for _ in 0..n.min(candidates.len()) {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            break;
        }
        let idx = pick_weighted(rng, &weights, total);
        picked.push(candidates[idx]);
        weights[idx] = 0.0;
    }
    picked
}

/// Accessor used elsewhere: the country record of an AS.
pub fn country_of(a: &AsSpec) -> &'static CountryInfo {
    by_code(a.country).expect("valid country")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn topo(seed: u64, n: usize) -> Topology {
        generate(&mut StdRng::seed_from_u64(seed), n)
    }

    #[test]
    fn pinned_ases_present() {
        let t = topo(1, 200);
        let iij = t.ases.iter().find(|a| a.asn == 2497).unwrap();
        assert_eq!(iij.name, "IIJ");
        assert_eq!(iij.country, "JP");
        assert!(t.ases.iter().any(|a| a.asn == 15169));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = topo(7, 300);
        let b = topo(7, 300);
        assert_eq!(a.ases.len(), b.ases.len());
        assert_eq!(a.providers, b.providers);
        assert_eq!(a.peers, b.peers);
        assert!(a.ases.iter().zip(&b.ases).all(|(x, y)| x.asn == y.asn));
    }

    #[test]
    fn different_seeds_differ() {
        let a = topo(1, 300);
        let b = topo(2, 300);
        assert_ne!(a.providers, b.providers);
    }

    #[test]
    fn every_non_tier1_has_a_provider() {
        let t = topo(3, 400);
        for (i, a) in t.ases.iter().enumerate() {
            if a.tier != Tier::Tier1 {
                assert!(
                    t.providers.iter().any(|(c, _)| *c == i),
                    "AS{} ({:?}) has no provider",
                    a.asn,
                    a.tier
                );
            }
        }
    }

    #[test]
    fn providers_point_up_the_hierarchy() {
        let t = topo(4, 400);
        for &(c, p) in &t.providers {
            let tc = t.ases[c].tier;
            let tp = t.ases[p].tier;
            let rank = |t: Tier| match t {
                Tier::Tier1 => 0,
                Tier::Tier2 => 1,
                Tier::Stub => 2,
            };
            assert!(rank(tp) < rank(tc), "provider not above customer");
        }
    }

    #[test]
    fn tier1s_form_a_clique() {
        let t = topo(5, 300);
        let t1: Vec<usize> = t
            .ases
            .iter()
            .enumerate()
            .filter(|(_, a)| a.tier == Tier::Tier1)
            .map(|(i, _)| i)
            .collect();
        let expected = t1.len() * (t1.len() - 1) / 2;
        let actual = t
            .peers
            .iter()
            .filter(|(a, b)| t1.contains(a) && t1.contains(b))
            .count();
        assert_eq!(actual, expected);
    }

    #[test]
    fn asn_uniqueness() {
        let t = topo(6, 500);
        let mut asns: Vec<u32> = t.ases.iter().map(|a| a.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), t.ases.len());
    }

    #[test]
    fn scales_to_requested_size() {
        assert_eq!(topo(8, 1000).ases.len(), 1000);
        // Tiny request is clamped to the pinned set + margin.
        assert!(topo(8, 5).ases.len() >= PINNED_ASES.len());
    }
}
