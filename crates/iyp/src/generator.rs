//! Full dataset assembly: builds the IYP property graph from a synthesized
//! topology, adding prefixes, IXPs, organizations, facilities, domains,
//! rankings, tags and population estimates.

use crate::countries::COUNTRIES;
use crate::schema::{labels, rankings, rels, TAGS};
use crate::topology::{self, AsSpec, Tier, Topology};
use iyp_graphdb::{props, Graph, NodeId, Props};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// Generation parameters. All sizes are approximate targets.
#[derive(Debug, Clone)]
pub struct IypConfig {
    /// RNG seed; the whole dataset is a pure function of the config.
    pub seed: u64,
    /// Number of ASes.
    pub n_as: usize,
    /// Number of IXPs.
    pub n_ixps: usize,
    /// Number of colocation facilities.
    pub n_facilities: usize,
    /// Number of domain names (Tranco-style list length).
    pub n_domains: usize,
}

impl Default for IypConfig {
    fn default() -> Self {
        IypConfig {
            seed: 42,
            n_as: 800,
            n_ixps: 40,
            n_facilities: 60,
            n_domains: 400,
        }
    }
}

impl IypConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        IypConfig {
            seed: 42,
            n_as: 80,
            n_ixps: 8,
            n_facilities: 10,
            n_domains: 40,
        }
    }
}

/// Counts of what the generator produced, recorded for reports.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DatasetManifest {
    /// Seed used.
    pub seed: u64,
    /// Nodes by label.
    pub nodes: BTreeMap<String, usize>,
    /// Relationships by type.
    pub rels: BTreeMap<String, usize>,
}

/// The generated dataset: the graph plus lookup tables used by question
/// generation and the retrievers.
pub struct IypDataset {
    /// The property graph.
    pub graph: Graph,
    /// Manifest of generated entity counts.
    pub manifest: DatasetManifest,
    /// ASN → node id.
    pub as_by_asn: HashMap<u32, NodeId>,
    /// Country code → node id.
    pub country_by_code: HashMap<String, NodeId>,
    /// IXP name → node id.
    pub ixp_by_name: HashMap<String, NodeId>,
    /// The synthesized AS specs (index-aligned with topology order).
    pub ases: Vec<AsSpec>,
}

const CITIES: &[(&str, &str)] = &[
    ("Tokyo", "JP"),
    ("Osaka", "JP"),
    ("New York", "US"),
    ("Ashburn", "US"),
    ("San Jose", "US"),
    ("Chicago", "US"),
    ("Frankfurt", "DE"),
    ("Berlin", "DE"),
    ("London", "GB"),
    ("Manchester", "GB"),
    ("Paris", "FR"),
    ("Marseille", "FR"),
    ("Amsterdam", "NL"),
    ("Athens", "GR"),
    ("Milan", "IT"),
    ("Madrid", "ES"),
    ("Stockholm", "SE"),
    ("Warsaw", "PL"),
    ("Vienna", "AT"),
    ("Zurich", "CH"),
    ("Moscow", "RU"),
    ("Istanbul", "TR"),
    ("Beijing", "CN"),
    ("Shanghai", "CN"),
    ("Mumbai", "IN"),
    ("Delhi", "IN"),
    ("Seoul", "KR"),
    ("Taipei", "TW"),
    ("Hong Kong", "HK"),
    ("Singapore", "SG"),
    ("Jakarta", "ID"),
    ("Bangkok", "TH"),
    ("Sydney", "AU"),
    ("Auckland", "NZ"),
    ("Toronto", "CA"),
    ("Mexico City", "MX"),
    ("Sao Paulo", "BR"),
    ("Buenos Aires", "AR"),
    ("Johannesburg", "ZA"),
    ("Lagos", "NG"),
    ("Nairobi", "KE"),
    ("Cairo", "EG"),
];

const DOMAIN_STEMS: &[&str] = &[
    "search", "video", "news", "shop", "mail", "cloud", "play", "chat", "map", "bank", "travel",
    "music", "photo", "weather", "sport", "learn", "stream", "social", "forum", "wiki",
];
const TLDS: &[&str] = &[
    "com", "net", "org", "io", "jp", "de", "gr", "co.uk", "fr", "us",
];

/// Generates the dataset for a configuration.
pub fn generate(config: &IypConfig) -> IypDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let topo = topology::generate(&mut rng, config.n_as);
    build(config, &mut rng, topo)
}

fn build(config: &IypConfig, rng: &mut StdRng, topo: Topology) -> IypDataset {
    let mut g = Graph::new();

    // ---- Rankings ----
    let mut ranking_nodes: HashMap<&str, NodeId> = HashMap::new();
    for name in rankings::ALL {
        let id = g.add_node([labels::RANKING], props!("name" => *name));
        ranking_nodes.insert(*name, id);
    }

    // ---- Countries ----
    let mut country_by_code: HashMap<String, NodeId> = HashMap::new();
    for c in COUNTRIES {
        let id = g.add_node(
            [labels::COUNTRY],
            props!(
                "country_code" => c.code,
                "name" => c.name,
                "population" => c.population as i64
            ),
        );
        country_by_code.insert(c.code.to_string(), id);
    }

    // ---- Tags ----
    let mut tag_nodes: HashMap<&str, NodeId> = HashMap::new();
    for t in TAGS {
        let id = g.add_node([labels::TAG], props!("label" => *t));
        tag_nodes.insert(*t, id);
    }

    // ---- ASes, names, orgs, countries, tags ----
    let mut as_nodes: Vec<NodeId> = Vec::with_capacity(topo.ases.len());
    let mut as_by_asn: HashMap<u32, NodeId> = HashMap::new();
    for spec in &topo.ases {
        let id = g.add_node(
            [labels::AS],
            props!("asn" => spec.asn as i64, "name" => spec.name.as_str()),
        );
        as_nodes.push(id);
        as_by_asn.insert(spec.asn, id);

        let name_node = g.add_node([labels::NAME], props!("name" => spec.name.as_str()));
        g.add_rel(id, rels::NAME, name_node, Props::new()).unwrap();

        let cid = country_by_code[spec.country];
        g.add_rel(id, rels::COUNTRY, cid, Props::new()).unwrap();

        // Organization: ~70% have a dedicated org, others share a holding.
        let org_name = if rng.random::<f64>() < 0.7 {
            format!(
                "{} {}",
                spec.name,
                ["Inc", "Ltd", "LLC", "KK", "GmbH"][rng.random_range(0..5)]
            )
        } else {
            format!(
                "{} Holdings",
                spec.name.split(' ').next().unwrap_or(&spec.name)
            )
        };
        let org = g.add_node([labels::ORGANIZATION], props!("name" => org_name));
        g.add_rel(id, rels::MANAGED_BY, org, Props::new()).unwrap();
        g.add_rel(org, rels::COUNTRY, cid, Props::new()).unwrap();

        for tag in &spec.tags {
            if let Some(&tid) = tag_nodes.get(tag) {
                g.add_rel(id, rels::CATEGORIZED, tid, Props::new()).unwrap();
            }
        }
    }

    // ---- DEPENDS_ON / PEERS_WITH ----
    for &(c, p) in &topo.providers {
        g.add_rel(as_nodes[c], rels::DEPENDS_ON, as_nodes[p], Props::new())
            .unwrap();
    }
    for &(a, b) in &topo.peers {
        g.add_rel(as_nodes[a], rels::PEERS_WITH, as_nodes[b], Props::new())
            .unwrap();
    }

    // ---- Prefixes ----
    let mut all_prefixes: Vec<NodeId> = Vec::new();
    let mut content_prefixes: Vec<NodeId> = Vec::new();
    for (i, spec) in topo.ases.iter().enumerate() {
        let count = match spec.tier {
            Tier::Tier1 => rng.random_range(25..60),
            Tier::Tier2 => rng.random_range(8..25),
            Tier::Stub => rng.random_range(1..8),
        };
        for _ in 0..count {
            let v6 = rng.random::<f64>() < 0.25;
            let (prefix, af) = if v6 {
                (
                    format!(
                        "2001:{:x}:{:x}::/{}",
                        rng.random_range(0x100..0xffff_u32),
                        rng.random_range(0..0xffff_u32),
                        [32, 40, 48][rng.random_range(0..3)]
                    ),
                    6i64,
                )
            } else {
                (
                    format!(
                        "{}.{}.{}.0/{}",
                        rng.random_range(1..224),
                        rng.random_range(0..256),
                        rng.random_range(0..256),
                        [16, 20, 22, 24][rng.random_range(0..4)]
                    ),
                    4i64,
                )
            };
            let pid = g.add_node([labels::PREFIX], props!("prefix" => prefix, "af" => af));
            g.add_rel(as_nodes[i], rels::ORIGINATE, pid, Props::new())
                .unwrap();
            g.add_rel(
                pid,
                rels::COUNTRY,
                country_by_code[spec.country],
                Props::new(),
            )
            .unwrap();
            if rng.random::<f64>() < 0.15 {
                let tag = TAGS[rng.random_range(0..TAGS.len())];
                g.add_rel(pid, rels::CATEGORIZED, tag_nodes[tag], Props::new())
                    .unwrap();
            }
            all_prefixes.push(pid);
            if spec
                .tags
                .iter()
                .any(|t| *t == "Content" || *t == "Cloud" || *t == "CDN")
            {
                content_prefixes.push(pid);
            }
        }
    }

    // ---- POPULATION (APNIC-style eyeball share per country) ----
    let mut by_country: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, spec) in topo.ases.iter().enumerate() {
        if spec.tags.contains(&"Eyeball") {
            by_country.entry(spec.country).or_default().push(i);
        }
    }
    for c in COUNTRIES {
        let eyeballs = match by_country.get(c.code) {
            Some(v) if !v.is_empty() => v.clone(),
            _ => {
                // Guarantee at least one serving AS per country: pick the
                // first stub registered there, else skip.
                match topo
                    .ases
                    .iter()
                    .enumerate()
                    .find(|(_, a)| a.country == c.code)
                {
                    Some((i, _)) => vec![i],
                    None => continue,
                }
            }
        };
        // Exponential weights normalized to ~92-99% total coverage.
        let coverage = 0.92 + rng.random::<f64>() * 0.07;
        let weights: Vec<f64> = eyeballs
            .iter()
            .map(|_| -(rng.random::<f64>().max(1e-9)).ln())
            .collect();
        let total: f64 = weights.iter().sum();
        for (k, &ai) in eyeballs.iter().enumerate() {
            let percent = (weights[k] / total * coverage * 1000.0).round() / 10.0;
            if percent < 0.1 {
                continue;
            }
            g.add_rel(
                as_nodes[ai],
                rels::POPULATION,
                country_by_code[c.code],
                props!("percent" => percent),
            )
            .unwrap();
        }
    }

    // ---- AS hegemony (IHR-style centrality): PageRank over DEPENDS_ON ----
    // Customers point at providers, so transit mass accumulates upstream,
    // matching the intuition of IHR's AS Hegemony scores.
    let hege = iyp_graphdb::algo::pagerank(&g, labels::AS, Some(&[rels::DEPENDS_ON]), 0.85, 40);
    let max_hege = hege.values().cloned().fold(f64::MIN, f64::max).max(1e-12);
    for (&node, &score) in &hege {
        let normalized = (score / max_hege * 1000.0).round() / 1000.0;
        g.set_node_prop(node, "hegemony", normalized).unwrap();
    }

    // ---- CAIDA ASRank: order by (tier, provider customer-cone proxy) ----
    let mut degree = vec![0usize; topo.ases.len()];
    for &(c, p) in &topo.providers {
        degree[p] += 3;
        degree[c] += 1;
    }
    for &(a, b) in &topo.peers {
        degree[a] += 1;
        degree[b] += 1;
    }
    let mut order: Vec<usize> = (0..topo.ases.len()).collect();
    order.sort_by_key(|&i| {
        let tier_rank = match topo.ases[i].tier {
            Tier::Tier1 => 0,
            Tier::Tier2 => 1,
            Tier::Stub => 2,
        };
        (tier_rank, std::cmp::Reverse(degree[i]), topo.ases[i].asn)
    });
    let asrank = ranking_nodes[rankings::CAIDA_ASRANK];
    for (rank, &i) in order.iter().enumerate() {
        g.add_rel(
            as_nodes[i],
            rels::RANK,
            asrank,
            props!("rank" => (rank + 1) as i64),
        )
        .unwrap();
    }

    // ---- IXPs ----
    let mut ixp_by_name: HashMap<String, NodeId> = HashMap::new();
    let mut ixp_nodes: Vec<(NodeId, &str)> = Vec::new();
    for k in 0..config.n_ixps {
        let (city, cc) = CITIES[k % CITIES.len()];
        let name = if k < CITIES.len() {
            format!("{city}-IX")
        } else {
            format!("{city}-IX{}", k / CITIES.len() + 1)
        };
        let id = g.add_node([labels::IXP], props!("name" => name.as_str()));
        g.add_rel(id, rels::COUNTRY, country_by_code[cc], Props::new())
            .unwrap();
        let org = g.add_node(
            [labels::ORGANIZATION],
            props!("name" => format!("{name} Operations")),
        );
        g.add_rel(id, rels::MANAGED_BY, org, Props::new()).unwrap();
        ixp_by_name.insert(name, id);
        ixp_nodes.push((id, cc));
    }
    for (i, spec) in topo.ases.iter().enumerate() {
        for &(ixp, cc) in &ixp_nodes {
            let p = match (spec.tier, spec.country == cc) {
                (Tier::Tier1, _) => 0.5,
                (Tier::Tier2, true) => 0.8,
                (Tier::Tier2, false) => 0.12,
                (Tier::Stub, true) => 0.3,
                (Tier::Stub, false) => 0.01,
            };
            if rng.random::<f64>() < p {
                g.add_rel(as_nodes[i], rels::MEMBER_OF, ixp, Props::new())
                    .unwrap();
            }
        }
    }

    // ---- Facilities ----
    for k in 0..config.n_facilities {
        let (city, cc) = CITIES[(k * 7 + 3) % CITIES.len()];
        let name = format!("{city} DC{}", k % 9 + 1);
        let id = g.add_node([labels::FACILITY], props!("name" => name, "city" => city));
        g.add_rel(id, rels::COUNTRY, country_by_code[cc], Props::new())
            .unwrap();
        // Local ASes colocate here.
        for (i, spec) in topo.ases.iter().enumerate() {
            let p = match (spec.tier, spec.country == cc) {
                (Tier::Tier1, _) => 0.25,
                (Tier::Tier2, true) => 0.5,
                (Tier::Tier2, false) => 0.04,
                (Tier::Stub, true) => 0.12,
                _ => 0.0,
            };
            if p > 0.0 && rng.random::<f64>() < p {
                g.add_rel(as_nodes[i], rels::LOCATED_IN, id, Props::new())
                    .unwrap();
            }
        }
    }

    // ---- Domains & Tranco ----
    let tranco = ranking_nodes[rankings::TRANCO];
    let mut used_domains = std::collections::HashSet::new();
    for rank in 1..=config.n_domains {
        let name = loop {
            let n = format!(
                "{}{}.{}",
                DOMAIN_STEMS[rng.random_range(0..DOMAIN_STEMS.len())],
                rng.random_range(1..500),
                TLDS[rng.random_range(0..TLDS.len())]
            );
            if used_domains.insert(n.clone()) {
                break n;
            }
        };
        let id = g.add_node([labels::DOMAIN_NAME], props!("name" => name));
        g.add_rel(id, rels::RANK, tranco, props!("rank" => rank as i64))
            .unwrap();
        // Top sites resolve into content/cloud space, the tail anywhere.
        let pool = if rank <= config.n_domains / 4 && !content_prefixes.is_empty() {
            &content_prefixes
        } else {
            &all_prefixes
        };
        if !pool.is_empty() {
            for _ in 0..rng.random_range(1..=2) {
                let pid = pool[rng.random_range(0..pool.len())];
                g.add_rel(id, rels::RESOLVES_TO, pid, Props::new()).unwrap();
            }
        }
    }

    // ---- Indexes ----
    g.create_index(labels::AS, "asn");
    g.create_index(labels::AS, "name");
    g.create_index(labels::COUNTRY, "country_code");
    g.create_index(labels::COUNTRY, "name");
    g.create_index(labels::PREFIX, "prefix");
    g.create_index(labels::IXP, "name");
    g.create_index(labels::DOMAIN_NAME, "name");
    g.create_index(labels::RANKING, "name");
    g.create_index(labels::TAG, "label");
    g.create_index(labels::ORGANIZATION, "name");

    // ---- Manifest ----
    let mut manifest = DatasetManifest {
        seed: config.seed,
        ..Default::default()
    };
    for label in g.all_labels() {
        let n = g.label_count(label);
        if n > 0 {
            manifest.nodes.insert(label.to_string(), n);
        }
    }
    let stats = iyp_graphdb::GraphStats::compute(&g);
    manifest.rels = stats.rels_by_type;

    IypDataset {
        graph: g,
        manifest,
        as_by_asn,
        country_by_code,
        ixp_by_name,
        ases: topo.ases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_cypher::query;
    use iyp_graphdb::Value;

    fn dataset() -> IypDataset {
        generate(&IypConfig::tiny())
    }

    #[test]
    fn manifest_counts_match_graph() {
        let d = dataset();
        assert_eq!(d.manifest.nodes["AS"], d.graph.label_count("AS"));
        assert!(d.manifest.nodes["AS"] >= 80 - 10);
        assert!(d.manifest.rels.contains_key("ORIGINATE"));
        assert!(d.manifest.rels.contains_key("POPULATION"));
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&IypConfig::tiny());
        let b = generate(&IypConfig::tiny());
        assert_eq!(a.manifest.nodes, b.manifest.nodes);
        assert_eq!(a.manifest.rels, b.manifest.rels);
    }

    #[test]
    fn seed_changes_dataset() {
        let a = generate(&IypConfig::tiny());
        let b = generate(&IypConfig {
            seed: 43,
            ..IypConfig::tiny()
        });
        assert_ne!(a.manifest.rels, b.manifest.rels);
    }

    #[test]
    fn paper_example_query_answers() {
        let d = dataset();
        let r = query(
            &d.graph,
            "MATCH (a:AS {asn: 2497})-[p:POPULATION]->(c:Country {country_code: 'JP'}) \
             RETURN p.percent",
        )
        .unwrap();
        let v = r.single_value().expect("one percent value");
        let pct = v.as_f64().unwrap();
        assert!(pct > 0.0 && pct <= 100.0, "implausible percent {pct}");
    }

    #[test]
    fn every_as_has_country_and_rank() {
        let d = dataset();
        let n_as = d.graph.label_count("AS") as i64;
        let r = query(
            &d.graph,
            "MATCH (a:AS)-[:COUNTRY]->(:Country) RETURN count(a)",
        )
        .unwrap();
        assert_eq!(r.single_value(), Some(&Value::Int(n_as)));
        let r = query(
            &d.graph,
            "MATCH (a:AS)-[:RANK]->(:Ranking {name: 'CAIDA ASRank'}) RETURN count(a)",
        )
        .unwrap();
        assert_eq!(r.single_value(), Some(&Value::Int(n_as)));
    }

    #[test]
    fn population_shares_are_sane() {
        let d = dataset();
        let r = query(
            &d.graph,
            "MATCH (:AS)-[p:POPULATION]->(c:Country) \
             WITH c.country_code AS cc, sum(p.percent) AS total \
             RETURN max(total)",
        )
        .unwrap();
        let max_total = r.single_value().unwrap().as_f64().unwrap();
        assert!(max_total <= 101.0, "country over 100%: {max_total}");
    }

    #[test]
    fn prefixes_have_origins_and_countries() {
        let d = dataset();
        let total = d.graph.label_count("Prefix") as i64;
        let r = query(
            &d.graph,
            "MATCH (:AS)-[:ORIGINATE]->(p:Prefix) RETURN count(DISTINCT p._nope), count(*)",
        );
        // `_nope` is a missing property: exercise count-null semantics too.
        let r = r.unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert!(r.rows[0][1].as_int().unwrap() >= total);
    }

    #[test]
    fn tranco_ranks_are_dense_and_unique() {
        let d = dataset();
        let r = query(
            &d.graph,
            "MATCH (:DomainName)-[r:RANK]->(:Ranking {name: 'Tranco'}) \
             RETURN count(r), count(DISTINCT r.rank), min(r.rank), max(r.rank)",
        )
        .unwrap();
        let row = &r.rows[0];
        assert_eq!(row[0], row[1], "duplicate Tranco ranks");
        assert_eq!(row[2], Value::Int(1));
        assert_eq!(row[3], Value::Int(IypConfig::tiny().n_domains as i64));
    }

    #[test]
    fn asrank_rank_one_is_a_tier1() {
        let d = dataset();
        let r = query(
            &d.graph,
            "MATCH (a:AS)-[r:RANK {rank: 1}]->(:Ranking {name: 'CAIDA ASRank'}) RETURN a.asn",
        )
        .unwrap();
        let asn = r.single_value().unwrap().as_int().unwrap() as u32;
        let spec = d.ases.iter().find(|s| s.asn == asn).unwrap();
        assert_eq!(spec.tier, Tier::Tier1);
    }

    #[test]
    fn lookup_tables_align_with_graph() {
        let d = dataset();
        let iij = d.as_by_asn[&2497];
        assert_eq!(
            d.graph.node(iij).unwrap().props.get("name"),
            Some(&Value::from("IIJ"))
        );
        let jp = d.country_by_code["JP"];
        assert!(d.graph.node_has_label(jp, "Country"));
    }
}
