//! Export a graph as Cypher `CREATE` statements and re-import it through
//! the query engine — the interchange format used to move IYP subsets
//! between tools (Neo4j dumps ship the same way).

use iyp_cypher::update;
use iyp_graphdb::{Graph, NodeId, Value};
use std::collections::HashMap;
use std::fmt::Write;

/// Renders the whole graph as a Cypher script: one `CREATE` per node,
/// then one `MATCH … CREATE` per relationship, keyed by a synthetic
/// `_export_id` property (removed again on import).
pub fn to_cypher_script(graph: &Graph) -> String {
    let mut script = String::new();
    let mut export_ids: HashMap<NodeId, usize> = HashMap::new();
    for (i, id) in graph.all_nodes().enumerate() {
        export_ids.insert(id, i);
        let rec = graph.node(id).expect("live node");
        let labels: Vec<String> = graph
            .node_labels(id)
            .iter()
            .map(|l| format!(":{l}"))
            .collect();
        let mut props = vec![format!("_export_id: {i}")];
        for (k, v) in rec.props.iter() {
            props.push(format!("{k}: {}", value_literal(v)));
        }
        writeln!(
            script,
            "CREATE (n{}{} {{{}}})",
            i,
            labels.join(""),
            props.join(", ")
        )
        .expect("write to string");
    }
    for rid in graph.all_rels() {
        let r = graph.rel(rid).expect("live rel");
        let ty = graph.rel_type_name(r.ty);
        let props: Vec<String> = r
            .props
            .iter()
            .map(|(k, v)| format!("{k}: {}", value_literal(v)))
            .collect();
        let props = if props.is_empty() {
            String::new()
        } else {
            format!(" {{{}}}", props.join(", "))
        };
        writeln!(
            script,
            "MATCH (a {{_export_id: {}}}), (b {{_export_id: {}}}) CREATE (a)-[:{ty}{props}]->(b)",
            export_ids[&r.src], export_ids[&r.dst]
        )
        .expect("write to string");
    }
    script
}

/// Rebuilds a graph from a Cypher script produced by
/// [`to_cypher_script`]. Indexes are not part of the script; recreate
/// them afterwards as needed.
pub fn from_cypher_script(script: &str) -> Result<Graph, iyp_cypher::CypherError> {
    let mut graph = Graph::new();
    // One statement per line; an index on the export key makes the
    // relationship-stitching MATCHes O(1) instead of full scans.
    let mut indexed = false;
    for line in script.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if !indexed && line.starts_with("MATCH") {
            for label in [
                "AS",
                "Prefix",
                "Country",
                "Organization",
                "IXP",
                "Facility",
                "DomainName",
                "Tag",
                "Ranking",
                "Name",
            ] {
                graph.create_index(label, "_export_id");
            }
            indexed = true;
        }
        update(&mut graph, line)?;
    }
    // Strip the synthetic key again.
    let ids: Vec<NodeId> = graph.all_nodes().collect();
    for id in ids {
        graph
            .set_node_prop(id, "_export_id", Value::Null)
            .expect("node is live");
    }
    Ok(graph)
}

fn value_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
        Value::List(items) => format!(
            "[{}]",
            items
                .iter()
                .map(value_literal)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, IypConfig};
    use iyp_cypher::query;

    #[test]
    fn roundtrip_preserves_counts_and_answers() {
        let d = generate(&IypConfig {
            n_as: 45,
            n_ixps: 4,
            n_facilities: 4,
            n_domains: 15,
            seed: 42,
        });
        let script = to_cypher_script(&d.graph);
        assert!(script.contains("CREATE (n0"));
        let mut restored = from_cypher_script(&script).expect("script loads");
        assert_eq!(restored.node_count(), d.graph.node_count());
        assert_eq!(restored.rel_count(), d.graph.rel_count());

        restored.create_index("AS", "asn");
        restored.create_index("Country", "country_code");
        let q = "MATCH (a:AS {asn: 2497})-[:COUNTRY]->(c:Country) RETURN c.country_code";
        assert_eq!(
            query(&restored, q).unwrap().fingerprint(false),
            query(&d.graph, q).unwrap().fingerprint(false)
        );
        let q = "MATCH (a:AS)-[p:POPULATION]->(c:Country {country_code: 'JP'}) \
                 RETURN a.asn, p.percent ORDER BY p.percent DESC";
        assert_eq!(
            query(&restored, q).unwrap().fingerprint(true),
            query(&d.graph, q).unwrap().fingerprint(true)
        );
    }

    #[test]
    fn export_key_is_stripped() {
        let d = generate(&IypConfig {
            n_as: 40,
            n_ixps: 2,
            n_facilities: 2,
            n_domains: 5,
            seed: 1,
        });
        let restored = from_cypher_script(&to_cypher_script(&d.graph)).unwrap();
        for id in restored.all_nodes() {
            assert!(
                !restored.node(id).unwrap().props.contains("_export_id"),
                "export key left behind"
            );
        }
    }

    #[test]
    fn string_escaping_survives() {
        let mut g = Graph::new();
        let mut p = iyp_graphdb::Props::new();
        p.set("name", "It's \\ tricky");
        g.add_node(["AS"], p);
        let restored = from_cypher_script(&to_cypher_script(&g)).unwrap();
        let id = restored.all_nodes().next().unwrap();
        assert_eq!(
            restored.node(id).unwrap().props.get("name"),
            Some(&Value::from("It's \\ tricky"))
        );
    }
}
