//! The Internet Yellow Pages schema: node labels, relationship types and
//! the properties each carries.
//!
//! This mirrors the schema of the public IYP knowledge graph (Fontugne et
//! al., IMC 2024), which aggregates BGP tables, WHOIS, peering databases,
//! APNIC population estimates, CAIDA's ASRank and the Tranco list into one
//! property graph.

/// Node labels used by the dataset.
pub mod labels {
    /// An autonomous system. Properties: `asn` (int), `name` (string),
    /// `hegemony` (float in [0, 1], IHR-style transit centrality).
    pub const AS: &str = "AS";
    /// An IP prefix. Properties: `prefix` (string), `af` (4 or 6).
    pub const PREFIX: &str = "Prefix";
    /// A country. Properties: `country_code` (ISO-3166 alpha-2), `name`,
    /// `population` (int).
    pub const COUNTRY: &str = "Country";
    /// An organization (from WHOIS/PeeringDB). Properties: `name`.
    pub const ORGANIZATION: &str = "Organization";
    /// An Internet exchange point. Properties: `name`.
    pub const IXP: &str = "IXP";
    /// A colocation facility. Properties: `name`, `city`.
    pub const FACILITY: &str = "Facility";
    /// A registered domain name. Properties: `name`.
    pub const DOMAIN_NAME: &str = "DomainName";
    /// A categorization tag (e.g. "Content", "Eyeball"). Properties:
    /// `label`.
    pub const TAG: &str = "Tag";
    /// A ranking source (e.g. "CAIDA ASRank", "Tranco"). Properties:
    /// `name`.
    pub const RANKING: &str = "Ranking";
    /// A name record attached to an AS. Properties: `name`.
    pub const NAME: &str = "Name";

    /// Every label, for schema introspection.
    pub const ALL: &[&str] = &[
        AS,
        PREFIX,
        COUNTRY,
        ORGANIZATION,
        IXP,
        FACILITY,
        DOMAIN_NAME,
        TAG,
        RANKING,
        NAME,
    ];
}

/// Relationship types used by the dataset.
pub mod rels {
    /// `(:AS)-[:ORIGINATE]->(:Prefix)` — BGP origination.
    pub const ORIGINATE: &str = "ORIGINATE";
    /// `(:AS|:IXP|:Prefix)-[:COUNTRY]->(:Country)` — registration country.
    pub const COUNTRY: &str = "COUNTRY";
    /// `(:AS)-[:NAME]->(:Name)` — registered name record.
    pub const NAME: &str = "NAME";
    /// `(:AS)-[:MEMBER_OF]->(:IXP)` — IXP membership.
    pub const MEMBER_OF: &str = "MEMBER_OF";
    /// `(:AS)-[:PEERS_WITH]->(:AS)` — settlement-free peering.
    pub const PEERS_WITH: &str = "PEERS_WITH";
    /// `(:AS)-[:DEPENDS_ON]->(:AS)` — upstream transit dependency.
    pub const DEPENDS_ON: &str = "DEPENDS_ON";
    /// `(:AS|:Prefix)-[:CATEGORIZED]->(:Tag)` — category tags.
    pub const CATEGORIZED: &str = "CATEGORIZED";
    /// `(:AS)-[:POPULATION {percent}]->(:Country)` — APNIC-style share of
    /// a country's Internet population served by the AS.
    pub const POPULATION: &str = "POPULATION";
    /// `(:AS|:DomainName)-[:RANK {rank}]->(:Ranking)` — rank in a source.
    pub const RANK: &str = "RANK";
    /// `(:AS|:IXP)-[:MANAGED_BY]->(:Organization)`.
    pub const MANAGED_BY: &str = "MANAGED_BY";
    /// `(:AS)-[:LOCATED_IN]->(:Facility)` — colocation presence.
    pub const LOCATED_IN: &str = "LOCATED_IN";
    /// `(:DomainName)-[:RESOLVES_TO]->(:Prefix)` — DNS resolution
    /// (collapsed over the IP hop for this reproduction).
    pub const RESOLVES_TO: &str = "RESOLVES_TO";

    /// Every relationship type, for schema introspection.
    pub const ALL: &[&str] = &[
        ORIGINATE,
        COUNTRY,
        NAME,
        MEMBER_OF,
        PEERS_WITH,
        DEPENDS_ON,
        CATEGORIZED,
        POPULATION,
        RANK,
        MANAGED_BY,
        LOCATED_IN,
        RESOLVES_TO,
    ];
}

/// Category tags applied to ASes and prefixes, following the tag
/// vocabulary IYP imports from BGP.tools and PeeringDB.
pub const TAGS: &[&str] = &[
    "Content",
    "Eyeball",
    "Transit",
    "Cloud",
    "CDN",
    "Education",
    "Government",
    "Enterprise",
    "Hosting",
    "Mobile",
    "Satellite",
    "Research",
    "Banking",
    "Broadcast",
    "Gaming",
];

/// Ranking source names.
pub mod rankings {
    /// CAIDA's AS rank (lower = more central).
    pub const CAIDA_ASRANK: &str = "CAIDA ASRank";
    /// APNIC's per-country eyeball population estimates.
    pub const APNIC_EYEBALL: &str = "APNIC eyeball estimates";
    /// The Tranco top-site list.
    pub const TRANCO: &str = "Tranco";

    /// All ranking sources created by the generator.
    pub const ALL: &[&str] = &[CAIDA_ASRANK, APNIC_EYEBALL, TRANCO];
}

/// A human-readable schema summary, served by the HTTP API's `/schema`
/// endpoint and included in text-to-Cypher prompt context.
pub fn schema_summary() -> String {
    let mut s = String::from("IYP schema\n==========\nNode labels:\n");
    for l in labels::ALL {
        s.push_str("  :");
        s.push_str(l);
        s.push('\n');
    }
    s.push_str("Relationship types:\n");
    for r in rels::ALL {
        s.push_str("  [:");
        s.push_str(r);
        s.push_str("]\n");
    }
    s.push_str("Key patterns:\n");
    s.push_str("  (:AS)-[:ORIGINATE]->(:Prefix)\n");
    s.push_str("  (:AS)-[:COUNTRY]->(:Country)\n");
    s.push_str("  (:AS)-[:POPULATION {percent}]->(:Country)\n");
    s.push_str("  (:AS)-[:RANK {rank}]->(:Ranking {name: 'CAIDA ASRank'})\n");
    s.push_str("  (:AS)-[:MEMBER_OF]->(:IXP)\n");
    s.push_str("  (:AS)-[:DEPENDS_ON]->(:AS)\n");
    s.push_str("  (:DomainName)-[:RANK {rank}]->(:Ranking {name: 'Tranco'})\n");
    s.push_str("  (:AS {hegemony}) — IHR-style transit centrality in [0, 1]\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_complete() {
        assert_eq!(labels::ALL.len(), 10);
        assert_eq!(rels::ALL.len(), 12);
        assert!(TAGS.len() >= 10);
    }

    #[test]
    fn summary_mentions_core_patterns() {
        let s = schema_summary();
        assert!(s.contains("ORIGINATE"));
        assert!(s.contains("POPULATION"));
        assert!(s.contains(":AS"));
    }
}
