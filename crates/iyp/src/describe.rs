//! Textual descriptions of graph nodes.
//!
//! The VectorContextRetriever embeds one document per interesting node;
//! this module renders those documents deterministically from the graph.

use crate::schema::{labels, rels};
use iyp_graphdb::{AppliedDelta, Direction, Graph, NodeId, Value};
use std::fmt::Write;

/// A describable document: the node it came from and its rendered text.
#[derive(Debug, Clone)]
pub struct NodeDoc {
    /// Source node.
    pub node: NodeId,
    /// Primary label of the node.
    pub label: String,
    /// Short title (e.g. "AS2497 IIJ").
    pub title: String,
    /// Full description text.
    pub text: String,
}

/// Renders documents for every AS, IXP, Country and DomainName node —
/// the entity types users ask about.
pub fn describe_all(graph: &Graph) -> Vec<NodeDoc> {
    graph
        .all_nodes()
        .filter_map(|id| describe_node(graph, id))
        .collect()
}

/// Renders the document for a single node, or `None` if the node is
/// absent or not one of the describable entity types.
pub fn describe_node(graph: &Graph, id: NodeId) -> Option<NodeDoc> {
    graph.node(id)?;
    if graph.node_has_label(id, labels::AS) {
        Some(describe_as(graph, id))
    } else if graph.node_has_label(id, labels::IXP) {
        Some(describe_ixp(graph, id))
    } else if graph.node_has_label(id, labels::COUNTRY) {
        Some(describe_country(graph, id))
    } else if graph.node_has_label(id, labels::DOMAIN_NAME) {
        Some(describe_domain(graph, id))
    } else {
        None
    }
}

/// The document-level consequences of one applied
/// [`DeltaBatch`](iyp_graphdb::DeltaBatch): which node documents must be re-rendered
/// and which must be dropped to bring a description corpus built from the
/// pre-ingest graph up to date with the post-ingest graph.
#[derive(Debug, Clone, Default)]
pub struct DocDelta {
    /// Fresh renders (new or changed nodes, and their 1-hop neighbors
    /// whose descriptions embed facts about them).
    pub upserts: Vec<NodeDoc>,
    /// Nodes whose documents must be removed.
    pub removals: Vec<NodeId>,
}

/// Derives the [`DocDelta`] for an applied batch against the **post-apply**
/// graph.
///
/// Descriptions render 1-hop context (an AS mentions its country and IXPs;
/// a country counts its ASes), so the affected set must cover neighbors of
/// changes — but only where the change can actually leak into a neighbor's
/// text. Adjacency changes already put both endpoints in
/// [`AppliedDelta::touched`], and no document renders facts two hops away,
/// so the only cross-node staleness left is a node's *own record*
/// changing: a rename or relabel invalidates neighbor documents that
/// render its name or count it by label. The expansion therefore goes one
/// hop out from [`AppliedDelta::prop_changed`] alone — expanding from all
/// of `touched` would drag in every AS of any country the batch brushed,
/// making the delta scale with the graph instead of the batch.
/// Non-describable affected nodes (prefixes, organizations, …) render
/// nothing and are skipped. Removals cover every node the batch deleted —
/// callers may hold no document for some of them, which is harmless.
pub fn describe_delta(new_graph: &Graph, applied: &AppliedDelta) -> DocDelta {
    let mut changed = applied.prop_changed.clone();
    changed.sort_unstable_by_key(|id| id.0);
    changed.dedup();

    let mut ids = applied.affected();
    for &id in &changed {
        for (_, nbr) in new_graph.neighbors(id, Direction::Both, None) {
            ids.push(nbr);
        }
    }
    ids.sort_unstable_by_key(|id| id.0);
    ids.dedup();

    let upserts = ids
        .into_iter()
        .filter(|id| !applied.removed.contains(id))
        .filter_map(|id| describe_node(new_graph, id))
        .collect();
    DocDelta {
        upserts,
        removals: applied.removed.clone(),
    }
}

fn prop_str(graph: &Graph, id: NodeId, key: &str) -> String {
    graph
        .node(id)
        .map(|n| n.props.get_or_null(key))
        .unwrap_or(Value::Null)
        .to_string()
}

fn prop_int(graph: &Graph, id: NodeId, key: &str) -> i64 {
    graph
        .node(id)
        .and_then(|n| n.props.get(key).and_then(Value::as_int))
        .unwrap_or(0)
}

fn neighbor_prop(
    graph: &Graph,
    id: NodeId,
    rel: &str,
    dir: Direction,
    key: &str,
) -> Vec<(String, Option<f64>)> {
    graph
        .neighbors(id, dir, Some(&[rel]))
        .into_iter()
        .map(|(rid, nbr)| {
            let v = graph
                .node(nbr)
                .map(|n| n.props.get_or_null(key))
                .unwrap_or(Value::Null)
                .to_string();
            let weight = graph.rel(rid).and_then(|r| {
                r.props
                    .get("percent")
                    .or(r.props.get("rank"))
                    .and_then(Value::as_f64)
            });
            (v, weight)
        })
        .collect()
}

/// Describes an AS node.
pub fn describe_as(graph: &Graph, id: NodeId) -> NodeDoc {
    let asn = prop_int(graph, id, "asn");
    let name = prop_str(graph, id, "name");
    let title = format!("AS{asn} {name}");
    let mut text = format!("AS{asn} ({name}) is an autonomous system");

    let countries = neighbor_prop(graph, id, rels::COUNTRY, Direction::Outgoing, "name");
    if let Some((country, _)) = countries.first() {
        write!(text, " registered in {country}").unwrap();
    }
    text.push('.');

    let prefixes = graph
        .neighbors(id, Direction::Outgoing, Some(&[rels::ORIGINATE]))
        .len();
    if prefixes > 0 {
        write!(text, " It originates {prefixes} prefixes.").unwrap();
    }
    let ixps = neighbor_prop(graph, id, rels::MEMBER_OF, Direction::Outgoing, "name");
    if !ixps.is_empty() {
        let names: Vec<String> = ixps.iter().map(|(n, _)| n.clone()).collect();
        write!(text, " It is a member of {}.", names.join(", ")).unwrap();
    }
    for (rid, nbr) in graph.neighbors(id, Direction::Outgoing, Some(&[rels::POPULATION])) {
        let pct = graph
            .rel(rid)
            .and_then(|r| r.props.get("percent").and_then(Value::as_f64))
            .unwrap_or(0.0);
        let cname = prop_str(graph, nbr, "name");
        write!(
            text,
            " It serves {pct}% of the Internet population of {cname}."
        )
        .unwrap();
    }
    for (rid, _) in graph.neighbors(id, Direction::Outgoing, Some(&[rels::RANK])) {
        if let Some(rank) = graph
            .rel(rid)
            .and_then(|r| r.props.get("rank").and_then(Value::as_int))
        {
            write!(text, " CAIDA ASRank position {rank}.").unwrap();
            break;
        }
    }
    let tags = neighbor_prop(graph, id, rels::CATEGORIZED, Direction::Outgoing, "label");
    if !tags.is_empty() {
        let names: Vec<String> = tags.iter().map(|(t, _)| t.clone()).collect();
        write!(text, " Categories: {}.", names.join(", ")).unwrap();
    }
    let upstreams = neighbor_prop(graph, id, rels::DEPENDS_ON, Direction::Outgoing, "name");
    if !upstreams.is_empty() {
        let names: Vec<String> = upstreams.iter().map(|(n, _)| n.clone()).collect();
        write!(text, " Upstream providers: {}.", names.join(", ")).unwrap();
    }
    NodeDoc {
        node: id,
        label: labels::AS.to_string(),
        title,
        text,
    }
}

/// Describes an IXP node.
pub fn describe_ixp(graph: &Graph, id: NodeId) -> NodeDoc {
    let name = prop_str(graph, id, "name");
    let members = graph
        .neighbors(id, Direction::Incoming, Some(&[rels::MEMBER_OF]))
        .len();
    let mut text = format!("{name} is an Internet exchange point");
    let countries = neighbor_prop(graph, id, rels::COUNTRY, Direction::Outgoing, "name");
    if let Some((country, _)) = countries.first() {
        write!(text, " located in {country}").unwrap();
    }
    write!(text, " with {members} member networks.").unwrap();
    NodeDoc {
        node: id,
        label: labels::IXP.to_string(),
        title: name,
        text,
    }
}

/// Describes a Country node.
pub fn describe_country(graph: &Graph, id: NodeId) -> NodeDoc {
    let name = prop_str(graph, id, "name");
    let code = prop_str(graph, id, "country_code");
    let population = prop_int(graph, id, "population");
    let ases = graph
        .neighbors(id, Direction::Incoming, Some(&[rels::COUNTRY]))
        .into_iter()
        .filter(|(_, n)| graph.node_has_label(*n, labels::AS))
        .count();
    let text = format!(
        "{name} (country code {code}) has a population of {population} and {ases} registered autonomous systems."
    );
    NodeDoc {
        node: id,
        label: labels::COUNTRY.to_string(),
        title: format!("{name} ({code})"),
        text,
    }
}

/// Describes a DomainName node.
pub fn describe_domain(graph: &Graph, id: NodeId) -> NodeDoc {
    let name = prop_str(graph, id, "name");
    let mut text = format!("{name} is a registered domain name");
    for (rid, _) in graph.neighbors(id, Direction::Outgoing, Some(&[rels::RANK])) {
        if let Some(rank) = graph
            .rel(rid)
            .and_then(|r| r.props.get("rank").and_then(Value::as_int))
        {
            write!(text, " ranked {rank} in the Tranco list").unwrap();
            break;
        }
    }
    let prefixes = neighbor_prop(graph, id, rels::RESOLVES_TO, Direction::Outgoing, "prefix");
    if !prefixes.is_empty() {
        let names: Vec<String> = prefixes.iter().map(|(p, _)| p.clone()).collect();
        write!(text, ", resolving into {}", names.join(" and ")).unwrap();
    }
    text.push('.');
    NodeDoc {
        node: id,
        label: labels::DOMAIN_NAME.to_string(),
        title: name,
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, IypConfig};

    #[test]
    fn describes_every_entity_type() {
        let d = generate(&IypConfig::tiny());
        let docs = describe_all(&d.graph);
        let has = |label: &str| docs.iter().any(|d| d.label == label);
        assert!(has("AS"));
        assert!(has("IXP"));
        assert!(has("Country"));
        assert!(has("DomainName"));
    }

    #[test]
    fn iij_description_mentions_key_facts() {
        let d = generate(&IypConfig::tiny());
        let doc = describe_as(&d.graph, d.as_by_asn[&2497]);
        assert_eq!(doc.title, "AS2497 IIJ");
        assert!(doc.text.contains("Japan"), "text: {}", doc.text);
        assert!(doc.text.contains("prefixes"), "text: {}", doc.text);
        assert!(
            doc.text.contains("population of Japan"),
            "text: {}",
            doc.text
        );
    }

    #[test]
    fn describe_delta_patch_equals_full_rerender() {
        use crate::delta::growth_batch;
        use std::collections::BTreeMap;

        let d = generate(&IypConfig::tiny());
        let old_graph = d.graph;
        let batch = growth_batch(&old_graph, 7, 12);
        let mut new_graph = old_graph.clone();
        let applied = batch.apply_tracked(&mut new_graph).unwrap();

        // Patch the old corpus with the delta…
        let mut corpus: BTreeMap<u64, NodeDoc> = describe_all(&old_graph)
            .into_iter()
            .map(|doc| (doc.node.0, doc))
            .collect();
        let delta = describe_delta(&new_graph, &applied);
        for id in &delta.removals {
            corpus.remove(&id.0);
        }
        for doc in delta.upserts {
            corpus.insert(doc.node.0, doc);
        }

        // …and it must be textually identical to a from-scratch render.
        let fresh: BTreeMap<u64, NodeDoc> = describe_all(&new_graph)
            .into_iter()
            .map(|doc| (doc.node.0, doc))
            .collect();
        assert_eq!(corpus.len(), fresh.len());
        for (id, doc) in &fresh {
            let patched = &corpus[id];
            assert_eq!(patched.title, doc.title, "node {id}");
            assert_eq!(patched.text, doc.text, "node {id}");
        }
    }

    #[test]
    fn describe_delta_is_tight_for_pure_adjacency_changes() {
        use iyp_graphdb::{DeltaBatch, Props};

        let d = generate(&IypConfig::tiny());
        let old_graph = d.graph;
        let japan = d.country_by_code["JP"];
        let iij = d.as_by_asn[&2497];
        let mut batch = DeltaBatch::new();
        let x = batch.add_node(
            ["AS"],
            iyp_graphdb::props!("asn" => 64500i64, "name" => "NewNet"),
        );
        batch.add_rel(x, crate::schema::rels::COUNTRY, japan, Props::new());
        let mut new_graph = old_graph.clone();
        let applied = batch.apply_tracked(&mut new_graph).unwrap();

        let delta = describe_delta(&new_graph, &applied);
        // The new AS and its country (whose AS count changed) re-render…
        assert!(delta
            .upserts
            .iter()
            .any(|doc| doc.node == applied.created[0]));
        assert!(delta.upserts.iter().any(|doc| doc.node == japan));
        // …but the country's *other* ASes render no fact that changed, so
        // the delta must not scale with the country's degree.
        assert!(
            delta.upserts.iter().all(|doc| doc.node != iij),
            "a pure adjacency change dragged a 2-hop neighbor into the delta"
        );
    }

    #[test]
    fn describe_delta_covers_removed_nodes_and_their_neighbors() {
        use iyp_graphdb::{DeltaBatch, DeltaOp};

        let d = generate(&IypConfig::tiny());
        let old_graph = d.graph;
        let iij = d.as_by_asn[&2497];
        let batch = DeltaBatch {
            ops: vec![DeltaOp::RemoveNode { node: iij.into() }],
        };
        let mut new_graph = old_graph.clone();
        let applied = batch.apply_tracked(&mut new_graph).unwrap();

        let delta = describe_delta(&new_graph, &applied);
        assert_eq!(delta.removals, vec![iij]);
        // Japan counted IIJ among its registered ASes; its document must
        // be re-rendered (and must not mention the removed node's count).
        let japan = d.country_by_code["JP"];
        assert!(
            delta.upserts.iter().any(|doc| doc.node == japan),
            "expected a refreshed document for the removed node's country"
        );
        assert!(delta.upserts.iter().all(|doc| doc.node != iij));
    }

    #[test]
    fn descriptions_are_deterministic() {
        let a = generate(&IypConfig::tiny());
        let b = generate(&IypConfig::tiny());
        let da = describe_all(&a.graph);
        let db = describe_all(&b.graph);
        assert_eq!(da.len(), db.len());
        assert!(da.iter().zip(&db).all(|(x, y)| x.text == y.text));
    }
}
