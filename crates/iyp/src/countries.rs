//! A static table of countries used by the synthetic dataset.
//!
//! Populations are rounded public figures (millions, mid-2020s); they only
//! need to be plausible so population-share questions exercise realistic
//! numbers.

/// One country record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountryInfo {
    /// ISO-3166 alpha-2 code.
    pub code: &'static str,
    /// English short name.
    pub name: &'static str,
    /// Approximate population.
    pub population: u64,
    /// Coarse region, used to make topology country-correlated.
    pub region: Region,
}

/// Coarse world regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Region {
    Americas,
    Europe,
    Asia,
    Africa,
    Oceania,
}

/// The country table. JP and US come first so tests can rely on them.
pub const COUNTRIES: &[CountryInfo] = &[
    CountryInfo {
        code: "JP",
        name: "Japan",
        population: 124_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "US",
        name: "United States",
        population: 335_000_000,
        region: Region::Americas,
    },
    CountryInfo {
        code: "DE",
        name: "Germany",
        population: 84_000_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "GB",
        name: "United Kingdom",
        population: 68_000_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "FR",
        name: "France",
        population: 66_000_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "NL",
        name: "Netherlands",
        population: 18_000_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "GR",
        name: "Greece",
        population: 10_400_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "IT",
        name: "Italy",
        population: 59_000_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "ES",
        name: "Spain",
        population: 48_000_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "SE",
        name: "Sweden",
        population: 10_500_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "NO",
        name: "Norway",
        population: 5_500_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "FI",
        name: "Finland",
        population: 5_600_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "PL",
        name: "Poland",
        population: 38_000_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "CZ",
        name: "Czechia",
        population: 10_800_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "AT",
        name: "Austria",
        population: 9_100_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "CH",
        name: "Switzerland",
        population: 8_800_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "BE",
        name: "Belgium",
        population: 11_700_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "PT",
        name: "Portugal",
        population: 10_300_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "IE",
        name: "Ireland",
        population: 5_300_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "DK",
        name: "Denmark",
        population: 5_900_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "RO",
        name: "Romania",
        population: 19_000_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "UA",
        name: "Ukraine",
        population: 36_000_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "RU",
        name: "Russia",
        population: 144_000_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "TR",
        name: "Turkey",
        population: 85_000_000,
        region: Region::Europe,
    },
    CountryInfo {
        code: "CN",
        name: "China",
        population: 1_410_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "IN",
        name: "India",
        population: 1_430_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "KR",
        name: "South Korea",
        population: 52_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "TW",
        name: "Taiwan",
        population: 23_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "HK",
        name: "Hong Kong",
        population: 7_500_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "SG",
        name: "Singapore",
        population: 5_900_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "ID",
        name: "Indonesia",
        population: 277_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "TH",
        name: "Thailand",
        population: 72_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "VN",
        name: "Vietnam",
        population: 99_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "PH",
        name: "Philippines",
        population: 117_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "MY",
        name: "Malaysia",
        population: 34_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "PK",
        name: "Pakistan",
        population: 240_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "BD",
        name: "Bangladesh",
        population: 173_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "IL",
        name: "Israel",
        population: 9_800_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "AE",
        name: "United Arab Emirates",
        population: 9_500_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "SA",
        name: "Saudi Arabia",
        population: 36_000_000,
        region: Region::Asia,
    },
    CountryInfo {
        code: "CA",
        name: "Canada",
        population: 40_000_000,
        region: Region::Americas,
    },
    CountryInfo {
        code: "MX",
        name: "Mexico",
        population: 128_000_000,
        region: Region::Americas,
    },
    CountryInfo {
        code: "BR",
        name: "Brazil",
        population: 216_000_000,
        region: Region::Americas,
    },
    CountryInfo {
        code: "AR",
        name: "Argentina",
        population: 46_000_000,
        region: Region::Americas,
    },
    CountryInfo {
        code: "CL",
        name: "Chile",
        population: 20_000_000,
        region: Region::Americas,
    },
    CountryInfo {
        code: "CO",
        name: "Colombia",
        population: 52_000_000,
        region: Region::Americas,
    },
    CountryInfo {
        code: "PE",
        name: "Peru",
        population: 34_000_000,
        region: Region::Americas,
    },
    CountryInfo {
        code: "ZA",
        name: "South Africa",
        population: 60_000_000,
        region: Region::Africa,
    },
    CountryInfo {
        code: "NG",
        name: "Nigeria",
        population: 224_000_000,
        region: Region::Africa,
    },
    CountryInfo {
        code: "EG",
        name: "Egypt",
        population: 113_000_000,
        region: Region::Africa,
    },
    CountryInfo {
        code: "KE",
        name: "Kenya",
        population: 55_000_000,
        region: Region::Africa,
    },
    CountryInfo {
        code: "MA",
        name: "Morocco",
        population: 38_000_000,
        region: Region::Africa,
    },
    CountryInfo {
        code: "GH",
        name: "Ghana",
        population: 34_000_000,
        region: Region::Africa,
    },
    CountryInfo {
        code: "TZ",
        name: "Tanzania",
        population: 67_000_000,
        region: Region::Africa,
    },
    CountryInfo {
        code: "AU",
        name: "Australia",
        population: 26_000_000,
        region: Region::Oceania,
    },
    CountryInfo {
        code: "NZ",
        name: "New Zealand",
        population: 5_200_000,
        region: Region::Oceania,
    },
];

/// Looks up a country by ISO code.
pub fn by_code(code: &str) -> Option<&'static CountryInfo> {
    COUNTRIES.iter().find(|c| c.code == code)
}

/// Looks up a country by (case-insensitive) English name.
pub fn by_name(name: &str) -> Option<&'static CountryInfo> {
    COUNTRIES.iter().find(|c| c.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn codes_are_unique() {
        let codes: HashSet<_> = COUNTRIES.iter().map(|c| c.code).collect();
        assert_eq!(codes.len(), COUNTRIES.len());
    }

    #[test]
    fn lookups_work() {
        assert_eq!(by_code("JP").unwrap().name, "Japan");
        assert_eq!(by_name("japan").unwrap().code, "JP");
        assert!(by_code("XX").is_none());
    }

    #[test]
    fn pinned_countries_exist() {
        for code in ["JP", "US", "DE", "GR"] {
            assert!(by_code(code).is_some(), "missing {code}");
        }
    }
}
