//! Property tests for the simulated-LM substrate: judge bounds and
//! determinism, error-model monotonicity, NLG fact preservation, and
//! mutation validity.

use iyp_cypher::QueryResult;
use iyp_graphdb::Value;
use iyp_llm::judge::extract_facts;
use iyp_llm::{generate_answer, GEvalJudge, Intent, LmConfig, SimLm};
use proptest::prelude::*;

fn sentence() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z0-9.%]{1,10}", 1..15).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn judge_scores_bounded_and_deterministic(
        q in sentence(),
        a in sentence(),
        r in sentence(),
        seed in 0u64..1000,
    ) {
        let judge = GEvalJudge::new(SimLm::with_seed(seed));
        let j1 = judge.judge(&q, &a, &r);
        let j2 = judge.judge(&q, &a, &r);
        prop_assert!((0.0..=1.0).contains(&j1.score));
        prop_assert!((0.0..=1.0).contains(&j1.factuality));
        prop_assert!((0.0..=1.0).contains(&j1.relevance));
        prop_assert!((0.0..=1.0).contains(&j1.informativeness));
        prop_assert_eq!(j1.score, j2.score);
    }

    #[test]
    fn judge_identity_beats_garbage(r in sentence()) {
        // Skip inputs with no extractable facts (both sides then tie).
        let facts = extract_facts(&r);
        prop_assume!(!facts.numbers.is_empty() || !facts.entities.is_empty());
        let judge = GEvalJudge::new(SimLm::with_seed(1));
        let same = judge.judge("q", &r, &r).score;
        let garbage = judge.judge("q", "zzz yyy xxx", &r).score;
        prop_assert!(same >= garbage - 0.05, "same={same} garbage={garbage} ref={r:?}");
    }

    #[test]
    fn noise_is_uniform_enough(seed in 0u64..50) {
        let lm = SimLm::with_seed(seed);
        let n = 2000;
        let draws: Vec<f64> = (0..n).map(|i| lm.noise(&format!("k{i}"))).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        prop_assert!((mean - 0.5).abs() < 0.05, "mean={mean}");
        // Every decile sees some mass.
        for d in 0..10 {
            let lo = d as f64 / 10.0;
            let hi = lo + 0.1;
            let cnt = draws.iter().filter(|&&x| x >= lo && x < hi).count();
            prop_assert!(cnt > n / 40, "decile {d} starved: {cnt}");
        }
    }

    #[test]
    fn error_rate_matches_designed_probability(
        seed in 0u64..20,
        complexity in 0u32..7,
    ) {
        let lm = SimLm::new(LmConfig { seed, skill: 0.62, variety: 0.5 });
        let p = lm.error_probability(complexity);
        let n = 3000;
        let fails = (0..n)
            .filter(|i| lm.translation_fails(&format!("q{i}"), complexity))
            .count();
        let observed = fails as f64 / n as f64;
        prop_assert!(
            (observed - p).abs() < 0.04,
            "designed {p:.3}, observed {observed:.3} at c={complexity}"
        );
    }

    #[test]
    fn nlg_single_value_answers_contain_the_fact(
        value in -100000i64..100000,
        seed in 0u64..200,
    ) {
        let lm = SimLm::with_seed(seed);
        let result = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(value)]],
        };
        let ans = generate_answer(&lm, "how many?", Some(&Intent::CountPrefixes { asn: 1 }), &result);
        prop_assert!(
            ans.contains(&value.to_string()),
            "answer {ans:?} lost the value {value}"
        );
    }

    #[test]
    fn nlg_list_answers_contain_every_shown_fact(
        values in proptest::collection::vec(0i64..1000, 2..7),
        seed in 0u64..50,
    ) {
        let lm = SimLm::with_seed(seed);
        let result = QueryResult {
            columns: vec!["x".into()],
            rows: values.iter().map(|v| vec![Value::Int(*v)]).collect(),
        };
        let ans = generate_answer(&lm, "list them", None, &result);
        for v in &values {
            prop_assert!(ans.contains(&v.to_string()), "answer {ans:?} lost {v}");
        }
    }

    #[test]
    fn mutations_always_yield_parseable_cypher_or_none(pick in 0usize..64) {
        use iyp_llm::errors::draw_error;
        use iyp_llm::text2cypher::{canonical_cypher, mutate_query};
        let intents = [
            Intent::AsCountry { asn: 7 },
            Intent::PopulationShare { asn: 7, country: "JP".into() },
            Intent::UpstreamCountries { asn: 7 },
            Intent::TopDomainOnAs { asn: 7 },
            Intent::CountAsInCountry { country: "DE".into() },
            Intent::TransitiveUpstreams { asn: 7 },
        ];
        for intent in &intents {
            let gold = canonical_cypher(intent);
            let (hops, _, _, _) = intent.structure();
            let err = draw_error(pick, hops);
            match mutate_query(&gold, err) {
                // `None` is legal for NoQuery and for shapes no mutation
                // (nor fallback mutation) applies to.
                None => {}
                Some(m) => {
                    prop_assert!(iyp_cypher::parse(&m).is_ok(), "unparseable mutation: {m}");
                    prop_assert_ne!(
                        iyp_cypher::canonicalize(&m).unwrap(),
                        iyp_cypher::canonicalize(&gold).unwrap(),
                        "mutation {:?} was a no-op for {}", err, intent.kind()
                    );
                }
            }
        }
    }
}
