//! Text-to-Cypher translation: the TextToCypherRetriever's core.
//!
//! The canonical renderer maps an [`Intent`] to correct Cypher (these are
//! also the benchmark's gold queries). The [`Translator`] wraps it with
//! the simulated LM: it parses the question, and — with a probability
//! that grows with structural complexity — injects one of the structural
//! mistakes catalogued in [`crate::errors`], applied as an AST mutation so
//! the broken query is still syntactically valid Cypher (as LLM mistakes
//! usually are).

use crate::errors::{draw_error, TranslationError};
use crate::intent::{parse_question, EntityCatalog, Intent};
use crate::model::SimLm;
use iyp_cypher::ast::{Clause, Expr, Query, RelDir};
use iyp_cypher::{parse, query_to_string};
use serde::{Deserialize, Serialize};

/// The outcome of translating one question.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Translation {
    /// The produced Cypher, if any.
    pub cypher: Option<String>,
    /// The parsed intent, if the question was understood.
    pub intent: Option<Intent>,
    /// The structural error injected, if the simulated model erred.
    pub injected_error: Option<TranslationError>,
}

/// Renders the canonical (gold-correct) Cypher for an intent.
pub fn canonical_cypher(intent: &Intent) -> String {
    use Intent::*;
    match intent {
        AsName { asn } => format!("MATCH (a:AS {{asn: {asn}}}) RETURN a.name"),
        AsnOfName { name } => format!("MATCH (a:AS {{name: '{name}'}}) RETURN a.asn"),
        AsCountry { asn } => format!(
            "MATCH (a:AS {{asn: {asn}}})-[:COUNTRY]->(c:Country) RETURN c.country_code"
        ),
        CountAsInCountry { country } => format!(
            "MATCH (a:AS)-[:COUNTRY]->(:Country {{country_code: '{country}'}}) RETURN count(a)"
        ),
        AsRank { asn } => format!(
            "MATCH (a:AS {{asn: {asn}}})-[r:RANK]->(:Ranking {{name: 'CAIDA ASRank'}}) RETURN r.rank"
        ),
        CountPrefixes { asn } => format!(
            "MATCH (a:AS {{asn: {asn}}})-[:ORIGINATE]->(p:Prefix) RETURN count(p)"
        ),
        PrefixOrigin { prefix } => format!(
            "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix {{prefix: '{prefix}'}}) RETURN a.asn"
        ),
        DomainRank { domain } => format!(
            "MATCH (d:DomainName {{name: '{domain}'}})-[r:RANK]->(:Ranking {{name: 'Tranco'}}) RETURN r.rank"
        ),
        IxpCountry { ixp } => format!(
            "MATCH (x:IXP {{name: '{ixp}'}})-[:COUNTRY]->(c:Country) RETURN c.country_code"
        ),
        IxpMemberCount { ixp } => format!(
            "MATCH (a:AS)-[:MEMBER_OF]->(x:IXP {{name: '{ixp}'}}) RETURN count(a)"
        ),
        PopulationShare { asn, country } => format!(
            "MATCH (a:AS {{asn: {asn}}})-[p:POPULATION]->(c:Country {{country_code: '{country}'}}) RETURN p.percent"
        ),
        OrgOfAs { asn } => format!(
            "MATCH (a:AS {{asn: {asn}}})-[:MANAGED_BY]->(o:Organization) RETURN o.name"
        ),
        TopAsInCountryByPrefixes { country, n } => format!(
            "MATCH (a:AS)-[:COUNTRY]->(:Country {{country_code: '{country}'}}) \
             MATCH (a)-[:ORIGINATE]->(p:Prefix) \
             RETURN a.asn, count(p) AS cnt ORDER BY cnt DESC, a.asn LIMIT {n}"
        ),
        TopPopulationAs { country } => format!(
            "MATCH (a:AS)-[p:POPULATION]->(c:Country {{country_code: '{country}'}}) \
             RETURN a.asn, p.percent ORDER BY p.percent DESC, a.asn LIMIT 1"
        ),
        PrefixesAfCount { asn, af } => format!(
            "MATCH (a:AS {{asn: {asn}}})-[:ORIGINATE]->(p:Prefix {{af: {af}}}) RETURN count(p)"
        ),
        IxpMembersFromCountry { ixp, country } => format!(
            "MATCH (a:AS)-[:MEMBER_OF]->(x:IXP {{name: '{ixp}'}}), \
             (a)-[:COUNTRY]->(c:Country {{country_code: '{country}'}}) RETURN count(a)"
        ),
        SharedIxps { a, b } => format!(
            "MATCH (a:AS {{asn: {a}}})-[:MEMBER_OF]->(x:IXP)<-[:MEMBER_OF]-(b:AS {{asn: {b}}}) \
             RETURN x.name ORDER BY x.name"
        ),
        TopRankedInCountry { country } => format!(
            "MATCH (a:AS)-[:COUNTRY]->(:Country {{country_code: '{country}'}}) \
             MATCH (a)-[r:RANK]->(:Ranking {{name: 'CAIDA ASRank'}}) \
             RETURN a.asn, r.rank ORDER BY r.rank, a.asn LIMIT 1"
        ),
        AvgPrefixesInCountry { country } => format!(
            "MATCH (a:AS)-[:COUNTRY]->(:Country {{country_code: '{country}'}}) \
             OPTIONAL MATCH (a)-[:ORIGINATE]->(p:Prefix) \
             WITH a, count(p) AS cnt RETURN avg(cnt)"
        ),
        TaggedAsInCountry { tag, country } => format!(
            "MATCH (a:AS)-[:CATEGORIZED]->(t:Tag {{label: '{tag}'}}), \
             (a)-[:COUNTRY]->(c:Country {{country_code: '{country}'}}) RETURN count(a)"
        ),
        TransitiveUpstreams { asn } => format!(
            "MATCH (a:AS {{asn: {asn}}})-[:DEPENDS_ON*1..3]->(u:AS) \
             RETURN DISTINCT u.asn ORDER BY u.asn"
        ),
        CommonUpstreams { a, b } => format!(
            "MATCH (a:AS {{asn: {a}}})-[:DEPENDS_ON]->(u:AS)<-[:DEPENDS_ON]-(b:AS {{asn: {b}}}) \
             RETURN u.asn ORDER BY u.asn"
        ),
        UpstreamCountries { asn } => format!(
            "MATCH (a:AS {{asn: {asn}}})-[:DEPENDS_ON]->(u:AS)-[:COUNTRY]->(c:Country) \
             RETURN DISTINCT c.country_code ORDER BY c.country_code"
        ),
        TopDomainOnAs { asn } => format!(
            "MATCH (a:AS {{asn: {asn}}})-[:ORIGINATE]->(p:Prefix)<-[:RESOLVES_TO]-(d:DomainName)\
             -[r:RANK]->(:Ranking {{name: 'Tranco'}}) \
             RETURN d.name, r.rank ORDER BY r.rank, d.name LIMIT 1"
        ),
        UpstreamPrefixCount { asn } => format!(
            "MATCH (a:AS {{asn: {asn}}})-[:DEPENDS_ON]->(u:AS)-[:ORIGINATE]->(p:Prefix) \
             RETURN count(DISTINCT p.prefix)"
        ),
        PopulationOfTopRanked { country } => format!(
            "MATCH (a:AS)-[:COUNTRY]->(:Country {{country_code: '{country}'}}) \
             MATCH (a)-[r:RANK]->(:Ranking {{name: 'CAIDA ASRank'}}) \
             WITH a ORDER BY r.rank LIMIT 1 \
             MATCH (a)-[p:POPULATION]->(c:Country {{country_code: '{country}'}}) \
             RETURN p.percent"
        ),
        DomainsOnAs { asn } => format!(
            "MATCH (a:AS {{asn: {asn}}})-[:ORIGINATE]->(p:Prefix)<-[:RESOLVES_TO]-(d:DomainName) \
             RETURN DISTINCT d.name ORDER BY d.name"
        ),
        ShortestDependencyPath { a, b } => format!(
            "MATCH p = shortestPath((a:AS {{asn: {a}}})-[:DEPENDS_ON*1..4]->(b:AS {{asn: {b}}})) \
             RETURN length(p)"
        ),
        TransitFreeInCountry { country } => format!(
            "MATCH (a:AS)-[:COUNTRY]->(c:Country {{country_code: '{country}'}}) \
             WHERE NOT (a)-[:DEPENDS_ON]->(:AS) RETURN a.asn ORDER BY a.asn"
        ),
        HegemonyOfAs { asn } => {
            format!("MATCH (a:AS {{asn: {asn}}}) RETURN a.hegemony")
        }
    }
}

/// The text-to-Cypher translator.
pub struct Translator {
    /// The simulated LM driving error injection.
    pub lm: SimLm,
    /// Entity catalog for mention resolution.
    pub catalog: EntityCatalog,
}

impl Translator {
    /// Creates a translator.
    pub fn new(lm: SimLm, catalog: EntityCatalog) -> Self {
        Translator { lm, catalog }
    }

    /// Translates a question into Cypher, possibly with an injected
    /// structural error.
    pub fn translate(&self, question: &str) -> Translation {
        self.translate_attempt(question, 0)
    }

    /// Translation with an attempt counter: re-prompting an LLM after a
    /// failure redraws its mistakes, so each attempt gets an independent
    /// error draw. Attempt 0 is the plain [`Translator::translate`].
    pub fn translate_attempt(&self, question: &str, attempt: u32) -> Translation {
        self.translate_attempt_with(question, attempt, &self.catalog)
    }

    /// Like [`Translator::translate_attempt`], but resolving mentions
    /// against an explicit catalog instead of the construction-time one —
    /// the entry point for pipelines whose catalog is versioned alongside
    /// the graph and swapped on ingest.
    pub fn translate_attempt_with(
        &self,
        question: &str,
        attempt: u32,
        catalog: &EntityCatalog,
    ) -> Translation {
        let Some(intent) = parse_question(question, catalog) else {
            return Translation {
                cypher: None,
                intent: None,
                injected_error: Some(TranslationError::NoQuery),
            };
        };
        let complexity = intent.complexity();
        let canonical = canonical_cypher(&intent);
        let key = if attempt == 0 {
            question.to_string()
        } else {
            format!("retry{attempt}:{question}")
        };
        if !self.lm.translation_fails(&key, complexity) {
            return Translation {
                cypher: Some(canonical),
                intent: Some(intent),
                injected_error: None,
            };
        }
        let (hops, _, _, _) = intent.structure();
        let pick = self.lm.choose(&format!("errkind:{key}"), 64);
        let error = draw_error(pick, hops);
        let mutated = mutate_query(&canonical, error);
        Translation {
            cypher: mutated,
            intent: Some(intent),
            injected_error: Some(error),
        }
    }
}

/// Applies a structural mutation to a query, returning the mutated Cypher
/// (or `None` for [`TranslationError::NoQuery`] / unmutatable shapes).
pub fn mutate_query(cypher: &str, error: TranslationError) -> Option<String> {
    if error == TranslationError::NoQuery {
        return None;
    }
    let mut ast = parse(cypher).ok()?;
    let changed = match error {
        TranslationError::WrongRelType => mutate_rel_type(&mut ast),
        TranslationError::MissingHop => mutate_drop_hop(&mut ast),
        TranslationError::WrongDirection => mutate_flip_direction(&mut ast),
        TranslationError::WrongProperty => mutate_property_name(&mut ast),
        TranslationError::DroppedFilter => mutate_drop_filter(&mut ast),
        TranslationError::WrongAggregate => mutate_aggregate(&mut ast),
        TranslationError::NoQuery => false,
    };
    if changed {
        Some(query_to_string(&ast))
    } else {
        // The drawn mutation doesn't apply to this shape; degrade to a
        // direction flip, then to a property rename, else give up.
        if error != TranslationError::WrongDirection && mutate_flip_direction(&mut ast) {
            return Some(query_to_string(&ast));
        }
        if error != TranslationError::WrongProperty && mutate_property_name(&mut ast) {
            return Some(query_to_string(&ast));
        }
        None
    }
}

/// Schema-plausible wrong substitute for a relationship type.
fn wrong_rel_type(ty: &str) -> &'static str {
    match ty {
        "COUNTRY" => "MANAGED_BY",
        "POPULATION" => "COUNTRY",
        "ORIGINATE" => "DEPENDS_ON",
        "MEMBER_OF" => "PEERS_WITH",
        "DEPENDS_ON" => "PEERS_WITH",
        "RANK" => "CATEGORIZED",
        "RESOLVES_TO" => "RANK",
        "MANAGED_BY" => "NAME",
        "CATEGORIZED" => "NAME",
        _ => "COUNTRY",
    }
}

/// Wrong substitute for a property key.
fn wrong_property(key: &str) -> &'static str {
    match key {
        "asn" => "number",
        "country_code" => "code",
        "name" => "label",
        "prefix" => "cidr",
        "percent" => "share",
        "rank" => "position",
        "af" => "family",
        "label" => "name",
        _ => "value",
    }
}

fn for_each_match<F: FnMut(&mut iyp_cypher::ast::MatchClause) -> bool>(
    ast: &mut Query,
    mut f: F,
) -> bool {
    for clause in &mut ast.clauses {
        if let Clause::Match(m) = clause {
            if f(m) {
                return true;
            }
        }
    }
    false
}

fn mutate_rel_type(ast: &mut Query) -> bool {
    for_each_match(ast, |m| {
        for part in &mut m.patterns {
            for (rel, _) in &mut part.hops {
                if let Some(ty) = rel.types.first_mut() {
                    *ty = wrong_rel_type(ty).to_string();
                    return true;
                }
            }
        }
        false
    })
}

fn mutate_drop_hop(ast: &mut Query) -> bool {
    for_each_match(ast, |m| {
        for part in &mut m.patterns {
            if part.hops.len() >= 2 {
                // Drop the first hop; the chain restarts from its end node.
                let (_, node) = part.hops.remove(0);
                part.start = node;
                return true;
            }
        }
        false
    })
}

fn mutate_flip_direction(ast: &mut Query) -> bool {
    for_each_match(ast, |m| {
        for part in &mut m.patterns {
            if let Some((rel, _)) = part.hops.first_mut() {
                rel.dir = match rel.dir {
                    RelDir::Right => RelDir::Left,
                    RelDir::Left => RelDir::Right,
                    RelDir::Undirected => RelDir::Right,
                };
                return true;
            }
        }
        false
    })
}

fn mutate_property_name(ast: &mut Query) -> bool {
    // Rename the first inline property of a node/rel pattern...
    let renamed = for_each_match(ast, |m| {
        for part in &mut m.patterns {
            if let Some((key, _)) = part.start.props.first_mut() {
                *key = wrong_property(key).to_string();
                return true;
            }
            for (rel, node) in &mut part.hops {
                if let Some((key, _)) = rel.props.first_mut() {
                    *key = wrong_property(key).to_string();
                    return true;
                }
                if let Some((key, _)) = node.props.first_mut() {
                    *key = wrong_property(key).to_string();
                    return true;
                }
            }
        }
        false
    });
    if renamed {
        return true;
    }
    // ...or the property in the first RETURN/WITH item.
    for clause in &mut ast.clauses {
        let items = match clause {
            Clause::Return(p) | Clause::With(p) => &mut p.items,
            _ => continue,
        };
        for item in items {
            if let Expr::Prop(_, key) = &mut item.expr {
                *key = wrong_property(key).to_string();
                return true;
            }
        }
    }
    false
}

fn mutate_drop_filter(ast: &mut Query) -> bool {
    for_each_match(ast, |m| {
        if m.where_clause.is_some() {
            m.where_clause = None;
            return true;
        }
        for part in &mut m.patterns {
            // Drop the props of the *last* constrained node — dropping the
            // anchor would often still work via other constraints.
            for (_, node) in part.hops.iter_mut().rev() {
                if !node.props.is_empty() {
                    node.props.clear();
                    return true;
                }
            }
            if !part.start.props.is_empty() && !part.hops.is_empty() {
                part.start.props.clear();
                return true;
            }
        }
        false
    })
}

fn mutate_aggregate(ast: &mut Query) -> bool {
    fn swap_in(expr: &mut Expr) -> bool {
        match expr {
            Expr::Call { name, .. } => {
                let new = match name.as_str() {
                    "count" => "collect",
                    "sum" => "count",
                    "avg" => "max",
                    "min" => "max",
                    "max" => "min",
                    _ => return false,
                };
                *name = new.to_string();
                true
            }
            Expr::Bin(_, a, b) => swap_in(a) || swap_in(b),
            Expr::Prop(a, _) | Expr::Un(_, a) | Expr::IsNull(a, _) => swap_in(a),
            _ => false,
        }
    }
    for clause in &mut ast.clauses {
        let items = match clause {
            Clause::Return(p) | Clause::With(p) => &mut p.items,
            _ => continue,
        };
        for item in items {
            if swap_in(&mut item.expr) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LmConfig;
    use iyp_data::{generate, IypConfig};

    fn fixtures() -> (iyp_data::IypDataset, EntityCatalog) {
        let d = generate(&IypConfig::tiny());
        let cat = EntityCatalog::from_dataset(&d);
        (d, cat)
    }

    #[test]
    fn canonical_queries_all_parse_and_execute() {
        let (d, _) = fixtures();
        let intents = vec![
            Intent::AsName { asn: 2497 },
            Intent::AsnOfName { name: "IIJ".into() },
            Intent::AsCountry { asn: 2497 },
            Intent::CountAsInCountry {
                country: "JP".into(),
            },
            Intent::AsRank { asn: 2497 },
            Intent::CountPrefixes { asn: 2497 },
            Intent::DomainRank {
                domain: "x.com".into(),
            },
            Intent::IxpCountry {
                ixp: "Tokyo-IX".into(),
            },
            Intent::IxpMemberCount {
                ixp: "Tokyo-IX".into(),
            },
            Intent::PopulationShare {
                asn: 2497,
                country: "JP".into(),
            },
            Intent::OrgOfAs { asn: 2497 },
            Intent::TopAsInCountryByPrefixes {
                country: "US".into(),
                n: 5,
            },
            Intent::TopPopulationAs {
                country: "JP".into(),
            },
            Intent::PrefixesAfCount { asn: 2497, af: 4 },
            Intent::IxpMembersFromCountry {
                ixp: "Tokyo-IX".into(),
                country: "JP".into(),
            },
            Intent::SharedIxps { a: 2497, b: 2914 },
            Intent::TopRankedInCountry {
                country: "US".into(),
            },
            Intent::AvgPrefixesInCountry {
                country: "JP".into(),
            },
            Intent::TaggedAsInCountry {
                tag: "Eyeball".into(),
                country: "JP".into(),
            },
            Intent::TransitiveUpstreams { asn: 2497 },
            Intent::CommonUpstreams { a: 2497, b: 15169 },
            Intent::UpstreamCountries { asn: 2497 },
            Intent::TopDomainOnAs { asn: 15169 },
            Intent::UpstreamPrefixCount { asn: 2497 },
            Intent::PopulationOfTopRanked {
                country: "JP".into(),
            },
            Intent::DomainsOnAs { asn: 15169 },
        ];
        for intent in intents {
            let cy = canonical_cypher(&intent);
            let result = iyp_cypher::query(&d.graph, &cy);
            assert!(
                result.is_ok(),
                "canonical query for {:?} failed: {cy}\n{:?}",
                intent.kind(),
                result.err()
            );
        }
    }

    #[test]
    fn perfect_skill_translates_canonically() {
        let (_, cat) = fixtures();
        let t = Translator::new(
            SimLm::new(LmConfig {
                seed: 1,
                skill: 1.0,
                variety: 0.0,
            }),
            cat,
        );
        let tr = t.translate("What is the name of AS2497?");
        assert_eq!(tr.intent, Some(Intent::AsName { asn: 2497 }));
        assert_eq!(
            tr.cypher.as_deref(),
            Some("MATCH (a:AS {asn: 2497}) RETURN a.name")
        );
        assert!(tr.injected_error.is_none());
    }

    #[test]
    fn zero_skill_injects_errors() {
        let (_, cat) = fixtures();
        let t = Translator::new(
            SimLm::new(LmConfig {
                seed: 1,
                skill: 0.0,
                variety: 0.0,
            }),
            cat,
        );
        // Hard question: error probability near max.
        let mut errored = 0;
        for i in 0..20 {
            let tr = t.translate(&format!(
                "Which ASes does AS2497 depend on directly or indirectly? (v{i})"
            ));
            if tr.injected_error.is_some() {
                errored += 1;
            }
        }
        assert!(errored >= 15, "only {errored}/20 errored at zero skill");
    }

    #[test]
    fn mutations_produce_valid_but_different_cypher() {
        let gold = canonical_cypher(&Intent::PopulationShare {
            asn: 2497,
            country: "JP".into(),
        });
        for err in crate::errors::ERROR_KINDS {
            let mutated = mutate_query(&gold, *err);
            match err {
                TranslationError::NoQuery => assert!(mutated.is_none()),
                _ => {
                    if let Some(m) = mutated {
                        assert!(parse(&m).is_ok(), "mutated query unparseable: {m}");
                        assert_ne!(
                            iyp_cypher::canonicalize(&m).unwrap(),
                            iyp_cypher::canonicalize(&gold).unwrap(),
                            "mutation {err:?} produced identical query"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn drop_hop_only_applies_to_multihop() {
        let single = canonical_cypher(&Intent::AsCountry { asn: 1 });
        // Falls back to direction flip rather than returning the original.
        let m = mutate_query(&single, TranslationError::MissingHop).unwrap();
        assert_ne!(
            iyp_cypher::canonicalize(&m).unwrap(),
            iyp_cypher::canonicalize(&single).unwrap()
        );
        let multi = canonical_cypher(&Intent::UpstreamCountries { asn: 1 });
        let m = mutate_query(&multi, TranslationError::MissingHop).unwrap();
        assert!(m.matches("]->").count() < multi.matches("]->").count());
    }

    #[test]
    fn unparseable_question_yields_no_query() {
        let (_, cat) = fixtures();
        let t = Translator::new(SimLm::with_seed(1), cat);
        let tr = t.translate("What's the meaning of life?");
        assert!(tr.cypher.is_none());
        assert_eq!(tr.injected_error, Some(TranslationError::NoQuery));
    }

    #[test]
    fn translation_is_deterministic() {
        let (_, cat) = fixtures();
        let t1 = Translator::new(SimLm::with_seed(5), cat.clone());
        let t2 = Translator::new(SimLm::with_seed(5), cat);
        let q = "How many prefixes does AS2497 originate?";
        assert_eq!(t1.translate(q).cypher, t2.translate(q).cypher);
    }
}
