//! The simulated language model.
//!
//! The paper uses GPT-3.5-Turbo for generation and GPT-4 as the G-Eval
//! judge; neither is available offline, so this module provides a
//! deterministic stand-in with the two properties the evaluation actually
//! depends on:
//!
//! 1. **Controllable competence** — a `skill` knob that scales how often
//!    the text-to-Cypher stage makes structural mistakes, with mistakes
//!    growing more likely as query complexity grows (the mechanism behind
//!    the paper's Finding 2).
//! 2. **Paraphrase variety** — generation picks among semantically
//!    equivalent phrasings pseudo-randomly, which is what depresses
//!    surface-overlap metrics like BLEU on correct answers (Finding 1).
//!
//! All stochasticity is a pure function of `(seed, key)`, so every
//! experiment is reproducible.

use iyp_embed::embedder::fnv1a;

/// Configuration of the simulated model.
#[derive(Debug, Clone)]
pub struct LmConfig {
    /// Base seed; every derived random draw mixes this in.
    pub seed: u64,
    /// Competence in [0, 1]: 1.0 never injects translation errors
    /// (oracle mode), 0.0 almost always does. Default 0.62 — calibrated
    /// so Easy questions mostly succeed and Hard ones often fail,
    /// matching the shape of the paper's Figure 2b.
    pub skill: f64,
    /// Paraphrase variety in [0, 1]: probability that generation picks a
    /// non-canonical phrasing. Default 0.65.
    pub variety: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            seed: 42,
            skill: 0.62,
            variety: 0.65,
        }
    }
}

/// The deterministic simulated LM shared by the translator, generator,
/// reranker and judge.
#[derive(Debug, Clone, Default)]
pub struct SimLm {
    /// Model configuration.
    pub config: LmConfig,
}

impl SimLm {
    /// Creates a model with the given configuration.
    pub fn new(config: LmConfig) -> Self {
        SimLm { config }
    }

    /// Creates a model with default knobs and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        SimLm {
            config: LmConfig {
                seed,
                ..LmConfig::default()
            },
        }
    }

    /// A deterministic uniform draw in [0, 1) keyed by a string.
    pub fn noise(&self, key: &str) -> f64 {
        let h = mix(fnv1a(format!("{}\u{1}{key}", self.config.seed).as_bytes()));
        // Take the top 53 bits for a clean f64 mantissa.
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A deterministic choice of one of `n` options keyed by a string.
    pub fn choose(&self, key: &str, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (mix(fnv1a(format!("{}\u{2}{key}", self.config.seed).as_bytes())) % n as u64) as usize
    }

    /// Should generation paraphrase (rather than use the canonical
    /// phrasing) for this key?
    pub fn paraphrase(&self, key: &str) -> bool {
        self.noise(&format!("para:{key}")) < self.config.variety
    }

    /// Probability that translating a query of the given structural
    /// complexity goes wrong. Complexity counts pattern hops,
    /// aggregations, joins and variable-length segments (see
    /// [`crate::errors`]).
    pub fn error_probability(&self, complexity: u32) -> f64 {
        crate::errors::error_probability(self.config.skill, complexity)
    }

    /// Does translation fail for this particular (question, complexity)?
    /// `skill >= 1.0` is oracle mode: never fails (used by demos and by
    /// tests that need the gold path).
    pub fn translation_fails(&self, key: &str, complexity: u32) -> bool {
        if self.config.skill >= 1.0 {
            return false;
        }
        self.noise(&format!("t2c:{key}")) < self.error_probability(complexity)
    }
}

/// A 64-bit finalizer (splitmix/murmur-style) applied on top of FNV-1a:
/// FNV alone leaves the high bits poorly mixed on short keys, which would
/// skew the uniform draws the error model depends on.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_seed_dependent() {
        let a = SimLm::with_seed(1);
        let b = SimLm::with_seed(1);
        let c = SimLm::with_seed(2);
        assert_eq!(a.noise("x"), b.noise("x"));
        assert_ne!(a.noise("x"), c.noise("x"));
        assert_ne!(a.noise("x"), a.noise("y"));
    }

    #[test]
    fn noise_is_in_unit_interval() {
        let lm = SimLm::with_seed(7);
        for i in 0..1000 {
            let x = lm.noise(&format!("k{i}"));
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn noise_looks_uniform() {
        let lm = SimLm::with_seed(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| lm.noise(&format!("u{i}"))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn choose_is_in_range() {
        let lm = SimLm::with_seed(3);
        for i in 0..100 {
            assert!(lm.choose(&format!("c{i}"), 7) < 7);
        }
        assert_eq!(lm.choose("anything", 0), 0);
    }

    #[test]
    fn error_probability_grows_with_complexity() {
        let lm = SimLm::default();
        let p1 = lm.error_probability(1);
        let p3 = lm.error_probability(3);
        let p6 = lm.error_probability(6);
        assert!(p1 < p3 && p3 < p6, "{p1} {p3} {p6}");
    }

    #[test]
    fn perfect_skill_rarely_fails() {
        let lm = SimLm::new(LmConfig {
            seed: 1,
            skill: 1.0,
            variety: 0.5,
        });
        let fails = (0..500)
            .filter(|i| lm.translation_fails(&format!("q{i}"), 3))
            .count();
        assert!(fails <= 20, "perfect skill failed {fails}/500");
    }
}
