//! The text-to-Cypher prompt chain.
//!
//! The paper says ChatIYP uses "a prompt chain fine-tuned on IYP query
//! patterns". Our simulated model doesn't consume prompts, but the chain
//! itself is part of the system: this module renders exactly what would
//! be sent to GPT-3.5 — schema context, few-shot examples drawn from the
//! intent space, and the user question — so the artifact documents the
//! real interface and the trace/debug tooling can display it.

use crate::intent::Intent;
use crate::text2cypher::canonical_cypher;

/// One few-shot example in the chain.
#[derive(Debug, Clone)]
pub struct FewShot {
    /// Example natural-language question.
    pub question: String,
    /// Its gold Cypher.
    pub cypher: String,
}

/// The default few-shot bank: one exemplar per structural family, in
/// ascending complexity (the "fine-tuned on IYP query patterns" part).
pub fn default_few_shots() -> Vec<FewShot> {
    let exemplars = vec![
        ("What is the name of AS2497?", Intent::AsName { asn: 2497 }),
        (
            "In which country is AS15169 registered?",
            Intent::AsCountry { asn: 15169 },
        ),
        (
            "What is the percentage of Japan's population in AS2497?",
            Intent::PopulationShare {
                asn: 2497,
                country: "JP".into(),
            },
        ),
        (
            "Which AS serves the largest share of the population of Germany?",
            Intent::TopPopulationAs {
                country: "DE".into(),
            },
        ),
        (
            "Which ASes does AS2497 depend on directly or indirectly?",
            Intent::TransitiveUpstreams { asn: 2497 },
        ),
    ];
    exemplars
        .into_iter()
        .map(|(q, intent)| FewShot {
            question: q.to_string(),
            cypher: canonical_cypher(&intent),
        })
        .collect()
}

/// Renders the full text-to-Cypher prompt for a question.
pub fn render_text2cypher_prompt(question: &str) -> String {
    let mut p = String::new();
    p.push_str(
        "You are an expert on the Internet Yellow Pages (IYP) knowledge graph.\n\
         Translate the user's question into a single Cypher query.\n\
         Only use the schema below; return only the query.\n\n",
    );
    p.push_str(&iyp_data::schema::schema_summary());
    p.push_str("\nExamples:\n");
    for shot in default_few_shots() {
        p.push_str("Q: ");
        p.push_str(&shot.question);
        p.push_str("\nCypher: ");
        p.push_str(&shot.cypher);
        p.push('\n');
    }
    p.push_str("\nQ: ");
    p.push_str(question);
    p.push_str("\nCypher:");
    p
}

/// Renders the answer-generation prompt (stage 3 of the pipeline): the
/// question plus the retrieved rows or context the LLM must ground on.
pub fn render_generation_prompt(question: &str, retrieved: &str) -> String {
    format!(
        "Answer the user's question about the Internet using ONLY the
retrieved IYP data below. State concrete values; do not speculate.
If the data is empty, say that no matching records exist.

Retrieved data:
{retrieved}

Question: {question}
Answer:"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_contains_schema_examples_and_question() {
        let p = render_text2cypher_prompt("How many prefixes does AS2497 originate?");
        assert!(p.contains("ORIGINATE"), "schema missing");
        assert!(p.contains("POPULATION"), "schema missing");
        assert!(
            p.contains("MATCH (a:AS {asn: 2497}) RETURN a.name"),
            "few-shot missing"
        );
        assert!(p.ends_with("Cypher:"));
        assert!(p.contains("How many prefixes does AS2497 originate?"));
    }

    #[test]
    fn few_shots_are_valid_cypher() {
        for shot in default_few_shots() {
            assert!(
                iyp_cypher::parse(&shot.cypher).is_ok(),
                "unparseable few-shot: {}",
                shot.cypher
            );
        }
    }

    #[test]
    fn few_shots_cover_all_difficulties() {
        use crate::intent::Difficulty;
        let shots = default_few_shots();
        assert!(shots.len() >= 5);
        // The bank walks up the complexity ladder: the first example is
        // Easy and the last is Hard.
        let first = crate::intent::Intent::AsName { asn: 2497 };
        let last = crate::intent::Intent::TransitiveUpstreams { asn: 2497 };
        assert_eq!(first.difficulty(), Difficulty::Easy);
        assert_eq!(last.difficulty(), Difficulty::Hard);
    }

    #[test]
    fn generation_prompt_embeds_data() {
        let p = render_generation_prompt("What is X?", "x = 42");
        assert!(p.contains("x = 42"));
        assert!(p.contains("What is X?"));
    }
}
