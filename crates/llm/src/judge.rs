//! The G-Eval judge simulation.
//!
//! G-Eval [Liu et al., 2023] prompts GPT-4 with a chain-of-thought rubric
//! and scores a response on factuality, relevance and informativeness.
//! This stand-in performs the same three assessments mechanically:
//!
//! * **factuality** — extract facts (numbers with tolerance, entity
//!   tokens) from the candidate and reference answers and compare;
//! * **relevance** — embedding similarity between question and answer;
//! * **informativeness** — does the answer commit to specific facts at
//!   all, or is it vague/empty?
//!
//! The final score passes through a sharpening curve, producing the
//! *bimodal* distribution the paper reports for G-Eval: clearly-right
//! answers land near 1, clearly-wrong answers near 0, with little mass in
//! between — unlike BLEU/ROUGE/BERTScore.

use crate::model::SimLm;
use iyp_embed::Embedder;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The judge's verdict on one answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Judgment {
    /// Fact agreement with the reference, in [0, 1].
    pub factuality: f64,
    /// Question-answer relevance, in [0, 1].
    pub relevance: f64,
    /// Commitment to specific facts, in [0, 1].
    pub informativeness: f64,
    /// Final (sharpened) G-Eval score in [0, 1].
    pub score: f64,
}

/// Facts extracted from an answer: numbers and entity-like tokens.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Facts {
    /// Numeric facts.
    pub numbers: Vec<f64>,
    /// Entity tokens (lower-cased): `as2497`, names, codes, domains.
    pub entities: BTreeSet<String>,
}

/// Capitalized tokens that are sentence furniture in our NLG templates,
/// not entities.
const CAPITALIZED_STOPS: &[&str] = &[
    "the",
    "according",
    "here",
    "there",
    "i",
    "iyp",
    "no",
    "that",
    "it",
    "is",
    "what",
    "gold",
    "per",
    "based",
    "related",
];

/// Extracts facts from an answer text.
///
/// Numbers are facts. Entity tokens are recognized *conservatively*: a
/// token is an entity only if it carries a digit, looks like a prefix or
/// domain (`/`, `.`), or is capitalized in the original text (a proper
/// noun) and isn't template furniture. Plain lowercase words are never
/// entities — so two refusal answers with different wording agree on
/// having zero facts.
pub fn extract_facts(text: &str) -> Facts {
    let mut facts = Facts::default();
    for raw in
        text.split(|c: char| c.is_whitespace() || c == ',' || c == ';' || c == '(' || c == ')')
    {
        let tok = raw.trim_matches(|c: char| {
            !(c.is_alphanumeric() || c == '.' || c == '/' || c == ':' || c == '-')
        });
        if tok.is_empty() {
            continue;
        }
        let lower = tok.to_lowercase();
        // Numbers (allow % suffix and trailing period).
        let numeric = lower
            .trim_end_matches('%')
            .trim_end_matches('.')
            .replace(',', "");
        if let Ok(n) = numeric.parse::<f64>() {
            facts.numbers.push(n);
            continue;
        }
        // A trailing period is sentence punctuation, not structure.
        let tok = tok.trim_end_matches('.');
        let lower = lower.trim_end_matches('.');
        if tok.is_empty() {
            continue;
        }
        let has_digit = tok.chars().any(|c| c.is_ascii_digit());
        let looks_addressy = tok.contains('/') || tok.contains('.');
        let capitalized = tok
            .chars()
            .next()
            .map(|c| c.is_uppercase())
            .unwrap_or(false)
            && !CAPITALIZED_STOPS.contains(&lower);
        if has_digit || looks_addressy || capitalized {
            facts.entities.insert(lower.to_string());
        }
    }
    facts
}

fn number_matches(a: f64, b: f64) -> bool {
    let tol = (a.abs().max(b.abs()) * 0.01).max(0.051);
    (a - b).abs() <= tol
}

/// Compares candidate facts against reference facts. Returns a score in
/// [0, 1]: recall of reference facts, penalized for contradicting numbers.
pub fn fact_agreement(candidate: &Facts, reference: &Facts) -> f64 {
    let total = reference.numbers.len() + reference.entities.len();
    if total == 0 {
        // Reference commits to nothing (e.g. "no data"): agree if the
        // candidate also commits to nothing numeric.
        return if candidate.numbers.is_empty() {
            1.0
        } else {
            0.3
        };
    }
    let mut matched = 0usize;
    for rn in &reference.numbers {
        if candidate.numbers.iter().any(|cn| number_matches(*cn, *rn)) {
            matched += 1;
        }
    }
    for re in &reference.entities {
        if candidate.entities.contains(re) {
            matched += 1;
        }
    }
    let recall = matched as f64 / total as f64;
    // Contradiction penalty: candidate numbers with no counterpart in the
    // reference suggest fabrication.
    let fabricated = candidate
        .numbers
        .iter()
        .filter(|cn| !reference.numbers.iter().any(|rn| number_matches(**cn, *rn)))
        .count();
    let penalty = if candidate.numbers.is_empty() {
        0.0
    } else {
        0.4 * fabricated as f64 / candidate.numbers.len() as f64
    };
    (recall - penalty).clamp(0.0, 1.0)
}

/// The G-Eval judge.
pub struct GEvalJudge {
    lm: SimLm,
    embedder: Embedder,
}

impl GEvalJudge {
    /// Creates a judge driven by the given simulated LM.
    pub fn new(lm: SimLm) -> Self {
        GEvalJudge {
            lm,
            embedder: Embedder::default(),
        }
    }

    /// Judges `answer` against `reference` for `question`.
    pub fn judge(&self, question: &str, answer: &str, reference: &str) -> Judgment {
        let cand = extract_facts(answer);
        let refr = extract_facts(reference);
        let factuality = fact_agreement(&cand, &refr);

        let qv = self.embedder.embed(question);
        let av = self.embedder.embed(answer);
        // Cosine of hashed embeddings on related texts sits around
        // 0.1-0.6; stretch into [0, 1].
        let relevance = (f64::from(qv.cosine(&av)) * 1.8).clamp(0.0, 1.0);

        let informativeness = if answer.trim().is_empty() {
            0.0
        } else {
            let specific = !cand.numbers.is_empty() || !cand.entities.is_empty();
            let refuses =
                answer.to_lowercase().contains("no ") || answer.to_lowercase().contains("not find");
            match (specific, refuses) {
                (true, _) => 1.0,
                (false, true) => 0.35,
                (false, false) => 0.2,
            }
        };

        // Weighted rubric, then sharpening: GPT-4 judges cluster at the
        // extremes, so the curve pushes mid scores outward.
        let base = 0.62 * factuality + 0.22 * relevance + 0.16 * informativeness;
        let sharpened = 1.0 / (1.0 + (-(base - 0.55) * 9.0).exp());
        // Small deterministic judge noise (GPT-4 is not perfectly stable).
        let noise = (self.lm.noise(&format!("judge:{question}|{answer}")) - 0.5) * 0.06;
        let score = (sharpened + noise).clamp(0.0, 1.0);
        Judgment {
            factuality,
            relevance,
            informativeness,
            score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn judge() -> GEvalJudge {
        GEvalJudge::new(SimLm::with_seed(42))
    }

    #[test]
    fn correct_answer_scores_high() {
        let j = judge().judge(
            "What is the percentage of Japan's population in AS2497?",
            "The share of JP's population served by AS2497 is 33.3.",
            "According to IYP, the share of JP's population served by AS2497 is 33.3.",
        );
        assert!(j.score > 0.75, "score={:?}", j);
    }

    #[test]
    fn paraphrased_correct_answer_still_scores_high() {
        let j = judge().judge(
            "What is the percentage of Japan's population in AS2497?",
            "33.3 — that is the share of JP's population served by AS2497 recorded in IYP.",
            "The share of JP's population served by AS2497 is 33.3.",
        );
        assert!(j.score > 0.7, "score={:?}", j);
    }

    #[test]
    fn wrong_number_scores_low() {
        let j = judge().judge(
            "What is the percentage of Japan's population in AS2497?",
            "The share of JP's population served by AS2497 is 4.1.",
            "The share of JP's population served by AS2497 is 33.3.",
        );
        assert!(j.score < 0.45, "score={:?}", j);
    }

    #[test]
    fn empty_refusal_scores_low_when_reference_has_facts() {
        let j = judge().judge(
            "How many prefixes does AS2497 originate?",
            "I could not find any data matching that question in the IYP graph.",
            "The number of prefixes originated by AS2497 is 17.",
        );
        assert!(j.score < 0.4, "score={:?}", j);
    }

    #[test]
    fn agreeing_refusals_score_high() {
        let j = judge().judge(
            "Which IXPs do AS1 and AS2 share?",
            "No matching records were found in IYP.",
            "The IYP graph returned no results for this query.",
        );
        assert!(j.score > 0.5, "score={:?}", j);
    }

    #[test]
    fn number_tolerance() {
        assert!(number_matches(33.3, 33.30001));
        assert!(number_matches(100.0, 100.9));
        assert!(!number_matches(33.3, 4.1));
        assert!(number_matches(0.0, 0.05));
    }

    #[test]
    fn fact_extraction_finds_numbers_and_entities() {
        let f = extract_facts("AS2497 (IIJ) serves 33.3% of Japan, prefix 203.0.113.0/24.");
        assert!(f.numbers.contains(&33.3));
        assert!(f.entities.contains("as2497"));
        assert!(f.entities.contains("iij"));
        assert!(f.entities.contains("japan"));
        assert!(f.entities.contains("203.0.113.0/24"));
    }

    #[test]
    fn judging_is_deterministic() {
        let a = judge().judge("q", "answer 42", "answer 42");
        let b = judge().judge("q", "answer 42", "answer 42");
        assert_eq!(a.score, b.score);
    }

    #[test]
    fn scores_are_bimodal_on_mixed_answers() {
        // A batch of clearly-right and clearly-wrong answers should leave
        // little mass in the middle band.
        let j = judge();
        let mut middle = 0;
        let mut n = 0;
        for i in 0..40 {
            let reference = format!("The number of prefixes originated by AS{i} is {}.", 10 + i);
            let answer = if i % 2 == 0 {
                format!(
                    "IYP reports a number of prefixes originated by AS{i} of {}.",
                    10 + i
                )
            } else {
                format!("The number of prefixes originated by AS{i} is {}.", 500 + i)
            };
            let s = j.judge("How many prefixes?", &answer, &reference).score;
            if (0.35..0.65).contains(&s) {
                middle += 1;
            }
            n += 1;
        }
        assert!(middle <= n / 8, "{middle}/{n} scores in the middle band");
    }
}
