//! Question intents: the shared semantic space between natural-language
//! questions, gold Cypher, and the text-to-Cypher translator.
//!
//! Every benchmark question instantiates one [`Intent`]. The CypherEval
//! generator renders an intent to English (several phrasings) and to gold
//! Cypher; the translator parses English back to an intent and renders its
//! own Cypher. Difficulty is *derived from structural complexity* —
//! exactly the paper's finding that structure, not domain, predicts
//! failure.

use crate::errors::complexity_score;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Benchmark difficulty label (CypherEval taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Difficulty {
    /// Single lookup or one-hop pattern.
    Easy,
    /// Two/three-hop patterns, aggregation with joins.
    Medium,
    /// Deep multi-hop, variable-length or multi-entity joins.
    Hard,
}

impl std::fmt::Display for Difficulty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Difficulty::Easy => write!(f, "Easy"),
            Difficulty::Medium => write!(f, "Medium"),
            Difficulty::Hard => write!(f, "Hard"),
        }
    }
}

/// Question domain (CypherEval taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Domain {
    /// Questions a non-specialist asks: names, countries, populations,
    /// popular domains.
    General,
    /// Questions about routing internals: prefixes, peering, transit,
    /// ranks.
    Technical,
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Domain::General => write!(f, "general"),
            Domain::Technical => write!(f, "technical"),
        }
    }
}

/// A fully-instantiated question intent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Intent {
    // ---- Easy ----
    /// Name of an AS. `MATCH (a:AS {asn}) RETURN a.name`
    AsName {
        /// AS number.
        asn: u32,
    },
    /// ASN of a named network.
    AsnOfName {
        /// Network name.
        name: String,
    },
    /// Registration country of an AS.
    AsCountry {
        /// AS number.
        asn: u32,
    },
    /// How many ASes are registered in a country.
    CountAsInCountry {
        /// Country code.
        country: String,
    },
    /// CAIDA ASRank of an AS.
    AsRank {
        /// AS number.
        asn: u32,
    },
    /// Number of prefixes an AS originates.
    CountPrefixes {
        /// AS number.
        asn: u32,
    },
    /// Which AS originates a prefix.
    PrefixOrigin {
        /// The prefix string.
        prefix: String,
    },
    /// Tranco rank of a domain.
    DomainRank {
        /// Domain name.
        domain: String,
    },
    /// Country of an IXP.
    IxpCountry {
        /// IXP name.
        ixp: String,
    },
    /// Member count of an IXP.
    IxpMemberCount {
        /// IXP name.
        ixp: String,
    },
    /// The paper's worked example: population share of an AS in a country.
    PopulationShare {
        /// AS number.
        asn: u32,
        /// Country code.
        country: String,
    },
    /// Managing organization of an AS.
    OrgOfAs {
        /// AS number.
        asn: u32,
    },

    // ---- Medium ----
    /// Top-N ASes of a country by prefix count.
    TopAsInCountryByPrefixes {
        /// Country code.
        country: String,
        /// How many.
        n: u32,
    },
    /// Which AS serves the largest population share in a country.
    TopPopulationAs {
        /// Country code.
        country: String,
    },
    /// Count of an AS's prefixes of one address family.
    PrefixesAfCount {
        /// AS number.
        asn: u32,
        /// 4 or 6.
        af: u8,
    },
    /// How many members of an IXP are registered in a given country.
    IxpMembersFromCountry {
        /// IXP name.
        ixp: String,
        /// Country code.
        country: String,
    },
    /// IXPs where two ASes are both members.
    SharedIxps {
        /// First AS.
        a: u32,
        /// Second AS.
        b: u32,
    },
    /// Best-ranked (CAIDA) AS registered in a country.
    TopRankedInCountry {
        /// Country code.
        country: String,
    },
    /// Average number of prefixes per AS in a country.
    AvgPrefixesInCountry {
        /// Country code.
        country: String,
    },
    /// Count of ASes in a country carrying a tag.
    TaggedAsInCountry {
        /// Tag label.
        tag: String,
        /// Country code.
        country: String,
    },

    // ---- Hard ----
    /// All ASes reachable via 1-3 DEPENDS_ON hops.
    TransitiveUpstreams {
        /// AS number.
        asn: u32,
    },
    /// Upstream providers shared by two ASes.
    CommonUpstreams {
        /// First AS.
        a: u32,
        /// Second AS.
        b: u32,
    },
    /// Countries in which an AS's upstream providers are registered.
    UpstreamCountries {
        /// AS number.
        asn: u32,
    },
    /// Best-Tranco-ranked domain resolving into an AS's prefixes.
    TopDomainOnAs {
        /// AS number.
        asn: u32,
    },
    /// Total prefixes originated by an AS's upstream providers.
    UpstreamPrefixCount {
        /// AS number.
        asn: u32,
    },
    /// Population share served by a country's best-ranked AS.
    PopulationOfTopRanked {
        /// Country code.
        country: String,
    },
    /// Domains that resolve into prefixes originated by an AS.
    DomainsOnAs {
        /// AS number.
        asn: u32,
    },
    /// Length of the shortest DEPENDS_ON path between two ASes.
    ShortestDependencyPath {
        /// Source AS.
        a: u32,
        /// Destination AS.
        b: u32,
    },
    /// ASes in a country with no upstream provider (transit-free).
    TransitFreeInCountry {
        /// Country code.
        country: String,
    },
    /// IHR-style hegemony (transit centrality) score of an AS.
    HegemonyOfAs {
        /// AS number.
        asn: u32,
    },
}

impl Intent {
    /// Structural components `(hops, aggregations, joins, var_length)` of
    /// the canonical query shape for this intent.
    pub fn structure(&self) -> (u32, u32, u32, u32) {
        use Intent::*;
        match self {
            AsName { .. } | AsnOfName { .. } => (0, 0, 0, 0),
            AsCountry { .. } | PrefixOrigin { .. } | IxpCountry { .. } | OrgOfAs { .. } => {
                (1, 0, 0, 0)
            }
            CountAsInCountry { .. } | IxpMemberCount { .. } | CountPrefixes { .. } => (1, 1, 0, 0),
            AsRank { .. } | DomainRank { .. } => (1, 0, 1, 0),
            PopulationShare { .. } => (1, 0, 1, 0),
            TopAsInCountryByPrefixes { .. } => (2, 1, 0, 0),
            TopPopulationAs { .. } => (1, 1, 1, 0),
            PrefixesAfCount { .. } => (1, 1, 1, 0),
            IxpMembersFromCountry { .. } => (2, 1, 1, 0),
            SharedIxps { .. } => (2, 0, 2, 0),
            TopRankedInCountry { .. } => (2, 0, 2, 0),
            AvgPrefixesInCountry { .. } => (2, 2, 0, 0),
            TaggedAsInCountry { .. } => (2, 1, 1, 0),
            TransitiveUpstreams { .. } => (1, 1, 1, 1),
            CommonUpstreams { .. } => (2, 0, 3, 0),
            UpstreamCountries { .. } => (2, 1, 2, 0),
            TopDomainOnAs { .. } => (3, 0, 2, 0),
            UpstreamPrefixCount { .. } => (2, 2, 1, 0),
            PopulationOfTopRanked { .. } => (3, 1, 2, 0),
            DomainsOnAs { .. } => (2, 1, 2, 0),
            ShortestDependencyPath { .. } => (1, 0, 2, 1),
            TransitFreeInCountry { .. } => (2, 1, 1, 0),
            HegemonyOfAs { .. } => (0, 0, 0, 0),
        }
    }

    /// The structural complexity score.
    pub fn complexity(&self) -> u32 {
        let (h, a, j, v) = self.structure();
        complexity_score(h, a, j, v)
    }

    /// Difficulty, derived from complexity: ≤2 Easy, 3-4 Medium, ≥5 Hard.
    pub fn difficulty(&self) -> Difficulty {
        match self.complexity() {
            0..=2 => Difficulty::Easy,
            3..=4 => Difficulty::Medium,
            _ => Difficulty::Hard,
        }
    }

    /// Question domain.
    pub fn domain(&self) -> Domain {
        use Intent::*;
        match self {
            AsName { .. }
            | AsnOfName { .. }
            | AsCountry { .. }
            | CountAsInCountry { .. }
            | DomainRank { .. }
            | IxpCountry { .. }
            | PopulationShare { .. }
            | OrgOfAs { .. }
            | TopPopulationAs { .. }
            | TaggedAsInCountry { .. }
            | UpstreamCountries { .. }
            | PopulationOfTopRanked { .. }
            | DomainsOnAs { .. } => Domain::General,
            ShortestDependencyPath { .. } | TransitFreeInCountry { .. } | HegemonyOfAs { .. } => {
                Domain::Technical
            }
            _ => Domain::Technical,
        }
    }

    /// A stable identifier for the intent *kind* (without parameters).
    pub fn kind(&self) -> &'static str {
        use Intent::*;
        match self {
            AsName { .. } => "as_name",
            AsnOfName { .. } => "asn_of_name",
            AsCountry { .. } => "as_country",
            CountAsInCountry { .. } => "count_as_in_country",
            AsRank { .. } => "as_rank",
            CountPrefixes { .. } => "count_prefixes",
            PrefixOrigin { .. } => "prefix_origin",
            DomainRank { .. } => "domain_rank",
            IxpCountry { .. } => "ixp_country",
            IxpMemberCount { .. } => "ixp_member_count",
            PopulationShare { .. } => "population_share",
            OrgOfAs { .. } => "org_of_as",
            TopAsInCountryByPrefixes { .. } => "top_as_in_country_by_prefixes",
            TopPopulationAs { .. } => "top_population_as",
            PrefixesAfCount { .. } => "prefixes_af_count",
            IxpMembersFromCountry { .. } => "ixp_members_from_country",
            SharedIxps { .. } => "shared_ixps",
            TopRankedInCountry { .. } => "top_ranked_in_country",
            AvgPrefixesInCountry { .. } => "avg_prefixes_in_country",
            TaggedAsInCountry { .. } => "tagged_as_in_country",
            TransitiveUpstreams { .. } => "transitive_upstreams",
            CommonUpstreams { .. } => "common_upstreams",
            UpstreamCountries { .. } => "upstream_countries",
            TopDomainOnAs { .. } => "top_domain_on_as",
            UpstreamPrefixCount { .. } => "upstream_prefix_count",
            PopulationOfTopRanked { .. } => "population_of_top_ranked",
            DomainsOnAs { .. } => "domains_on_as",
            ShortestDependencyPath { .. } => "shortest_dependency_path",
            TransitFreeInCountry { .. } => "transit_free_in_country",
            HegemonyOfAs { .. } => "hegemony_of_as",
        }
    }
}

/// Known entities the parser can resolve mentions against — built from the
/// generated dataset (the stand-in for the schema/entity context ChatIYP's
/// prompt chain carries).
///
/// The catalog is versionable alongside the graph: [`EntityCatalog::from_graph`]
/// rebuilds it from any graph snapshot, and [`EntityCatalog::apply_delta`]
/// patches it incrementally from an ingest's [`iyp_data::DocDelta`] so a
/// refreshed copy tracks renames, insertions and removals without a full
/// rescan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EntityCatalog {
    /// Lower-cased network name → ASN.
    pub as_names: HashMap<String, u32>,
    /// ASN → display (original-case) network name.
    pub as_display: HashMap<u32, String>,
    /// Lower-cased country name → code; codes map to themselves.
    pub countries: HashMap<String, String>,
    /// Lower-cased IXP name → canonical name.
    pub ixps: HashMap<String, String>,
    /// Lower-cased domain name → canonical name.
    pub domains: HashMap<String, String>,
    /// Lower-cased tag → canonical tag.
    pub tags: HashMap<String, String>,
}

impl EntityCatalog {
    /// Builds the catalog from dataset lookup tables.
    pub fn from_dataset(d: &iyp_data::IypDataset) -> Self {
        let mut cat = EntityCatalog::default();
        for spec in &d.ases {
            cat.as_names.insert(spec.name.to_lowercase(), spec.asn);
            cat.as_display.insert(spec.asn, spec.name.clone());
        }
        for c in iyp_data::countries::COUNTRIES {
            cat.countries
                .insert(c.name.to_lowercase(), c.code.to_string());
            cat.countries
                .insert(c.code.to_lowercase(), c.code.to_string());
        }
        for name in d.ixp_by_name.keys() {
            cat.ixps.insert(name.to_lowercase(), name.clone());
        }
        for id in d.graph.nodes_with_label("DomainName") {
            if let Some(name) = d.graph.node(id).and_then(|n| {
                n.props
                    .get("name")
                    .and_then(|v| v.as_str().map(String::from))
            }) {
                cat.domains.insert(name.to_lowercase(), name);
            }
        }
        for tag in iyp_data::schema::TAGS {
            cat.tags.insert(tag.to_lowercase(), tag.to_string());
        }
        cat
    }

    /// Rebuilds the catalog from a graph snapshot alone — the from-scratch
    /// counterpart of [`EntityCatalog::apply_delta`], and the baseline the
    /// `index_refresh` bench compares incremental patching against.
    pub fn from_graph(graph: &iyp_graphdb::Graph) -> Self {
        let mut cat = EntityCatalog::default();
        for c in iyp_data::countries::COUNTRIES {
            cat.countries
                .insert(c.name.to_lowercase(), c.code.to_string());
            cat.countries
                .insert(c.code.to_lowercase(), c.code.to_string());
        }
        for tag in iyp_data::schema::TAGS {
            cat.tags.insert(tag.to_lowercase(), tag.to_string());
        }
        for id in graph.all_nodes() {
            cat.insert_node_entries(graph, id);
        }
        cat
    }

    /// Patches the catalog with one ingest's worth of entity changes.
    ///
    /// `delta` is the document delta derived from the applied batch
    /// ([`iyp_data::describe_delta`]); its upsert/removal node sets are
    /// exactly the nodes whose catalog entries may have changed. Old-graph
    /// entries for every affected node are retracted first (so a renamed
    /// AS drops its stale name → ASN mapping), then entries are re-derived
    /// from the new graph. The result is identical to a from-scratch
    /// [`EntityCatalog::from_graph`] over the new graph.
    pub fn apply_delta(
        &mut self,
        old_graph: &iyp_graphdb::Graph,
        new_graph: &iyp_graphdb::Graph,
        delta: &iyp_data::DocDelta,
    ) {
        for &id in delta
            .removals
            .iter()
            .chain(delta.upserts.iter().map(|doc| &doc.node))
        {
            self.remove_node_entries(old_graph, id);
        }
        for doc in &delta.upserts {
            self.insert_node_entries(new_graph, doc.node);
        }
    }

    /// Inserts the catalog entries a node contributes, if any.
    fn insert_node_entries(&mut self, graph: &iyp_graphdb::Graph, id: iyp_graphdb::NodeId) {
        use iyp_data::schema::labels;
        let Some(node) = graph.node(id) else { return };
        let name = node
            .props
            .get("name")
            .and_then(|v| v.as_str().map(String::from));
        if graph.node_has_label(id, labels::AS) {
            if let (Some(name), Some(asn)) = (
                name.as_deref(),
                node.props.get("asn").and_then(|v| v.as_int()),
            ) {
                self.as_names.insert(name.to_lowercase(), asn as u32);
                self.as_display.insert(asn as u32, name.to_string());
            }
        } else if graph.node_has_label(id, labels::IXP) {
            if let Some(name) = name {
                self.ixps.insert(name.to_lowercase(), name);
            }
        } else if graph.node_has_label(id, labels::DOMAIN_NAME) {
            if let Some(name) = name {
                self.domains.insert(name.to_lowercase(), name);
            }
        } else if graph.node_has_label(id, labels::COUNTRY) {
            if let (Some(name), Some(code)) = (
                name,
                node.props
                    .get("country_code")
                    .and_then(|v| v.as_str().map(String::from)),
            ) {
                self.countries.insert(name.to_lowercase(), code.clone());
                self.countries.insert(code.to_lowercase(), code);
            }
        }
    }

    /// Retracts the catalog entries a node contributed when `graph` was
    /// current. A node absent from `graph` (created by the very batch being
    /// applied) contributes nothing and is skipped. Entries are only
    /// removed while they still point at this node's values, so two
    /// entities sharing a name cannot evict each other.
    fn remove_node_entries(&mut self, graph: &iyp_graphdb::Graph, id: iyp_graphdb::NodeId) {
        use iyp_data::schema::labels;
        let Some(node) = graph.node(id) else { return };
        let name = node
            .props
            .get("name")
            .and_then(|v| v.as_str().map(String::from));
        if graph.node_has_label(id, labels::AS) {
            if let (Some(name), Some(asn)) = (
                name.as_deref(),
                node.props.get("asn").and_then(|v| v.as_int()),
            ) {
                let key = name.to_lowercase();
                if self.as_names.get(&key) == Some(&(asn as u32)) {
                    self.as_names.remove(&key);
                }
                self.as_display.remove(&(asn as u32));
            }
        } else if graph.node_has_label(id, labels::IXP) {
            if let Some(name) = name {
                self.ixps.remove(&name.to_lowercase());
            }
        } else if graph.node_has_label(id, labels::DOMAIN_NAME) {
            if let Some(name) = name {
                self.domains.remove(&name.to_lowercase());
            }
        }
        // Country nodes: the static country table stays authoritative, so
        // retraction would only ever re-insert the same mapping.
    }
}

/// Entity mentions found in a question.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Mentions {
    /// ASNs, in order of appearance.
    pub asns: Vec<u32>,
    /// Country codes.
    pub countries: Vec<String>,
    /// IXP names.
    pub ixps: Vec<String>,
    /// Domain names.
    pub domains: Vec<String>,
    /// Tags.
    pub tags: Vec<String>,
    /// Prefixes (e.g. `203.0.113.0/24`).
    pub prefixes: Vec<String>,
    /// Standalone numbers (for top-N).
    pub numbers: Vec<i64>,
}

/// Extracts entity mentions from a question.
pub fn extract_mentions(question: &str, cat: &EntityCatalog) -> Mentions {
    let mut m = Mentions::default();
    let lower = question.to_lowercase();

    // Prefixes: token containing '/' with digits.
    for raw in question.split_whitespace() {
        let tok =
            raw.trim_matches(|c: char| !(c.is_alphanumeric() || c == '/' || c == ':' || c == '.'));
        if tok.contains('/')
            && tok
                .chars()
                .next()
                .map(|c| c.is_ascii_hexdigit())
                .unwrap_or(false)
            && tok.chars().any(|c| c.is_ascii_digit())
        {
            m.prefixes.push(tok.to_string());
        }
    }

    // ASNs: "AS2497" or "asn 2497" or "as 2497".
    let words: Vec<&str> = lower
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .collect();
    for (i, w) in words.iter().enumerate() {
        if let Some(num) = w.strip_prefix("as") {
            if let Ok(asn) = num.parse::<u32>() {
                m.asns.push(asn);
                continue;
            }
        }
        if (*w == "as" || *w == "asn") && i + 1 < words.len() {
            if let Ok(asn) = words[i + 1].parse::<u32>() {
                if !m.asns.contains(&asn) {
                    m.asns.push(asn);
                }
            }
        }
    }

    // IXP names first: their spans mask shorter matches inside them
    // ("Mexico City-IX" must not also register the country Mexico).
    // Matches are collected position-sorted so multi-mention questions
    // resolve deterministically regardless of map iteration order.
    let mut ixp_spans: Vec<(usize, usize)> = Vec::new();
    let mut found_ixps: Vec<(usize, String)> = Vec::new();
    for (name, canon) in &cat.ixps {
        if let Some(pos) = find_word(&lower, name) {
            ixp_spans.push((pos, pos + name.len()));
            found_ixps.push((pos, canon.clone()));
        }
    }
    found_ixps.sort();
    for (_, canon) in found_ixps {
        if !m.ixps.contains(&canon) {
            m.ixps.push(canon);
        }
    }
    let masked = |pos: usize| ixp_spans.iter().any(|&(s, e)| pos >= s && pos < e);

    // Known names: scan the catalog maps against the question. Country
    // *names* match case-insensitively; two-letter *codes* only match as
    // uppercase words in the original text ("IN" the code must not match
    // "in" the preposition).
    let mut found_countries: Vec<(usize, String)> = Vec::new();
    for (name, code) in &cat.countries {
        if name.len() == 2 {
            if let Some(pos) = find_word(question, &code.to_uppercase()) {
                if !masked(pos) {
                    found_countries.push((pos, code.clone()));
                }
            }
        } else if let Some(pos) = find_word(&lower, name) {
            if !masked(pos) {
                found_countries.push((pos, code.clone()));
            }
        }
    }
    found_countries.sort();
    for (_, code) in found_countries {
        if !m.countries.contains(&code) {
            m.countries.push(code);
        }
    }

    let mut found_as: Vec<(usize, u32)> = Vec::new();
    for (name, asn) in &cat.as_names {
        if name.len() >= 3 || name == "iij" || name == "ntt" || name == "ote" || name == "gtt" {
            if let Some(pos) = find_word(&lower, name) {
                found_as.push((pos, *asn));
            }
        }
    }
    found_as.sort();
    for (_, asn) in found_as {
        if !m.asns.contains(&asn) {
            m.asns.push(asn);
        }
    }

    let mut found_domains: Vec<(usize, String)> = Vec::new();
    for (name, canon) in &cat.domains {
        if let Some(pos) = lower.find(name.as_str()) {
            found_domains.push((pos, canon.clone()));
        }
    }
    found_domains.sort();
    for (_, canon) in found_domains {
        if !m.domains.contains(&canon) {
            m.domains.push(canon);
        }
    }
    let mut found_tags: Vec<(usize, String)> = Vec::new();
    for (name, canon) in &cat.tags {
        if let Some(pos) = find_word(&lower, name) {
            found_tags.push((pos, canon.clone()));
        }
    }
    found_tags.sort();
    for (_, canon) in found_tags {
        if !m.tags.contains(&canon) {
            m.tags.push(canon);
        }
    }

    // Standalone small numbers (top-N), excluding captured ASNs.
    for w in &words {
        if let Ok(n) = w.parse::<i64>() {
            if n > 0 && n <= 1000 && !m.asns.contains(&(n as u32)) {
                m.numbers.push(n);
            }
        }
    }
    m
}

/// Finds `needle` in `haystack` at a word boundary.
fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !haystack[..abs]
                .chars()
                .last()
                .map(|c| c.is_alphanumeric())
                .unwrap_or(false);
        let after = abs + needle.len();
        let after_ok = after >= haystack.len()
            || !haystack[after..]
                .chars()
                .next()
                .map(|c| c.is_alphanumeric())
                .unwrap_or(false);
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + needle.len().max(1);
        if start >= haystack.len() {
            break;
        }
    }
    None
}

/// Parses a natural-language question into an intent, given the entity
/// catalog. Returns `None` when no intent pattern matches — the pipeline
/// then falls back to vector retrieval (as the paper describes).
pub fn parse_question(question: &str, cat: &EntityCatalog) -> Option<Intent> {
    let q = question.to_lowercase();
    let m = extract_mentions(question, cat);
    let has = |s: &str| q.contains(s);

    // ---- population questions ----
    if has("population") {
        if has("top-ranked") || has("top ranked") || has("best-ranked") || has("best ranked") {
            if let Some(c) = m.countries.first() {
                return Some(Intent::PopulationOfTopRanked { country: c.clone() });
            }
        }
        if (has("largest") || has("most") || has("biggest") || has("highest")) && m.asns.is_empty()
        {
            if let Some(c) = m.countries.first() {
                return Some(Intent::TopPopulationAs { country: c.clone() });
            }
        }
        if let (Some(&asn), Some(c)) = (m.asns.first(), m.countries.first()) {
            return Some(Intent::PopulationShare {
                asn,
                country: c.clone(),
            });
        }
        if let Some(c) = m.countries.first() {
            return Some(Intent::TopPopulationAs { country: c.clone() });
        }
    }

    // ---- shortest dependency path (before the generic upstream branch:
    // "dependency" contains "depend") ----
    if (has("shortest") || has("hops separate") || has("how many hops")) && m.asns.len() >= 2 {
        return Some(Intent::ShortestDependencyPath {
            a: m.asns[0],
            b: m.asns[1],
        });
    }

    // ---- upstream / transit questions ----
    if has("upstream")
        || has("depend")
        || has("transit provider")
        || has("providers")
        || has("transit-free")
        || has("transit free")
    {
        // Transit-free questions name a country, not a specific AS; check
        // before ASN-driven intents (an AS literally named "Free" would
        // otherwise hijack "transit-free").
        if has("no upstream")
            || has("without any upstream")
            || has("transit-free")
            || has("transit free")
        {
            if let Some(c) = m.countries.first() {
                return Some(Intent::TransitFreeInCountry { country: c.clone() });
            }
        }
        if m.asns.len() >= 2 && (has("common") || has("shared") || has("both")) {
            return Some(Intent::CommonUpstreams {
                a: m.asns[0],
                b: m.asns[1],
            });
        }
        if let Some(&asn) = m.asns.first() {
            if has("how many prefixes") || (has("prefix") && has("total")) {
                return Some(Intent::UpstreamPrefixCount { asn });
            }
            if has("countr") {
                return Some(Intent::UpstreamCountries { asn });
            }
            if has("directly or indirectly")
                || has("transitively")
                || has("recursively")
                || has("within")
            {
                return Some(Intent::TransitiveUpstreams { asn });
            }
            // Plain upstream list defaults to the transitive form only when
            // asked for "all"; otherwise treat as transitive too (hard).
            return Some(Intent::TransitiveUpstreams { asn });
        }
    }

    // ---- domain questions (before rank: "best-ranked domain") ----
    if has("domain") || !m.domains.is_empty() {
        if let Some(&asn) = m.asns.first() {
            if has("best") || has("top") || has("highest") {
                return Some(Intent::TopDomainOnAs { asn });
            }
            return Some(Intent::DomainsOnAs { asn });
        }
        if let Some(d) = m.domains.first() {
            if has("rank") {
                return Some(Intent::DomainRank { domain: d.clone() });
            }
        }
    }

    // ---- hegemony ----
    if has("hegemony") || has("transit centrality") {
        if let Some(&asn) = m.asns.first() {
            return Some(Intent::HegemonyOfAs { asn });
        }
    }

    // ---- rank questions ----
    if has("rank") {
        if let Some(d) = m.domains.first() {
            return Some(Intent::DomainRank { domain: d.clone() });
        }
        if (has("best") || has("top") || has("lowest") || has("highest")) && m.asns.is_empty() {
            if let Some(c) = m.countries.first() {
                return Some(Intent::TopRankedInCountry { country: c.clone() });
            }
        }
        if let Some(&asn) = m.asns.first() {
            return Some(Intent::AsRank { asn });
        }
    }

    // ---- prefix questions ----
    if has("prefix") || has("originate") || !m.prefixes.is_empty() {
        if let Some(p) = m.prefixes.first() {
            return Some(Intent::PrefixOrigin { prefix: p.clone() });
        }
        if let Some(&asn) = m.asns.first() {
            if has("ipv4") {
                return Some(Intent::PrefixesAfCount { asn, af: 4 });
            }
            if has("ipv6") {
                return Some(Intent::PrefixesAfCount { asn, af: 6 });
            }
            return Some(Intent::CountPrefixes { asn });
        }
        if let Some(c) = m.countries.first() {
            if has("average") || has("mean") {
                return Some(Intent::AvgPrefixesInCountry { country: c.clone() });
            }
            if has("top") || has("most") {
                let n = m.numbers.first().copied().unwrap_or(5) as u32;
                return Some(Intent::TopAsInCountryByPrefixes {
                    country: c.clone(),
                    n,
                });
            }
        }
    }

    // ---- IXP questions ----
    if has("ixp") || has("exchange point") || has("-ix") || !m.ixps.is_empty() {
        if m.asns.len() >= 2 {
            return Some(Intent::SharedIxps {
                a: m.asns[0],
                b: m.asns[1],
            });
        }
        if let Some(ixp) = m.ixps.first() {
            if let Some(c) = m.countries.first() {
                if has("member") {
                    return Some(Intent::IxpMembersFromCountry {
                        ixp: ixp.clone(),
                        country: c.clone(),
                    });
                }
            }
            // "country" contains "count" as a substring, so the location
            // question is checked first.
            if has("country") || has("where") || has("located") {
                return Some(Intent::IxpCountry { ixp: ixp.clone() });
            }
            if has("how many") || has("count") || has("member") {
                return Some(Intent::IxpMemberCount { ixp: ixp.clone() });
            }
        }
    }

    // ---- tag questions ----
    if let Some(tag) = m.tags.first() {
        if let Some(c) = m.countries.first() {
            return Some(Intent::TaggedAsInCountry {
                tag: tag.clone(),
                country: c.clone(),
            });
        }
    }

    // ---- organization ----
    if has("organization")
        || has("organisation")
        || has("managed by")
        || has("who runs")
        || has("operator")
    {
        if let Some(&asn) = m.asns.first() {
            return Some(Intent::OrgOfAs { asn });
        }
    }

    // ---- name / country / count of ASes ----
    if (has("how many") || has("count") || has("number of"))
        && (has("ases") || has("as es") || has("autonomous systems") || has("networks"))
    {
        if let Some(c) = m.countries.first() {
            return Some(Intent::CountAsInCountry { country: c.clone() });
        }
    }
    if has("name") {
        if let Some(&asn) = m.asns.first() {
            return Some(Intent::AsName { asn });
        }
    }
    if has("asn") || has("as number") || has("autonomous system number") {
        // "what is the ASN of IIJ" — AS name already resolved to an asn.
        if let Some(&asn) = m.asns.first() {
            return Some(Intent::AsnOfName {
                name: cat.as_display.get(&asn).cloned().unwrap_or_default(),
            });
        }
    }
    if has("which country") || has("what country") || has("registered in") || has("country of") {
        if let Some(&asn) = m.asns.first() {
            return Some(Intent::AsCountry { asn });
        }
        if let Some(ixp) = m.ixps.first() {
            return Some(Intent::IxpCountry { ixp: ixp.clone() });
        }
    }
    if let Some(&asn) = m.asns.first() {
        // Bare AS mention with a "what/tell me" shape: default to name.
        if has("what is") || has("tell me about") {
            return Some(Intent::AsName { asn });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_data::{generate, IypConfig};

    fn catalog() -> EntityCatalog {
        EntityCatalog::from_dataset(&generate(&IypConfig::tiny()))
    }

    #[test]
    fn difficulty_bands_follow_complexity() {
        assert_eq!(Intent::AsName { asn: 1 }.difficulty(), Difficulty::Easy);
        assert_eq!(
            Intent::PopulationShare {
                asn: 2497,
                country: "JP".into()
            }
            .difficulty(),
            Difficulty::Easy
        );
        assert_eq!(
            Intent::TopPopulationAs {
                country: "JP".into()
            }
            .difficulty(),
            Difficulty::Medium
        );
        assert_eq!(
            Intent::TransitiveUpstreams { asn: 2497 }.difficulty(),
            Difficulty::Hard
        );
        assert_eq!(
            Intent::PopulationOfTopRanked {
                country: "JP".into()
            }
            .difficulty(),
            Difficulty::Hard
        );
    }

    #[test]
    fn both_domains_cover_all_difficulties() {
        use std::collections::HashSet;
        let intents: Vec<Intent> = vec![
            Intent::AsName { asn: 1 },
            Intent::AsRank { asn: 1 },
            Intent::TopPopulationAs {
                country: "JP".into(),
            },
            Intent::SharedIxps { a: 1, b: 2 },
            Intent::PopulationOfTopRanked {
                country: "JP".into(),
            },
            Intent::CommonUpstreams { a: 1, b: 2 },
        ];
        let combos: HashSet<(Difficulty, Domain)> = intents
            .iter()
            .map(|i| (i.difficulty(), i.domain()))
            .collect();
        assert!(combos.len() >= 5, "combos: {combos:?}");
    }

    #[test]
    fn mentions_extract_asn_forms() {
        let cat = catalog();
        let m = extract_mentions("What is the name of AS2497?", &cat);
        assert_eq!(m.asns, vec![2497]);
        let m = extract_mentions("Compare AS 2497 with asn 15169", &cat);
        assert_eq!(m.asns, vec![2497, 15169]);
    }

    #[test]
    fn mentions_resolve_network_and_country_names() {
        let cat = catalog();
        let m = extract_mentions("What share of Japan's population does IIJ serve?", &cat);
        assert!(m.asns.contains(&2497), "asns: {:?}", m.asns);
        assert_eq!(m.countries, vec!["JP"]);
    }

    #[test]
    fn mentions_find_prefixes() {
        let cat = catalog();
        let m = extract_mentions("Who originates 203.0.113.0/24?", &cat);
        assert_eq!(m.prefixes, vec!["203.0.113.0/24"]);
    }

    #[test]
    fn parse_easy_questions() {
        let cat = catalog();
        assert_eq!(
            parse_question("What is the name of AS2497?", &cat),
            Some(Intent::AsName { asn: 2497 })
        );
        assert_eq!(
            parse_question("In which country is AS15169 registered in?", &cat),
            Some(Intent::AsCountry { asn: 15169 })
        );
        assert_eq!(
            parse_question("How many ASes are registered in Germany?", &cat),
            Some(Intent::CountAsInCountry {
                country: "DE".into()
            })
        );
        assert_eq!(
            parse_question("How many prefixes does AS2497 originate?", &cat),
            Some(Intent::CountPrefixes { asn: 2497 })
        );
    }

    #[test]
    fn parse_the_paper_example() {
        let cat = catalog();
        assert_eq!(
            parse_question(
                "What is the percentage of Japan's population in AS2497?",
                &cat
            ),
            Some(Intent::PopulationShare {
                asn: 2497,
                country: "JP".into()
            })
        );
    }

    #[test]
    fn parse_medium_and_hard_questions() {
        let cat = catalog();
        assert_eq!(
            parse_question(
                "Which AS serves the largest share of the population of Japan?",
                &cat
            ),
            Some(Intent::TopPopulationAs {
                country: "JP".into()
            })
        );
        assert_eq!(
            parse_question(
                "Which upstream providers do AS2497 and AS15169 have in common?",
                &cat
            ),
            Some(Intent::CommonUpstreams { a: 2497, b: 15169 })
        );
        assert_eq!(
            parse_question(
                "Which ASes does AS2497 depend on directly or indirectly?",
                &cat
            ),
            Some(Intent::TransitiveUpstreams { asn: 2497 })
        );
    }

    #[test]
    fn multi_mention_extraction_is_position_ordered() {
        let cat = catalog();
        let ixp_a = cat.ixps.values().min().unwrap().clone();
        let ixp_b = cat.ixps.values().max().unwrap().clone();
        let q = format!("Compare {ixp_b} with {ixp_a} please");
        let m = extract_mentions(&q, &cat);
        assert_eq!(m.ixps, vec![ixp_b, ixp_a], "mentions not in text order");
    }

    #[test]
    fn ixp_name_containing_country_does_not_leak_the_country() {
        let cat = catalog();
        // Synthesize a catalog entry whose name embeds a country name.
        let mut cat = cat;
        cat.ixps
            .insert("mexico city-ix".into(), "Mexico City-IX".into());
        let m = extract_mentions("How many members does Mexico City-IX have?", &cat);
        assert_eq!(m.ixps, vec!["Mexico City-IX".to_string()]);
        assert!(m.countries.is_empty(), "country leaked: {:?}", m.countries);
    }

    #[test]
    fn from_graph_matches_from_dataset_entity_maps() {
        let d = generate(&IypConfig::tiny());
        let from_dataset = EntityCatalog::from_dataset(&d);
        let from_graph = EntityCatalog::from_graph(&d.graph);
        assert_eq!(from_graph.as_names, from_dataset.as_names);
        assert_eq!(from_graph.as_display, from_dataset.as_display);
        assert_eq!(from_graph.ixps, from_dataset.ixps);
        assert_eq!(from_graph.domains, from_dataset.domains);
        assert_eq!(from_graph.tags, from_dataset.tags);
        assert_eq!(from_graph.countries, from_dataset.countries);
    }

    #[test]
    fn apply_delta_matches_full_rebuild_and_tracks_renames() {
        let d = generate(&IypConfig::tiny());
        let old_graph = d.graph;
        // growth_batch adds fresh ASes and renames an existing one.
        let batch = iyp_data::growth_batch(&old_graph, 11, 9);
        let mut new_graph = old_graph.clone();
        let applied = batch.apply_tracked(&mut new_graph).unwrap();
        let delta = iyp_data::describe_delta(&new_graph, &applied);

        let mut patched = EntityCatalog::from_graph(&old_graph);
        patched.apply_delta(&old_graph, &new_graph, &delta);
        assert_eq!(patched, EntityCatalog::from_graph(&new_graph));

        // The patched catalog resolves a newly ingested network by name…
        let new_asn = iyp_data::max_asn(&new_graph) as u32;
        let new_name = format!("ingest networks {new_asn}");
        assert_eq!(patched.as_names.get(&new_name), Some(&new_asn));
        // …and parse_question routes a question about it to an intent.
        let q = format!("What is the ASN of Ingest Networks {new_asn}?");
        assert!(
            parse_question(&q, &patched).is_some(),
            "patched catalog failed to resolve {q:?}"
        );
        let stale = EntityCatalog::from_graph(&old_graph);
        assert!(
            parse_question(&q, &stale).is_none(),
            "stale catalog unexpectedly resolved the new network"
        );
    }

    #[test]
    fn unparseable_returns_none() {
        let cat = catalog();
        assert_eq!(
            parse_question("Tell me something interesting about the weather", &cat),
            None
        );
    }
}
