//! The LLMReranker stage: a shallow relevance scorer over retrieval
//! candidates, combining embedding similarity with entity-mention overlap.

use crate::model::SimLm;
use iyp_embed::Embedder;

/// A scored candidate, ordered best-first.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked {
    /// Index into the input candidate list.
    pub index: usize,
    /// Relevance score (higher is better).
    pub score: f64,
}

/// The reranker.
pub struct Reranker {
    lm: SimLm,
    embedder: Embedder,
}

impl Reranker {
    /// Creates a reranker driven by the given simulated LM.
    pub fn new(lm: SimLm) -> Self {
        Reranker {
            lm,
            embedder: Embedder::default(),
        }
    }

    /// Scores and sorts candidate context texts for a question, returning
    /// the top `k`.
    pub fn rerank(&self, question: &str, candidates: &[String], k: usize) -> Vec<Ranked> {
        let qv = self.embedder.embed(question);
        let q_tokens: Vec<String> = iyp_embed::tokenize::words(question)
            .into_iter()
            .filter(|t| t.len() >= 3)
            .collect();
        let mut ranked: Vec<Ranked> = candidates
            .iter()
            .enumerate()
            .map(|(index, text)| {
                let cv = self.embedder.embed(text);
                let cos = f64::from(qv.cosine(&cv));
                let c_tokens = iyp_embed::tokenize::words(text);
                let overlap = if q_tokens.is_empty() {
                    0.0
                } else {
                    q_tokens.iter().filter(|t| c_tokens.contains(t)).count() as f64
                        / q_tokens.len() as f64
                };
                // A whisper of judge noise: a shallow LLM scorer is not a
                // perfectly stable function either.
                let noise = (self.lm.noise(&format!("rr:{question}|{index}")) - 0.5) * 0.02;
                Ranked {
                    index,
                    score: 0.6 * cos + 0.4 * overlap + noise,
                }
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reranker_prefers_entity_matching_context() {
        let r = Reranker::new(SimLm::with_seed(1));
        let candidates = vec![
            "AS15169 Google operates cloud networks in the United States".to_string(),
            "AS2497 IIJ serves 33.3% of the population of Japan".to_string(),
            "Frankfurt-IX is an exchange point in Germany".to_string(),
        ];
        let ranked = r.rerank(
            "What share of Japan's population does AS2497 serve?",
            &candidates,
            3,
        );
        assert_eq!(ranked[0].index, 1, "ranked: {ranked:?}");
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn top_k_truncates() {
        let r = Reranker::new(SimLm::with_seed(1));
        let candidates = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        assert_eq!(r.rerank("q", &candidates, 2).len(), 2);
    }

    #[test]
    fn deterministic() {
        let r = Reranker::new(SimLm::with_seed(9));
        let candidates = vec!["alpha network".to_string(), "beta network".to_string()];
        assert_eq!(
            r.rerank("alpha", &candidates, 2),
            r.rerank("alpha", &candidates, 2)
        );
    }

    #[test]
    fn empty_candidates() {
        let r = Reranker::new(SimLm::with_seed(1));
        assert!(r.rerank("q", &[], 5).is_empty());
    }
}
