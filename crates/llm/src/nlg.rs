//! Natural-language generation: verbalizing query results into answers.
//!
//! Facts come straight from the query result; phrasing is drawn from a
//! bank of paraphrases keyed by the simulated LM. The paraphrase variety
//! is deliberate: it reproduces the paper's observation that BLEU/ROUGE
//! punish semantically-correct answers whose wording differs from the
//! reference.

use crate::intent::Intent;
use crate::model::SimLm;
use iyp_cypher::QueryResult;
use iyp_graphdb::Value;

/// Which voice phrases the answer. The assistant (ChatIYP's generation
/// stage) and the validation model (which writes reference answers) use
/// disjoint template banks: in the paper both are GPT-3.5 runs with
/// different prompts, so references are semantically equal but rarely
/// word-identical — the exact condition under which BLEU over-penalizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// ChatIYP's answer voice.
    Chat,
    /// The validation model's reference voice.
    Reference,
}

/// Verbalizes a query result as an answer to `question` in the assistant
/// voice.
///
/// `intent` (when known) selects a quantity description so answers read
/// naturally ("The CAIDA rank of AS2497 is 14" rather than "the value is
/// 14").
pub fn generate_answer(
    lm: &SimLm,
    question: &str,
    intent: Option<&Intent>,
    result: &QueryResult,
) -> String {
    generate_styled(lm, Style::Chat, question, intent, result)
}

/// Verbalizes in the validation-model voice (reference answers).
pub fn generate_reference(
    lm: &SimLm,
    question: &str,
    intent: Option<&Intent>,
    result: &QueryResult,
) -> String {
    generate_styled(lm, Style::Reference, question, intent, result)
}

/// Verbalizes a query result in the given voice.
pub fn generate_styled(
    lm: &SimLm,
    style: Style,
    question: &str,
    intent: Option<&Intent>,
    result: &QueryResult,
) -> String {
    if result.is_empty() {
        let options: &[&str] = match style {
            Style::Chat => &[
                "I could not find any data matching that question in the IYP graph.",
                "The IYP graph returned no results for this query.",
                "No matching records were found in IYP.",
            ],
            Style::Reference => &[
                "There is no record answering this question in IYP.",
                "The gold query over IYP yields an empty result.",
                "No data exists for this question.",
            ],
        };
        return options[lm.choose(&format!("empty:{question}"), options.len())].to_string();
    }

    let quantity = intent
        .map(quantity_phrase)
        .unwrap_or_else(|| "value".to_string());

    if let Some(v) = result.single_value() {
        let value = render_value(v);
        let options: Vec<String> = match style {
            Style::Chat => vec![
                format!("The {quantity} is {value}."),
                format!("According to IYP, the {quantity} is {value}."),
                format!("{value} — that is the {quantity} recorded in IYP."),
                format!("IYP reports a {quantity} of {value}."),
            ],
            Style::Reference => vec![
                format!("The correct {quantity} equals {value}."),
                format!("Gold answer: the {quantity} comes to {value}."),
                format!("Per the annotated query, the {quantity} amounts to {value}."),
            ],
        };
        return options[lm.choose(&format!("single:{question}"), options.len())].clone();
    }

    if result.rows.len() == 1 {
        // One row, several columns: state them pairwise.
        let pairs: Vec<String> = result
            .columns
            .iter()
            .zip(&result.rows[0])
            .map(|(c, v)| format!("{} = {}", friendly_column(c), render_value(v)))
            .collect();
        let body = pairs.join(", ");
        let options: Vec<String> = match style {
            Style::Chat => vec![
                format!("The {quantity}: {body}."),
                format!("IYP returns for the {quantity}: {body}."),
                format!("Here is what IYP records for the {quantity} — {body}."),
            ],
            Style::Reference => vec![
                format!("Gold record for the {quantity}: {body}."),
                format!("The annotated query for the {quantity} yields {body}."),
            ],
        };
        return options[lm.choose(&format!("row:{question}"), options.len())].clone();
    }

    // Many rows: list up to a cap, summarizing the remainder.
    const CAP: usize = 8;
    let shown: Vec<String> = result
        .rows
        .iter()
        .take(CAP)
        .map(|row| {
            if row.len() == 1 {
                render_value(&row[0])
            } else {
                format!(
                    "({})",
                    row.iter().map(render_value).collect::<Vec<_>>().join(", ")
                )
            }
        })
        .collect();
    let more = result.rows.len().saturating_sub(CAP);
    let list = shown.join(", ");
    let n = result.rows.len();
    let options: Vec<String> = match style {
        Style::Chat => {
            let tail = if more > 0 {
                format!(" and {more} more")
            } else {
                String::new()
            };
            vec![
                format!("I found {n} results for the {quantity}: {list}{tail}."),
                format!("There are {n} matching records for the {quantity}: {list}{tail}."),
                format!("IYP lists {n} results for the {quantity} — {list}{tail}."),
            ]
        }
        Style::Reference => {
            let tail = if more > 0 {
                format!(" plus {more} further rows")
            } else {
                String::new()
            };
            vec![
                format!("Gold result set for the {quantity} ({n} rows): {list}{tail}."),
                format!(
                    "The annotated query for the {quantity} returns {n} rows, namely {list}{tail}."
                ),
            ]
        }
    };
    options[lm.choose(&format!("list:{question}"), options.len())].clone()
}

/// Renders a single value for inclusion in prose.
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Float(f) => {
            if (f - f.round()).abs() < 1e-9 {
                format!("{}", f.round() as i64)
            } else {
                format!("{f:.2}")
            }
        }
        Value::List(items) => items
            .iter()
            .map(render_value)
            .collect::<Vec<_>>()
            .join(", "),
        other => other.to_string(),
    }
}

fn friendly_column(col: &str) -> String {
    // `a.asn` → `asn`, `count(p)` stays.
    match col.rsplit_once('.') {
        Some((_, tail)) if !tail.contains('(') => tail.to_string(),
        _ => col.to_string(),
    }
}

/// A human-readable description of the quantity an intent asks for.
pub fn quantity_phrase(intent: &Intent) -> String {
    use Intent::*;
    match intent {
        AsName { asn } => format!("name of AS{asn}"),
        AsnOfName { name } => format!("AS number of {name}"),
        AsCountry { asn } => format!("registration country of AS{asn}"),
        CountAsInCountry { country } => format!("number of ASes registered in {country}"),
        AsRank { asn } => format!("CAIDA ASRank of AS{asn}"),
        CountPrefixes { asn } => format!("number of prefixes originated by AS{asn}"),
        PrefixOrigin { prefix } => format!("origin AS of {prefix}"),
        DomainRank { domain } => format!("Tranco rank of {domain}"),
        IxpCountry { ixp } => format!("country of {ixp}"),
        IxpMemberCount { ixp } => format!("member count of {ixp}"),
        PopulationShare { asn, country } => {
            format!("share of {country}'s population served by AS{asn}")
        }
        OrgOfAs { asn } => format!("organization managing AS{asn}"),
        TopAsInCountryByPrefixes { country, n } => {
            format!("top {n} ASes of {country} by originated prefixes")
        }
        TopPopulationAs { country } => {
            format!("AS serving the largest population share in {country}")
        }
        PrefixesAfCount { asn, af } => format!("number of IPv{af} prefixes of AS{asn}"),
        IxpMembersFromCountry { ixp, country } => {
            format!("members of {ixp} registered in {country}")
        }
        SharedIxps { a, b } => format!("IXPs shared by AS{a} and AS{b}"),
        TopRankedInCountry { country } => format!("best-ranked AS in {country}"),
        AvgPrefixesInCountry { country } => {
            format!("average prefixes per AS in {country}")
        }
        TaggedAsInCountry { tag, country } => {
            format!("number of {tag} ASes in {country}")
        }
        TransitiveUpstreams { asn } => format!("transitive upstream providers of AS{asn}"),
        CommonUpstreams { a, b } => format!("common upstreams of AS{a} and AS{b}"),
        UpstreamCountries { asn } => format!("countries of AS{asn}'s upstream providers"),
        TopDomainOnAs { asn } => format!("best-ranked domain hosted on AS{asn}"),
        UpstreamPrefixCount { asn } => {
            format!("prefixes originated by AS{asn}'s upstream providers")
        }
        PopulationOfTopRanked { country } => {
            format!("population share of {country}'s best-ranked AS")
        }
        DomainsOnAs { asn } => format!("domains resolving to AS{asn}"),
        ShortestDependencyPath { a, b } => {
            format!("shortest dependency path length from AS{a} to AS{b}")
        }
        TransitFreeInCountry { country } => {
            format!("transit-free ASes registered in {country}")
        }
        HegemonyOfAs { asn } => format!("hegemony score of AS{asn}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LmConfig;

    fn result1(v: Value) -> QueryResult {
        QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![v]],
        }
    }

    #[test]
    fn single_value_answer_contains_the_fact() {
        let lm = SimLm::with_seed(1);
        let ans = generate_answer(
            &lm,
            "What is the percentage of Japan's population in AS2497?",
            Some(&Intent::PopulationShare {
                asn: 2497,
                country: "JP".into(),
            }),
            &result1(Value::Float(33.3)),
        );
        assert!(ans.contains("33.3"), "answer: {ans}");
        assert!(ans.to_lowercase().contains("population"), "answer: {ans}");
    }

    #[test]
    fn empty_result_says_so() {
        let lm = SimLm::with_seed(1);
        let ans = generate_answer(&lm, "anything", None, &QueryResult::empty());
        assert!(ans.to_lowercase().contains("no ") || ans.to_lowercase().contains("not find"));
    }

    #[test]
    fn list_answer_caps_and_counts() {
        let lm = SimLm::with_seed(1);
        let rows: Vec<Vec<Value>> = (0..12).map(|i| vec![Value::Int(i)]).collect();
        let r = QueryResult {
            columns: vec!["asn".into()],
            rows,
        };
        let ans = generate_answer(&lm, "list them", None, &r);
        assert!(ans.contains("12"), "answer: {ans}");
        assert!(ans.contains("4 more"), "answer: {ans}");
    }

    #[test]
    fn different_seeds_can_phrase_differently() {
        let a = generate_answer(
            &SimLm::new(LmConfig {
                seed: 1,
                ..LmConfig::default()
            }),
            "q1",
            None,
            &result1(Value::Int(7)),
        );
        // Probe a few seeds; at least one must differ in phrasing while
        // agreeing on the fact.
        let mut saw_different = false;
        for seed in 2..10 {
            let b = generate_answer(
                &SimLm::new(LmConfig {
                    seed,
                    ..LmConfig::default()
                }),
                "q1",
                None,
                &result1(Value::Int(7)),
            );
            assert!(b.contains('7'));
            if b != a {
                saw_different = true;
            }
        }
        assert!(saw_different, "no paraphrase variety across seeds");
    }

    #[test]
    fn floats_render_compactly() {
        assert_eq!(render_value(&Value::Float(33.3)), "33.30");
        assert_eq!(render_value(&Value::Float(4.0)), "4");
        assert_eq!(render_value(&Value::Int(12)), "12");
    }
}
