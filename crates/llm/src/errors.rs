//! The translation error model.
//!
//! The paper's Finding 2 is that ChatIYP's accuracy degrades with
//! *structural* complexity (hops, joins, aggregation depth), not with
//! domain. This module encodes that mechanism: a complexity score per
//! query shape, a logistic error curve over it, and the catalogue of
//! structural mutations an errant translation exhibits.

use serde::{Deserialize, Serialize};

/// Structural complexity of a query shape. Roughly: one point per pattern
/// hop, one per aggregation, one per extra joined entity, two per
/// variable-length segment.
pub fn complexity_score(hops: u32, aggregations: u32, joins: u32, var_length: u32) -> u32 {
    hops + aggregations + joins + 2 * var_length
}

/// Probability that a translation of complexity `c` by a model of the
/// given skill goes wrong: a logistic curve in `c`, scaled by `1 - skill`.
///
/// At the default skill (0.72) this gives roughly 9% error at c=1,
/// 28% at c=3 and 55% at c=5+ — matching the Easy/Medium/Hard gradient of
/// the paper's Figure 2b.
pub fn error_probability(skill: f64, complexity: u32) -> f64 {
    let skill = skill.clamp(0.0, 1.0);
    let c = complexity as f64;
    let base = 1.0 / (1.0 + (-(c - 3.2) * 0.9).exp());
    (base * (1.35 - skill)).clamp(0.0, 0.97)
}

/// The kinds of structural mistakes an errant translation makes. Which
/// one is drawn depends deterministically on the question key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TranslationError {
    /// A relationship type is replaced by a schema-plausible wrong one
    /// (e.g. `COUNTRY` instead of `POPULATION`).
    WrongRelType,
    /// One hop of a multi-hop pattern is dropped.
    MissingHop,
    /// A relationship direction is flipped.
    WrongDirection,
    /// A property name is wrong (e.g. `code` instead of `country_code`).
    WrongProperty,
    /// A `WHERE`/inline filter is dropped, over-returning.
    DroppedFilter,
    /// The wrong aggregation is used (e.g. `collect` instead of `count`).
    WrongAggregate,
    /// The model produces no usable query at all.
    NoQuery,
}

/// All error kinds, in draw order.
pub const ERROR_KINDS: &[TranslationError] = &[
    TranslationError::WrongRelType,
    TranslationError::MissingHop,
    TranslationError::WrongDirection,
    TranslationError::WrongProperty,
    TranslationError::DroppedFilter,
    TranslationError::WrongAggregate,
    TranslationError::NoQuery,
];

/// Draws an error kind for a failing translation. Simple shapes can't
/// lose hops, so the draw respects the query's structure.
pub fn draw_error(pick: usize, hops: u32) -> TranslationError {
    let applicable: Vec<TranslationError> = ERROR_KINDS
        .iter()
        .copied()
        .filter(|e| match e {
            TranslationError::MissingHop | TranslationError::WrongDirection => hops >= 1,
            _ => true,
        })
        .collect();
    applicable[pick % applicable.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_weights_var_length_double() {
        assert_eq!(complexity_score(1, 0, 0, 0), 1);
        assert_eq!(complexity_score(2, 1, 0, 0), 3);
        assert_eq!(complexity_score(1, 0, 0, 1), 3);
        assert_eq!(complexity_score(3, 1, 1, 1), 7);
    }

    #[test]
    fn error_curve_is_monotone_in_complexity_and_skill() {
        for skill in [0.2, 0.5, 0.72, 0.95] {
            let mut last = -1.0;
            for c in 0..8 {
                let p = error_probability(skill, c);
                assert!(p >= last, "not monotone at skill={skill} c={c}");
                assert!((0.0..=0.97).contains(&p));
                last = p;
            }
        }
        assert!(error_probability(0.9, 3) < error_probability(0.5, 3));
    }

    #[test]
    fn default_skill_calibration_bands() {
        // These bands pin the Figure 2b shape; adjust deliberately only.
        let easy = error_probability(0.72, 1);
        let medium = error_probability(0.72, 3);
        let hard = error_probability(0.72, 5);
        assert!(easy < 0.15, "easy error too high: {easy}");
        assert!(
            (0.2..0.45).contains(&medium),
            "medium out of band: {medium}"
        );
        assert!(hard > 0.45, "hard error too low: {hard}");
    }

    #[test]
    fn draw_respects_structure() {
        for pick in 0..20 {
            let e = draw_error(pick, 0);
            assert!(
                !matches!(
                    e,
                    TranslationError::MissingHop | TranslationError::WrongDirection
                ),
                "hopless query drew {e:?}"
            );
        }
    }
}
