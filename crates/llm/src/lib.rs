//! # iyp-llm
//!
//! The simulated language-model substrate of the ChatIYP reproduction —
//! the offline stand-in for GPT-3.5-Turbo (generation / text-to-Cypher)
//! and GPT-4 (G-Eval judging).
//!
//! Components:
//! * [`model::SimLm`] — deterministic seeded "model" with competence and
//!   paraphrase-variety knobs;
//! * [`intent`] — the question semantic space shared with the benchmark;
//! * [`text2cypher`] — NL → Cypher with a complexity-calibrated
//!   structural error model ([`errors`]);
//! * [`nlg`] — result verbalization with paraphrase variety;
//! * [`rerank`] — the shallow LLMReranker scorer;
//! * [`judge`] — the G-Eval judge (factuality / relevance /
//!   informativeness, bimodal output).
//!
//! Why a simulation is faithful here: the paper's findings are about (a)
//! which *metrics* separate good from bad answers, and (b) how accuracy
//! falls with *structural complexity*. Both are properties of the failure
//! distribution, not of GPT-3.5 itself; the error model reproduces that
//! distribution mechanistically and deterministically (see DESIGN.md).

#![deny(missing_docs)]

pub mod errors;
pub mod intent;
pub mod judge;
pub mod model;
pub mod nlg;
pub mod prompt;
pub mod rerank;
pub mod text2cypher;

pub use errors::TranslationError;
pub use intent::{Difficulty, Domain, EntityCatalog, Intent};
pub use judge::{GEvalJudge, Judgment};
pub use model::{LmConfig, SimLm};
pub use nlg::{generate_answer, generate_reference, Style};
pub use rerank::Reranker;
pub use text2cypher::{canonical_cypher, Translation, Translator};
