//! The two-tier query cache: plan reuse + epoch-invalidated result reuse.
//!
//! Text-to-Cypher traffic is dominated by repeated, templated queries over
//! a slowly changing graph, so both fixed per-query costs are cacheable:
//!
//! * **Tier 1 — plan cache** ([`iyp_cypher::PlanCache`]): normalized query
//!   text → parsed query, shared as `Arc<Query>` across threads. Hit on
//!   any repeat of the text, even when the result tier misses.
//! * **Tier 2 — result cache** (this module): `(normalized query, params)`
//!   → materialized [`QueryResult`], bounded LRU with optional TTL.
//!
//! Correctness rests on the graph's monotonic **write epoch**
//! ([`iyp_graphdb::Graph::epoch`]), read off the immutable
//! [`GraphSnapshot`] every query executes against: each entry records
//! the epoch it was computed at, and a lookup whose recorded epoch
//! differs from the snapshot's epoch discards the entry instead of
//! serving it. Any CREATE/MERGE/SET/DELETE bumps the epoch, and
//! [`iyp_graphdb::GraphStore`] keeps the epoch strictly increasing
//! across snapshot swaps, so a stale result can never be returned — not
//! within a snapshot's lifetime and not across an ingest — with no
//! invalidation bookkeeping to get wrong, at the cost of a full logical
//! flush on any write (the right trade for a read-mostly graph).
//!
//! Hits return the result behind an [`Arc`] so heavy rows are never
//! copied on the hot path; counters (hits, misses, evictions, epoch
//! invalidations, TTL expirations) are exported via [`QueryCache::stats`]
//! and surfaced by the server's `/stats` endpoint.

use crate::obs::STAGE_METRIC;
use iyp_cypher::cache::Lru;
use iyp_cypher::{CypherError, ExecLimits, Params, PlanCache, QueryResult};
use iyp_graphdb::GraphSnapshot;
use iyp_obs::{Histogram, Registry};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Configuration of the query cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Master switch; when false every lookup executes cold and nothing
    /// is stored (counters still advance, all as misses).
    pub enabled: bool,
    /// Maximum resident results (tier 2).
    pub capacity: usize,
    /// Maximum resident parsed plans (tier 1).
    pub plan_capacity: usize,
    /// Results older than this are re-executed even at an unchanged
    /// epoch. `None` disables TTL expiry (the epoch alone guarantees
    /// correctness; a TTL only bounds staleness across graph *swaps*).
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            capacity: 1024,
            plan_capacity: 512,
            ttl: None,
        }
    }
}

/// Counter snapshot of a [`QueryCache`], serialized into `/stats`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CacheStats {
    /// Result-tier lookups answered from the cache.
    pub hits: u64,
    /// Result-tier lookups that executed the query.
    pub misses: u64,
    /// Result entries dropped to make room.
    pub evictions: u64,
    /// Result entries discarded because the graph epoch moved.
    pub invalidations: u64,
    /// Result entries discarded because their TTL elapsed.
    pub expirations: u64,
    /// Live result entries.
    pub len: usize,
    /// Result-tier capacity.
    pub capacity: usize,
    /// Plan-tier counters.
    pub plan: iyp_cypher::PlanCacheStats,
}

struct CachedResult {
    result: Arc<QueryResult>,
    /// Graph epoch the result was computed at.
    epoch: u64,
    /// Insertion time, for TTL expiry.
    inserted: Instant,
}

/// Pre-resolved histogram handles for the per-query stages, so the hot
/// path records latencies without a registry probe.
struct StageTimers {
    cache_lookup: Arc<Histogram>,
    parse: Arc<Histogram>,
    compile: Arc<Histogram>,
    plan: Arc<Histogram>,
    execute: Arc<Histogram>,
}

impl StageTimers {
    fn new(registry: &Registry) -> StageTimers {
        let h = |stage| registry.histogram(STAGE_METRIC, &[("stage", stage)]);
        StageTimers {
            cache_lookup: h("cache_lookup"),
            parse: h("parse"),
            compile: h("compile"),
            plan: h("plan"),
            execute: h("execute"),
        }
    }
}

/// The two-tier cache. One instance is shared by the pipeline's `ask`
/// path and the server's `/cypher` endpoint, so both workloads warm the
/// same entries.
pub struct QueryCache {
    config: CacheConfig,
    plans: PlanCache,
    results: Mutex<Lru<CachedResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    expirations: AtomicU64,
    /// Stage latency histograms, when a metric registry is attached.
    timers: Option<StageTimers>,
}

// Shared by server workers alongside the pipeline.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryCache>();
};

impl QueryCache {
    /// Builds a cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        QueryCache {
            plans: PlanCache::new(config.plan_capacity),
            results: Mutex::new(Lru::new(config.capacity)),
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
            timers: None,
        }
    }

    /// Attaches a metric registry: the cache records per-query stage
    /// latencies (`cache_lookup`, `parse`, `plan`, `execute`) into
    /// [`STAGE_METRIC`] histograms resolved once here.
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.timers = Some(StageTimers::new(registry));
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn lock(&self) -> MutexGuard<'_, Lru<CachedResult>> {
        self.results.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The cache key: normalized query text plus canonically serialized
    /// parameters (`Params` is a `BTreeMap`, so serialization is
    /// deterministic). A NUL separates the parts — it cannot appear in
    /// the JSON params rendering, so keys never collide across the split.
    fn key(src: &str, params: &Params) -> String {
        let mut key = iyp_cypher::normalize_query(src);
        if !params.is_empty() {
            key.push('\0');
            key.push_str(&serde_json::to_string(params).expect("params serialize"));
        }
        key
    }

    /// Executes `src` read-only against `snap`, serving a cached result
    /// when one exists for the snapshot's write epoch.
    pub fn get_or_execute(
        &self,
        snap: &GraphSnapshot,
        src: &str,
        params: &Params,
    ) -> Result<Arc<QueryResult>, CypherError> {
        self.get_or_execute_with_limits(snap, src, params, ExecLimits::none())
    }

    /// [`QueryCache::get_or_execute`] with a wall-clock deadline applied
    /// to cold executions — the server's untrusted-Cypher entry point.
    pub fn get_or_execute_with_deadline(
        &self,
        snap: &GraphSnapshot,
        src: &str,
        params: &Params,
        timeout: Duration,
    ) -> Result<Arc<QueryResult>, CypherError> {
        self.get_or_execute_with_limits(snap, src, params, ExecLimits::timeout(timeout))
    }

    /// The general form: cold executions run under `limits`.
    pub fn get_or_execute_with_limits(
        &self,
        snap: &GraphSnapshot,
        src: &str,
        params: &Params,
        limits: ExecLimits,
    ) -> Result<Arc<QueryResult>, CypherError> {
        if !self.config.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let p = self.prepare_timed(src)?;
            return self.execute_timed(snap, &p, params, limits);
        }

        let key = Self::key(src, params);
        // The snapshot is immutable, so its epoch is the one the whole
        // query runs at — entries recorded here can only ever be served
        // to readers holding a snapshot with the same epoch.
        let epoch = snap.epoch();

        {
            let lookup_start = self.timers.as_ref().map(|_| Instant::now());
            let mut lru = self.lock();
            let verdict = lru.get(&key).map(|entry| {
                if entry.epoch != epoch {
                    Err(&self.invalidations)
                } else if self
                    .config
                    .ttl
                    .is_some_and(|ttl| entry.inserted.elapsed() > ttl)
                {
                    Err(&self.expirations)
                } else {
                    Ok(Arc::clone(&entry.result))
                }
            });
            if let (Some(t), Some(t0)) = (&self.timers, lookup_start) {
                t.cache_lookup.observe(t0.elapsed());
            }
            match verdict {
                Some(Ok(result)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(result);
                }
                Some(Err(counter)) => {
                    counter.fetch_add(1, Ordering::Relaxed);
                    lru.remove(&key);
                }
                None => {}
            }
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let p = self.prepare_timed(src)?;
        let result = self.execute_timed(snap, &p, params, limits)?;
        let entry = CachedResult {
            result: Arc::clone(&result),
            epoch,
            inserted: Instant::now(),
        };
        if self.lock().insert(key, entry) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(result)
    }

    /// Parses and compiles through the plan cache, splitting the wall
    /// clock into the `parse` and `compile` stages. Compilation happens
    /// inside [`iyp_cypher::PlanCache::prepare`] on plan-tier misses, so
    /// the split takes a delta of the compiler's thread-local clock
    /// ([`iyp_cypher::compile_time_ns`]); plan-tier hits record a
    /// zero-length `compile` observation (the compiled form is reused).
    fn prepare_timed(&self, src: &str) -> Result<iyp_cypher::Prepared, CypherError> {
        let Some(t) = &self.timers else {
            return self.plans.prepare(src);
        };
        let c0 = iyp_cypher::compile_time_ns();
        let t0 = Instant::now();
        let p = self.plans.prepare(src);
        let total_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let compile_ns = iyp_cypher::compile_time_ns().wrapping_sub(c0);
        t.compile.observe_ns(compile_ns);
        t.parse.observe_ns(total_ns.saturating_sub(compile_ns));
        p
    }

    /// Executes a cold query through its cached compiled form, splitting
    /// its wall clock into the `plan` and `execute` stages. Planning
    /// happens lazily inside `MATCH` execution, so the split takes a
    /// delta of the executor's thread-local planning clock
    /// ([`iyp_cypher::plan::plan_time_ns`]).
    fn execute_timed(
        &self,
        snap: &GraphSnapshot,
        prepared: &iyp_cypher::Prepared,
        params: &Params,
        limits: ExecLimits,
    ) -> Result<Arc<QueryResult>, CypherError> {
        let compiled = prepared.compiled.as_deref();
        let Some(t) = &self.timers else {
            return Ok(Arc::new(iyp_cypher::execute_prepared_with_limits(
                snap.graph(),
                &prepared.query,
                compiled,
                params,
                limits,
            )?));
        };
        let plan0 = iyp_cypher::plan::plan_time_ns();
        let t0 = Instant::now();
        let result = iyp_cypher::execute_prepared_with_limits(
            snap.graph(),
            &prepared.query,
            compiled,
            params,
            limits,
        );
        let total_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let plan_ns = iyp_cypher::plan::plan_time_ns().wrapping_sub(plan0);
        t.plan.observe_ns(plan_ns);
        t.execute.observe_ns(total_ns.saturating_sub(plan_ns));
        Ok(Arc::new(result?))
    }

    /// Current counters and occupancy for both tiers.
    pub fn stats(&self) -> CacheStats {
        let lru = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            len: lru.len(),
            capacity: lru.capacity(),
            plan: self.plans.stats(),
        }
    }

    /// Drops every cached result and plan (counters are retained).
    pub fn clear(&self) {
        self.lock().clear();
        self.plans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graphdb::{props, Graph, Props, Value};

    fn tiny_graph() -> GraphSnapshot {
        let mut g = Graph::new();
        let a = g.add_node(["AS"], props!("asn" => 2497i64, "name" => "IIJ"));
        let b = g.add_node(["AS"], props!("asn" => 15169i64, "name" => "Google"));
        let c = g.add_node(["Country"], props!("country_code" => "JP"));
        g.add_rel(a, "COUNTRY", c, Props::new()).unwrap();
        g.add_rel(a, "PEERS_WITH", b, Props::new()).unwrap();
        GraphSnapshot::new(g, 1)
    }

    #[test]
    fn hit_returns_same_allocation_and_counts() {
        let g = tiny_graph();
        let cache = QueryCache::new(CacheConfig::default());
        let q = "MATCH (a:AS) RETURN count(a)";
        let first = cache.get_or_execute(&g, q, &Params::new()).unwrap();
        let second = cache.get_or_execute(&g, q, &Params::new()).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert_eq!(s.plan.misses, 1);
    }

    #[test]
    fn whitespace_variants_share_an_entry() {
        let g = tiny_graph();
        let cache = QueryCache::new(CacheConfig::default());
        let a = cache
            .get_or_execute(&g, "MATCH (a:AS) RETURN count(a)", &Params::new())
            .unwrap();
        let b = cache
            .get_or_execute(&g, "MATCH  (a:AS)\n RETURN count(a)", &Params::new())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn params_are_part_of_the_key() {
        let g = tiny_graph();
        let cache = QueryCache::new(CacheConfig::default());
        let q = "MATCH (a:AS) WHERE a.asn = $asn RETURN a.name";
        let mut p1 = Params::new();
        p1.insert("asn".into(), Value::Int(2497));
        let mut p2 = Params::new();
        p2.insert("asn".into(), Value::Int(15169));
        let r1 = cache.get_or_execute(&g, q, &p1).unwrap();
        let r2 = cache.get_or_execute(&g, q, &p2).unwrap();
        assert_eq!(r1.rows[0][0].to_string(), "IIJ");
        assert_eq!(r2.rows[0][0].to_string(), "Google");
        // Both miss (different keys), but share one cached plan.
        let s = cache.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.plan.misses, 1);
        assert_eq!(s.plan.hits, 1);
    }

    #[test]
    fn write_bumps_epoch_and_invalidates() {
        let snap = tiny_graph();
        let cache = QueryCache::new(CacheConfig::default());
        let q = "MATCH (a:AS) RETURN count(a)";
        let before = cache.get_or_execute(&snap, q, &Params::new()).unwrap();
        assert_eq!(before.rows[0][0], Value::Int(2));

        let mut g = snap.into_graph();
        iyp_cypher::update(&mut g, "CREATE (x:AS {asn: 64512})").unwrap();
        let snap = GraphSnapshot::new(g, 2);

        let after = cache.get_or_execute(&snap, q, &Params::new()).unwrap();
        assert_eq!(
            after.rows[0][0],
            Value::Int(3),
            "stale cached count served after a write"
        );
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn ttl_expires_entries() {
        let g = tiny_graph();
        let cache = QueryCache::new(CacheConfig {
            ttl: Some(Duration::from_millis(0)),
            ..CacheConfig::default()
        });
        let q = "MATCH (a:AS) RETURN count(a)";
        cache.get_or_execute(&g, q, &Params::new()).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        cache.get_or_execute(&g, q, &Params::new()).unwrap();
        let s = cache.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn capacity_bounds_and_eviction_counts() {
        let g = tiny_graph();
        let cache = QueryCache::new(CacheConfig {
            capacity: 2,
            ..CacheConfig::default()
        });
        for q in [
            "MATCH (a:AS) RETURN count(a)",
            "MATCH (c:Country) RETURN count(c)",
            "RETURN 1",
        ] {
            cache.get_or_execute(&g, q, &Params::new()).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn disabled_cache_executes_cold_every_time() {
        let g = tiny_graph();
        let cache = QueryCache::new(CacheConfig {
            enabled: false,
            ..CacheConfig::default()
        });
        let q = "MATCH (a:AS) RETURN count(a)";
        let a = cache.get_or_execute(&g, q, &Params::new()).unwrap();
        let b = cache.get_or_execute(&g, q, &Params::new()).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (0, 2, 0));
    }

    #[test]
    fn write_queries_are_refused_not_cached() {
        let g = tiny_graph();
        let cache = QueryCache::new(CacheConfig::default());
        assert!(cache
            .get_or_execute(&g, "CREATE (x:AS {asn: 1})", &Params::new())
            .is_err());
        assert_eq!(cache.stats().len, 0);
    }
}
