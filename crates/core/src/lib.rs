//! # chatiyp-core
//!
//! ChatIYP: a retrieval-augmented natural-language interface to the
//! Internet Yellow Pages graph — the paper's primary contribution.
//!
//! The pipeline follows Figure 1 of the paper:
//!
//! 1. **User query** — a natural-language question.
//! 2. **Retrieval** — [`retriever::TextToCypherRetriever`] maps the
//!    question to Cypher (via the simulated LLM prompt chain) and runs it;
//!    when it fails or returns nothing,
//!    [`retriever::VectorContextRetriever`] fetches node-description
//!    context by dense similarity, reranked by the LLMReranker.
//! 3. **Generation** — the answer is generated from the retrieved rows or
//!    context, returned together with the Cypher query for transparency.
//!
//! ```
//! use chatiyp_core::{ChatIyp, ChatIypConfig};
//! use iyp_data::{generate, IypConfig};
//! use iyp_llm::LmConfig;
//!
//! let config = ChatIypConfig {
//!     lm: LmConfig { seed: 42, skill: 1.0, variety: 0.0 },
//!     ..Default::default()
//! };
//! let chat = ChatIyp::new(generate(&IypConfig::tiny()), config);
//! let response = chat.ask("What is the name of AS2497?");
//! assert!(response.answer.contains("IIJ"));
//! assert!(response.cypher.is_some()); // transparency output
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod config;
pub mod durability;
pub mod index;
pub mod obs;
pub mod pipeline;
pub mod resilience;
pub mod response;
pub mod retriever;

pub use cache::{CacheConfig, CacheStats, QueryCache};
pub use config::ChatIypConfig;
pub use durability::{
    CheckpointReport, DurabilityConfig, DurabilityError, DurabilityStats, RecoveryReport,
};
pub use index::RetrievalIndex;
pub use pipeline::{ChatIyp, CypherExecError, IngestError, IngestReport, RetrievalHandle};
pub use resilience::{
    Budget, DegradedReason, FaultError, FaultPlan, FaultPoint, FaultRule, ResilienceConfig,
    ResilienceCounters, ResilienceStats, RetryPolicy,
};
pub use response::{ChatResponse, ContextChunk, Route, Timings};
pub use retriever::{StructuredRetrieval, TextToCypherRetriever, VectorContextRetriever};
