//! The ChatIYP pipeline: user query → retrieval (symbolic, with semantic
//! fallback and reranking) → generation, with transparency output.

use crate::cache::QueryCache;
use crate::config::ChatIypConfig;
use crate::obs::{STAGE_METRIC, SWAP_METRIC};
use crate::response::{ChatResponse, ContextChunk, Route, Timings};
use crate::retriever::{StructuredRetrieval, TextToCypherRetriever, VectorContextRetriever};
use iyp_data::IypDataset;
use iyp_embed::tokenize::words;
use iyp_graphdb::{DeltaBatch, DeltaError, GraphSnapshot, GraphStore, SwapReport};
use iyp_llm::{generate_answer, EntityCatalog, Reranker, SimLm, Translator};
use iyp_obs::{Registry, RingSink, Trace, TraceSink, TraceTree};
use std::sync::Arc;
use std::time::Instant;

/// The assembled ChatIYP system.
///
/// The graph lives inside a [`GraphStore`]: readers resolve the current
/// immutable [`GraphSnapshot`] once per request ([`ChatIyp::snapshot`])
/// and run the whole request against it, while [`ChatIyp::ingest`]
/// applies a [`DeltaBatch`] off to the side and publishes the result
/// with a single pointer swap — queries in flight keep their snapshot,
/// new queries see the new version. Every stage takes `&self`, so one
/// instance answers concurrent [`ChatIyp::ask`] calls from many
/// threads.
pub struct ChatIyp {
    store: Arc<GraphStore>,
    config: ChatIypConfig,
    lm: SimLm,
    text2cypher: TextToCypherRetriever,
    vector: VectorContextRetriever,
    reranker: Reranker,
    cache: QueryCache,
    registry: Arc<Registry>,
    traces: Arc<RingSink>,
}

// The pipeline is shared read-only across server workers and bench
// threads; keep it that way.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ChatIyp>();
};

impl ChatIyp {
    /// Builds the pipeline over a generated dataset.
    pub fn new(dataset: IypDataset, config: ChatIypConfig) -> Self {
        let catalog = EntityCatalog::from_dataset(&dataset);
        let lm = SimLm::new(config.lm.clone());
        let translator = Translator::new(lm.clone(), catalog);
        let vector = VectorContextRetriever::from_graph(&dataset.graph);
        let registry = Arc::new(Registry::new());
        let mut cache = QueryCache::new(config.cache.clone());
        cache.attach_registry(&registry);
        let traces = Arc::new(RingSink::new(config.trace_ring_capacity));
        ChatIyp {
            store: Arc::new(GraphStore::new(dataset.graph)),
            config,
            lm: lm.clone(),
            text2cypher: TextToCypherRetriever::new(translator),
            vector,
            reranker: Reranker::new(lm),
            cache,
            registry,
            traces,
        }
    }

    /// The versioned store the pipeline reads through.
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.store
    }

    /// Resolves the current graph snapshot. Callers should resolve once
    /// per request and use the returned handle throughout — it is
    /// immutable, so every read within the request is consistent even
    /// while an ingest publishes a newer version.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.store.load()
    }

    /// Applies a mutation batch and publishes the resulting graph as the
    /// next snapshot version. In-flight requests keep the snapshot they
    /// resolved; the epoch-keyed query cache invalidates lazily (entries
    /// recorded against the old snapshot can never validate against the
    /// new one). Records `apply`/`swap` latencies into [`SWAP_METRIC`].
    ///
    /// Note: the vector store and entity catalog are built at
    /// construction and are not rebuilt on ingest — semantic fallback
    /// answers may lag the graph until the process reloads (documented
    /// in DESIGN.md).
    pub fn ingest(&self, batch: &DeltaBatch) -> Result<SwapReport, DeltaError> {
        let report = self.store.ingest(batch)?;
        self.registry
            .observe(SWAP_METRIC, &[("stage", "apply")], report.apply);
        self.registry
            .observe(SWAP_METRIC, &[("stage", "swap")], report.swap);
        Ok(report)
    }

    /// The active configuration.
    pub fn config(&self) -> &ChatIypConfig {
        &self.config
    }

    /// The shared two-tier query cache. The `ask` path executes its
    /// generated Cypher through it, and the server routes `/cypher`
    /// queries through the same instance so both workloads warm the
    /// same entries.
    pub fn query_cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The metric registry every stage records into. The server renders
    /// it at `GET /metrics`.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The newest `n` request traces, most recent first (empty unless
    /// [`ChatIypConfig::trace_requests`] is on).
    pub fn recent_traces(&self, n: usize) -> Vec<Arc<TraceTree>> {
        self.traces.recent(n)
    }

    /// Answers a natural-language question.
    pub fn ask(&self, question: &str) -> ChatResponse {
        self.ask_traced(question).0
    }

    /// Like [`ask`](Self::ask), returning the request's span tree
    /// alongside the response. The tree is empty when
    /// [`ChatIypConfig::trace_requests`] is off; when on, it is also
    /// recorded into the trace ring (see [`Self::recent_traces`]) —
    /// shared, not copied: the returned [`Arc`] and the ring alias the
    /// same tree.
    pub fn ask_traced(&self, question: &str) -> (ChatResponse, Arc<TraceTree>) {
        let trace = if self.config.trace_requests {
            Trace::new()
        } else {
            Trace::disabled()
        };
        let response = self.ask_inner(question, &trace);
        let tree = Arc::new(trace.finish());
        if !tree.spans.is_empty() {
            self.traces.record(Arc::clone(&tree));
        }
        (response, tree)
    }

    fn ask_inner(&self, question: &str, trace: &Trace) -> ChatResponse {
        let t_start = Instant::now();
        let ask_span = trace.span("ask");

        // Stage 2a: TextToCypherRetriever (with optional self-correction
        // retries on failed/empty executions).
        // One snapshot for the whole request: all reads below are
        // consistent even if an ingest swaps in a new version mid-ask.
        let snap = self.store.load();
        let structured: Option<StructuredRetrieval> = if self.config.enable_text2cypher {
            let _s = trace.span("text2cypher");
            Some(self.text2cypher.retrieve_cached_with_limits(
                &snap,
                question,
                self.config.max_retries,
                Some(&self.cache),
                iyp_cypher::ExecLimits::none().with_parallelism(self.config.query_parallelism),
            ))
        } else {
            None
        };

        let structured_ok = structured
            .as_ref()
            .map(StructuredRetrieval::has_rows)
            .unwrap_or(false);

        // Stage 2b/2c: semantic fallback when the symbolic path failed or
        // came back empty.
        let mut contexts: Vec<ContextChunk> = Vec::new();
        if !structured_ok && self.config.enable_vector_fallback {
            let retrieve_span = trace.span("embed_retrieve");
            let t0 = Instant::now();
            let mut candidates = self.vector.retrieve(question, self.config.vector_top_k);
            self.registry
                .observe(STAGE_METRIC, &[("stage", "embed_retrieve")], t0.elapsed());
            retrieve_span.field("candidates", candidates.len());
            drop(retrieve_span);
            if self.config.enable_reranker && !candidates.is_empty() {
                let _s = trace.span("rerank");
                let t0 = Instant::now();
                let texts: Vec<String> = candidates
                    .iter()
                    .map(|c| format!("{} {}", c.title, c.text))
                    .collect();
                let ranked = self
                    .reranker
                    .rerank(question, &texts, self.config.rerank_top_k);
                self.registry
                    .observe(STAGE_METRIC, &[("stage", "rerank")], t0.elapsed());
                contexts = ranked
                    .into_iter()
                    .map(|r| {
                        let mut c = candidates[r.index].clone();
                        c.score = r.score;
                        c
                    })
                    .collect();
            } else {
                candidates.truncate(self.config.rerank_top_k);
                contexts = candidates;
            }
        }
        let t_retrieval = t_start.elapsed();

        // Stage 3: generation.
        let generate_span = trace.span("generate");
        let t_gen_start = Instant::now();
        // Did the structured stage run a query that legitimately returned
        // nothing? Then the truthful core of the answer is "no data", and
        // the semantic context is supplementary — not a replacement fact.
        let structured_empty = structured
            .as_ref()
            .map(|s| s.result.as_ref().map(|r| r.is_empty()).unwrap_or(false))
            .unwrap_or(false);
        let (answer, route) = if structured_ok {
            let s = structured.as_ref().expect("structured_ok implies Some");
            let result = s.result.as_ref().expect("has_rows implies result");
            (
                generate_answer(&self.lm, question, s.translation.intent.as_ref(), result),
                Route::Cypher,
            )
        } else if structured_empty {
            let s = structured.as_ref().expect("structured_empty implies Some");
            let refusal = generate_answer(
                &self.lm,
                question,
                s.translation.intent.as_ref(),
                &iyp_cypher::QueryResult::empty(),
            );
            match contexts.first() {
                Some(best) => (
                    format!("{refusal} Closest related IYP entity: {}.", best.title),
                    Route::VectorFallback,
                ),
                // No fallback configured: the empty answer is still a
                // legitimate outcome of the structured route.
                None => (refusal, Route::Cypher),
            }
        } else if let Some(best) = contexts.first() {
            (answer_from_context(question, best), Route::VectorFallback)
        } else {
            (
                generate_answer(
                    &self.lm,
                    question,
                    structured
                        .as_ref()
                        .and_then(|s| s.translation.intent.as_ref()),
                    &iyp_cypher::QueryResult::empty(),
                ),
                Route::Failed,
            )
        };
        let t_generation = t_gen_start.elapsed();
        self.registry
            .observe(STAGE_METRIC, &[("stage", "llm_generate")], t_generation);
        drop(generate_span);

        ask_span.field("route", route);
        ask_span.field("question_len", question.len());
        drop(ask_span);
        self.registry
            .observe(STAGE_METRIC, &[("stage", "ask_total")], t_start.elapsed());

        let (cypher, query_result, intent, injected_error) = match structured {
            Some(s) => (
                s.translation.cypher,
                s.result,
                s.translation.intent,
                s.translation.injected_error,
            ),
            None => (None, None, None, None),
        };

        ChatResponse {
            question: question.to_string(),
            answer,
            cypher,
            query_result,
            contexts,
            route,
            intent,
            injected_error,
            timings: Timings {
                retrieval: t_retrieval,
                generation: t_generation,
                total: t_start.elapsed(),
            },
        }
    }
}

/// Builds an answer from the best semantic context: the sentence of the
/// context most lexically aligned with the question, attributed to IYP.
fn answer_from_context(question: &str, ctx: &ContextChunk) -> String {
    let q_tokens = words(question);
    let best_sentence = ctx
        .text
        .split('.')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .max_by_key(|s| {
            let s_tokens = words(s);
            q_tokens.iter().filter(|t| s_tokens.contains(t)).count()
        })
        .unwrap_or(ctx.text.as_str());
    format!(
        "Based on related IYP records about {}: {best_sentence}.",
        ctx.title
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_data::{generate, IypConfig};
    use iyp_llm::LmConfig;

    fn perfect() -> ChatIyp {
        let config = ChatIypConfig {
            lm: LmConfig {
                seed: 42,
                skill: 1.0,
                variety: 0.0,
            },
            ..Default::default()
        };
        ChatIyp::new(generate(&IypConfig::tiny()), config)
    }

    #[test]
    fn answers_the_paper_example_via_cypher_route() {
        let chat = perfect();
        let r = chat.ask("What is the percentage of Japan's population in AS2497?");
        assert_eq!(r.route, Route::Cypher);
        let cy = r.cypher.as_deref().unwrap();
        assert!(cy.contains("POPULATION"), "cypher: {cy}");
        assert!(cy.contains("2497"));
        // The answer carries the actual percent from the graph.
        let snap = chat.snapshot();
        let gold = iyp_cypher::query(
            snap.graph(),
            "MATCH (a:AS {asn: 2497})-[p:POPULATION]->(c:Country {country_code: 'JP'}) RETURN p.percent",
        )
        .unwrap();
        let expect = gold.single_value().unwrap().as_f64().unwrap();
        assert!(
            r.answer.contains(&format!("{expect}")) || r.answer.contains(&format!("{expect:.2}")),
            "answer '{}' lacks {expect}",
            r.answer
        );
    }

    #[test]
    fn unparseable_question_falls_back_to_vector() {
        let chat = perfect();
        let r = chat.ask("Tell me everything interesting about IIJ in Japan");
        // This phrasing has no intent template; the vector path answers.
        assert_eq!(r.route, Route::VectorFallback);
        assert!(!r.contexts.is_empty());
        assert!(r.answer.contains("IYP"));
    }

    #[test]
    fn fallback_disabled_yields_failed_route() {
        let config = ChatIypConfig {
            lm: LmConfig {
                seed: 42,
                skill: 1.0,
                variety: 0.0,
            },
            ..ChatIypConfig::cypher_only()
        };
        let chat = ChatIyp::new(generate(&IypConfig::tiny()), config);
        let r = chat.ask("Tell me everything interesting please");
        assert_eq!(r.route, Route::Failed);
        assert!(r.contexts.is_empty());
    }

    #[test]
    fn timings_are_recorded() {
        let chat = perfect();
        let r = chat.ask("What is the name of AS2497?");
        assert!(r.timings.total >= r.timings.generation);
        assert!(r.timings.total.as_nanos() > 0);
    }

    #[test]
    fn responses_are_deterministic() {
        let a = perfect().ask("How many ASes are registered in Japan?");
        let b = perfect().ask("How many ASes are registered in Japan?");
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.cypher, b.cypher);
        assert_eq!(a.route, b.route);
    }

    /// One pipeline instance answers concurrent `ask` calls: every thread
    /// shares `&ChatIyp` and gets the same answer as a sequential run.
    #[test]
    fn concurrent_asks_match_sequential() {
        let chat = perfect();
        let questions = [
            "What is the name of AS2497?",
            "How many ASes are registered in Japan?",
            "In which country is AS2497 registered?",
            "Tell me everything interesting about IIJ in Japan",
        ];
        let sequential: Vec<_> = questions.iter().map(|q| chat.ask(q)).collect();
        let concurrent: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = questions.iter().map(|q| s.spawn(|| chat.ask(q))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (a, b) in sequential.iter().zip(&concurrent) {
            assert_eq!(a.answer, b.answer);
            assert_eq!(a.cypher, b.cypher);
            assert_eq!(a.route, b.route);
        }
    }

    /// Repeating a question answers through the result cache, and the
    /// cached answer is identical to the cold one.
    #[test]
    fn repeated_ask_hits_the_cache_with_identical_answer() {
        let chat = perfect();
        let q = "What is the name of AS2497?";
        let cold = chat.ask(q);
        assert_eq!(chat.query_cache().stats().hits, 0);
        let warm = chat.ask(q);
        let s = chat.query_cache().stats();
        assert!(s.hits >= 1, "second ask did not hit: {s:?}");
        assert_eq!(cold.answer, warm.answer);
        assert_eq!(cold.cypher, warm.cypher);
        assert_eq!(cold.query_result, warm.query_result);
    }

    /// Snapshot handles alias the pipeline's own current snapshot until
    /// an ingest publishes a new one.
    #[test]
    fn snapshot_shares_the_pipeline_graph_until_ingest() {
        let chat = perfect();
        let a = chat.snapshot();
        let b = chat.snapshot();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.version(), 1);

        let mut batch = DeltaBatch::new();
        batch.add_node(["AS"], iyp_graphdb::props!("asn" => 64512i64));
        let report = chat.ingest(&batch).unwrap();
        assert_eq!((report.old_version, report.new_version), (1, 2));

        let c = chat.snapshot();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.version(), 2);
        assert_eq!(c.node_count(), a.node_count() + 1);
        // The pre-ingest handle is untouched.
        assert_eq!(a.version(), 1);
    }

    /// Ingest invalidates cached answers: a count computed against the
    /// old snapshot is never served against the new one.
    #[test]
    fn ingest_invalidates_cached_cypher_results() {
        let chat = perfect();
        let q = "MATCH (a:AS) RETURN count(a)";
        let snap = chat.snapshot();
        let before = chat
            .query_cache()
            .get_or_execute(&snap, q, &iyp_cypher::Params::new())
            .unwrap();

        let mut batch = DeltaBatch::new();
        batch.add_node(["AS"], iyp_graphdb::props!("asn" => 64513i64));
        chat.ingest(&batch).unwrap();

        let snap = chat.snapshot();
        let after = chat
            .query_cache()
            .get_or_execute(&snap, q, &iyp_cypher::Params::new())
            .unwrap();
        let n = |v: &iyp_cypher::QueryResult| match v.rows[0][0] {
            iyp_graphdb::Value::Int(n) => n,
            _ => panic!("count not an int"),
        };
        assert_eq!(n(&after), n(&before) + 1, "stale count served after ingest");
        assert!(chat.query_cache().stats().invalidations >= 1);
    }

    /// At a low skill, self-correction retries should answer strictly
    /// more questions correctly over a batch than no retries.
    fn count_correct_with_retries(max_retries: u32) -> usize {
        let data = generate(&IypConfig::tiny());
        let gold_answers: Vec<(String, String)> = (0..30)
            .map(|i| {
                let asn = data.ases[i % data.ases.len()].asn;
                (
                    // A non-aggregating question: a mistranslation usually
                    // returns nothing, which is what arms the retry.
                    format!("In which country is AS{asn} registered?"),
                    format!(
                        "MATCH (a:AS {{asn: {asn}}})-[:COUNTRY]->(c:Country) RETURN c.country_code"
                    ),
                )
            })
            .collect();
        let golds: Vec<_> = gold_answers
            .iter()
            .map(|(_, cy)| iyp_cypher::query(&data.graph, cy).unwrap())
            .collect();
        let chat = ChatIyp::new(
            data,
            ChatIypConfig {
                lm: LmConfig {
                    seed: 9,
                    skill: 0.2,
                    variety: 0.0,
                },
                max_retries,
                ..Default::default()
            },
        );
        gold_answers
            .iter()
            .zip(&golds)
            .filter(|((q, _), gold)| {
                chat.ask(q)
                    .query_result
                    .map(|got| got.fingerprint(false) == gold.fingerprint(false))
                    .unwrap_or(false)
            })
            .count()
    }

    #[test]
    fn retry_recovers_failed_translations() {
        let without = count_correct_with_retries(0);
        let with = count_correct_with_retries(2);
        assert!(with > without, "retries did not help: {with} vs {without}");
    }

    #[test]
    fn vector_only_config_never_emits_cypher() {
        let config = ChatIypConfig {
            lm: LmConfig {
                seed: 42,
                skill: 1.0,
                variety: 0.0,
            },
            ..ChatIypConfig::vector_only()
        };
        let chat = ChatIyp::new(generate(&IypConfig::tiny()), config);
        let r = chat.ask("What is the name of AS2497?");
        assert!(r.cypher.is_none());
        assert_eq!(r.route, Route::VectorFallback);
    }
}
