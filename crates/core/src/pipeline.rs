//! The ChatIYP pipeline: user query → retrieval (symbolic, with semantic
//! fallback and reranking) → generation, with transparency output.

use crate::cache::QueryCache;
use crate::config::ChatIypConfig;
use crate::durability::{
    CheckpointReport, Durability, DurabilityConfig, DurabilityError, DurabilityStats,
    RecoveryReport,
};
use crate::index::RetrievalIndex;
use crate::obs::{
    CHECKPOINT_METRIC, INDEX_METRIC, STAGE_METRIC, SWAP_METRIC, WAL_APPEND_METRIC, WAL_FSYNC_METRIC,
};
use crate::resilience::{
    DegradedReason, FaultError, FaultPoint, ResilienceCounters, ResilienceCtx, ResilienceStats,
    RETRIEVE_BUDGET_SHARE,
};
use crate::response::{ChatResponse, ContextChunk, Route, Timings};
use crate::retriever::{StructuredRetrieval, TextToCypherRetriever};
use iyp_cypher::QueryResult;
use iyp_data::IypDataset;
use iyp_embed::tokenize::words;
use iyp_graphdb::wal::Wal;
use iyp_graphdb::{snapshot, DeltaBatch, DeltaError, GraphSnapshot, GraphStore, SwapReport};
use iyp_llm::{generate_answer, EntityCatalog, Intent, Reranker, SimLm, Translator};
use iyp_obs::{Registry, RingSink, Trace, TraceSink, TraceTree};
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One request's consistent view of the world: the graph snapshot and
/// the retrieval index derived from it, resolved together by
/// [`ChatIyp::resolve`]. Both halves describe the same published
/// version, and holding the handle keeps that version alive — later
/// ingests never mutate it.
#[derive(Clone, Debug)]
pub struct RetrievalHandle {
    /// The immutable graph snapshot the symbolic path reads.
    pub snapshot: Arc<GraphSnapshot>,
    /// The retrieval index (doc corpus + entity catalog) derived from
    /// exactly that snapshot.
    pub index: Arc<RetrievalIndex>,
}

/// What one [`ChatIyp::ingest`] did: the graph swap plus the paired
/// retrieval-index refresh.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// The graph-side publish (versions, counts, apply/swap timings).
    pub graph: SwapReport,
    /// The version stamped into the refreshed retrieval index — always
    /// equal to `graph.new_version`, reported so callers can assert the
    /// pair stayed in lockstep.
    pub index_version: u64,
    /// Time deriving the document/catalog delta from the applied batch.
    pub derive: Duration,
    /// Time cloning the current index and patching it, off-lock.
    pub index_apply: Duration,
    /// Time publishing the `(snapshot, index)` pair — the only window a
    /// reader's [`ChatIyp::resolve`] can wait on.
    pub index_swap: Duration,
}

/// The assembled ChatIYP system.
///
/// The graph lives inside a [`GraphStore`] and the retrieval state (doc
/// corpus + entity catalog) inside a [`RetrievalIndex`] behind the same
/// publish discipline: readers resolve one consistent
/// `(snapshot, index)` pair per request ([`ChatIyp::resolve`]) and run
/// the whole request against it, while [`ChatIyp::ingest`] applies a
/// [`DeltaBatch`] off to the side, patches a copy of the index from the
/// delta, and publishes both with one paired swap — queries in flight
/// keep their pair, new queries see the new version on every path
/// (Cypher, semantic fallback, entity linking). Every stage takes
/// `&self`, so one instance answers concurrent [`ChatIyp::ask`] calls
/// from many threads.
pub struct ChatIyp {
    store: Arc<GraphStore>,
    /// The published retrieval index. Readers clone the `Arc` under the
    /// read lock *and load the graph snapshot inside the same critical
    /// section* ([`ChatIyp::resolve`]); the ingest path publishes the
    /// graph while holding the write lock, so a reader observes either
    /// (old graph, old index) or (new graph, new index), never a torn
    /// pair.
    index: RwLock<Arc<RetrievalIndex>>,
    /// Serializes ingests end-to-end (prepare → publish). The store has
    /// its own writer lock, but the index refresh is prepared off-lock
    /// from the *current* pair; two interleaved prepares would lose the
    /// first one's refresh.
    ingest_lock: Mutex<()>,
    config: ChatIypConfig,
    lm: SimLm,
    text2cypher: TextToCypherRetriever,
    reranker: Reranker,
    cache: QueryCache,
    registry: Arc<Registry>,
    traces: Arc<RingSink>,
    resilience: ResilienceStats,
    /// The WAL + checkpoint handle when the pipeline was opened over a
    /// data directory ([`ChatIyp::open_durable`]); `None` for the
    /// in-memory-only constructors.
    durability: Option<Durability>,
}

/// Why an [`ChatIyp::ingest`] was refused: a bad batch (the client's
/// fault, a `400`), or a durability failure (the WAL could not persist
/// the batch — nothing was published, the client should retry, a `503`).
#[derive(Debug)]
pub enum IngestError {
    /// The batch failed to apply — nothing published, request invalid.
    Delta(DeltaError),
    /// The WAL append failed or was fault-injected down — nothing
    /// published, safe to retry once the substrate recovers.
    Durability(DurabilityError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Delta(e) => e.fmt(f),
            IngestError::Durability(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<DeltaError> for IngestError {
    fn from(e: DeltaError) -> Self {
        IngestError::Delta(e)
    }
}

/// Why a raw Cypher execution (the `/cypher` path) did not produce a
/// result: a transient outage the caller should retry later, or a real
/// query error the caller must fix.
#[derive(Debug)]
pub enum CypherExecError {
    /// The resilience layer's `exec` fault point reported the execution
    /// substrate down — maps to `503 + Retry-After`, not a query error.
    Unavailable(FaultError),
    /// The engine rejected or failed the query — maps to `400`.
    Query(iyp_cypher::CypherError),
}

impl fmt::Display for CypherExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CypherExecError::Unavailable(e) => write!(f, "execution unavailable: {e}"),
            CypherExecError::Query(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CypherExecError {}

// The pipeline is shared read-only across server workers and bench
// threads; keep it that way.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ChatIyp>();
};

impl ChatIyp {
    /// Builds the pipeline over a generated dataset.
    pub fn new(dataset: IypDataset, config: ChatIypConfig) -> Self {
        let catalog = EntityCatalog::from_dataset(&dataset);
        let store = Arc::new(GraphStore::new(dataset.graph));
        let seed = store.load();
        let index = RetrievalIndex::from_graph_at(seed.graph(), seed.version(), seed.epoch())
            .with_catalog(catalog);
        Self::assemble(store, index, config, None)
    }

    /// Assembles the pipeline around an already-built store and index.
    fn assemble(
        store: Arc<GraphStore>,
        index: RetrievalIndex,
        config: ChatIypConfig,
        durability: Option<Durability>,
    ) -> Self {
        let lm = SimLm::new(config.lm.clone());
        let translator = Translator::new(lm.clone(), index.catalog().clone());
        let registry = Arc::new(Registry::new());
        let mut cache = QueryCache::new(config.cache.clone());
        cache.attach_registry(&registry);
        let traces = Arc::new(RingSink::new(config.trace_ring_capacity));
        ChatIyp {
            store,
            index: RwLock::new(Arc::new(index)),
            ingest_lock: Mutex::new(()),
            config,
            lm: lm.clone(),
            text2cypher: TextToCypherRetriever::new(translator),
            reranker: Reranker::new(lm),
            cache,
            registry,
            traces,
            resilience: ResilienceStats::default(),
            durability,
        }
    }

    /// Opens (or creates) a durable pipeline over a data directory:
    /// recovers the latest checkpoint, replays the WAL tail through the
    /// store's ingest path, rebuilds the retrieval index once from the
    /// recovered graph, and leaves the WAL open for the ingest path to
    /// append to.
    ///
    /// `base` produces the initial dataset when the directory holds no
    /// checkpoint — a first boot (or a post-checkpoint-loss rebuild); it
    /// must be deterministic for crash recovery to reproduce the same
    /// world (the CLI passes the seeded generator).
    ///
    /// Recovery tolerates a torn final WAL frame (the crash-mid-append
    /// signature; reported in [`RecoveryReport::torn_tail_bytes`]) but
    /// refuses interior corruption — see `iyp_graphdb::wal`.
    pub fn open_durable(
        config: ChatIypConfig,
        dcfg: &DurabilityConfig,
        base: impl FnOnce() -> IypDataset,
    ) -> Result<(Self, RecoveryReport), DurabilityError> {
        let t0 = Instant::now();
        let opened = Wal::open(&dcfg.data_dir, dcfg.wal_config())?;
        let checkpoint_path = dcfg.checkpoint_path();

        // Base world: the checkpoint if one exists, else the generated
        // dataset (which publishes as version 1, same as a fresh serve).
        let (store, checkpoint_version, catalog) = if checkpoint_path.exists() {
            let snap = snapshot::load_snapshot(&checkpoint_path)?;
            let version = snap.version();
            (GraphStore::from_snapshot(snap), Some(version), None)
        } else {
            let dataset = base();
            let catalog = EntityCatalog::from_dataset(&dataset);
            (GraphStore::new(dataset.graph), None, Some(catalog))
        };
        let load = t0.elapsed();

        // Replay the WAL tail: records at or below the base version are
        // already inside it; everything above must form a gapless
        // continuation. All surviving records apply to ONE working copy
        // of the base graph and land in ONE publish — replay cost is
        // O(total delta), not O(records) page-table clones, which is
        // half of why recovery beats re-ingesting batch by batch.
        let t1 = Instant::now();
        let mut replayed = 0u64;
        let base_snap = store.load();
        let mut graph = base_snap.graph().clone();
        let mut version = base_snap.version();
        for record in &opened.records {
            if record.version <= version {
                continue;
            }
            if record.version != version + 1 {
                return Err(DurabilityError::VersionGap {
                    expected: version + 1,
                    got: record.version,
                });
            }
            record
                .batch
                .apply(&mut graph)
                .map_err(|error| DurabilityError::Replay {
                    version: record.version,
                    error,
                })?;
            version += 1;
            replayed += 1;
        }
        let store = if replayed > 0 {
            GraphStore::from_snapshot(GraphSnapshot::new(graph, version))
        } else {
            store
        };
        let replay = t1.elapsed();

        // One index build over the final graph — this is what makes
        // replay an order of magnitude cheaper than re-ingesting each
        // batch through the HTTP path, which pays an incremental index
        // refresh (re-embedding affected docs) per batch.
        let t2 = Instant::now();
        let final_snap = store.load();
        let index = match catalog {
            Some(catalog) if replayed == 0 => RetrievalIndex::from_graph_at(
                final_snap.graph(),
                final_snap.version(),
                final_snap.epoch(),
            )
            .with_catalog(catalog),
            _ => RetrievalIndex::from_snapshot(&final_snap),
        };
        let index_build = t2.elapsed();

        let report = RecoveryReport {
            checkpoint_version,
            base_version: checkpoint_version.unwrap_or(1),
            replayed,
            torn_tail_bytes: opened
                .torn_tail
                .as_ref()
                .map(|t| t.dropped_bytes)
                .unwrap_or(0),
            load,
            replay,
            index_build,
        };
        let durability = Durability::new(opened.wal, checkpoint_path, checkpoint_version, replayed);
        let chat = Self::assemble(Arc::new(store), index, config, Some(durability));
        chat.registry
            .observe(STAGE_METRIC, &[("stage", "recovery")], t0.elapsed());
        Ok((chat, report))
    }

    /// Checkpoints the current snapshot: atomically writes it to
    /// `checkpoint.json` in the data directory (temp file + fsync +
    /// rename), then deletes WAL segments the checkpoint covers. Takes
    /// the ingest lock, so the saved version is exact — no publish can
    /// land between the save and the truncation.
    ///
    /// Errors with [`DurabilityError::NotConfigured`] on a pipeline
    /// without a data directory. Records [`CHECKPOINT_METRIC`].
    pub fn checkpoint(&self) -> Result<CheckpointReport, DurabilityError> {
        let Some(dur) = &self.durability else {
            return Err(DurabilityError::NotConfigured);
        };
        let _g = self.ingest_lock.lock();
        let t0 = Instant::now();
        let snap = self.store.load();
        snapshot::save_snapshot(&snap, dur.checkpoint_path())?;
        let snapshot_bytes = std::fs::metadata(dur.checkpoint_path())
            .map(|m| m.len())
            .unwrap_or(0);
        let (truncated_segments, wal) = dur.note_checkpoint(snap.version())?;
        let duration = t0.elapsed();
        self.registry.observe(CHECKPOINT_METRIC, &[], duration);
        Ok(CheckpointReport {
            version: snap.version(),
            snapshot_bytes,
            truncated_segments,
            wal,
            duration,
        })
    }

    /// Durability counters for `/stats` and `/metrics` — `None` when the
    /// pipeline runs without a data directory.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.durability.as_ref().map(Durability::stats)
    }

    /// The versioned store the pipeline reads through.
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.store
    }

    /// Resolves the current graph snapshot. Callers should resolve once
    /// per request and use the returned handle throughout — it is
    /// immutable, so every read within the request is consistent even
    /// while an ingest publishes a newer version. Requests that also
    /// touch the semantic path should use [`ChatIyp::resolve`] to get
    /// the paired retrieval index from the same version.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.store.load()
    }

    /// Resolves one consistent `(snapshot, index)` pair. The graph load
    /// happens inside the index read critical section, and the ingest
    /// path publishes the graph while holding the index write lock, so
    /// the returned halves always describe the same published version —
    /// a request can interleave Cypher execution, entity linking and
    /// semantic retrieval without ever mixing worlds.
    pub fn resolve(&self) -> RetrievalHandle {
        let index = self.index.read();
        let snapshot = self.store.load();
        RetrievalHandle {
            snapshot,
            index: Arc::clone(&index),
        }
    }

    /// The retrieval index paired with the current snapshot.
    pub fn retrieval_index(&self) -> Arc<RetrievalIndex> {
        Arc::clone(&self.index.read())
    }

    /// Applies a mutation batch and publishes the resulting graph **and**
    /// a refreshed retrieval index as the next version, atomically as a
    /// pair. In-flight requests keep the pair they resolved; the
    /// epoch-keyed query cache invalidates lazily (entries recorded
    /// against the old snapshot can never validate against the new one).
    ///
    /// The expensive work happens off-lock: the batch is applied to a
    /// copy of the graph, the document/catalog delta is derived from the
    /// applied ops (`iyp_data::describe_delta`) and patched into a clone
    /// of the current index — only affected nodes are re-embedded, not
    /// the corpus. Readers are blocked only for the paired pointer swap.
    /// Records `clone`/`apply`/`swap` into [`SWAP_METRIC`] and
    /// `derive`/`apply`/`swap` into [`INDEX_METRIC`].
    ///
    /// On a durable pipeline ([`ChatIyp::open_durable`]), the validated
    /// batch is appended to the WAL (and fsynced per policy) **before**
    /// anything is published: a successful return means the batch is on
    /// disk, and a WAL failure ([`IngestError::Durability`]) publishes
    /// nothing — readers never see a version the log doesn't hold. WAL
    /// timings go to [`WAL_APPEND_METRIC`] / [`WAL_FSYNC_METRIC`].
    pub fn ingest(&self, batch: &DeltaBatch) -> Result<IngestReport, IngestError> {
        let _g = self.ingest_lock.lock();
        let base = self.store.load();

        // Graph: COW clone (pointer-copy of page tables) + O(delta)
        // apply, tracking which nodes changed.
        let t0 = Instant::now();
        let mut next_graph = base.graph().clone();
        let cloned = t0.elapsed();
        let applied = batch.apply_tracked(&mut next_graph)?;
        let apply = t0.elapsed() - cloned;

        // Durable write, now that the batch is known-valid: invalid
        // batches never enter the log, and a crash after this point is
        // recoverable by replay. The WAL is also a fault point — an
        // injected outage fails the ingest exactly like a real disk
        // error, with nothing published.
        if let Some(dur) = &self.durability {
            let res = &self.config.resilience;
            if res.enabled {
                if let Some(plan) = &res.faults {
                    if let Err(fault) = plan.check(FaultPoint::Wal) {
                        return Err(IngestError::Durability(DurabilityError::Fault(fault)));
                    }
                }
            }
            let info = dur
                .append(base.version() + 1, batch)
                .map_err(|e| IngestError::Durability(DurabilityError::Wal(e)))?;
            self.registry.observe(WAL_APPEND_METRIC, &[], info.append);
            if let Some(fsync) = info.fsync {
                self.registry.observe(WAL_FSYNC_METRIC, &[], fsync);
            }
        }

        // Derive the retrieval-side consequences of the batch.
        let t0 = Instant::now();
        let delta = iyp_data::describe_delta(&next_graph, &applied);
        let derive = t0.elapsed();

        // Patch a private copy of the index — readers keep searching the
        // published one the whole time.
        let t0 = Instant::now();
        let mut next_index = (**self.index.read()).clone();
        next_index.apply_delta(base.graph(), &next_graph, &delta);
        let index_apply = t0.elapsed();

        // Publish the pair. Holding the index write lock across the
        // graph publish is what makes the pair atomic for `resolve`.
        let t0 = Instant::now();
        let mut index_slot = self.index.write();
        let graph_report =
            self.store
                .publish_prepared(next_graph, applied.ops_applied, cloned, apply);
        let published = self.store.load();
        next_index.stamp(published.version(), published.epoch());
        *index_slot = Arc::new(next_index);
        drop(index_slot);
        let index_swap = t0.elapsed();

        for (stage, d) in [
            ("clone", graph_report.clone),
            ("apply", graph_report.apply),
            ("swap", graph_report.swap),
        ] {
            self.registry.observe(SWAP_METRIC, &[("stage", stage)], d);
        }
        for (stage, d) in [
            ("derive", derive),
            ("apply", index_apply),
            ("swap", index_swap),
        ] {
            self.registry.observe(INDEX_METRIC, &[("stage", stage)], d);
        }
        Ok(IngestReport {
            index_version: graph_report.new_version,
            graph: graph_report,
            derive,
            index_apply,
            index_swap,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ChatIypConfig {
        &self.config
    }

    /// The shared two-tier query cache. The `ask` path executes its
    /// generated Cypher through it, and the server routes `/cypher`
    /// queries through the same instance so both workloads warm the
    /// same entries.
    pub fn query_cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The metric registry every stage records into. The server renders
    /// it at `GET /metrics`.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The newest `n` request traces, most recent first (empty unless
    /// [`ChatIypConfig::trace_requests`] is on).
    pub fn recent_traces(&self, n: usize) -> Vec<Arc<TraceTree>> {
        self.traces.recent(n)
    }

    /// Lifetime resilience counters (fault retries performed, degraded
    /// responses served) — surfaced in `/stats` and as
    /// `chatiyp_retries_total` / `chatiyp_degraded_total` in `/metrics`.
    pub fn resilience_stats(&self) -> ResilienceCounters {
        self.resilience.snapshot()
    }

    /// Executes a raw read-only Cypher query through the shared query
    /// cache, passing the resilience layer's `exec` fault point first —
    /// the `/cypher` endpoint's entry. An injected execution outage
    /// returns [`CypherExecError::Unavailable`] (serve `503` +
    /// `Retry-After`); engine errors come back as
    /// [`CypherExecError::Query`] (serve `400`). With the layer
    /// disabled or no fault plan configured, this is exactly a cache
    /// execution.
    pub fn execute_cypher_with_limits(
        &self,
        snap: &GraphSnapshot,
        query: &str,
        limits: iyp_cypher::ExecLimits,
    ) -> Result<Arc<QueryResult>, CypherExecError> {
        let res = &self.config.resilience;
        if res.enabled {
            if let Some(plan) = &res.faults {
                if let Err(fault) = plan.check(FaultPoint::Exec) {
                    return Err(CypherExecError::Unavailable(fault));
                }
            }
        }
        self.cache
            .get_or_execute_with_limits(snap, query, &iyp_cypher::Params::new(), limits)
            .map_err(CypherExecError::Query)
    }

    /// Answers a natural-language question.
    pub fn ask(&self, question: &str) -> ChatResponse {
        self.ask_traced(question).0
    }

    /// Like [`ask`](Self::ask), returning the request's span tree
    /// alongside the response. The tree is empty when
    /// [`ChatIypConfig::trace_requests`] is off; when on, it is also
    /// recorded into the trace ring (see [`Self::recent_traces`]) —
    /// shared, not copied: the returned [`Arc`] and the ring alias the
    /// same tree.
    pub fn ask_traced(&self, question: &str) -> (ChatResponse, Arc<TraceTree>) {
        let trace = if self.config.trace_requests {
            Trace::new()
        } else {
            Trace::disabled()
        };
        let response = self.ask_inner(question, &trace);
        let tree = Arc::new(trace.finish());
        if !tree.spans.is_empty() {
            self.traces.record(Arc::clone(&tree));
        }
        (response, tree)
    }

    fn ask_inner(&self, question: &str, trace: &Trace) -> ChatResponse {
        let t_start = Instant::now();
        let ask_span = trace.span("ask");

        // Resilience context for this request: the end-to-end budget
        // starts now; stages receive `Option<&_>` so the disabled path
        // costs one branch.
        let res = &self.config.resilience;
        let ctx: Option<ResilienceCtx<'_>> = if res.enabled {
            Some(ResilienceCtx {
                budget: crate::resilience::Budget::new(res.ask_deadline),
                retry: &res.retry,
                faults: res.faults.as_deref(),
                stats: &self.resilience,
            })
        } else {
            None
        };
        // The first degradation that shaped this response, if any.
        let mut degraded: Option<DegradedReason> = None;

        // Stage 2a: TextToCypherRetriever (with optional self-correction
        // retries on failed/empty executions).
        // One resolved (snapshot, index) pair for the whole request: the
        // symbolic path, entity linking and the semantic fallback below
        // all read the same published version, even if an ingest swaps in
        // a newer pair mid-ask.
        let handle = self.resolve();
        let snap = &handle.snapshot;
        let structured: Option<StructuredRetrieval> = if self.config.enable_text2cypher {
            let _s = trace.span("text2cypher");
            Some(self.text2cypher.retrieve_resilient(
                snap,
                question,
                self.config.max_retries,
                Some(&self.cache),
                iyp_cypher::ExecLimits::none().with_parallelism(self.config.query_parallelism),
                handle.index.catalog(),
                ctx.as_ref(),
            ))
        } else {
            None
        };
        if let Some(reason) = structured.as_ref().and_then(|s| s.degraded) {
            degraded = Some(reason);
        }

        let structured_ok = structured
            .as_ref()
            .map(StructuredRetrieval::has_rows)
            .unwrap_or(false);

        // Stage 2b/2c: semantic fallback when the symbolic path failed or
        // came back empty. The embedder is a fault point of its own, and
        // the stage respects the retrieval share of the request budget —
        // an unavailable index degrades to answering from the structured
        // stage alone (or a marked failure), never an abort.
        let mut contexts: Vec<ContextChunk> = Vec::new();
        if !structured_ok && self.config.enable_vector_fallback {
            let skip_retrieval = match &ctx {
                Some(c) if !c.budget.within_share(RETRIEVE_BUDGET_SHARE) => {
                    degraded.get_or_insert(DegradedReason::BudgetExhausted);
                    true
                }
                Some(c) if c.check(FaultPoint::Embed).is_err() => {
                    degraded.get_or_insert(DegradedReason::RetrievalUnavailable);
                    true
                }
                _ => false,
            };
            if !skip_retrieval {
                let retrieve_span = trace.span("embed_retrieve");
                let t0 = Instant::now();
                let mut candidates = handle.index.retrieve(question, self.config.vector_top_k);
                self.registry
                    .observe(STAGE_METRIC, &[("stage", "embed_retrieve")], t0.elapsed());
                retrieve_span.field("candidates", candidates.len());
                drop(retrieve_span);
                if self.config.enable_reranker && !candidates.is_empty() {
                    let _s = trace.span("rerank");
                    let t0 = Instant::now();
                    let texts: Vec<String> = candidates
                        .iter()
                        .map(|c| format!("{} {}", c.title, c.text))
                        .collect();
                    let ranked = self
                        .reranker
                        .rerank(question, &texts, self.config.rerank_top_k);
                    self.registry
                        .observe(STAGE_METRIC, &[("stage", "rerank")], t0.elapsed());
                    contexts = ranked
                        .into_iter()
                        .map(|r| {
                            let mut c = candidates[r.index].clone();
                            c.score = r.score;
                            c
                        })
                        .collect();
                } else {
                    candidates.truncate(self.config.rerank_top_k);
                    contexts = candidates;
                }
            }
        }
        let t_retrieval = t_start.elapsed();

        // Stage 3: generation.
        let generate_span = trace.span("generate");
        let t_gen_start = Instant::now();
        // Did the structured stage run a query that legitimately returned
        // nothing? Then the truthful core of the answer is "no data", and
        // the semantic context is supplementary — not a replacement fact.
        let structured_empty = structured
            .as_ref()
            .map(|s| s.result.as_ref().map(|r| r.is_empty()).unwrap_or(false))
            .unwrap_or(false);
        let (answer, route) = if structured_ok {
            let s = structured.as_ref().expect("structured_ok implies Some");
            let result = s.result.as_ref().expect("has_rows implies result");
            (
                self.generate_resilient(
                    ctx.as_ref(),
                    &mut degraded,
                    question,
                    s.translation.intent.as_ref(),
                    result,
                ),
                Route::Cypher,
            )
        } else if structured_empty {
            let s = structured.as_ref().expect("structured_empty implies Some");
            let refusal = self.generate_resilient(
                ctx.as_ref(),
                &mut degraded,
                question,
                s.translation.intent.as_ref(),
                &iyp_cypher::QueryResult::empty(),
            );
            match contexts.first() {
                Some(best) => (
                    format!("{refusal} Closest related IYP entity: {}.", best.title),
                    Route::VectorFallback,
                ),
                // No fallback configured: the empty answer is still a
                // legitimate outcome of the structured route.
                None => (refusal, Route::Cypher),
            }
        } else if let Some(best) = contexts.first() {
            (answer_from_context(question, best), Route::VectorFallback)
        } else {
            (
                self.generate_resilient(
                    ctx.as_ref(),
                    &mut degraded,
                    question,
                    structured
                        .as_ref()
                        .and_then(|s| s.translation.intent.as_ref()),
                    &iyp_cypher::QueryResult::empty(),
                ),
                Route::Failed,
            )
        };
        let t_generation = t_gen_start.elapsed();
        self.registry
            .observe(STAGE_METRIC, &[("stage", "llm_generate")], t_generation);
        drop(generate_span);

        if degraded.is_some() {
            self.resilience.note_degraded();
        }

        ask_span.field("route", route);
        ask_span.field("question_len", question.len());
        drop(ask_span);
        self.registry
            .observe(STAGE_METRIC, &[("stage", "ask_total")], t_start.elapsed());

        let (cypher, query_result, intent, injected_error) = match structured {
            Some(s) => (
                s.translation.cypher,
                s.result,
                s.translation.intent,
                s.translation.injected_error,
            ),
            None => (None, None, None, None),
        };

        ChatResponse {
            question: question.to_string(),
            answer,
            cypher,
            query_result,
            contexts,
            route,
            intent,
            injected_error,
            degraded: degraded.map(DegradedReason::as_str),
            timings: Timings {
                retrieval: t_retrieval,
                generation: t_generation,
                total: t_start.elapsed(),
            },
        }
    }

    /// Runs answer generation under the resilience layer: the LM call is
    /// the [`FaultPoint::LlmGenerate`] fault point, retried with backoff
    /// within the remaining budget. When retries exhaust (or the budget
    /// already expired), the pipeline still answers — with a plain,
    /// LM-free rendering of the retrieved rows, marked
    /// [`DegradedReason::GenerationUnavailable`] (or
    /// [`DegradedReason::BudgetExhausted`]) — rather than aborting.
    fn generate_resilient(
        &self,
        ctx: Option<&ResilienceCtx<'_>>,
        degraded: &mut Option<DegradedReason>,
        question: &str,
        intent: Option<&Intent>,
        result: &QueryResult,
    ) -> String {
        let Some(ctx) = ctx else {
            return generate_answer(&self.lm, question, intent, result);
        };
        if ctx.budget.expired() {
            degraded.get_or_insert(DegradedReason::BudgetExhausted);
            return plain_answer(question, result);
        }
        let mut fault_retries = 0u32;
        loop {
            match ctx.check(FaultPoint::LlmGenerate) {
                Ok(()) => return generate_answer(&self.lm, question, intent, result),
                Err(_) if ctx.retry_after_fault(fault_retries, question, 1.0) => {
                    fault_retries += 1;
                }
                Err(_) => {
                    degraded.get_or_insert(DegradedReason::GenerationUnavailable);
                    return plain_answer(question, result);
                }
            }
        }
    }
}

/// The LM-free degraded answer: a plain rendering of the retrieved rows
/// (or an honest "no rows"), deterministic and clearly mechanical — a
/// degraded response reads degraded rather than imitating fluent prose
/// the generation stage could not produce.
fn plain_answer(question: &str, result: &QueryResult) -> String {
    if result.is_empty() {
        return format!("IYP returned no rows for this question: {question}");
    }
    let shown = result.rows.len().min(3);
    let rendered: Vec<String> = result.rows[..shown]
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        })
        .collect();
    let more = result.rows.len() - shown;
    let suffix = if more > 0 {
        format!(" (and {more} more rows)")
    } else {
        String::new()
    };
    format!(
        "IYP query result ({}): {}{suffix}",
        result.columns.join(", "),
        rendered.join("; ")
    )
}

/// Builds an answer from the best semantic context: the sentence of the
/// context most lexically aligned with the question, attributed to IYP.
fn answer_from_context(question: &str, ctx: &ContextChunk) -> String {
    let q_tokens = words(question);
    let best_sentence = ctx
        .text
        .split('.')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .max_by_key(|s| {
            let s_tokens = words(s);
            q_tokens.iter().filter(|t| s_tokens.contains(t)).count()
        })
        .unwrap_or(ctx.text.as_str());
    format!(
        "Based on related IYP records about {}: {best_sentence}.",
        ctx.title
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_data::{generate, IypConfig};
    use iyp_llm::LmConfig;

    fn perfect() -> ChatIyp {
        let config = ChatIypConfig {
            lm: LmConfig {
                seed: 42,
                skill: 1.0,
                variety: 0.0,
            },
            ..Default::default()
        };
        ChatIyp::new(generate(&IypConfig::tiny()), config)
    }

    #[test]
    fn answers_the_paper_example_via_cypher_route() {
        let chat = perfect();
        let r = chat.ask("What is the percentage of Japan's population in AS2497?");
        assert_eq!(r.route, Route::Cypher);
        let cy = r.cypher.as_deref().unwrap();
        assert!(cy.contains("POPULATION"), "cypher: {cy}");
        assert!(cy.contains("2497"));
        // The answer carries the actual percent from the graph.
        let snap = chat.snapshot();
        let gold = iyp_cypher::query(
            snap.graph(),
            "MATCH (a:AS {asn: 2497})-[p:POPULATION]->(c:Country {country_code: 'JP'}) RETURN p.percent",
        )
        .unwrap();
        let expect = gold.single_value().unwrap().as_f64().unwrap();
        assert!(
            r.answer.contains(&format!("{expect}")) || r.answer.contains(&format!("{expect:.2}")),
            "answer '{}' lacks {expect}",
            r.answer
        );
    }

    #[test]
    fn unparseable_question_falls_back_to_vector() {
        let chat = perfect();
        let r = chat.ask("Tell me everything interesting about IIJ in Japan");
        // This phrasing has no intent template; the vector path answers.
        assert_eq!(r.route, Route::VectorFallback);
        assert!(!r.contexts.is_empty());
        assert!(r.answer.contains("IYP"));
    }

    #[test]
    fn fallback_disabled_yields_failed_route() {
        let config = ChatIypConfig {
            lm: LmConfig {
                seed: 42,
                skill: 1.0,
                variety: 0.0,
            },
            ..ChatIypConfig::cypher_only()
        };
        let chat = ChatIyp::new(generate(&IypConfig::tiny()), config);
        let r = chat.ask("Tell me everything interesting please");
        assert_eq!(r.route, Route::Failed);
        assert!(r.contexts.is_empty());
    }

    #[test]
    fn timings_are_recorded() {
        let chat = perfect();
        let r = chat.ask("What is the name of AS2497?");
        assert!(r.timings.total >= r.timings.generation);
        assert!(r.timings.total.as_nanos() > 0);
    }

    #[test]
    fn responses_are_deterministic() {
        let a = perfect().ask("How many ASes are registered in Japan?");
        let b = perfect().ask("How many ASes are registered in Japan?");
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.cypher, b.cypher);
        assert_eq!(a.route, b.route);
    }

    /// One pipeline instance answers concurrent `ask` calls: every thread
    /// shares `&ChatIyp` and gets the same answer as a sequential run.
    #[test]
    fn concurrent_asks_match_sequential() {
        let chat = perfect();
        let questions = [
            "What is the name of AS2497?",
            "How many ASes are registered in Japan?",
            "In which country is AS2497 registered?",
            "Tell me everything interesting about IIJ in Japan",
        ];
        let sequential: Vec<_> = questions.iter().map(|q| chat.ask(q)).collect();
        let concurrent: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = questions.iter().map(|q| s.spawn(|| chat.ask(q))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (a, b) in sequential.iter().zip(&concurrent) {
            assert_eq!(a.answer, b.answer);
            assert_eq!(a.cypher, b.cypher);
            assert_eq!(a.route, b.route);
        }
    }

    /// Repeating a question answers through the result cache, and the
    /// cached answer is identical to the cold one.
    #[test]
    fn repeated_ask_hits_the_cache_with_identical_answer() {
        let chat = perfect();
        let q = "What is the name of AS2497?";
        let cold = chat.ask(q);
        assert_eq!(chat.query_cache().stats().hits, 0);
        let warm = chat.ask(q);
        let s = chat.query_cache().stats();
        assert!(s.hits >= 1, "second ask did not hit: {s:?}");
        assert_eq!(cold.answer, warm.answer);
        assert_eq!(cold.cypher, warm.cypher);
        assert_eq!(cold.query_result, warm.query_result);
    }

    /// Snapshot handles alias the pipeline's own current snapshot until
    /// an ingest publishes a new one.
    #[test]
    fn snapshot_shares_the_pipeline_graph_until_ingest() {
        let chat = perfect();
        let a = chat.snapshot();
        let b = chat.snapshot();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.version(), 1);

        let mut batch = DeltaBatch::new();
        batch.add_node(["AS"], iyp_graphdb::props!("asn" => 64512i64));
        let report = chat.ingest(&batch).unwrap();
        assert_eq!((report.graph.old_version, report.graph.new_version), (1, 2));
        assert_eq!(report.index_version, 2);

        let c = chat.snapshot();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.version(), 2);
        assert_eq!(c.node_count(), a.node_count() + 1);
        // The pre-ingest handle is untouched.
        assert_eq!(a.version(), 1);
    }

    /// Ingest invalidates cached answers: a count computed against the
    /// old snapshot is never served against the new one.
    #[test]
    fn ingest_invalidates_cached_cypher_results() {
        let chat = perfect();
        let q = "MATCH (a:AS) RETURN count(a)";
        let snap = chat.snapshot();
        let before = chat
            .query_cache()
            .get_or_execute(&snap, q, &iyp_cypher::Params::new())
            .unwrap();

        let mut batch = DeltaBatch::new();
        batch.add_node(["AS"], iyp_graphdb::props!("asn" => 64513i64));
        chat.ingest(&batch).unwrap();

        let snap = chat.snapshot();
        let after = chat
            .query_cache()
            .get_or_execute(&snap, q, &iyp_cypher::Params::new())
            .unwrap();
        let n = |v: &iyp_cypher::QueryResult| match v.rows[0][0] {
            iyp_graphdb::Value::Int(n) => n,
            _ => panic!("count not an int"),
        };
        assert_eq!(n(&after), n(&before) + 1, "stale count served after ingest");
        assert!(chat.query_cache().stats().invalidations >= 1);
    }

    /// At a low skill, self-correction retries should answer strictly
    /// more questions correctly over a batch than no retries.
    fn count_correct_with_retries(max_retries: u32) -> usize {
        let data = generate(&IypConfig::tiny());
        let gold_answers: Vec<(String, String)> = (0..30)
            .map(|i| {
                let asn = data.ases[i % data.ases.len()].asn;
                (
                    // A non-aggregating question: a mistranslation usually
                    // returns nothing, which is what arms the retry.
                    format!("In which country is AS{asn} registered?"),
                    format!(
                        "MATCH (a:AS {{asn: {asn}}})-[:COUNTRY]->(c:Country) RETURN c.country_code"
                    ),
                )
            })
            .collect();
        let golds: Vec<_> = gold_answers
            .iter()
            .map(|(_, cy)| iyp_cypher::query(&data.graph, cy).unwrap())
            .collect();
        let chat = ChatIyp::new(
            data,
            ChatIypConfig {
                lm: LmConfig {
                    seed: 9,
                    skill: 0.2,
                    variety: 0.0,
                },
                max_retries,
                ..Default::default()
            },
        );
        gold_answers
            .iter()
            .zip(&golds)
            .filter(|((q, _), gold)| {
                chat.ask(q)
                    .query_result
                    .map(|got| got.fingerprint(false) == gold.fingerprint(false))
                    .unwrap_or(false)
            })
            .count()
    }

    #[test]
    fn retry_recovers_failed_translations() {
        let without = count_correct_with_retries(0);
        let with = count_correct_with_retries(2);
        assert!(with > without, "retries did not help: {with} vs {without}");
    }

    /// The previously-stale path, now fixed: after an ingest, a
    /// semantic-fallback question about the new node returns its context
    /// — while a handle resolved *before* the ingest still answers from
    /// the old index (snapshot isolation cuts both ways).
    #[test]
    fn semantic_fallback_sees_ingested_nodes_and_held_handles_do_not() {
        let chat = perfect();
        let pre = chat.resolve();
        assert_eq!(pre.snapshot.version(), pre.index.version());

        let batch = iyp_data::growth_batch(pre.snapshot.graph(), 77, 5);
        let report = chat.ingest(&batch).unwrap();
        assert_eq!(report.index_version, report.graph.new_version);

        let new_asn = iyp_data::max_asn(chat.snapshot().graph());
        // This phrasing has no intent template, so it takes the vector
        // fallback — the route that used to answer from a stale corpus.
        let q = format!("Tell me everything interesting about Ingest Networks {new_asn}");
        let r = chat.ask(&q);
        assert_eq!(r.route, Route::VectorFallback);
        assert!(
            r.contexts
                .iter()
                .any(|c| c.title.contains(&new_asn.to_string())),
            "fallback missed the ingested AS; contexts: {:?}",
            r.contexts.iter().map(|c| &c.title).collect::<Vec<_>>()
        );

        // The pre-ingest handle still describes the old world, pair-wise:
        // same stamped version, and no document for the new node.
        assert_eq!(pre.snapshot.version(), pre.index.version());
        assert!(pre
            .index
            .retrieve(&q, 10)
            .iter()
            .all(|c| !c.title.contains(&new_asn.to_string())));
        // While the freshly resolved pair is the new world.
        let post = chat.resolve();
        assert_eq!(post.snapshot.version(), post.index.version());
        assert_eq!(post.snapshot.version(), report.graph.new_version);
    }

    /// Entity linking tracks the ingest too: a question naming a
    /// freshly ingested network by *name* routes through Cypher, because
    /// the refreshed catalog resolves the name to its ASN.
    #[test]
    fn catalog_refresh_routes_new_names_through_cypher() {
        let chat = perfect();
        let batch = iyp_data::growth_batch(chat.snapshot().graph(), 31, 4);
        chat.ingest(&batch).unwrap();
        let new_asn = iyp_data::max_asn(chat.snapshot().graph());
        let q = format!("What is the ASN of Ingest Networks {new_asn}?");
        let r = chat.ask(&q);
        assert_eq!(r.route, Route::Cypher, "answer: {}", r.answer);
        assert!(
            r.answer.contains(&new_asn.to_string()),
            "answer '{}' lacks {new_asn}",
            r.answer
        );
    }

    /// Concurrent resolvers never observe a torn pair while ingests
    /// publish: snapshot version and index stamp always agree.
    #[test]
    fn resolve_never_returns_a_torn_pair_under_concurrent_ingest() {
        let chat = std::sync::Arc::new(perfect());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let mut readers = Vec::new();
            for _ in 0..4 {
                let chat = std::sync::Arc::clone(&chat);
                let stop = std::sync::Arc::clone(&stop);
                readers.push(s.spawn(move || {
                    let mut seen = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let h = chat.resolve();
                        assert_eq!(
                            h.snapshot.version(),
                            h.index.version(),
                            "torn (snapshot, index) pair"
                        );
                        assert_eq!(h.snapshot.epoch(), h.index.epoch());
                        seen = seen.max(h.snapshot.version());
                    }
                    seen
                }));
            }
            for _ in 0..20 {
                let batch = iyp_data::growth_batch(chat.snapshot().graph(), 5, 2);
                chat.ingest(&batch).unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
            for r in readers {
                r.join().unwrap();
            }
        });
        assert_eq!(chat.snapshot().version(), 21);
        assert_eq!(chat.retrieval_index().version(), 21);
    }

    #[test]
    fn vector_only_config_never_emits_cypher() {
        let config = ChatIypConfig {
            lm: LmConfig {
                seed: 42,
                skill: 1.0,
                variety: 0.0,
            },
            ..ChatIypConfig::vector_only()
        };
        let chat = ChatIyp::new(generate(&IypConfig::tiny()), config);
        let r = chat.ask("What is the name of AS2497?");
        assert!(r.cypher.is_none());
        assert_eq!(r.route, Route::VectorFallback);
    }
}
