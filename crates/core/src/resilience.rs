//! Resilience: deterministic fault injection, retry/backoff policy,
//! request budgets, and graceful-degradation bookkeeping.
//!
//! The pipeline treats three substrates as failure-prone — the LLM
//! (translation and generation), the embedder (semantic retrieval), and
//! graph execution. Each call into one of them passes a [`FaultPoint`]
//! check against the configured [`FaultPlan`]; an injected fault is
//! indistinguishable from a real transient outage, so the retry,
//! budget, and degradation machinery exercised by the chaos suite is
//! exactly what runs in production builds. There are no test-only
//! `cfg` hooks: a plan is plain config
//! ([`crate::ChatIypConfig::resilience`]), and a `None` plan costs one
//! branch per stage.
//!
//! Everything is seeded and deterministic: a fault decision is a pure
//! function of `(plan seed, fault point, per-point call index)`, and
//! backoff jitter is a pure function of `(policy seed, attempt, key)`.
//! Replaying the same call sequence replays the same faults, which is
//! what lets the chaos suite assert byte-identical recovery once a
//! fault window closes.

use serde::Serialize;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The instrumented call sites where a [`FaultPlan`] can inject a
/// transient failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// The LLM translation call (question → Cypher) in the structured
    /// retrieval stage.
    LlmTranslate,
    /// The LLM answer-generation call.
    LlmGenerate,
    /// The embedder behind semantic retrieval (vector fallback).
    Embed,
    /// Graph (Cypher) execution — both the `ask` path and `/cypher`.
    Exec,
    /// The write-ahead-log append + fsync on the durable ingest path.
    /// An injected fault here fails the ingest *before* anything is
    /// published — the durable-write-or-nothing contract.
    Wal,
}

impl FaultPoint {
    /// Every fault point, in counter order.
    pub const ALL: [FaultPoint; 5] = [
        FaultPoint::LlmTranslate,
        FaultPoint::LlmGenerate,
        FaultPoint::Embed,
        FaultPoint::Exec,
        FaultPoint::Wal,
    ];

    /// Stable label used in error text, metrics, and docs.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultPoint::LlmTranslate => "llm_translate",
            FaultPoint::LlmGenerate => "llm_generate",
            FaultPoint::Embed => "embed",
            FaultPoint::Exec => "exec",
            FaultPoint::Wal => "wal",
        }
    }

    fn idx(self) -> usize {
        match self {
            FaultPoint::LlmTranslate => 0,
            FaultPoint::LlmGenerate => 1,
            FaultPoint::Embed => 2,
            FaultPoint::Exec => 3,
            FaultPoint::Wal => 4,
        }
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// When and how often one [`FaultPoint`] fails.
///
/// A rule is a half-open call-index window `[from_call, until_call)`
/// over that point's own call counter, plus a failure probability
/// within the window. `probability: 1.0` is a deterministic outage for
/// the whole window — the shape the chaos suite uses to prove recovery
/// — while fractional probabilities model flaky substrates (still
/// deterministic for a given seed and call sequence).
#[derive(Debug, Clone, Copy)]
pub struct FaultRule {
    /// Chance a call inside the window fails, in `[0, 1]`.
    pub probability: f64,
    /// First failing call index (inclusive).
    pub from_call: u64,
    /// First call index past the window (exclusive); `None` never ends.
    pub until_call: Option<u64>,
}

impl FaultRule {
    /// A total outage over calls `[from, until)`.
    pub fn window(from: u64, until: u64) -> Self {
        FaultRule {
            probability: 1.0,
            from_call: from,
            until_call: Some(until),
        }
    }

    /// Every call fails with `probability`, forever.
    pub fn flaky(probability: f64) -> Self {
        FaultRule {
            probability,
            from_call: 0,
            until_call: None,
        }
    }
}

/// An injected fault, reported exactly like a real transient error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// Which instrumented call failed.
    pub point: FaultPoint,
    /// That point's call index at the time of failure.
    pub call: u64,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {} (call #{})", self.point, self.call)
    }
}

impl std::error::Error for FaultError {}

/// A seeded, deterministic fault schedule over the pipeline's
/// [`FaultPoint`]s.
///
/// The plan keeps one atomic call counter per point; [`check`]
/// increments it and decides pass/fail as a pure function of
/// `(seed, point, call index)` and the point's [`FaultRule`]. Cloning
/// the `Arc` that configs hold shares the counters, so every stage of
/// one pipeline advances the same schedule.
///
/// [`check`]: FaultPlan::check
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: [Option<FaultRule>; 5],
    calls: [AtomicU64; 5],
}

impl FaultPlan {
    /// An empty plan (no rules, nothing fails) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Builder: installs `rule` at `point` (replacing any previous one).
    pub fn rule(mut self, point: FaultPoint, rule: FaultRule) -> Self {
        self.rules[point.idx()] = Some(rule);
        self
    }

    /// Convenience: the builder output wrapped for config injection.
    pub fn into_arc(self) -> Arc<FaultPlan> {
        Arc::new(self)
    }

    /// Records one call at `point` and decides whether it fails.
    ///
    /// Always advances the point's call counter, so a plan's windows
    /// line up with the observed call sequence whether or not a rule is
    /// installed.
    pub fn check(&self, point: FaultPoint) -> Result<(), FaultError> {
        let call = self.calls[point.idx()].fetch_add(1, Ordering::Relaxed);
        let Some(rule) = &self.rules[point.idx()] else {
            return Ok(());
        };
        if call < rule.from_call || rule.until_call.is_some_and(|end| call >= end) {
            return Ok(());
        }
        let fails = rule.probability >= 1.0
            || unit(mix(
                self.seed ^ (point.idx() as u64).wrapping_mul(0x9E3779B97F4A7C15),
                call,
            )) < rule.probability;
        if fails {
            Err(FaultError { point, call })
        } else {
            Ok(())
        }
    }

    /// How many calls `point` has seen so far.
    pub fn calls(&self, point: FaultPoint) -> u64 {
        self.calls[point.idx()].load(Ordering::Relaxed)
    }
}

/// SplitMix64-style finalizer over two words; the same construction the
/// simulated LM uses for its deterministic stochasticity.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_add(0x9E3779B97F4A7C15)
        .wrapping_add(b.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform float in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// FNV-1a over a string, for keying jitter off the question text.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Capped exponential backoff with seeded jitter, applied to transient
/// (injected or real) faults — distinct from
/// [`crate::ChatIypConfig::max_retries`], which re-prompts the
/// translator for *self-correction* on wrong-but-successful output.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure; 0 disables fault retries.
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay, jitter included.
    pub cap: Duration,
    /// Growth factor per attempt.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: a delay `d` is scaled into
    /// `[d·(1-jitter), d·(1+jitter)]` (then re-capped).
    pub jitter: f64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            multiplier: 2.0,
            jitter: 0.2,
            seed: 42,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based) for `key`.
    ///
    /// `min(cap, base·multiplier^attempt)` scaled by a jitter factor in
    /// `[1-jitter, 1+jitter]`, then capped again — so the result is
    /// always within `[base·(1-jitter), cap]`. Deterministic: the same
    /// `(policy, attempt, key)` always yields the same delay.
    pub fn backoff(&self, attempt: u32, key: &str) -> Duration {
        let raw = self.base.as_secs_f64() * self.multiplier.powi(attempt as i32);
        let capped = raw.min(self.cap.as_secs_f64());
        let u = unit(mix(self.seed ^ fnv(key), u64::from(attempt)));
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * u;
        Duration::from_secs_f64((capped * factor).min(self.cap.as_secs_f64()))
    }
}

/// Share of the `ask` deadline the structured (translate + execute)
/// stage may spend before the pipeline stops retrying it and falls
/// through to the next rung.
pub const TRANSLATE_BUDGET_SHARE: f64 = 0.5;

/// Share of the `ask` deadline spent by the end of retrieval (semantic
/// fallback included); past this the pipeline skips straight to
/// generation with whatever it has.
pub const RETRIEVE_BUDGET_SHARE: f64 = 0.8;

/// An end-to-end request deadline, split across stages by fixed shares
/// ([`TRANSLATE_BUDGET_SHARE`], [`RETRIEVE_BUDGET_SHARE`]).
///
/// A `Budget` never aborts a request: exhaustion makes stages fall
/// through to the next degradation rung, and the response reports
/// `degraded: "budget-exhausted"` instead of failing.
#[derive(Debug, Clone)]
pub struct Budget {
    start: Instant,
    limit: Option<Duration>,
}

impl Budget {
    /// Starts the clock; `None` means unlimited.
    pub fn new(limit: Option<Duration>) -> Self {
        Budget {
            start: Instant::now(),
            limit,
        }
    }

    /// A budget that never expires.
    pub fn unlimited() -> Self {
        Budget::new(None)
    }

    /// Time left before the deadline; `None` when unlimited.
    pub fn remaining(&self) -> Option<Duration> {
        self.limit.map(|l| l.saturating_sub(self.start.elapsed()))
    }

    /// Has the whole deadline passed?
    pub fn expired(&self) -> bool {
        self.remaining().is_some_and(|r| r.is_zero())
    }

    /// Is less than `share` of the deadline spent? Always true when
    /// unlimited.
    pub fn within_share(&self, share: f64) -> bool {
        match self.limit {
            None => true,
            Some(l) => self.start.elapsed().as_secs_f64() < l.as_secs_f64() * share,
        }
    }

    /// Sleeps for `d`, clipped to the remaining budget. Returns `false`
    /// (without sleeping) when the budget is already exhausted — the
    /// caller should stop retrying and fall through.
    pub fn sleep(&self, d: Duration) -> bool {
        let d = match self.remaining() {
            None => d,
            Some(r) if r.is_zero() => return false,
            Some(r) => d.min(r),
        };
        if !d.is_zero() {
            std::thread::sleep(d);
        }
        true
    }
}

/// Why a response is degraded — the rungs of the degradation ladder
/// below "full service". Surfaced verbatim in the `degraded` field of
/// `/ask` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// The structured stage (LLM translation or Cypher execution) was
    /// unavailable past its retry budget; the answer comes from
    /// semantic retrieval alone.
    Text2CypherUnavailable,
    /// The embedder/semantic index was unavailable; the answer comes
    /// from the structured stage alone (or fails marked).
    RetrievalUnavailable,
    /// Answer generation was unavailable past its retry budget; the
    /// response carries a plain rendering of the retrieved facts.
    GenerationUnavailable,
    /// The request deadline ran out mid-pipeline; later stages were
    /// skipped rather than aborted.
    BudgetExhausted,
}

impl DegradedReason {
    /// The stable marker string surfaced through `/ask`.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradedReason::Text2CypherUnavailable => "text2cypher-unavailable",
            DegradedReason::RetrievalUnavailable => "retrieval-unavailable",
            DegradedReason::GenerationUnavailable => "generation-unavailable",
            DegradedReason::BudgetExhausted => "budget-exhausted",
        }
    }
}

impl fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Resilience knobs for the pipeline, carried by
/// [`crate::ChatIypConfig::resilience`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Master switch. Off, the ask path takes its historical shape: no
    /// fault checks, no budgets, no fault retries (the
    /// `degradation_overhead` bench compares the two).
    pub enabled: bool,
    /// End-to-end `ask` deadline, split across stages by the
    /// `*_BUDGET_SHARE` constants. `None` (default) means unlimited.
    pub ask_deadline: Option<Duration>,
    /// Backoff policy for transient-fault retries.
    pub retry: RetryPolicy,
    /// The fault schedule, if any. Shared (`Arc`) so config clones
    /// advance one set of call counters.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            enabled: true,
            ask_deadline: None,
            retry: RetryPolicy::default(),
            faults: None,
        }
    }
}

impl ResilienceConfig {
    /// A config with the resilience layer switched off entirely.
    pub fn disabled() -> Self {
        ResilienceConfig {
            enabled: false,
            ..Default::default()
        }
    }
}

/// Lifetime counters for the resilience layer, owned by
/// [`crate::ChatIyp`] and surfaced via `/stats` and `/metrics`
/// (`chatiyp_retries_total`, `chatiyp_degraded_total`).
#[derive(Debug, Default)]
pub struct ResilienceStats {
    retries: AtomicU64,
    degraded: AtomicU64,
}

impl ResilienceStats {
    /// Counts one transient-fault retry (any stage).
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one degraded response.
    pub fn note_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ResilienceCounters {
        ResilienceCounters {
            retries: self.retries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

/// A readable copy of [`ResilienceStats`], serialized inside `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ResilienceCounters {
    /// Transient-fault retries performed (all stages).
    pub retries: u64,
    /// Responses served with a `degraded` marker.
    pub degraded: u64,
}

/// One request's resilience context: the running budget plus borrows of
/// the policy, plan, and counters. Built per-`ask` when the layer is
/// enabled; stages receive `Option<&ResilienceCtx>` so the disabled
/// path stays a single branch.
#[derive(Debug)]
pub struct ResilienceCtx<'a> {
    /// The request's end-to-end budget (clock already running).
    pub budget: Budget,
    /// Backoff policy for this request's fault retries.
    pub retry: &'a RetryPolicy,
    /// The fault schedule, if one is configured.
    pub faults: Option<&'a FaultPlan>,
    /// Where retries and degradations are counted.
    pub stats: &'a ResilienceStats,
}

impl ResilienceCtx<'_> {
    /// Checks `point` against the fault plan (no plan → always `Ok`).
    pub fn check(&self, point: FaultPoint) -> Result<(), FaultError> {
        match self.faults {
            Some(plan) => plan.check(point),
            None => Ok(()),
        }
    }

    /// Handles one transient fault: if retry number `attempt` is within
    /// the policy and the stage's budget share, backs off (budget-
    /// clipped sleep), counts the retry, and returns `true` — the
    /// caller should try again. Otherwise returns `false` — the caller
    /// should fall through to degradation.
    pub fn retry_after_fault(&self, attempt: u32, key: &str, stage_share: f64) -> bool {
        if attempt >= self.retry.max_retries || !self.budget.within_share(stage_share) {
            return false;
        }
        if !self.budget.sleep(self.retry.backoff(attempt, key)) {
            return false;
        }
        self.stats.note_retry();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fails_but_counts_calls() {
        let plan = FaultPlan::new(7);
        for _ in 0..5 {
            assert!(plan.check(FaultPoint::LlmTranslate).is_ok());
        }
        assert_eq!(plan.calls(FaultPoint::LlmTranslate), 5);
        assert_eq!(plan.calls(FaultPoint::Exec), 0);
    }

    #[test]
    fn window_rule_fails_exactly_inside_the_window() {
        let plan = FaultPlan::new(1).rule(FaultPoint::Exec, FaultRule::window(2, 5));
        let outcomes: Vec<bool> = (0..8)
            .map(|_| plan.check(FaultPoint::Exec).is_err())
            .collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, true, true, false, false, false]
        );
    }

    #[test]
    fn fault_error_reports_point_and_call() {
        let plan = FaultPlan::new(1).rule(FaultPoint::LlmGenerate, FaultRule::window(0, 1));
        let err = plan.check(FaultPoint::LlmGenerate).unwrap_err();
        assert_eq!(err.point, FaultPoint::LlmGenerate);
        assert_eq!(err.call, 0);
        assert_eq!(err.to_string(), "injected fault at llm_generate (call #0)");
    }

    #[test]
    fn probabilistic_rule_is_seed_deterministic_and_roughly_calibrated() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).rule(FaultPoint::Embed, FaultRule::flaky(0.3));
            (0..400)
                .map(|_| plan.check(FaultPoint::Embed).is_err())
                .collect()
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b, "same seed must replay the same fault sequence");
        let c = run(100);
        assert_ne!(a, c, "different seeds should differ somewhere");
        let rate = a.iter().filter(|&&f| f).count() as f64 / a.len() as f64;
        assert!((0.18..0.42).contains(&rate), "rate {rate} far from 0.3");
    }

    #[test]
    fn points_have_independent_counters() {
        let plan = FaultPlan::new(3).rule(FaultPoint::LlmTranslate, FaultRule::window(1, 2));
        // Exec calls must not advance the LlmTranslate window.
        for _ in 0..10 {
            assert!(plan.check(FaultPoint::Exec).is_ok());
        }
        assert!(plan.check(FaultPoint::LlmTranslate).is_ok()); // call 0
        assert!(plan.check(FaultPoint::LlmTranslate).is_err()); // call 1
        assert!(plan.check(FaultPoint::LlmTranslate).is_ok()); // call 2
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..Default::default()
        };
        let d: Vec<Duration> = (0..8).map(|a| p.backoff(a, "q")).collect();
        assert_eq!(d[0], Duration::from_millis(5));
        assert_eq!(d[1], Duration::from_millis(10));
        assert_eq!(d[2], Duration::from_millis(20));
        // Monotonic until the cap, then pinned at it.
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(d[7], p.cap, "attempt 7 (640ms raw) must cap at 200ms");
    }

    #[test]
    fn backoff_jitter_stays_within_bounds_and_under_cap() {
        let p = RetryPolicy::default(); // jitter 0.2
        for attempt in 0..10 {
            for key in ["a", "b", "what is the name of AS2497?", ""] {
                let d = p.backoff(attempt, key).as_secs_f64();
                let raw = (p.base.as_secs_f64() * p.multiplier.powi(attempt as i32))
                    .min(p.cap.as_secs_f64());
                assert!(
                    d >= raw * (1.0 - p.jitter) - 1e-12,
                    "attempt {attempt} key {key:?}: {d} below jitter floor"
                );
                assert!(
                    d <= p.cap.as_secs_f64() + 1e-12,
                    "attempt {attempt} key {key:?}: {d} above cap"
                );
                assert!(d <= raw * (1.0 + p.jitter) + 1e-12);
            }
        }
    }

    #[test]
    fn backoff_is_seed_deterministic() {
        let p = RetryPolicy::default();
        let q = RetryPolicy::default();
        for attempt in 0..5 {
            assert_eq!(p.backoff(attempt, "key"), q.backoff(attempt, "key"));
        }
        let other_seed = RetryPolicy {
            seed: 43,
            ..Default::default()
        };
        assert!(
            (0..5).any(|a| p.backoff(a, "key") != other_seed.backoff(a, "key")),
            "different seeds should jitter differently"
        );
        // Different keys jitter differently too (same seed).
        assert!((0..5).any(|a| p.backoff(a, "key") != p.backoff(a, "other")));
    }

    #[test]
    fn budget_expires_and_clips_sleeps() {
        let b = Budget::new(Some(Duration::from_millis(20)));
        assert!(!b.expired());
        assert!(b.within_share(1.0));
        // A sleep far past the deadline is clipped to the remainder.
        let t0 = Instant::now();
        assert!(b.sleep(Duration::from_secs(5)));
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert!(b.expired());
        assert!(!b.within_share(1.0));
        assert!(
            !b.sleep(Duration::from_millis(1)),
            "expired budget must refuse"
        );
    }

    #[test]
    fn unlimited_budget_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.expired());
        assert!(b.remaining().is_none());
        assert!(b.within_share(0.0001));
        assert!(b.sleep(Duration::ZERO));
    }

    #[test]
    fn within_share_tracks_elapsed_fraction() {
        let b = Budget::new(Some(Duration::from_secs(3600)));
        // Fresh budget: essentially nothing spent.
        assert!(b.within_share(0.5));
        let tiny = Budget::new(Some(Duration::from_nanos(1)));
        std::thread::sleep(Duration::from_millis(1));
        assert!(!tiny.within_share(0.5));
    }

    #[test]
    fn retry_after_fault_respects_policy_budget_and_counts() {
        let stats = ResilienceStats::default();
        let retry = RetryPolicy {
            max_retries: 2,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            ..Default::default()
        };
        let ctx = ResilienceCtx {
            budget: Budget::unlimited(),
            retry: &retry,
            faults: None,
            stats: &stats,
        };
        assert!(ctx.retry_after_fault(0, "q", 1.0));
        assert!(ctx.retry_after_fault(1, "q", 1.0));
        assert!(!ctx.retry_after_fault(2, "q", 1.0), "past max_retries");
        assert_eq!(stats.snapshot().retries, 2);

        // An exhausted stage share refuses immediately.
        let spent = ResilienceCtx {
            budget: Budget::new(Some(Duration::from_nanos(1))),
            retry: &retry,
            faults: None,
            stats: &stats,
        };
        std::thread::sleep(Duration::from_millis(1));
        assert!(!spent.retry_after_fault(0, "q", 0.5));
        assert_eq!(stats.snapshot().retries, 2, "refused retry must not count");
    }

    #[test]
    fn degraded_reasons_render_stable_markers() {
        assert_eq!(
            DegradedReason::Text2CypherUnavailable.as_str(),
            "text2cypher-unavailable"
        );
        assert_eq!(
            DegradedReason::RetrievalUnavailable.to_string(),
            "retrieval-unavailable"
        );
        assert_eq!(
            DegradedReason::GenerationUnavailable.as_str(),
            "generation-unavailable"
        );
        assert_eq!(DegradedReason::BudgetExhausted.as_str(), "budget-exhausted");
    }

    #[test]
    fn stats_snapshot_serializes_for_stats_endpoint() {
        let stats = ResilienceStats::default();
        stats.note_retry();
        stats.note_degraded();
        stats.note_degraded();
        let snap = stats.snapshot();
        assert_eq!(
            snap,
            ResilienceCounters {
                retries: 1,
                degraded: 2
            }
        );
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"retries\":1"));
        assert!(json.contains("\"degraded\":2"));
    }
}
