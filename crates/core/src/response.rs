//! The pipeline's transparency output: answer, generated Cypher, retrieved
//! contexts and provenance.

use iyp_cypher::QueryResult;
use iyp_llm::{Intent, TranslationError};
use serde::Serialize;
use std::fmt;
use std::time::Duration;

/// Which retrieval path produced the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Route {
    /// Structured retrieval: the generated Cypher ran and returned rows.
    Cypher,
    /// The structured stage failed or returned nothing; the vector
    /// retriever supplied context.
    VectorFallback,
    /// Nothing usable was retrieved.
    Failed,
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Route::Cypher => write!(f, "cypher"),
            Route::VectorFallback => write!(f, "vector-fallback"),
            Route::Failed => write!(f, "failed"),
        }
    }
}

/// One retrieved context chunk shown to the user.
#[derive(Debug, Clone, Serialize)]
pub struct ContextChunk {
    /// Source title (e.g. "AS2497 IIJ").
    pub title: String,
    /// The context text.
    pub text: String,
    /// Relevance score after reranking (or raw vector score).
    pub score: f64,
}

/// Stage timings.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Timings {
    /// Retrieval (translation + execution + vector search + rerank).
    #[serde(with = "duration_us")]
    pub retrieval: Duration,
    /// Answer generation.
    #[serde(with = "duration_us")]
    pub generation: Duration,
    /// End-to-end.
    #[serde(with = "duration_us")]
    pub total: Duration,
}

mod duration_us {
    use std::time::Duration;

    pub fn serialize(d: &Duration) -> serde::Content {
        serde::Content::U64(d.as_micros() as u64)
    }
}

/// The full response returned by [`crate::pipeline::ChatIyp::ask`].
#[derive(Debug, Clone, Serialize)]
pub struct ChatResponse {
    /// The input question.
    pub question: String,
    /// The natural-language answer.
    pub answer: String,
    /// The generated Cypher query (transparency output), if any.
    pub cypher: Option<String>,
    /// The structured query's result, if the Cypher route ran.
    pub query_result: Option<QueryResult>,
    /// Retrieved context chunks (vector route).
    pub contexts: Vec<ContextChunk>,
    /// Which path answered.
    pub route: Route,
    /// The parsed intent (provenance; `None` when parsing failed).
    pub intent: Option<Intent>,
    /// The simulated model's injected translation error, if any —
    /// surfaced for evaluation analysis only.
    pub injected_error: Option<TranslationError>,
    /// Why the response is degraded, if it is — one of the stable
    /// markers from [`crate::resilience::DegradedReason`] (e.g.
    /// `"text2cypher-unavailable"`). `None` means full service. A
    /// degraded answer is never served as if it were healthy: any
    /// response whose shape was changed by a fault or an exhausted
    /// budget carries this marker, surfaced verbatim through `/ask`.
    pub degraded: Option<&'static str>,
    /// Stage timings.
    pub timings: Timings,
}

impl fmt::Display for ChatResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Q: {}", self.question)?;
        writeln!(f, "A: {}", self.answer)?;
        if let Some(cy) = &self.cypher {
            writeln!(f, "Cypher: {cy}")?;
        }
        writeln!(f, "Route: {}", self.route)?;
        if let Some(reason) = self.degraded {
            writeln!(f, "Degraded: {reason}")?;
        }
        if !self.contexts.is_empty() {
            writeln!(f, "Contexts:")?;
            for c in &self.contexts {
                writeln!(f, "  [{:.3}] {} — {}", c.score, c.title, c.text)?;
            }
        }
        write!(
            f,
            "Timing: total {:?} (retrieval {:?}, generation {:?})",
            self.timings.total, self.timings.retrieval, self.timings.generation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChatResponse {
        ChatResponse {
            question: "What is the name of AS2497?".into(),
            answer: "The name of AS2497 is IIJ.".into(),
            cypher: Some("MATCH (a:AS {asn: 2497}) RETURN a.name".into()),
            query_result: None,
            contexts: vec![ContextChunk {
                title: "AS2497 IIJ".into(),
                text: "IIJ is an autonomous system in Japan.".into(),
                score: 0.82,
            }],
            route: Route::Cypher,
            intent: Some(Intent::AsName { asn: 2497 }),
            injected_error: None,
            degraded: None,
            timings: Timings::default(),
        }
    }

    #[test]
    fn display_shows_answer_and_cypher() {
        let s = sample().to_string();
        assert!(s.contains("A: The name of AS2497 is IIJ."));
        assert!(s.contains("MATCH (a:AS {asn: 2497})"));
        assert!(s.contains("Route: cypher"));
        assert!(s.contains("AS2497 IIJ"));
    }

    #[test]
    fn serializes_to_json() {
        let json = serde_json::to_string(&sample()).unwrap();
        assert!(json.contains("\"route\":\"Cypher\""));
        assert!(json.contains("\"answer\""));
        assert!(json.contains("\"degraded\":null"));
    }

    #[test]
    fn degraded_marker_shows_in_display_and_json() {
        let mut r = sample();
        r.degraded = Some("text2cypher-unavailable");
        assert!(r.to_string().contains("Degraded: text2cypher-unavailable"));
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"degraded\":\"text2cypher-unavailable\""));
    }
}
