//! Durability wiring for the pipeline: the WAL + checkpoint lifecycle
//! that makes live ingest survive crashes.
//!
//! The mechanics live in `iyp_graphdb::wal` (frames, segments, fsync)
//! and `iyp_graphdb::snapshot` (atomic checkpoint files); this module
//! owns the *policy*: where the data directory lives, what the ingest
//! path appends before publishing, what a checkpoint saves and
//! truncates, and what recovery replays. See `docs/DURABILITY.md` for
//! the operator-facing contract.
//!
//! The invariants, in one place:
//!
//! 1. **Append before publish.** [`crate::ChatIyp::ingest`] validates
//!    the batch (applies it to the private copy), then appends it to the
//!    WAL, then publishes. An acknowledged ingest is always on disk; a
//!    failed WAL append publishes nothing.
//! 2. **Versions are the dedup key.** WAL records carry the publish
//!    version they produced. Recovery replays only records above the
//!    recovered base's version, so replay after any crash point is
//!    idempotent.
//! 3. **Checkpoints are atomic and truncate.** A checkpoint saves the
//!    current snapshot via temp-file + fsync + rename, then deletes WAL
//!    segments fully covered by it. A crash mid-checkpoint leaves the
//!    old checkpoint and the full WAL — strictly recoverable.

use crate::resilience::FaultError;
use iyp_graphdb::snapshot::SnapshotError;
use iyp_graphdb::wal::{AppendInfo, FsyncPolicy, Wal, WalConfig, WalError, WalStats};
use iyp_graphdb::{DeltaBatch, DeltaError};
use parking_lot::Mutex;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where and how the pipeline persists: the data directory (WAL
/// segments + `checkpoint.json`), the fsync policy, and segment sizing.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments and the checkpoint file. Created
    /// on open if missing.
    pub data_dir: PathBuf,
    /// When the WAL fsyncs appended frames.
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold.
    pub segment_max_bytes: u64,
}

impl DurabilityConfig {
    /// Durable-by-default config over `data_dir`: fsync every append,
    /// 4 MiB segments.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Always,
            segment_max_bytes: 4 * 1024 * 1024,
        }
    }

    /// Builder: sets the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Builder: sets the segment rotation threshold.
    pub fn with_segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes;
        self
    }

    /// The WAL-level slice of this config.
    pub fn wal_config(&self) -> WalConfig {
        WalConfig {
            segment_max_bytes: self.segment_max_bytes,
            fsync: self.fsync,
        }
    }

    /// Where the checkpoint lives: `<data_dir>/checkpoint.json`.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.data_dir.join("checkpoint.json")
    }
}

/// Errors from the durable ingest / checkpoint / recovery paths.
#[derive(Debug)]
pub enum DurabilityError {
    /// The WAL refused (I/O failure, corruption, version misorder).
    Wal(WalError),
    /// Checkpoint save or load failed.
    Snapshot(SnapshotError),
    /// The resilience layer injected a fault at [`crate::FaultPoint::Wal`] —
    /// treated exactly like a real append failure: nothing published.
    Fault(FaultError),
    /// A recovered WAL record failed to re-apply — the log and the
    /// checkpoint disagree about history.
    Replay {
        /// The record's publish version.
        version: u64,
        /// Why the batch failed to apply.
        error: DeltaError,
    },
    /// The WAL holds a version the recovered base can't reach (a gap —
    /// segments below were truncated without a covering checkpoint).
    VersionGap {
        /// The next version the base could accept.
        expected: u64,
        /// The version the log resumed at instead.
        got: u64,
    },
    /// The operation needs durability but the pipeline was built
    /// without a data directory.
    NotConfigured,
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Wal(e) => write!(f, "{e}"),
            DurabilityError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
            DurabilityError::Fault(e) => write!(f, "wal unavailable: {e}"),
            DurabilityError::Replay { version, error } => {
                write!(f, "wal replay failed at version {version}: {error}")
            }
            DurabilityError::VersionGap { expected, got } => write!(
                f,
                "wal resumes at version {got} but the recovered base expects {expected} next \
                 (missing segments without a covering checkpoint)"
            ),
            DurabilityError::NotConfigured => {
                write!(f, "durability not configured (serve without --data-dir)")
            }
        }
    }
}
impl std::error::Error for DurabilityError {}

impl From<WalError> for DurabilityError {
    fn from(e: WalError) -> Self {
        DurabilityError::Wal(e)
    }
}
impl From<SnapshotError> for DurabilityError {
    fn from(e: SnapshotError) -> Self {
        DurabilityError::Snapshot(e)
    }
}

/// Durability counters surfaced in `/stats` (`durability` block) and
/// `/metrics`.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityStats {
    /// WAL segment files on disk.
    pub wal_segments: usize,
    /// Total WAL bytes on disk.
    pub wal_bytes: u64,
    /// Version of the last checkpoint (0 = never checkpointed).
    pub last_checkpoint_version: u64,
    /// WAL records replayed by this process's recovery at boot.
    pub replayed: u64,
}

/// What [`crate::ChatIyp::checkpoint`] did.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// The snapshot version the checkpoint captured.
    pub version: u64,
    /// Size of the written checkpoint file.
    pub snapshot_bytes: u64,
    /// WAL segments deleted because the checkpoint covers them.
    pub truncated_segments: Vec<PathBuf>,
    /// WAL shape after truncation.
    pub wal: WalStats,
    /// End-to-end checkpoint time (save + truncate).
    pub duration: Duration,
}

/// What recovery (`ChatIyp::open_durable`) found and did at boot.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Version loaded from `checkpoint.json`, if one existed.
    pub checkpoint_version: Option<u64>,
    /// The base version recovery started from (checkpoint version, or 1
    /// for a freshly generated dataset).
    pub base_version: u64,
    /// WAL records replayed on top of the base.
    pub replayed: u64,
    /// Bytes dropped from a torn final frame, if the last append was
    /// interrupted mid-write.
    pub torn_tail_bytes: u64,
    /// Time loading the base (checkpoint file or dataset generation).
    pub load: Duration,
    /// Time replaying WAL records through the store.
    pub replay: Duration,
    /// Time rebuilding the retrieval index from the recovered graph
    /// (built once, after replay — not per record).
    pub index_build: Duration,
}

/// The pipeline's handle on its durable state: the open WAL, the
/// checkpoint location, and recovery/checkpoint counters.
#[derive(Debug)]
pub struct Durability {
    wal: Mutex<Wal>,
    checkpoint_path: PathBuf,
    /// 0 = no checkpoint yet.
    last_checkpoint_version: AtomicU64,
    /// Records replayed at boot (fixed after recovery).
    replayed: AtomicU64,
}

impl Durability {
    /// Wraps an opened WAL. `checkpoint_version` is the version of the
    /// checkpoint recovery loaded (None if it started from scratch);
    /// `replayed` is how many records recovery re-applied.
    pub(crate) fn new(
        wal: Wal,
        checkpoint_path: PathBuf,
        checkpoint_version: Option<u64>,
        replayed: u64,
    ) -> Self {
        Durability {
            wal: Mutex::new(wal),
            checkpoint_path,
            last_checkpoint_version: AtomicU64::new(checkpoint_version.unwrap_or(0)),
            replayed: AtomicU64::new(replayed),
        }
    }

    /// Appends one batch at `version`. Called by the ingest path under
    /// the pipeline's ingest lock, *before* the publish.
    pub(crate) fn append(&self, version: u64, batch: &DeltaBatch) -> Result<AppendInfo, WalError> {
        self.wal.lock().append(version, batch)
    }

    /// Deletes WAL segments fully covered by `version` and records it as
    /// the checkpoint version. Returns the removed paths and the
    /// post-truncation stats.
    pub(crate) fn note_checkpoint(
        &self,
        version: u64,
    ) -> Result<(Vec<PathBuf>, WalStats), WalError> {
        let mut wal = self.wal.lock();
        let removed = wal.truncate_below(version)?;
        let stats = wal.stats();
        self.last_checkpoint_version
            .store(version, Ordering::Relaxed);
        Ok((removed, stats))
    }

    /// Where the checkpoint file lives.
    pub fn checkpoint_path(&self) -> &Path {
        &self.checkpoint_path
    }

    /// Current counters for `/stats` and `/metrics`.
    pub fn stats(&self) -> DurabilityStats {
        let wal = self.wal.lock().stats();
        DurabilityStats {
            wal_segments: wal.segments,
            wal_bytes: wal.bytes,
            last_checkpoint_version: self.last_checkpoint_version.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
        }
    }
}
