//! Observability glue: the metric names the pipeline records under and
//! the stage labels it uses.
//!
//! Every stage latency goes into one histogram family,
//! [`STAGE_METRIC`], labelled `stage="…"` — so a single Prometheus query
//! (`histogram_quantile(0.99, chatiyp_stage_seconds_bucket)`) covers the
//! whole pipeline. The stages:
//!
//! | stage            | what it times |
//! |------------------|---------------|
//! | `cache_lookup`   | result-cache probe (hit or miss verdict) |
//! | `parse`          | query text → AST (through the plan cache), minus compilation |
//! | `compile`        | AST → slot-compiled pipeline (on plan-cache misses) |
//! | `plan`           | anchor selection inside `MATCH` execution |
//! | `execute`        | operator pipeline, minus planning |
//! | `embed_retrieve` | vector similarity retrieval |
//! | `rerank`         | LLM reranking of vector candidates |
//! | `llm_generate`   | answer generation |
//! | `ask_total`      | end-to-end `ask` |
//!
//! The `parse`/`plan`/`execute`/`cache_lookup` stages are recorded by
//! [`crate::cache::QueryCache`]; the rest by [`crate::ChatIyp::ask`].

/// Histogram family for pipeline stage latencies (`stage` label).
pub const STAGE_METRIC: &str = "chatiyp_stage_seconds";

/// Histogram family for snapshot publishes (`stage` label: `apply` for
/// the off-lock clone + batch application, `swap` for the pointer swap —
/// the only window a reader's snapshot acquisition can wait on).
/// Recorded by [`crate::ChatIyp::ingest`].
pub const SWAP_METRIC: &str = "chatiyp_snapshot_swap_seconds";

/// Histogram family for retrieval-index refreshes (`stage` label),
/// recorded by [`crate::ChatIyp::ingest`] alongside [`SWAP_METRIC`]:
///
/// | stage    | what it times |
/// |----------|---------------|
/// | `derive` | deriving the document/catalog delta from the applied batch (`iyp_data::describe_delta`) |
/// | `apply`  | cloning the current index and patching it off-lock (re-embedding affected docs, catalog delta) |
/// | `swap`   | publishing the `(snapshot, index)` pair — the only window a reader's `resolve` can wait on |
pub const INDEX_METRIC: &str = "chatiyp_index_refresh_seconds";

/// Histogram for WAL frame appends on the durable ingest path (encode +
/// write, excluding fsync). Recorded by [`crate::ChatIyp::ingest`] when
/// durability is configured.
pub const WAL_APPEND_METRIC: &str = "chatiyp_wal_append_seconds";

/// Histogram for WAL fsyncs — only appends that actually synced under
/// the configured [`iyp_graphdb::wal::FsyncPolicy`] record here, so the
/// count relative to [`WAL_APPEND_METRIC`] shows the effective sync
/// ratio. Recorded by [`crate::ChatIyp::ingest`].
pub const WAL_FSYNC_METRIC: &str = "chatiyp_wal_fsync_seconds";

/// Histogram for checkpoints (atomic snapshot save + WAL truncation),
/// recorded by [`crate::ChatIyp::checkpoint`].
pub const CHECKPOINT_METRIC: &str = "chatiyp_checkpoint_seconds";
