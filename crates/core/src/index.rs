//! The versioned retrieval index: the semantic half of a snapshot.
//!
//! PR 5 made the *graph* snapshot-isolated, but the embedding `DocStore`
//! and the `EntityCatalog` were still built once at pipeline construction
//! — after an ingest, Cypher saw the new world while the semantic
//! fallback and entity linking answered from the old one. A
//! [`RetrievalIndex`] bundles both retrieval structures and stamps them
//! with the graph `version`/`epoch` they were derived from, so the
//! pipeline can publish graph and retrieval state as one consistent pair
//! (see `ChatIyp::resolve`) and refresh the index incrementally from an
//! ingest's delta instead of re-embedding the whole corpus.

use crate::response::ContextChunk;
use crate::retriever::retrieve_chunks;
use iyp_data::DocDelta;
use iyp_embed::DocStore;
use iyp_graphdb::{Graph, GraphSnapshot};
use iyp_llm::EntityCatalog;

/// The retrieval-side state of one published graph version: the embedded
/// node-description corpus and the entity catalog, stamped with the
/// `(version, epoch)` of the snapshot they describe.
///
/// Cloning is cheap relative to a rebuild (vectors and strings are
/// memcpy'd, nothing is re-embedded); an ingest clones the current index
/// off-lock, patches the clone via [`RetrievalIndex::apply_delta`], and
/// swaps it in alongside the graph snapshot.
#[derive(Clone)]
pub struct RetrievalIndex {
    docs: DocStore,
    catalog: EntityCatalog,
    version: u64,
    epoch: u64,
}

impl RetrievalIndex {
    /// Builds the index from scratch over a snapshot: one document per
    /// describable node (via `iyp_data::describe_all`) and a catalog
    /// rebuilt from the graph. The baseline the incremental path is
    /// benchmarked against (`bin/index_refresh`).
    pub fn from_snapshot(snap: &GraphSnapshot) -> Self {
        let mut index = Self::from_graph_at(snap.graph(), snap.version(), snap.epoch());
        index.catalog = EntityCatalog::from_graph(snap.graph());
        index
    }

    /// Builds the docs from `graph` with an explicit stamp, leaving the
    /// catalog to the caller (construction from a dataset uses the richer
    /// `EntityCatalog::from_dataset`).
    pub fn from_graph_at(graph: &Graph, version: u64, epoch: u64) -> Self {
        let mut docs = DocStore::new();
        // Full builds embed thousands of documents — the batch path
        // parallelizes the embedding across cores, which is what keeps
        // crash recovery's one index rebuild cheap.
        docs.upsert_batch(
            iyp_data::describe_all(graph)
                .into_iter()
                .map(|doc| iyp_embed::Doc {
                    title: doc.title,
                    text: doc.text,
                    tag: doc.node.0,
                })
                .collect(),
        );
        RetrievalIndex {
            docs,
            catalog: EntityCatalog::default(),
            version,
            epoch,
        }
    }

    /// Replaces the catalog (used at construction, where the dataset's
    /// lookup tables are available).
    pub fn with_catalog(mut self, catalog: EntityCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Patches the index in place with one ingest's document/catalog
    /// delta: removed nodes drop their documents, affected nodes are
    /// re-embedded, and the catalog retracts old-graph entries before
    /// inserting new-graph ones. The caller re-stamps afterwards
    /// ([`RetrievalIndex::stamp`]) once the paired graph version is
    /// known.
    ///
    /// Re-rendered documents whose text came out identical to the stored
    /// copy are skipped: the delta conservatively re-renders every node a
    /// change *might* have reached, but embedding is the expensive step,
    /// so only genuinely changed text pays for it.
    pub fn apply_delta(&mut self, old_graph: &Graph, new_graph: &Graph, delta: &DocDelta) {
        for id in &delta.removals {
            self.docs.remove(id.0);
        }
        for doc in &delta.upserts {
            let unchanged = self
                .docs
                .get(doc.node.0)
                .is_some_and(|d| d.title == doc.title && d.text == doc.text);
            if !unchanged {
                self.docs
                    .upsert(doc.title.clone(), doc.text.clone(), doc.node.0);
            }
        }
        self.catalog.apply_delta(old_graph, new_graph, delta);
    }

    /// Stamps the index with the graph version/epoch it now describes.
    pub fn stamp(&mut self, version: u64, epoch: u64) {
        self.version = version;
        self.epoch = epoch;
    }

    /// The graph version this index was derived from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The graph epoch this index was derived from.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The embedded document corpus.
    pub fn docs(&self) -> &DocStore {
        &self.docs
    }

    /// The entity catalog questions are resolved against.
    pub fn catalog(&self) -> &EntityCatalog {
        &self.catalog
    }

    /// Top-`k` semantic context chunks for a question.
    pub fn retrieve(&self, question: &str, k: usize) -> Vec<ContextChunk> {
        retrieve_chunks(&self.docs, question, k)
    }
}

impl std::fmt::Debug for RetrievalIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetrievalIndex")
            .field("version", &self.version)
            .field("epoch", &self.epoch)
            .field("docs", &self.docs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_data::{describe_delta, generate, growth_batch, IypConfig};

    #[test]
    fn incremental_apply_matches_full_rebuild_results() {
        let d = generate(&IypConfig::tiny());
        let old_graph = d.graph;
        let old_snap = GraphSnapshot::new(old_graph.clone(), 1);
        let mut index = RetrievalIndex::from_snapshot(&old_snap);

        let batch = growth_batch(&old_graph, 3, 20);
        let mut new_graph = old_graph.clone();
        let applied = batch.apply_tracked(&mut new_graph).unwrap();
        let delta = describe_delta(&new_graph, &applied);
        index.apply_delta(&old_graph, &new_graph, &delta);
        index.stamp(2, old_snap.epoch() + 1);

        let rebuilt = RetrievalIndex::from_snapshot(&GraphSnapshot::new(new_graph.clone(), 2));
        assert_eq!(index.docs().len(), rebuilt.docs().len());
        assert_eq!(index.catalog(), rebuilt.catalog());

        // Retrieval over the patched index finds a freshly ingested AS.
        let new_asn = iyp_data::max_asn(&new_graph);
        let q = format!("Tell me about Ingest Networks {new_asn}");
        let hits = index.retrieve(&q, 3);
        assert!(
            hits.iter().any(|h| h.title.contains(&new_asn.to_string())),
            "patched index missed the new AS; hits: {:?}",
            hits.iter().map(|h| &h.title).collect::<Vec<_>>()
        );
        // And ranks it exactly as a from-scratch rebuild would.
        let rebuilt_hits = rebuilt.retrieve(&q, 3);
        let titles = |hs: &[ContextChunk]| hs.iter().map(|h| h.title.clone()).collect::<Vec<_>>();
        assert_eq!(titles(&hits), titles(&rebuilt_hits));
    }

    #[test]
    fn stamp_tracks_the_paired_snapshot() {
        let d = generate(&IypConfig::tiny());
        let snap = GraphSnapshot::new(d.graph, 1);
        let mut index = RetrievalIndex::from_snapshot(&snap);
        assert_eq!(index.version(), 1);
        assert_eq!(index.epoch(), snap.epoch());
        index.stamp(9, 40);
        assert_eq!((index.version(), index.epoch()), (9, 40));
    }
}
