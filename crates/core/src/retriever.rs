//! The two retrieval stages: TextToCypherRetriever (symbolic) and
//! VectorContextRetriever (semantic).

use crate::cache::QueryCache;
use crate::resilience::{DegradedReason, FaultPoint, ResilienceCtx, TRANSLATE_BUDGET_SHARE};
use crate::response::ContextChunk;
use iyp_cypher::QueryResult;
use iyp_embed::DocStore;
use iyp_graphdb::{Graph, GraphSnapshot};
use iyp_llm::{EntityCatalog, Translation, Translator};

/// The outcome of the structured retrieval stage.
#[derive(Debug, Clone)]
pub struct StructuredRetrieval {
    /// The translation (Cypher + intent + any injected error).
    pub translation: Translation,
    /// The execution result; `None` when there was no query or execution
    /// failed.
    pub result: Option<QueryResult>,
    /// Failure text when the structured stage did not produce a result:
    /// an execution error, or an injected/transient fault description.
    pub exec_error: Option<String>,
    /// Set when the stage's outcome was shaped by a fault or exhausted
    /// budget rather than the model's own ability — the pipeline
    /// propagates it into the response's `degraded` marker.
    pub degraded: Option<DegradedReason>,
}

impl StructuredRetrieval {
    /// Did this stage produce at least one row?
    pub fn has_rows(&self) -> bool {
        self.result.as_ref().map(|r| !r.is_empty()).unwrap_or(false)
    }
}

/// TextToCypherRetriever: maps the question to Cypher through the
/// (simulated) LLM prompt chain and executes it against the graph.
pub struct TextToCypherRetriever {
    translator: Translator,
}

impl TextToCypherRetriever {
    /// Creates the retriever.
    pub fn new(translator: Translator) -> Self {
        TextToCypherRetriever { translator }
    }

    /// Translates and executes against one snapshot.
    pub fn retrieve(&self, snap: &GraphSnapshot, question: &str) -> StructuredRetrieval {
        self.retrieve_with_retries(snap, question, 0)
    }

    /// Translates and executes with up to `max_retries` self-correction
    /// re-prompts: a failed or empty execution triggers a fresh
    /// translation attempt, and the first attempt producing rows wins.
    /// The last attempt is returned when none succeed.
    pub fn retrieve_with_retries(
        &self,
        snap: &GraphSnapshot,
        question: &str,
        max_retries: u32,
    ) -> StructuredRetrieval {
        self.retrieve_cached(snap, question, max_retries, None)
    }

    /// [`TextToCypherRetriever::retrieve_with_retries`], executing
    /// generated queries through the shared query cache when one is
    /// given: repeated questions (and distinct questions refined to the
    /// same Cypher) skip parse and execution entirely.
    pub fn retrieve_cached(
        &self,
        snap: &GraphSnapshot,
        question: &str,
        max_retries: u32,
        cache: Option<&QueryCache>,
    ) -> StructuredRetrieval {
        self.retrieve_cached_with_limits(
            snap,
            question,
            max_retries,
            cache,
            iyp_cypher::ExecLimits::none(),
        )
    }

    /// [`TextToCypherRetriever::retrieve_cached`] with explicit execution
    /// limits for cold queries — how the pipeline applies its configured
    /// deadline-free morsel parallelism.
    pub fn retrieve_cached_with_limits(
        &self,
        snap: &GraphSnapshot,
        question: &str,
        max_retries: u32,
        cache: Option<&QueryCache>,
        limits: iyp_cypher::ExecLimits,
    ) -> StructuredRetrieval {
        self.retrieve_cached_with_limits_using(
            snap,
            question,
            max_retries,
            cache,
            limits,
            &self.translator.catalog,
        )
    }

    /// [`TextToCypherRetriever::retrieve_cached_with_limits`], resolving
    /// entity mentions against an explicit catalog instead of the
    /// translator's construction-time one — the entry point for the
    /// pipeline, whose catalog is versioned with the graph and must come
    /// from the same resolved `(snapshot, index)` pair as `snap`.
    pub fn retrieve_cached_with_limits_using(
        &self,
        snap: &GraphSnapshot,
        question: &str,
        max_retries: u32,
        cache: Option<&QueryCache>,
        limits: iyp_cypher::ExecLimits,
        catalog: &EntityCatalog,
    ) -> StructuredRetrieval {
        self.retrieve_resilient(snap, question, max_retries, cache, limits, catalog, None)
    }

    /// [`TextToCypherRetriever::retrieve_cached_with_limits_using`] with
    /// an optional resilience context — the pipeline's entry point when
    /// the resilience layer is on.
    ///
    /// With a context, every translation call passes the
    /// [`FaultPoint::LlmTranslate`] check and every execution the
    /// [`FaultPoint::Exec`] check. An injected (transient) fault retries
    /// the *same* attempt after a capped, jittered backoff — distinct
    /// from the `max_retries` self-correction re-prompts, which advance
    /// the attempt index. When the fault-retry budget or the stage's
    /// share of the request deadline runs out, the stage gives up and
    /// returns a retrieval marked
    /// [`DegradedReason::Text2CypherUnavailable`] (or
    /// [`DegradedReason::BudgetExhausted`]) so the pipeline can fall
    /// through to semantic retrieval instead of aborting.
    #[allow(clippy::too_many_arguments)]
    pub fn retrieve_resilient(
        &self,
        snap: &GraphSnapshot,
        question: &str,
        max_retries: u32,
        cache: Option<&QueryCache>,
        limits: iyp_cypher::ExecLimits,
        catalog: &EntityCatalog,
        ctx: Option<&ResilienceCtx<'_>>,
    ) -> StructuredRetrieval {
        let run = |cy: &str| -> Result<QueryResult, String> {
            match cache {
                Some(cache) => cache
                    .get_or_execute_with_limits(snap, cy, &iyp_cypher::Params::new(), limits)
                    // The response owns its rows; a hit clones the cached
                    // table (parse + planning + execution still skipped).
                    .map(|arc| (*arc).clone())
                    .map_err(|e| e.to_string()),
                None => {
                    let q = iyp_cypher::parse(cy).map_err(|e| e.to_string())?;
                    iyp_cypher::execute_read_with_limits(
                        snap.graph(),
                        &q,
                        &iyp_cypher::Params::new(),
                        limits,
                    )
                    .map_err(|e| e.to_string())
                }
            }
        };
        // `attempt` indexes self-correction re-prompts (each produces a
        // fresh translation); `fault_retries` counts backoff retries of
        // a transiently faulted call (same attempt replayed).
        let mut attempt = 0u32;
        let mut fault_retries = 0u32;
        loop {
            if let Some(ctx) = ctx {
                // Past the structured stage's share of the deadline,
                // stop burning budget and fall through.
                if (attempt > 0 || fault_retries > 0)
                    && !ctx.budget.within_share(TRANSLATE_BUDGET_SHARE)
                {
                    return StructuredRetrieval {
                        translation: Translation {
                            cypher: None,
                            intent: None,
                            injected_error: None,
                        },
                        result: None,
                        exec_error: Some("structured stage budget exhausted".into()),
                        degraded: Some(DegradedReason::BudgetExhausted),
                    };
                }
                // The translation call is the LlmTranslate fault point.
                if let Err(fault) = ctx.check(FaultPoint::LlmTranslate) {
                    if ctx.retry_after_fault(fault_retries, question, TRANSLATE_BUDGET_SHARE) {
                        fault_retries += 1;
                        continue;
                    }
                    return StructuredRetrieval {
                        translation: Translation {
                            cypher: None,
                            intent: None,
                            injected_error: None,
                        },
                        result: None,
                        exec_error: Some(fault.to_string()),
                        degraded: Some(DegradedReason::Text2CypherUnavailable),
                    };
                }
            }
            let translation = self
                .translator
                .translate_attempt_with(question, attempt, catalog);
            // A question the model cannot parse at all won't improve with
            // re-prompting; bail out immediately.
            let no_query = translation.cypher.is_none();
            let mut transient_exec = false;
            let (result, exec_error) = match &translation.cypher {
                None => (None, None),
                Some(cy) => {
                    // Execution is the Exec fault point.
                    let fault = ctx.and_then(|c| c.check(FaultPoint::Exec).err());
                    match fault {
                        Some(f) => {
                            transient_exec = true;
                            (None, Some(f.to_string()))
                        }
                        None => match run(cy) {
                            Ok(r) => (Some(r), None),
                            Err(e) => (None, Some(e)),
                        },
                    }
                }
            };
            let mut retrieval = StructuredRetrieval {
                translation,
                result,
                exec_error,
                degraded: None,
            };
            if retrieval.has_rows() || no_query {
                return retrieval;
            }
            if transient_exec {
                let ctx = ctx.expect("transient faults only injected with a context");
                if ctx.retry_after_fault(fault_retries, question, TRANSLATE_BUDGET_SHARE) {
                    fault_retries += 1;
                    continue; // replay the same attempt; translation is deterministic
                }
                retrieval.degraded = Some(DegradedReason::Text2CypherUnavailable);
                return retrieval;
            }
            if attempt >= max_retries {
                return retrieval;
            }
            attempt += 1;
        }
    }
}

/// Maps top-`k` document hits for `question` into context chunks.
///
/// Shared by [`VectorContextRetriever`] and the versioned
/// [`crate::index::RetrievalIndex`] so both produce identical chunks
/// (hit count capped at the live corpus size; ties broken by ascending
/// doc id, making the ordering fully deterministic).
pub(crate) fn retrieve_chunks(store: &DocStore, question: &str, k: usize) -> Vec<ContextChunk> {
    store
        .search(question, k)
        .into_iter()
        .map(|hit| ContextChunk {
            title: hit.doc.title.clone(),
            text: hit.doc.text.clone(),
            score: f64::from(hit.score),
        })
        .collect()
}

/// VectorContextRetriever: dense retrieval over node descriptions,
/// used when structured retrieval fails or returns nothing.
pub struct VectorContextRetriever {
    store: DocStore,
}

impl VectorContextRetriever {
    /// Builds the retriever from a pre-populated document store.
    pub fn new(store: DocStore) -> Self {
        VectorContextRetriever { store }
    }

    /// Builds the store from a graph's node descriptions.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut store = DocStore::new();
        for doc in iyp_data::describe_all(graph) {
            store.add(doc.title, doc.text, doc.node.0);
        }
        VectorContextRetriever { store }
    }

    /// Top-`k` context chunks for a question. Returns at most the number
    /// of live documents (a `k` past the corpus is not an error), ordered
    /// by descending score with ties broken by ascending doc id.
    pub fn retrieve(&self, question: &str, k: usize) -> Vec<ContextChunk> {
        retrieve_chunks(&self.store, question, k)
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_data::{generate, IypConfig};
    use iyp_llm::{EntityCatalog, LmConfig, SimLm};

    #[test]
    fn structured_retrieval_runs_gold_path() {
        let d = generate(&IypConfig::tiny());
        let cat = EntityCatalog::from_dataset(&d);
        let t = Translator::new(
            SimLm::new(LmConfig {
                seed: 1,
                skill: 1.0,
                variety: 0.0,
            }),
            cat,
        );
        let snap = GraphSnapshot::new(d.graph, 1);
        let r = TextToCypherRetriever::new(t).retrieve(&snap, "What is the name of AS2497?");
        assert!(r.has_rows());
        assert_eq!(r.result.unwrap().rows[0][0].to_string(), "IIJ");
    }

    #[test]
    fn structured_retrieval_reports_no_query() {
        let d = generate(&IypConfig::tiny());
        let cat = EntityCatalog::from_dataset(&d);
        let t = Translator::new(SimLm::with_seed(1), cat);
        let snap = GraphSnapshot::new(d.graph, 1);
        let r = TextToCypherRetriever::new(t).retrieve(&snap, "how is the weather?");
        assert!(!r.has_rows());
        assert!(r.translation.cypher.is_none());
    }

    #[test]
    fn vector_retriever_finds_entity_docs() {
        let d = generate(&IypConfig::tiny());
        let v = VectorContextRetriever::from_graph(&d.graph);
        assert!(!v.is_empty());
        let hits = v.retrieve("tell me about AS2497 IIJ in Japan", 3);
        assert_eq!(hits.len(), 3);
        assert!(
            hits.iter().any(|h| h.title.contains("2497")),
            "hits: {:?}",
            hits.iter().map(|h| &h.title).collect::<Vec<_>>()
        );
    }

    /// `k` past the corpus size returns exactly the corpus, once each —
    /// not an error, not duplicates, not fewer than available.
    #[test]
    fn vector_retrieve_with_oversized_k_returns_every_doc_once() {
        let mut store = DocStore::new();
        store.add("AS2497 IIJ", "an autonomous system in Japan", 1);
        store.add("AS15169 Google", "a cloud network", 2);
        store.add("JPIX", "an exchange point in Tokyo", 3);
        let v = VectorContextRetriever::new(store);
        let hits = v.retrieve("networks", 50);
        assert_eq!(hits.len(), 3, "k=50 over 3 docs must return all 3");
        let mut titles: Vec<&str> = hits.iter().map(|h| h.title.as_str()).collect();
        titles.sort_unstable();
        titles.dedup();
        assert_eq!(titles.len(), 3, "duplicate hits: {hits:?}");
    }

    /// Searching an empty store yields an empty result, for any `k`.
    #[test]
    fn vector_retrieve_over_empty_store_is_empty() {
        let v = VectorContextRetriever::new(DocStore::new());
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert!(v.retrieve("anything at all", 0).is_empty());
        assert!(v.retrieve("anything at all", 1).is_empty());
        assert!(v.retrieve("anything at all", 10_000).is_empty());
    }

    /// Tied scores order by ascending doc id (insertion order), pinning
    /// the determinism the rest of the pipeline relies on.
    #[test]
    fn vector_retrieve_breaks_ties_by_insertion_order() {
        // Identical title+text embed to identical vectors: guaranteed
        // ties, distinguishable only by tag.
        let mut store = DocStore::new();
        for tag in 0..4u64 {
            store.add("same title", "identical text body", tag);
        }
        let tags: Vec<u64> = store
            .search("identical text body", 4)
            .iter()
            .map(|h| h.doc.tag)
            .collect();
        assert_eq!(tags, vec![0, 1, 2, 3], "ties must order by doc id");

        let v = VectorContextRetriever::new(store);
        let hits = v.retrieve("identical text body", 4);
        assert_eq!(hits.len(), 4);
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        // And the whole result is reproducible call-to-call.
        let again = v.retrieve("identical text body", 4);
        assert_eq!(
            hits.iter().map(|h| (&h.title, h.score)).collect::<Vec<_>>(),
            again
                .iter()
                .map(|h| (&h.title, h.score))
                .collect::<Vec<_>>()
        );
    }

    /// The explicit-catalog entry point resolves against the caller's
    /// catalog, not the translator's construction-time one.
    #[test]
    fn structured_retrieval_uses_the_explicit_catalog() {
        let d = generate(&IypConfig::tiny());
        let stale = EntityCatalog::from_dataset(&d);
        let mut fresh = stale.clone();
        fresh.as_names.insert("newnet".into(), 2497);
        let t = Translator::new(
            SimLm::new(LmConfig {
                seed: 1,
                skill: 1.0,
                variety: 0.0,
            }),
            stale,
        );
        let snap = GraphSnapshot::new(d.graph, 1);
        let retriever = TextToCypherRetriever::new(t);
        let q = "What is the ASN of NewNet?";
        let with_stale = retriever.retrieve(&snap, q);
        assert!(with_stale.translation.cypher.is_none());
        let with_fresh = retriever.retrieve_cached_with_limits_using(
            &snap,
            q,
            0,
            None,
            iyp_cypher::ExecLimits::none(),
            &fresh,
        );
        assert!(
            with_fresh.translation.cypher.is_some(),
            "fresh catalog not consulted"
        );
    }
}
