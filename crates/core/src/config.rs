//! Pipeline configuration: stage toggles (used by the ablation bench),
//! retrieval knobs, and query-cache sizing.

use crate::cache::CacheConfig;
use crate::resilience::ResilienceConfig;
use iyp_llm::LmConfig;

/// Configuration of the ChatIYP pipeline.
#[derive(Debug, Clone)]
pub struct ChatIypConfig {
    /// Simulated-LM knobs (seed, skill, paraphrase variety).
    pub lm: LmConfig,
    /// Stage 2a: TextToCypherRetriever.
    pub enable_text2cypher: bool,
    /// Stage 2b: VectorContextRetriever fallback on failed/empty
    /// structured retrieval.
    pub enable_vector_fallback: bool,
    /// Stage 2c: LLMReranker over vector candidates.
    pub enable_reranker: bool,
    /// How many vector candidates to fetch before reranking.
    pub vector_top_k: usize,
    /// How many contexts survive reranking into generation.
    pub rerank_top_k: usize,
    /// Self-correction: when the generated query fails or returns
    /// nothing, re-prompt the translator up to this many extra times and
    /// accept the first attempt that yields rows. 0 disables retries
    /// (the paper's configuration); the `full+retry` ablation arm
    /// explores the paper's "further future research" direction.
    pub max_retries: u32,
    /// Two-tier query cache knobs (capacity, plan capacity, TTL,
    /// on/off). Shared between the `ask` path and the server's
    /// `/cypher` endpoint.
    pub cache: CacheConfig,
    /// Worker threads for morsel-parallel `MATCH` expansion in read
    /// queries. Defaults to the machine's available cores; `1` executes
    /// sequentially. Results are byte-identical at any setting.
    pub query_parallelism: usize,
    /// Record a structured span tree for every `ask` into the trace
    /// ring (and return it from [`crate::ChatIyp::ask_traced`]). Stage
    /// histograms are recorded regardless of this flag.
    pub trace_requests: bool,
    /// How many recent request traces the ring buffer retains.
    pub trace_ring_capacity: usize,
    /// Resilience layer: fault injection, per-request budget, transient
    /// fault retry/backoff, graceful degradation. See
    /// [`crate::resilience`] and `docs/RESILIENCE.md`.
    pub resilience: ResilienceConfig,
}

impl Default for ChatIypConfig {
    fn default() -> Self {
        ChatIypConfig {
            lm: LmConfig::default(),
            enable_text2cypher: true,
            enable_vector_fallback: true,
            enable_reranker: true,
            vector_top_k: 8,
            rerank_top_k: 3,
            max_retries: 0,
            cache: CacheConfig::default(),
            query_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            trace_requests: true,
            trace_ring_capacity: 64,
            resilience: ResilienceConfig::default(),
        }
    }
}

impl ChatIypConfig {
    /// The full cascade plus one self-correction retry (extension arm).
    pub fn with_retry() -> Self {
        ChatIypConfig {
            max_retries: 1,
            ..Default::default()
        }
    }

    /// Text-to-Cypher only (first ablation arm).
    pub fn cypher_only() -> Self {
        ChatIypConfig {
            enable_vector_fallback: false,
            enable_reranker: false,
            ..Default::default()
        }
    }

    /// Cypher + vector fallback without the reranker (second arm).
    pub fn without_reranker() -> Self {
        ChatIypConfig {
            enable_reranker: false,
            ..Default::default()
        }
    }

    /// Vector retrieval only (no structured stage).
    pub fn vector_only() -> Self {
        ChatIypConfig {
            enable_text2cypher: false,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_presets() {
        let full = ChatIypConfig::default();
        assert!(full.enable_text2cypher && full.enable_vector_fallback && full.enable_reranker);
        let c = ChatIypConfig::cypher_only();
        assert!(c.enable_text2cypher && !c.enable_vector_fallback && !c.enable_reranker);
        let v = ChatIypConfig::vector_only();
        assert!(!v.enable_text2cypher && v.enable_vector_fallback);
        let nr = ChatIypConfig::without_reranker();
        assert!(nr.enable_vector_fallback && !nr.enable_reranker);
    }
}
