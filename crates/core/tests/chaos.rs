//! Chaos suite: a seeded fault schedule driven through the full
//! pipeline. The invariants, in order of importance:
//!
//! 1. **No panics** — every fault surfaces as a degraded-but-valid
//!    response or a typed error, never an abort.
//! 2. **No wrong-but-confident answers** — any response whose stable
//!    fields differ from the healthy baseline must carry a `degraded`
//!    marker. A response without the marker must be byte-identical to
//!    what a never-faulted pipeline serves.
//! 3. **Byte-identical recovery** — once the fault window closes, the
//!    previously-faulted pipeline answers exactly like a pipeline that
//!    never saw a fault (failures are never cached, so no poison
//!    lingers).

use chatiyp_core::{
    ChatIyp, ChatIypConfig, ChatResponse, CypherExecError, FaultPlan, FaultPoint, FaultRule,
    ResilienceConfig, RetryPolicy,
};
use iyp_cypher::corpus::PARITY_QUERIES;
use iyp_data::{generate, IypConfig};
use iyp_llm::LmConfig;
use std::sync::Arc;
use std::time::Duration;

/// Questions spanning every route: Cypher, vector fallback, and failed.
const QUESTIONS: &[&str] = &[
    "What is the name of AS2497?",
    "How many ASes are registered in Japan?",
    "In which country is AS2497 registered?",
    "What is the percentage of Japan's population in AS2497?",
    "Tell me everything interesting about IIJ in Japan",
    "Tell me everything interesting please",
];

fn oracle_lm() -> LmConfig {
    LmConfig {
        seed: 42,
        skill: 1.0,
        variety: 0.0,
    }
}

/// A pipeline with no fault plan — the healthy baseline.
fn healthy() -> ChatIyp {
    ChatIyp::new(
        generate(&IypConfig::tiny()),
        ChatIypConfig {
            lm: oracle_lm(),
            ..Default::default()
        },
    )
}

/// Zero-wait retries: chaos runs exercise the retry *logic* without
/// sleeping through real backoff.
fn instant_retry() -> RetryPolicy {
    RetryPolicy {
        base: Duration::ZERO,
        cap: Duration::ZERO,
        ..Default::default()
    }
}

/// A pipeline sharing `plan` as its fault schedule.
fn faulted(plan: &Arc<FaultPlan>) -> ChatIyp {
    ChatIyp::new(
        generate(&IypConfig::tiny()),
        ChatIypConfig {
            lm: oracle_lm(),
            resilience: ResilienceConfig {
                faults: Some(Arc::clone(plan)),
                retry: instant_retry(),
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

/// The response's stable fields as JSON — everything except timings.
fn stable(r: &ChatResponse) -> String {
    let serde_json::Value::Map(entries) = serde_json::to_value(r) else {
        panic!("response is not an object")
    };
    let kept: Vec<(String, serde_json::Value)> = entries
        .into_iter()
        .filter(|(k, _)| k != "timings")
        .collect();
    serde_json::Value::Map(kept).to_string()
}

/// Baseline stable-JSON per question from a never-faulted pipeline.
fn baseline() -> Vec<String> {
    let chat = healthy();
    QUESTIONS.iter().map(|q| stable(&chat.ask(q))).collect()
}

/// Advances the plan's per-point call counter past the fault window so
/// the next pipeline call sees a healthy world. Points only reached on
/// some routes (e.g. `embed`) might not burn through their window from
/// asks alone; the counter is the schedule's clock, so ticking it
/// directly is equivalent to traffic passing.
fn close_window(plan: &FaultPlan, point: FaultPoint, until: u64) {
    while plan.calls(point) < until {
        let _ = plan.check(point);
    }
}

const WINDOW: u64 = 60;

/// One deterministic outage window per fault point: during the window
/// every response is either baseline-identical or marked degraded;
/// after it, behavior recovers byte-identically and unmarked.
#[test]
fn outage_windows_degrade_honestly_and_recover_byte_identically() {
    let golden = baseline();
    for point in FaultPoint::ALL {
        let plan = FaultPlan::new(0xC0FFEE)
            .rule(point, FaultRule::window(0, WINDOW))
            .into_arc();
        let chat = faulted(&plan);

        // Fault phase: two full rounds under the outage.
        for round in 0..2 {
            for (i, q) in QUESTIONS.iter().enumerate() {
                let r = chat.ask(q);
                if r.degraded.is_none() {
                    assert_eq!(
                        stable(&r),
                        golden[i],
                        "unmarked response diverged from baseline under {point} outage \
                         (round {round}): {q}"
                    );
                }
            }
        }

        // The schedule clears...
        close_window(&plan, point, WINDOW);

        // ...and the pipeline recovers exactly: byte-identical stable
        // fields, no degraded marker, across every question.
        for (i, q) in QUESTIONS.iter().enumerate() {
            let r = chat.ask(q);
            assert!(
                r.degraded.is_none(),
                "degraded marker survived past the {point} window: {q} → {:?}",
                r.degraded
            );
            assert_eq!(
                stable(&r),
                golden[i],
                "recovery not byte-identical after {point} outage: {q}"
            );
        }
    }
}

/// All four points flaky at once under a fixed seed: ten rounds of the
/// question set never panic, and unmarked responses always match the
/// baseline (retried-to-success is invisible; exhausted is marked).
#[test]
fn seeded_flaky_schedule_never_serves_wrong_but_confident_answers() {
    let golden = baseline();
    let mut plan = FaultPlan::new(0xBADC0DE);
    for point in FaultPoint::ALL {
        plan = plan.rule(point, FaultRule::flaky(0.3));
    }
    let plan = plan.into_arc();
    let chat = faulted(&plan);

    let mut degraded_seen = 0u32;
    for _ in 0..10 {
        for (i, q) in QUESTIONS.iter().enumerate() {
            let r = chat.ask(q);
            match r.degraded {
                None => assert_eq!(
                    stable(&r),
                    golden[i],
                    "unmarked response diverged under flaky faults: {q}"
                ),
                Some(_) => degraded_seen += 1,
            }
        }
    }
    // At 30% per call the schedule must actually bite sometimes —
    // otherwise this test exercises nothing.
    assert!(
        degraded_seen > 0,
        "flaky schedule never degraded a response; faults not reaching the pipeline?"
    );
}

/// The `/cypher` surface under an execution outage: the whole parity
/// corpus answers typed `Unavailable` errors during the window (never a
/// panic, never a wrong result), then replays byte-identically against
/// direct engine execution once the window closes.
#[test]
fn parity_corpus_replays_byte_identically_after_exec_outage() {
    let exec_window = 10u64;
    let plan = FaultPlan::new(0x5EED)
        .rule(FaultPoint::Exec, FaultRule::window(0, exec_window))
        .into_arc();
    let chat = faulted(&plan);
    let handle = chat.resolve();
    let limits = || iyp_cypher::ExecLimits::timeout(Duration::from_secs(5));

    // During the outage every execution is refused with a typed error.
    for q in PARITY_QUERIES.iter().take(exec_window as usize) {
        match chat.execute_cypher_with_limits(&handle.snapshot, q, limits()) {
            Err(CypherExecError::Unavailable(e)) => {
                assert!(e.to_string().contains("injected fault"), "{e}");
            }
            other => panic!("expected Unavailable during exec outage for {q}, got {other:?}"),
        }
    }

    close_window(&plan, FaultPoint::Exec, exec_window);

    // Recovery: all 58 corpus queries byte-identical to direct
    // execution — refused executions left nothing in the cache.
    for q in PARITY_QUERIES {
        let direct = iyp_cypher::query(handle.snapshot.graph(), q).expect("corpus query runs");
        let via = chat
            .execute_cypher_with_limits(&handle.snapshot, q, limits())
            .unwrap_or_else(|e| panic!("post-outage execution failed for {q}: {e}"));
        assert_eq!(
            serde_json::to_string(&*via).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "post-outage result diverged from direct execution: {q}"
        );
    }
}

/// An already-expired deadline: every stage falls through without
/// panicking and the response is marked, never silently partial.
#[test]
fn zero_budget_degrades_every_response_without_panicking() {
    let chat = ChatIyp::new(
        generate(&IypConfig::tiny()),
        ChatIypConfig {
            lm: oracle_lm(),
            resilience: ResilienceConfig {
                ask_deadline: Some(Duration::ZERO),
                retry: instant_retry(),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    for q in QUESTIONS {
        let r = chat.ask(q);
        assert_eq!(
            r.degraded,
            Some("budget-exhausted"),
            "zero budget must mark {q}: {:?}",
            r.degraded
        );
        assert!(!r.answer.is_empty(), "empty answer under zero budget: {q}");
    }
}

/// The resilience layer switched off entirely: the fault plan is inert
/// and responses match the healthy baseline exactly.
#[test]
fn disabled_resilience_ignores_the_fault_plan() {
    let golden = baseline();
    let plan = FaultPlan::new(1)
        .rule(FaultPoint::LlmTranslate, FaultRule::window(0, u64::MAX))
        .into_arc();
    let chat = ChatIyp::new(
        generate(&IypConfig::tiny()),
        ChatIypConfig {
            lm: oracle_lm(),
            resilience: ResilienceConfig {
                faults: Some(plan),
                ..ResilienceConfig::disabled()
            },
            ..Default::default()
        },
    );
    for (i, q) in QUESTIONS.iter().enumerate() {
        let r = chat.ask(q);
        assert!(r.degraded.is_none());
        assert_eq!(
            stable(&r),
            golden[i],
            "disabled layer changed behavior: {q}"
        );
    }
}

/// A WAL outage window on a durable pipeline: ingests inside the window
/// fail with a typed durability error and publish **nothing** — no torn
/// state in memory, no partial frame on disk. Once the window closes
/// ingest succeeds again, and a reboot recovers exactly the acknowledged
/// ingests — the durable-write-or-nothing contract, end to end.
#[test]
fn wal_outage_window_fails_ingest_cleanly_and_recovery_sees_only_acks() {
    use chatiyp_core::{DurabilityConfig, DurabilityError, IngestError};

    let dir = std::env::temp_dir().join("chatiyp_chaos_wal_outage");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // First two WAL appends fault, everything after succeeds.
    let open = || {
        ChatIyp::open_durable(
            ChatIypConfig {
                lm: oracle_lm(),
                resilience: ResilienceConfig {
                    faults: Some(
                        FaultPlan::new(9)
                            .rule(FaultPoint::Wal, FaultRule::window(0, 2))
                            .into_arc(),
                    ),
                    ..Default::default()
                },
                ..Default::default()
            },
            &DurabilityConfig::new(&dir),
            || generate(&IypConfig::tiny()),
        )
    };
    let (chat, _) = open().expect("open durable pipeline");

    let batch = {
        let handle = chat.resolve();
        iyp_data::growth_batch(handle.snapshot.graph(), 0, 4)
    };
    for attempt in 0..2 {
        match chat.ingest(&batch) {
            Err(IngestError::Durability(DurabilityError::Fault(_))) => {}
            other => panic!("attempt {attempt}: expected a WAL fault, got {other:?}"),
        }
        assert_eq!(
            chat.store().load().version(),
            1,
            "a failed WAL append must publish nothing"
        );
    }
    // Window closed: the identical batch now lands.
    chat.ingest(&batch).expect("ingest after the outage");
    assert_eq!(chat.store().load().version(), 2);
    let stats = chat.durability_stats().expect("durable pipeline has stats");
    assert!(stats.wal_bytes > 0, "the acknowledged ingest is on disk");
    drop(chat);

    // Reboot: exactly the one acknowledged ingest replays — the two
    // faulted attempts left no trace.
    let (recovered, report) = open().expect("recover after the outage");
    assert_eq!(report.replayed, 1);
    assert_eq!(recovered.store().load().version(), 2);
}
