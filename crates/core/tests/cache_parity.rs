//! Cache correctness: cached results must be byte-identical to uncached
//! execution across the full 58-query parity corpus, and no write may
//! ever leave a stale entry servable.

use chatiyp_core::cache::{CacheConfig, QueryCache};
use iyp_cypher::corpus::PARITY_QUERIES;
use iyp_cypher::Params;
use iyp_data::{generate, IypConfig};
use iyp_graphdb::{Graph, GraphSnapshot};
use proptest::prelude::*;

/// Every corpus query: the cold (miss) pass and the warm (hit) pass both
/// serialize byte-for-byte like direct uncached execution.
#[test]
fn cached_results_byte_identical_across_parity_corpus() {
    let snap = GraphSnapshot::new(generate(&IypConfig::default()).graph, 1);
    let cache = QueryCache::new(CacheConfig::default());
    for q in PARITY_QUERIES {
        let uncached = iyp_cypher::query(snap.graph(), q).expect("corpus query executes");
        let golden = serde_json::to_string(&uncached).unwrap();
        let cold = cache.get_or_execute(&snap, q, &Params::new()).unwrap();
        assert_eq!(
            serde_json::to_string(&*cold).unwrap(),
            golden,
            "cold cache pass diverged: {q}"
        );
        let warm = cache.get_or_execute(&snap, q, &Params::new()).unwrap();
        assert_eq!(
            serde_json::to_string(&*warm).unwrap(),
            golden,
            "warm cache pass diverged: {q}"
        );
    }
    let s = cache.stats();
    assert_eq!(s.misses as usize, PARITY_QUERIES.len());
    assert_eq!(s.hits as usize, PARITY_QUERIES.len());
    assert_eq!(s.invalidations, 0);
}

/// A write statement applied between cached reads.
#[derive(Debug, Clone)]
enum Write {
    Create(u16),
    MergeSet(u16),
    SetProp(u16),
}

impl Write {
    fn cypher(&self) -> String {
        match self {
            Write::Create(asn) => format!("CREATE (x:AS {{asn: {}, name: 'AS{0}'}})", asn),
            Write::MergeSet(asn) => {
                format!("MERGE (x:AS {{asn: {asn}}}) SET x.name = 'merged-{asn}'")
            }
            // Always targets the seed node so the SET actually mutates
            // (a zero-row MATCH would make the write a no-op).
            Write::SetProp(tag) => {
                format!("MATCH (x:AS {{asn: 1}}) SET x.name = 'renamed-{tag}'")
            }
        }
    }
}

fn write_strategy() -> impl Strategy<Value = Write> {
    prop_oneof![
        (1u16..999).prop_map(Write::Create),
        (1u16..999).prop_map(Write::MergeSet),
        (1u16..999).prop_map(Write::SetProp),
    ]
}

const PROBES: &[&str] = &[
    "MATCH (a:AS) RETURN count(a)",
    "MATCH (a:AS) WHERE a.asn < 1000 RETURN a.asn, a.name ORDER BY a.asn",
    "MATCH (a:AS) WHERE a.name STARTS WITH 'merged' RETURN count(a)",
    "MATCH (a:AS) WHERE a.name STARTS WITH 'renamed' RETURN count(a)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleave arbitrary CREATE/MERGE/SET writes with cached reads:
    /// after every write the cache must answer exactly like a fresh
    /// execution (the epoch bump invalidates), and between writes hits
    /// must still be byte-identical.
    #[test]
    fn writes_always_invalidate_stale_entries(writes in proptest::collection::vec(write_strategy(), 1..24)) {
        let mut g = Graph::new();
        g.create_index("AS", "asn");
        iyp_cypher::update(&mut g, "CREATE (x:AS {asn: 1, name: 'seed'})").unwrap();
        let cache = QueryCache::new(CacheConfig::default());
        let mut version = 1u64;
        let mut snap = GraphSnapshot::new(g, version);

        // Warm every probe.
        for q in PROBES {
            cache.get_or_execute(&snap, q, &Params::new()).unwrap();
        }

        for w in writes {
            // Mutate the graph and republish it as the next snapshot —
            // the in-place analogue of a store ingest+swap.
            let mut g = snap.into_graph();
            let epoch_before = g.epoch();
            iyp_cypher::update(&mut g, &w.cypher()).unwrap();
            prop_assert!(g.epoch() > epoch_before, "write did not bump epoch: {}", w.cypher());
            version += 1;
            snap = GraphSnapshot::new(g, version);

            for q in PROBES {
                let fresh = iyp_cypher::query(snap.graph(), q).unwrap();
                let via_cache = cache.get_or_execute(&snap, q, &Params::new()).unwrap();
                prop_assert_eq!(
                    serde_json::to_string(&*via_cache).unwrap(),
                    serde_json::to_string(&fresh).unwrap(),
                    "stale result served after {}", w.cypher()
                );
                // Immediately repeated read: now a hit, still identical.
                let hit = cache.get_or_execute(&snap, q, &Params::new()).unwrap();
                prop_assert_eq!(
                    serde_json::to_string(&*hit).unwrap(),
                    serde_json::to_string(&fresh).unwrap()
                );
            }
        }
        let s = cache.stats();
        prop_assert!(s.invalidations > 0, "no invalidation ever recorded: {s:?}");
    }
}
