//! Concurrent stress test for the versioned read path: reader threads
//! replay a slice of the parity corpus through the epoch-keyed
//! [`QueryCache`] while a writer publishes a stream of growth batches.
//! Every response must be byte-identical to the golden answer for the
//! snapshot version that served it — a cache hit leaking across an
//! epoch, or a reader observing a half-applied batch, fails the
//! fingerprint comparison immediately.

use chatiyp_core::cache::{CacheConfig, QueryCache};
use iyp_cypher::corpus::PARITY_QUERIES;
use iyp_cypher::{query, Params};
use iyp_data::{generate, growth_batch, IypConfig};
use iyp_graphdb::{Graph, GraphStore};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITER_BATCHES: usize = 6;
const NEW_AS_PER_BATCH: usize = 4;
const READERS: usize = 4;

/// Every 4th corpus query — enough shapes to exercise scans, expands and
/// aggregates without making the golden precompute dominate the test.
fn corpus_slice() -> Vec<&'static str> {
    PARITY_QUERIES.iter().step_by(4).copied().collect()
}

fn goldens_for(g: &Graph, queries: &[&'static str]) -> HashMap<&'static str, String> {
    queries
        .iter()
        .map(|q| (*q, query(g, q).expect("golden executes").fingerprint(true)))
        .collect()
}

/// Replays the writer's exact batch sequence on a replica store, so the
/// golden answers for version `v` come from the byte-identical graph the
/// live store publishes as version `v`. Both stores start from the same
/// base graph and `growth_batch` is a pure function of (graph, seed), so
/// the replicas stay in lockstep by induction.
fn precompute_goldens(
    base: &Graph,
    queries: &[&'static str],
) -> Vec<HashMap<&'static str, String>> {
    let replica = GraphStore::new(base.clone());
    let mut goldens = vec![goldens_for(replica.load().graph(), queries)];
    for i in 0..WRITER_BATCHES {
        let snap = replica.load();
        let batch = growth_batch(snap.graph(), 1000 + i as u64, NEW_AS_PER_BATCH);
        replica.ingest(&batch).expect("replica batch applies");
        goldens.push(goldens_for(replica.load().graph(), queries));
    }
    goldens
}

#[test]
fn concurrent_corpus_replay_is_version_consistent_under_ingest() {
    let queries = corpus_slice();
    let base = generate(&IypConfig::tiny()).graph;
    let goldens = Arc::new(precompute_goldens(&base, &queries));

    let store = Arc::new(GraphStore::new(base));
    let cache = Arc::new(QueryCache::new(CacheConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let store = Arc::clone(&store);
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let goldens = Arc::clone(&goldens);
            let queries = queries.clone();
            std::thread::spawn(move || {
                let params = Params::new();
                let mut seen = BTreeSet::new();
                // One extra full pass after the writer signals done, so
                // every reader verifies the final published version too.
                let mut done = false;
                while !done {
                    done = stop.load(Ordering::Acquire);
                    for (i, q) in queries.iter().enumerate() {
                        // One snapshot per query, acquired at query start:
                        // the version it reports is the version that must
                        // explain the bytes we get back.
                        let snap = store.load();
                        let v = snap.version();
                        let got = cache
                            .get_or_execute(&snap, q, &params)
                            .unwrap_or_else(|e| panic!("reader {t} query failed: {q}\n{e}"))
                            .fingerprint(true);
                        let want = &goldens[(v - 1) as usize][q];
                        assert_eq!(
                            &got, want,
                            "reader {t} iter {i}: response did not match golden \
                             for snapshot version {v} on: {q}"
                        );
                        seen.insert(v);
                    }
                }
                seen
            })
        })
        .collect();

    // Writer: publish the same deterministic batch sequence the goldens
    // were computed from, pausing briefly so readers interleave.
    for i in 0..WRITER_BATCHES {
        let snap = store.load();
        let batch = growth_batch(snap.graph(), 1000 + i as u64, NEW_AS_PER_BATCH);
        let report = store.ingest(&batch).expect("live batch applies");
        assert_eq!(report.old_version, i as u64 + 1);
        assert_eq!(report.new_version, i as u64 + 2);
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    stop.store(true, Ordering::Release);

    let mut seen = BTreeSet::new();
    for h in readers {
        seen.extend(h.join().expect("no reader panicked"));
    }
    assert_eq!(store.version(), WRITER_BATCHES as u64 + 1);
    // Every reader's final pass ran after the last publish, so the final
    // version is always observed; version 1 is observed because readers
    // start before the writer's first publish completes its first sleep.
    assert!(
        seen.contains(&(WRITER_BATCHES as u64 + 1)),
        "no reader saw the final version: {seen:?}"
    );
    assert!(seen.len() >= 2, "readers never spanned a publish: {seen:?}");

    let stats = cache.stats();
    assert!(stats.hits > 0, "stress run never hit the cache: {stats:?}");
}

/// Deterministic zero-stale-hits check, no timing involved: prime the
/// cache at version 1, publish, and look the same query up through the
/// new snapshot — the old entry must be invalidated, never returned.
#[test]
fn cache_entries_never_leak_across_a_publish() {
    let store = GraphStore::new(generate(&IypConfig::tiny()).graph);
    let cache = QueryCache::new(CacheConfig::default());
    let params = Params::new();
    let q = "MATCH (a:AS) RETURN count(a)";

    let snap1 = store.load();
    let before = cache
        .get_or_execute(&snap1, q, &params)
        .unwrap()
        .fingerprint(true);

    let batch = growth_batch(snap1.graph(), 7, 3);
    store.ingest(&batch).expect("batch applies");

    let snap2 = store.load();
    let after = cache
        .get_or_execute(&snap2, q, &params)
        .unwrap()
        .fingerprint(true);
    assert_ne!(after, before, "post-publish lookup served the stale count");

    let stats = cache.stats();
    assert_eq!(
        stats.hits, 0,
        "cross-epoch lookup counted as a hit: {stats:?}"
    );
    assert_eq!(stats.misses, 2);
    assert_eq!(
        stats.invalidations, 1,
        "stale entry was not invalidated: {stats:?}"
    );

    // The held version-1 snapshot still answers with its own bytes —
    // and now hits, because its epoch still matches its cache entry...
    // except the entry was just invalidated, so it re-executes and
    // caches per-epoch again.
    let replay = cache
        .get_or_execute(&snap1, q, &params)
        .unwrap()
        .fingerprint(true);
    assert_eq!(replay, before, "held snapshot drifted after a publish");
}
