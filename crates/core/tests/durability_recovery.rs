//! Crash-recovery suite for the durability subsystem: drop a durable
//! pipeline at various points in its ingest/checkpoint lifecycle,
//! reopen the data directory, and require the recovered pipeline to be
//! **byte-identical** to the one that crashed — the 58-query parity
//! corpus is the oracle, serialized result bytes the yardstick.
//!
//! Dropping the `ChatIyp` without calling `checkpoint` is the honest
//! crash model here: nothing flushes on drop, so the WAL (fsync=always)
//! is the only thing recovery can use — exactly the state a `kill -9`
//! leaves behind (the process-level variant lives in
//! `tests/kill_recover.rs` at the workspace root).

use chatiyp_core::{ChatIyp, ChatIypConfig, DurabilityConfig, DurabilityError, RecoveryReport};
use iyp_cypher::corpus::PARITY_QUERIES;
use iyp_data::{generate, growth_batch, IypConfig};
use iyp_graphdb::wal::{Wal, WalConfig};
use iyp_graphdb::{props, DeltaBatch, WalError};
use iyp_llm::LmConfig;
use std::fs;
use std::path::{Path, PathBuf};

/// A scratch data directory under the OS temp dir, wiped per test.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chatiyp_durability_recovery_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> ChatIypConfig {
    ChatIypConfig {
        lm: LmConfig {
            seed: 42,
            skill: 1.0,
            variety: 0.0,
        },
        ..Default::default()
    }
}

/// Opens (or recovers) a durable pipeline over `dir`.
fn open(dir: &Path) -> (ChatIyp, RecoveryReport) {
    ChatIyp::open_durable(config(), &DurabilityConfig::new(dir), || {
        generate(&IypConfig::tiny())
    })
    .expect("open durable pipeline")
}

/// Ingests one deterministic growth batch built against the live graph.
fn grow(chat: &ChatIyp, seed: u64) {
    let batch = {
        let handle = chat.resolve();
        growth_batch(handle.snapshot.graph(), seed, 4)
    };
    chat.ingest(&batch).expect("ingest growth batch");
}

/// The parity corpus, serialized: one string per query, byte-stable for
/// equal graphs.
fn corpus_bytes(chat: &ChatIyp) -> Vec<String> {
    let handle = chat.resolve();
    PARITY_QUERIES
        .iter()
        .map(|q| match iyp_cypher::query(handle.snapshot.graph(), q) {
            Ok(r) => serde_json::to_string(&r).unwrap(),
            Err(e) => format!("error: {e}"),
        })
        .collect()
}

fn version(chat: &ChatIyp) -> u64 {
    chat.store().load().version()
}

/// The WAL segment files in `dir`, sorted by name (= by first version).
fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs
}

#[test]
fn crash_without_checkpoint_replays_the_whole_wal_byte_identically() {
    let dir = fresh_dir("no_checkpoint");
    let (chat, rep) = open(&dir);
    assert_eq!(rep.replayed, 0);
    assert_eq!(rep.checkpoint_version, None);

    for seed in 0..5 {
        grow(&chat, seed);
    }
    let want = corpus_bytes(&chat);
    assert_eq!(version(&chat), 6, "5 ingests on top of the base");
    drop(chat); // crash: no checkpoint, no flush — only the WAL survives

    let (recovered, rep) = open(&dir);
    assert_eq!(rep.checkpoint_version, None);
    assert_eq!(rep.replayed, 5, "every ingest replays");
    assert_eq!(version(&recovered), 6, "version sequence resumes");
    assert_eq!(
        corpus_bytes(&recovered),
        want,
        "recovered corpus bytes differ from the pre-crash pipeline"
    );
}

#[test]
fn checkpoint_bounds_replay_to_the_tail() {
    let dir = fresh_dir("mid_stream_checkpoint");
    let (chat, _) = open(&dir);
    for seed in 0..3 {
        grow(&chat, seed);
    }
    let report = chat.checkpoint().expect("checkpoint");
    assert_eq!(report.version, 4);
    assert_eq!(
        report.truncated_segments.len(),
        1,
        "the fully-covered active segment goes away"
    );
    assert_eq!(report.wal.segments, 0);

    for seed in 3..5 {
        grow(&chat, seed);
    }
    let want = corpus_bytes(&chat);
    drop(chat);

    let (recovered, rep) = open(&dir);
    assert_eq!(rep.checkpoint_version, Some(4));
    assert_eq!(rep.replayed, 2, "only post-checkpoint records replay");
    assert_eq!(version(&recovered), 6);
    assert_eq!(corpus_bytes(&recovered), want);
}

#[test]
fn fresh_directory_boots_identically_to_the_in_memory_pipeline() {
    let dir = fresh_dir("fresh_boot");
    let (chat, rep) = open(&dir);
    assert_eq!(rep.checkpoint_version, None);
    assert_eq!(rep.base_version, 1);
    assert_eq!(rep.replayed, 0);
    assert_eq!(rep.torn_tail_bytes, 0);

    let memory_only = ChatIyp::new(generate(&IypConfig::tiny()), config());
    assert_eq!(
        corpus_bytes(&chat),
        corpus_bytes(&memory_only),
        "a durable fresh boot must serve the same bytes as ChatIyp::new"
    );
}

#[test]
fn torn_final_frame_is_dropped_and_the_rest_replays() {
    let dir = fresh_dir("torn_tail");
    {
        let (chat, _) = open(&dir);
        grow(&chat, 0);
        grow(&chat, 1);
    }
    // Fake a crash mid-append: a frame header promising 100 payload
    // bytes, followed by only 10 — the torn write a power cut leaves.
    let seg = wal_segments(&dir).pop().expect("one active segment");
    let mut bytes = fs::read(&seg).unwrap();
    bytes.extend_from_slice(&100u32.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&[0xAB; 10]);
    fs::write(&seg, &bytes).unwrap();

    let (recovered, rep) = open(&dir);
    assert_eq!(rep.torn_tail_bytes, 18, "header + partial payload dropped");
    assert_eq!(rep.replayed, 2, "intact frames before the tear replay");
    assert_eq!(version(&recovered), 3);
}

#[test]
fn interior_corruption_refuses_to_boot() {
    let dir = fresh_dir("interior_corruption");
    {
        let (chat, _) = open(&dir);
        grow(&chat, 0);
        grow(&chat, 1);
    }
    // Flip one payload byte inside the *first* frame: unlike a torn
    // tail, silent mid-log damage must never be skipped over.
    let seg = wal_segments(&dir).pop().expect("one active segment");
    let mut bytes = fs::read(&seg).unwrap();
    bytes[20] ^= 0x01;
    fs::write(&seg, &bytes).unwrap();

    let err = match ChatIyp::open_durable(config(), &DurabilityConfig::new(&dir), || {
        generate(&IypConfig::tiny())
    }) {
        Ok(_) => panic!("corrupt interior frame must refuse recovery"),
        Err(e) => e,
    };
    match err {
        DurabilityError::Wal(WalError::Corrupt { path, .. }) => {
            assert_eq!(path, seg, "the error names the damaged segment");
        }
        other => panic!("expected WalError::Corrupt, got: {other}"),
    }
}

#[test]
fn record_appended_but_never_published_replays_on_boot() {
    let dir = fresh_dir("append_then_crash");
    {
        let (chat, _) = open(&dir);
        grow(&chat, 0); // version 2
    }
    // The crash window the append-before-publish ordering creates: the
    // record is on disk but the publish never happened. Recovery must
    // treat the durable record as the truth.
    {
        let opened = Wal::open(&dir, WalConfig::default()).unwrap();
        let mut wal = opened.wal;
        let mut batch = DeltaBatch::new();
        batch.add_node(
            ["AS"],
            props!("asn" => 900_000i64, "name" => "Phantom Networks"),
        );
        wal.append(3, &batch).unwrap();
    }

    let (recovered, rep) = open(&dir);
    assert_eq!(rep.replayed, 2, "the unpublished record replays too");
    assert_eq!(version(&recovered), 3);
    let handle = recovered.resolve();
    let r = iyp_cypher::query(
        handle.snapshot.graph(),
        "MATCH (a:AS {asn: 900000}) RETURN a.name",
    )
    .unwrap();
    assert_eq!(
        r.single_value().and_then(|v| v.as_str().map(String::from)),
        Some("Phantom Networks".to_string()),
        "the durable-but-unpublished node must be queryable after recovery"
    );
}

#[test]
fn recovery_is_idempotent_across_repeated_boots() {
    let dir = fresh_dir("repeated_boots");
    {
        let (chat, _) = open(&dir);
        for seed in 0..3 {
            grow(&chat, seed);
        }
    }
    let (first, rep) = open(&dir);
    assert_eq!(rep.replayed, 3);
    let want = corpus_bytes(&first);
    drop(first);
    // Booting again (no new writes) replays the same records to the
    // same result — recovery never compounds.
    let (second, rep) = open(&dir);
    assert_eq!(rep.replayed, 3);
    assert_eq!(version(&second), 4);
    assert_eq!(corpus_bytes(&second), want);
}
