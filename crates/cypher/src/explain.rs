//! `EXPLAIN`-style plan introspection: renders, for each clause, the
//! access path the planner chose (index seek, range seek, label scan,
//! full scan, bound-variable anchor) and the expansion order — without
//! executing anything.

use crate::ast::Clause;
use crate::error::CypherError;
use crate::parser::parse;
use crate::plan::{plan_match, Anchor};
use crate::pretty;
use iyp_graphdb::Graph;
use std::fmt::Write;

/// Parses `src` and renders its execution plan against `graph`.
pub fn explain(graph: &Graph, src: &str) -> Result<String, CypherError> {
    let q = parse(src)?;
    let mut out = String::new();
    let mut bound: Vec<String> = Vec::new();
    for (i, clause) in q.clauses.iter().enumerate() {
        match clause {
            Clause::Match(m) => {
                let kind = if m.optional { "OptionalMatch" } else { "Match" };
                writeln!(out, "{i:>2}. {kind}").expect("write to string");
                let plans = plan_match(graph, m, &mut bound);
                for (j, plan) in plans.iter().enumerate() {
                    let anchor = match &plan.anchor {
                        Anchor::Bound(v) => format!("BoundVariable({v})"),
                        Anchor::IndexSeek { label, key, expr } => format!(
                            "IndexSeek(:{label}.{key} = {})",
                            pretty::expr_to_string(expr)
                        ),
                        Anchor::RangeSeek { label, key, lo, hi } => {
                            let mut bounds: Vec<String> = Vec::new();
                            if let Some((e, inc)) = lo {
                                bounds.push(format!(
                                    "{} {}",
                                    if *inc { ">=" } else { ">" },
                                    pretty::expr_to_string(e)
                                ));
                            }
                            if let Some((e, inc)) = hi {
                                bounds.push(format!(
                                    "{} {}",
                                    if *inc { "<=" } else { "<" },
                                    pretty::expr_to_string(e)
                                ));
                            }
                            format!("RangeSeek(:{label}.{key} {})", bounds.join(" and "))
                        }
                        Anchor::LabelScan(label) => {
                            format!("LabelScan(:{label}, ~{} nodes)", graph.label_count(label))
                        }
                        Anchor::AllNodes => {
                            format!("AllNodesScan(~{} nodes)", graph.node_count())
                        }
                    };
                    let mut line = format!("      part {j}: {anchor}");
                    if plan.reversed {
                        line.push_str(" [chain reversed]");
                    }
                    if plan.shortest {
                        line.push_str(" [shortestPath]");
                    }
                    writeln!(out, "{line}").expect("write to string");
                    for (k, (rel, node)) in plan.steps.iter().enumerate() {
                        let types = if rel.types.is_empty() {
                            "*any*".to_string()
                        } else {
                            rel.types.join("|")
                        };
                        let hops = if rel.hops.is_single() {
                            String::new()
                        } else {
                            format!(
                                " x{}..{}",
                                rel.hops.min,
                                rel.hops
                                    .max
                                    .map(|m| m.to_string())
                                    .unwrap_or_else(|| "∞".into())
                            )
                        };
                        let target = node
                            .labels
                            .first()
                            .map(|l| format!(":{l}"))
                            .unwrap_or_else(|| "(any)".into());
                        writeln!(
                            out,
                            "        expand {k}: -[:{types}{hops}]- -> {target}"
                        )
                        .expect("write to string");
                    }
                }
                if m.where_clause.is_some() {
                    writeln!(out, "      filter: WHERE …").expect("write to string");
                }
            }
            other => {
                writeln!(
                    out,
                    "{i:>2}. {}",
                    pretty::clause_to_string(other)
                        .split_whitespace()
                        .next()
                        .unwrap_or("?")
                )
                .expect("write to string");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graphdb::props;

    fn g() -> Graph {
        let mut g = Graph::new();
        for asn in 1..=30i64 {
            g.add_node(["AS"], props!("asn" => asn));
        }
        g.add_node(["Country"], props!("country_code" => "JP"));
        g.create_index("AS", "asn");
        g
    }

    #[test]
    fn explain_shows_index_seek() {
        let plan = explain(&g(), "MATCH (a:AS {asn: 7}) RETURN a.asn").unwrap();
        assert!(plan.contains("IndexSeek(:AS.asn = 7)"), "{plan}");
    }

    #[test]
    fn explain_shows_range_seek_and_filter() {
        let plan = explain(&g(), "MATCH (a:AS) WHERE a.asn > 25 RETURN a.asn").unwrap();
        assert!(plan.contains("RangeSeek(:AS.asn > 25)"), "{plan}");
        assert!(plan.contains("filter: WHERE"), "{plan}");
    }

    #[test]
    fn explain_shows_label_scan_and_expansion() {
        let plan = explain(
            &g(),
            "MATCH (c:Country)<-[:COUNTRY]-(a:AS) RETURN count(a)",
        )
        .unwrap();
        assert!(plan.contains("LabelScan(:Country"), "{plan}");
        assert!(plan.contains("expand 0: -[:COUNTRY]- -> :AS"), "{plan}");
        assert!(plan.contains("RETURN"), "{plan}");
    }

    #[test]
    fn explain_shows_bound_anchor_on_second_part() {
        let plan = explain(
            &g(),
            "MATCH (a:AS {asn: 1}) MATCH (a)-[:PEERS_WITH]-(b) RETURN b",
        )
        .unwrap();
        assert!(plan.contains("BoundVariable(a)"), "{plan}");
    }

    #[test]
    fn explain_rejects_invalid_queries() {
        assert!(explain(&g(), "MATCH (a RETURN a").is_err());
    }
}
