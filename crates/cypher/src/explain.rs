//! `EXPLAIN`-style plan introspection: builds the same operator pipeline
//! the executor would run and renders each operator's plan — for match
//! operators, the access path the planner chose (index seek, range seek,
//! label scan, full scan, bound-variable anchor) and the expansion order —
//! without executing anything.

use crate::error::CypherError;
use crate::exec::build_clause_op;
use crate::parser::parse_statement;
use iyp_graphdb::Graph;

/// Parses `src` and renders its execution plan against `graph`. A
/// leading `EXPLAIN` (or `PROFILE`) keyword is accepted and ignored —
/// this function always renders the plan without executing.
pub fn explain(graph: &Graph, src: &str) -> Result<String, CypherError> {
    let (_mode, q) = parse_statement(src)?;
    let mut out = String::new();
    let mut bound: Vec<String> = Vec::new();
    for (i, clause) in q.clauses.iter().enumerate() {
        let op = build_clause_op(clause, i + 1 == q.clauses.len());
        op.explain_into(graph, &mut bound, i, &mut out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graphdb::props;

    fn g() -> Graph {
        let mut g = Graph::new();
        for asn in 1..=30i64 {
            g.add_node(["AS"], props!("asn" => asn));
        }
        g.add_node(["Country"], props!("country_code" => "JP"));
        g.create_index("AS", "asn");
        g
    }

    #[test]
    fn explain_shows_index_seek() {
        let plan = explain(&g(), "MATCH (a:AS {asn: 7}) RETURN a.asn").unwrap();
        assert!(plan.contains("IndexSeek(:AS.asn = 7)"), "{plan}");
    }

    #[test]
    fn explain_shows_range_seek_and_filter() {
        let plan = explain(&g(), "MATCH (a:AS) WHERE a.asn > 25 RETURN a.asn").unwrap();
        assert!(plan.contains("RangeSeek(:AS.asn > 25)"), "{plan}");
        assert!(plan.contains("filter: WHERE"), "{plan}");
    }

    #[test]
    fn explain_shows_label_scan_and_expansion() {
        let plan = explain(&g(), "MATCH (c:Country)<-[:COUNTRY]-(a:AS) RETURN count(a)").unwrap();
        assert!(plan.contains("LabelScan(:Country"), "{plan}");
        assert!(plan.contains("expand 0: -[:COUNTRY]- -> :AS"), "{plan}");
        assert!(plan.contains("RETURN"), "{plan}");
    }

    #[test]
    fn explain_shows_bound_anchor_on_second_part() {
        let plan = explain(
            &g(),
            "MATCH (a:AS {asn: 1}) MATCH (a)-[:PEERS_WITH]-(b) RETURN b",
        )
        .unwrap();
        assert!(plan.contains("BoundVariable(a)"), "{plan}");
    }

    #[test]
    fn explain_rejects_invalid_queries() {
        assert!(explain(&g(), "MATCH (a RETURN a").is_err());
    }
}
