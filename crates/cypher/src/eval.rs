//! Runtime rows, bindings and expression evaluation.

use crate::ast::{BinOp, Expr, UnOp};
use crate::error::CypherError;
use crate::functions::call_function;
use iyp_graphdb::{Graph, NodeId, RelId, Value};
use std::collections::BTreeMap;

/// Query parameters (`$name` → value).
pub type Params = BTreeMap<String, Value>;

/// A bound runtime entity: either a plain value, or a graph entity kept by
/// id so property access and identity semantics stay exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Entry {
    /// A computed value.
    Val(Value),
    /// A bound node.
    Node(NodeId),
    /// A bound relationship.
    Rel(RelId),
    /// A bound path: nodes and the relationships between them.
    Path(Vec<NodeId>, Vec<RelId>),
}

impl Entry {
    /// Converts the entry to a `Value` for projection, comparison and
    /// serialization. Nodes become maps of their properties plus `_id` and
    /// `_labels`; relationships become maps plus `_id` and `_type`.
    pub fn to_value(&self, graph: &Graph) -> Value {
        match self {
            Entry::Val(v) => v.clone(),
            Entry::Node(id) => match graph.node(*id) {
                None => Value::Null,
                Some(rec) => {
                    let mut m = match rec.props.to_value() {
                        Value::Map(m) => m,
                        _ => unreachable!("props always map to Value::Map"),
                    };
                    m.insert("_id".to_string(), Value::Int(id.0 as i64));
                    m.insert(
                        "_labels".to_string(),
                        Value::List(
                            graph
                                .node_labels(*id)
                                .into_iter()
                                .map(Value::from)
                                .collect(),
                        ),
                    );
                    Value::Map(m)
                }
            },
            Entry::Rel(id) => match graph.rel(*id) {
                None => Value::Null,
                Some(rec) => {
                    let mut m = match rec.props.to_value() {
                        Value::Map(m) => m,
                        _ => unreachable!(),
                    };
                    m.insert("_id".to_string(), Value::Int(id.0 as i64));
                    m.insert(
                        "_type".to_string(),
                        Value::from(graph.rel_type_name(rec.ty)),
                    );
                    Value::Map(m)
                }
            },
            Entry::Path(nodes, rels) => {
                let mut m = BTreeMap::new();
                m.insert(
                    "_nodes".to_string(),
                    Value::List(
                        nodes
                            .iter()
                            .map(|n| Entry::Node(*n).to_value(graph))
                            .collect(),
                    ),
                );
                m.insert(
                    "_rels".to_string(),
                    Value::List(
                        rels.iter()
                            .map(|r| Entry::Rel(*r).to_value(graph))
                            .collect(),
                    ),
                );
                Value::Map(m)
            }
        }
    }

    /// Is this entry a null value?
    pub fn is_null(&self) -> bool {
        matches!(self, Entry::Val(Value::Null))
    }

    /// Property lookup with entity-aware semantics.
    pub fn get_prop(&self, graph: &Graph, key: &str) -> Value {
        match self {
            Entry::Node(id) => graph
                .node(*id)
                .map(|n| n.props.get_or_null(key))
                .unwrap_or(Value::Null),
            Entry::Rel(id) => graph
                .rel(*id)
                .map(|r| r.props.get_or_null(key))
                .unwrap_or(Value::Null),
            Entry::Val(Value::Map(m)) => m.get(key).cloned().unwrap_or(Value::Null),
            _ => Value::Null,
        }
    }
}

/// Column names for a row set. Position `i` in a row binds `names[i]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env {
    /// Variable names in binding order.
    pub names: Vec<String>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Index of a variable.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Adds a variable, returning its slot. Panics if already present.
    pub fn push(&mut self, name: impl Into<String>) -> usize {
        let name = name.into();
        debug_assert!(
            self.slot(&name).is_none(),
            "variable '{name}' already bound"
        );
        self.names.push(name);
        self.names.len() - 1
    }

    /// Adds a variable if absent, returning its slot either way.
    pub fn push_or_get(&mut self, name: impl Into<String>) -> usize {
        let name = name.into();
        match self.slot(&name) {
            Some(i) => i,
            None => {
                self.names.push(name);
                self.names.len() - 1
            }
        }
    }
}

/// A runtime row: entries parallel to an [`Env`]'s names.
pub type Row = Vec<Entry>;

/// Evaluation context shared across a query segment.
pub struct EvalCtx<'a> {
    /// The graph being queried.
    pub graph: &'a Graph,
    /// Current variable environment.
    pub env: &'a Env,
    /// Query parameters.
    pub params: &'a Params,
}

impl<'a> EvalCtx<'a> {
    /// Evaluates `expr` against `row`, producing an entry (entities are
    /// preserved when the expression is a bare variable).
    pub fn eval(&self, expr: &Expr, row: &Row) -> Result<Entry, CypherError> {
        let mut locals = Vec::new();
        self.eval_inner(expr, row, &mut locals)
    }

    /// Evaluates to a plain `Value`.
    pub fn eval_value(&self, expr: &Expr, row: &Row) -> Result<Value, CypherError> {
        Ok(self.eval(expr, row)?.to_value(self.graph))
    }

    fn lookup(&self, name: &str, row: &Row, locals: &[(String, Entry)]) -> Option<Entry> {
        if let Some((_, e)) = locals.iter().rev().find(|(n, _)| n == name) {
            return Some(e.clone());
        }
        self.env.slot(name).map(|i| row[i].clone())
    }

    fn eval_inner(
        &self,
        expr: &Expr,
        row: &Row,
        locals: &mut Vec<(String, Entry)>,
    ) -> Result<Entry, CypherError> {
        match expr {
            Expr::Lit(v) => Ok(Entry::Val(v.clone())),
            Expr::Var(name) => self
                .lookup(name, row, locals)
                .ok_or_else(|| CypherError::runtime(format!("variable '{name}' is not defined"))),
            Expr::Param(name) => {
                Ok(Entry::Val(self.params.get(name).cloned().ok_or_else(
                    || CypherError::runtime(format!("missing parameter '${name}'")),
                )?))
            }
            Expr::Prop(base, key) => {
                let base = self.eval_inner(base, row, locals)?;
                Ok(Entry::Val(base.get_prop(self.graph, key)))
            }
            Expr::Index(base, idx) => {
                let base = self.eval_inner(base, row, locals)?.to_value(self.graph);
                let idx = self.eval_inner(idx, row, locals)?.to_value(self.graph);
                Ok(Entry::Val(index_value(&base, &idx)))
            }
            Expr::Slice(base, lo, hi) => {
                let base = self.eval_inner(base, row, locals)?.to_value(self.graph);
                let lo = match lo {
                    Some(e) => Some(self.eval_inner(e, row, locals)?.to_value(self.graph)),
                    None => None,
                };
                let hi = match hi {
                    Some(e) => Some(self.eval_inner(e, row, locals)?.to_value(self.graph)),
                    None => None,
                };
                Ok(Entry::Val(slice_value(&base, lo.as_ref(), hi.as_ref())))
            }
            Expr::Bin(op, a, b) => self.eval_bin(*op, a, b, row, locals),
            Expr::Un(UnOp::Not, a) => {
                let v = self.eval_inner(a, row, locals)?.to_value(self.graph);
                Ok(Entry::Val(match v {
                    Value::Null => Value::Null,
                    Value::Bool(b) => Value::Bool(!b),
                    other => {
                        return Err(CypherError::runtime(format!(
                            "NOT expects a boolean, got {}",
                            other.type_name()
                        )))
                    }
                }))
            }
            Expr::Un(UnOp::Neg, a) => {
                let v = self.eval_inner(a, row, locals)?.to_value(self.graph);
                Ok(Entry::Val(v.neg()?))
            }
            Expr::IsNull(a, negated) => {
                let v = self.eval_inner(a, row, locals)?;
                let is_null = v.is_null();
                Ok(Entry::Val(Value::Bool(is_null != *negated)))
            }
            Expr::ExistsProp(base, key) => {
                let base = self.eval_inner(base, row, locals)?;
                Ok(Entry::Val(Value::Bool(
                    !base.get_prop(self.graph, key).is_null(),
                )))
            }
            Expr::ExistsPattern(part) => Ok(Entry::Val(Value::Bool(
                self.pattern_exists(part, row, locals)?,
            ))),
            Expr::Call { name, args, .. } => {
                if crate::ast::is_aggregate_fn(name) {
                    return Err(CypherError::runtime(format!(
                        "aggregate function {name}() is only allowed in WITH/RETURN projections"
                    )));
                }
                let mut arg_entries = Vec::with_capacity(args.len());
                for a in args {
                    arg_entries.push(self.eval_inner(a, row, locals)?);
                }
                call_function(self.graph, name, &arg_entries).map(Entry::Val)
            }
            Expr::Star => Err(CypherError::runtime("'*' is only valid inside count()")),
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval_inner(e, row, locals)?.to_value(self.graph));
                }
                Ok(Entry::Val(Value::List(out)))
            }
            Expr::Map(items) => {
                let mut out = BTreeMap::new();
                for (k, e) in items {
                    out.insert(
                        k.clone(),
                        self.eval_inner(e, row, locals)?.to_value(self.graph),
                    );
                }
                Ok(Entry::Val(Value::Map(out)))
            }
            Expr::Case {
                operand,
                arms,
                default,
            } => {
                let operand_val = match operand {
                    Some(e) => Some(self.eval_inner(e, row, locals)?.to_value(self.graph)),
                    None => None,
                };
                for (when, then) in arms {
                    let matched = match &operand_val {
                        Some(op) => {
                            let w = self.eval_inner(when, row, locals)?.to_value(self.graph);
                            op.cypher_eq(&w) == Some(true)
                        }
                        None => self
                            .eval_inner(when, row, locals)?
                            .to_value(self.graph)
                            .is_true(),
                    };
                    if matched {
                        return self.eval_inner(then, row, locals);
                    }
                }
                match default {
                    Some(e) => self.eval_inner(e, row, locals),
                    None => Ok(Entry::Val(Value::Null)),
                }
            }
            Expr::ListComp {
                var,
                list,
                pred,
                map,
            } => {
                let list = self.eval_inner(list, row, locals)?.to_value(self.graph);
                let Value::List(items) = list else {
                    if list.is_null() {
                        return Ok(Entry::Val(Value::Null));
                    }
                    return Err(CypherError::runtime(
                        "list comprehension expects a list".to_string(),
                    ));
                };
                let mut out = Vec::new();
                for item in items {
                    locals.push((var.clone(), Entry::Val(item.clone())));
                    let keep = match pred {
                        Some(p) => self
                            .eval_inner(p, row, locals)?
                            .to_value(self.graph)
                            .is_true(),
                        None => true,
                    };
                    if keep {
                        let mapped = match map {
                            Some(m) => self.eval_inner(m, row, locals)?.to_value(self.graph),
                            None => item,
                        };
                        out.push(mapped);
                    }
                    locals.pop();
                }
                Ok(Entry::Val(Value::List(out)))
            }
        }
    }

    /// Existential pattern check for `exists((a)-[:T]->(b))`. Starts from
    /// a bound endpoint (the chain is reversed when only the far end is
    /// bound) and walks single hops; named variables already bound in the
    /// row constrain the match, unbound ones are purely existential.
    fn pattern_exists(
        &self,
        part: &crate::ast::PatternPart,
        row: &Row,
        locals: &mut Vec<(String, Entry)>,
    ) -> Result<bool, CypherError> {
        use crate::ast::{NodePattern, RelDir, RelPattern};

        let bound_node = |pat: &NodePattern, ctx: &Self| -> Option<NodeId> {
            let var = pat.var.as_ref()?;
            match ctx.lookup(var, row, locals) {
                Some(Entry::Node(id)) => Some(id),
                _ => None,
            }
        };

        // Orient the chain so it starts from a bound node.
        let (start_pat, hops): (NodePattern, Vec<(RelPattern, NodePattern)>) =
            if bound_node(&part.start, self).is_some() || part.hops.is_empty() {
                (part.start.clone(), part.hops.clone())
            } else {
                let end = &part.hops.last().expect("nonempty hops").1;
                if bound_node(end, self).is_none() {
                    return Err(CypherError::runtime(
                        "exists(pattern) requires a bound endpoint variable",
                    ));
                }
                // Reverse the chain, flipping every direction.
                let mut nodes: Vec<&NodePattern> = vec![&part.start];
                let mut rels: Vec<&RelPattern> = Vec::new();
                for (r, n) in &part.hops {
                    rels.push(r);
                    nodes.push(n);
                }
                let start = (*nodes.last().expect("nonempty")).clone();
                let mut new_hops = Vec::with_capacity(rels.len());
                for i in (0..rels.len()).rev() {
                    let mut rel = rels[i].clone();
                    rel.dir = match rel.dir {
                        RelDir::Right => RelDir::Left,
                        RelDir::Left => RelDir::Right,
                        RelDir::Undirected => RelDir::Undirected,
                    };
                    new_hops.push((rel, nodes[i].clone()));
                }
                (start, new_hops)
            };

        let Some(start) = bound_node(&start_pat, self) else {
            return Err(CypherError::runtime(
                "exists(pattern) requires a bound endpoint variable",
            ));
        };
        if !self.node_matches_pattern(start, &start_pat, row, locals)? {
            return Ok(false);
        }
        self.exists_dfs(start, &hops, row, locals)
    }

    fn exists_dfs(
        &self,
        cur: NodeId,
        hops: &[(crate::ast::RelPattern, crate::ast::NodePattern)],
        row: &Row,
        locals: &mut Vec<(String, Entry)>,
    ) -> Result<bool, CypherError> {
        use crate::ast::RelDir;
        use iyp_graphdb::Direction;
        let Some((rel_pat, node_pat)) = hops.first() else {
            return Ok(true);
        };
        if !rel_pat.hops.is_single() {
            return Err(CypherError::runtime(
                "exists(pattern) does not support variable-length relationships",
            ));
        }
        let dir = match rel_pat.dir {
            RelDir::Right => Direction::Outgoing,
            RelDir::Left => Direction::Incoming,
            RelDir::Undirected => Direction::Both,
        };
        let types: Option<Vec<&str>> = if rel_pat.types.is_empty() {
            None
        } else {
            Some(rel_pat.types.iter().map(String::as_str).collect())
        };
        for (rid, nbr) in self.graph.neighbors(cur, dir, types.as_deref()) {
            // Relationship property constraints.
            let mut ok = true;
            for (key, expr) in &rel_pat.props {
                let want = self.eval_inner(expr, row, locals)?.to_value(self.graph);
                let have = self
                    .graph
                    .rel(rid)
                    .map(|r| r.props.get_or_null(key))
                    .unwrap_or(Value::Null);
                if have.cypher_eq(&want) != Some(true) {
                    ok = false;
                    break;
                }
            }
            if !ok || !self.node_matches_pattern(nbr, node_pat, row, locals)? {
                continue;
            }
            if self.exists_dfs(nbr, &hops[1..], row, locals)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn node_matches_pattern(
        &self,
        node: NodeId,
        pat: &crate::ast::NodePattern,
        row: &Row,
        locals: &mut Vec<(String, Entry)>,
    ) -> Result<bool, CypherError> {
        // A bound variable pins the identity.
        if let Some(var) = &pat.var {
            if let Some(Entry::Node(bound)) = self.lookup(var, row, locals) {
                if bound != node {
                    return Ok(false);
                }
            }
        }
        for label in &pat.labels {
            if !self.graph.node_has_label(node, label) {
                return Ok(false);
            }
        }
        for (key, expr) in &pat.props {
            let want = self.eval_inner(expr, row, locals)?.to_value(self.graph);
            let have = self
                .graph
                .node(node)
                .map(|n| n.props.get_or_null(key))
                .unwrap_or(Value::Null);
            if have.cypher_eq(&want) != Some(true) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn eval_bin(
        &self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        row: &Row,
        locals: &mut Vec<(String, Entry)>,
    ) -> Result<Entry, CypherError> {
        // Short-circuit logical operators (three-valued logic).
        match op {
            BinOp::And => {
                let lhs = self.eval_inner(a, row, locals)?.to_value(self.graph);
                if lhs == Value::Bool(false) {
                    return Ok(Entry::Val(Value::Bool(false)));
                }
                let rhs = self.eval_inner(b, row, locals)?.to_value(self.graph);
                return Ok(Entry::Val(match (lhs, rhs) {
                    (_, Value::Bool(false)) => Value::Bool(false),
                    (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                    _ => Value::Null,
                }));
            }
            BinOp::Or => {
                let lhs = self.eval_inner(a, row, locals)?.to_value(self.graph);
                if lhs == Value::Bool(true) {
                    return Ok(Entry::Val(Value::Bool(true)));
                }
                let rhs = self.eval_inner(b, row, locals)?.to_value(self.graph);
                return Ok(Entry::Val(match (lhs, rhs) {
                    (_, Value::Bool(true)) => Value::Bool(true),
                    (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                    _ => Value::Null,
                }));
            }
            BinOp::Xor => {
                let lhs = self.eval_inner(a, row, locals)?.to_value(self.graph);
                let rhs = self.eval_inner(b, row, locals)?.to_value(self.graph);
                return Ok(Entry::Val(match (lhs, rhs) {
                    (Value::Bool(x), Value::Bool(y)) => Value::Bool(x != y),
                    _ => Value::Null,
                }));
            }
            _ => {}
        }
        let lhs = self.eval_inner(a, row, locals)?.to_value(self.graph);
        let rhs = self.eval_inner(b, row, locals)?.to_value(self.graph);
        let out = match op {
            BinOp::Add => lhs.add(&rhs)?,
            BinOp::Sub => lhs.sub(&rhs)?,
            BinOp::Mul => lhs.mul(&rhs)?,
            BinOp::Div => lhs.div(&rhs)?,
            BinOp::Mod => lhs.rem(&rhs)?,
            BinOp::Pow => match (lhs.as_f64(), rhs.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x.powf(y)),
                _ => Value::Null,
            },
            BinOp::Eq => tri(lhs.cypher_eq(&rhs)),
            BinOp::Neq => tri(lhs.cypher_eq(&rhs).map(|b| !b)),
            BinOp::Lt => tri(lhs.cypher_cmp(&rhs).map(|o| o == std::cmp::Ordering::Less)),
            BinOp::Le => tri(lhs
                .cypher_cmp(&rhs)
                .map(|o| o != std::cmp::Ordering::Greater)),
            BinOp::Gt => tri(lhs
                .cypher_cmp(&rhs)
                .map(|o| o == std::cmp::Ordering::Greater)),
            BinOp::Ge => tri(lhs.cypher_cmp(&rhs).map(|o| o != std::cmp::Ordering::Less)),
            BinOp::In => match (&lhs, &rhs) {
                (Value::Null, _) | (_, Value::Null) => Value::Null,
                (x, Value::List(items)) => {
                    let mut saw_null = false;
                    let mut found = false;
                    for item in items {
                        match x.cypher_eq(item) {
                            Some(true) => {
                                found = true;
                                break;
                            }
                            Some(false) => {}
                            None => saw_null = true,
                        }
                    }
                    if found {
                        Value::Bool(true)
                    } else if saw_null {
                        Value::Null
                    } else {
                        Value::Bool(false)
                    }
                }
                _ => {
                    return Err(CypherError::runtime(format!(
                        "IN expects a list on the right, got {}",
                        rhs.type_name()
                    )))
                }
            },
            BinOp::StartsWith => str_pred(&lhs, &rhs, |s, p| s.starts_with(p)),
            BinOp::EndsWith => str_pred(&lhs, &rhs, |s, p| s.ends_with(p)),
            BinOp::Contains => str_pred(&lhs, &rhs, |s, p| s.contains(p)),
            BinOp::RegexMatch => str_pred(&lhs, &rhs, wildcard_match),
            BinOp::And | BinOp::Or | BinOp::Xor => unreachable!("handled above"),
        };
        Ok(Entry::Val(out))
    }
}

pub(crate) fn tri(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

pub(crate) fn str_pred(lhs: &Value, rhs: &Value, pred: impl Fn(&str, &str) -> bool) -> Value {
    match (lhs, rhs) {
        (Value::Str(s), Value::Str(p)) => Value::Bool(pred(s, p)),
        _ => Value::Null,
    }
}

/// Simplified `=~` semantics: `.*` and `.` wildcards plus case-insensitive
/// prefix `(?i)` — covering the patterns used in IYP queries without a full
/// regex engine.
pub(crate) fn wildcard_match(s: &str, pattern: &str) -> bool {
    let (s, pattern) = if let Some(rest) = pattern.strip_prefix("(?i)") {
        (s.to_ascii_lowercase(), rest.to_ascii_lowercase())
    } else {
        (s.to_string(), pattern.to_string())
    };
    // Translate the pattern to segments split on `.*`; `.` matches any char.
    fn seg_match(s: &[char], seg: &[char]) -> bool {
        s.len() == seg.len() && s.iter().zip(seg.iter()).all(|(a, b)| *b == '.' || a == b)
    }
    let segs: Vec<Vec<char>> = pattern.split(".*").map(|p| p.chars().collect()).collect();
    let chars: Vec<char> = s.chars().collect();
    if segs.len() == 1 {
        return seg_match(&chars, &segs[0]);
    }
    let mut pos = 0usize;
    for (i, seg) in segs.iter().enumerate() {
        if seg.is_empty() {
            continue;
        }
        let found = if i == 0 {
            if chars.len() >= seg.len() && seg_match(&chars[..seg.len()], seg) {
                Some(0)
            } else {
                None
            }
        } else {
            (pos..=chars.len().saturating_sub(seg.len()))
                .find(|&j| seg_match(&chars[j..j + seg.len()], seg))
        };
        match found {
            Some(j) => pos = j + seg.len(),
            None => return false,
        }
    }
    // Last segment must anchor at the end unless pattern ends with `.*`.
    if let Some(last) = segs.last() {
        if !last.is_empty() {
            return chars.len() >= last.len()
                && seg_match(&chars[chars.len() - last.len()..], last);
        }
    }
    true
}

pub(crate) fn index_value(base: &Value, idx: &Value) -> Value {
    match (base, idx) {
        (Value::List(items), Value::Int(i)) => {
            let len = items.len() as i64;
            let i = if *i < 0 { len + i } else { *i };
            if i < 0 || i >= len {
                Value::Null
            } else {
                items[i as usize].clone()
            }
        }
        (Value::Map(m), Value::Str(k)) => m.get(k).cloned().unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

pub(crate) fn slice_value(base: &Value, lo: Option<&Value>, hi: Option<&Value>) -> Value {
    let Value::List(items) = base else {
        return Value::Null;
    };
    let len = items.len() as i64;
    let norm = |v: Option<&Value>, default: i64| -> i64 {
        match v.and_then(|v| v.as_int()) {
            Some(i) if i < 0 => (len + i).max(0),
            Some(i) => i.min(len),
            None => default,
        }
    };
    let lo = norm(lo, 0);
    let hi = norm(hi, len);
    if lo >= hi {
        Value::List(Vec::new())
    } else {
        Value::List(items[lo as usize..hi as usize].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use iyp_graphdb::props;

    fn ctx_eval(src: &str) -> Value {
        let graph = Graph::new();
        let env = Env::new();
        let params = Params::new();
        let ctx = EvalCtx {
            graph: &graph,
            env: &env,
            params: &params,
        };
        ctx.eval_value(&parse_expression(src).unwrap(), &Vec::new())
            .unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(ctx_eval("1 + 2 * 3"), Value::Int(7));
        assert_eq!(ctx_eval("2 ^ 10"), Value::Float(1024.0));
        assert_eq!(ctx_eval("7 % 4"), Value::Int(3));
        assert_eq!(ctx_eval("-(3 - 5)"), Value::Int(2));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(ctx_eval("null AND false"), Value::Bool(false));
        assert_eq!(ctx_eval("null AND true"), Value::Null);
        assert_eq!(ctx_eval("null OR true"), Value::Bool(true));
        assert_eq!(ctx_eval("null OR false"), Value::Null);
        assert_eq!(ctx_eval("NOT null"), Value::Null);
        assert_eq!(ctx_eval("null = null"), Value::Null);
        assert_eq!(ctx_eval("null IS NULL"), Value::Bool(true));
    }

    #[test]
    fn in_operator_with_nulls() {
        assert_eq!(ctx_eval("2 IN [1, 2, 3]"), Value::Bool(true));
        assert_eq!(ctx_eval("4 IN [1, 2, 3]"), Value::Bool(false));
        assert_eq!(ctx_eval("4 IN [1, null]"), Value::Null);
        assert_eq!(ctx_eval("1 IN [1, null]"), Value::Bool(true));
    }

    #[test]
    fn string_predicates() {
        assert_eq!(ctx_eval("'Google' STARTS WITH 'Goo'"), Value::Bool(true));
        assert_eq!(ctx_eval("'Google' ENDS WITH 'gle'"), Value::Bool(true));
        assert_eq!(ctx_eval("'Google' CONTAINS 'oog'"), Value::Bool(true));
        assert_eq!(ctx_eval("'Google' CONTAINS 'xyz'"), Value::Bool(false));
    }

    #[test]
    fn wildcard_regex() {
        assert_eq!(ctx_eval("'AS2497' =~ 'AS.*'"), Value::Bool(true));
        assert_eq!(ctx_eval("'AS2497' =~ '.*97'"), Value::Bool(true));
        assert_eq!(ctx_eval("'AS2497' =~ 'AS..97'"), Value::Bool(true));
        assert_eq!(ctx_eval("'AS2497' =~ 'AS.97'"), Value::Bool(false));
        assert_eq!(ctx_eval("'Google' =~ '(?i)google'"), Value::Bool(true));
    }

    #[test]
    fn list_indexing_and_slicing() {
        assert_eq!(ctx_eval("[10, 20, 30][1]"), Value::Int(20));
        assert_eq!(ctx_eval("[10, 20, 30][-1]"), Value::Int(30));
        assert_eq!(ctx_eval("[10, 20, 30][9]"), Value::Null);
        assert_eq!(ctx_eval("[10, 20, 30][0..2]"), Value::from(vec![10i64, 20]));
        assert_eq!(ctx_eval("[10, 20, 30][..1]"), Value::from(vec![10i64]));
    }

    #[test]
    fn case_expressions() {
        assert_eq!(
            ctx_eval("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END"),
            Value::from("b")
        );
        assert_eq!(
            ctx_eval("CASE 3 WHEN 1 THEN 'one' WHEN 3 THEN 'three' END"),
            Value::from("three")
        );
        assert_eq!(ctx_eval("CASE 9 WHEN 1 THEN 'one' END"), Value::Null);
    }

    #[test]
    fn list_comprehension() {
        assert_eq!(
            ctx_eval("[x IN [1, 2, 3, 4] WHERE x % 2 = 0 | x * 10]"),
            Value::from(vec![20i64, 40])
        );
        assert_eq!(ctx_eval("[x IN [1, 2, 3]]"), Value::from(vec![1i64, 2, 3]));
    }

    #[test]
    fn node_property_access() {
        let mut graph = Graph::new();
        let id = graph.add_node(["AS"], props!("asn" => 2497i64, "name" => "IIJ"));
        let mut env = Env::new();
        env.push("a");
        let params = Params::new();
        let ctx = EvalCtx {
            graph: &graph,
            env: &env,
            params: &params,
        };
        let row = vec![Entry::Node(id)];
        let v = ctx
            .eval_value(&parse_expression("a.name").unwrap(), &row)
            .unwrap();
        assert_eq!(v, Value::from("IIJ"));
        // Missing property is null, not an error.
        let v = ctx
            .eval_value(&parse_expression("a.nonexistent").unwrap(), &row)
            .unwrap();
        assert!(v.is_null());
    }

    #[test]
    fn undefined_variable_errors() {
        let graph = Graph::new();
        let env = Env::new();
        let params = Params::new();
        let ctx = EvalCtx {
            graph: &graph,
            env: &env,
            params: &params,
        };
        let err = ctx
            .eval_value(&parse_expression("ghost").unwrap(), &Vec::new())
            .unwrap_err();
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn params_resolve() {
        let graph = Graph::new();
        let env = Env::new();
        let mut params = Params::new();
        params.insert("asn".into(), Value::Int(2497));
        let ctx = EvalCtx {
            graph: &graph,
            env: &env,
            params: &params,
        };
        assert_eq!(
            ctx.eval_value(&parse_expression("$asn + 1").unwrap(), &Vec::new())
                .unwrap(),
            Value::Int(2498)
        );
        assert!(ctx
            .eval_value(&parse_expression("$missing").unwrap(), &Vec::new())
            .is_err());
    }
}
