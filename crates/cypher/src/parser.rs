//! Recursive-descent parser for the Cypher subset.

use crate::ast::*;
use crate::error::CypherError;
use crate::lexer::lex;
use crate::token::{Keyword, Pos, Tok, Token};
use iyp_graphdb::Value;

/// Parses a query string into an AST.
pub fn parse(src: &str) -> Result<Query, CypherError> {
    let tokens = lex(src)?;
    Parser { tokens, i: 0 }.query()
}

/// How a statement asked to be run: plainly, plan-only, or with
/// per-operator execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// No modifier: execute and return rows.
    Query,
    /// `EXPLAIN` prefix: render the plan without executing.
    Explain,
    /// `PROFILE` prefix: execute, returning rows plus per-operator
    /// rows/db-hits/time (see [`crate::profile`]).
    Profile,
}

/// Parses a statement that may start with an `EXPLAIN` or `PROFILE`
/// modifier, returning the mode alongside the query AST.
///
/// The modifiers are recognized at the token level (a leading
/// identifier, case-insensitive) rather than as lexer keywords, so
/// `profile` and `explain` remain usable as variable and property names
/// everywhere else in a query.
///
/// ```
/// use iyp_cypher::{parse_statement, QueryMode};
///
/// let (mode, q) = parse_statement("PROFILE MATCH (n) RETURN count(n)").unwrap();
/// assert_eq!(mode, QueryMode::Profile);
/// assert_eq!(q.clauses.len(), 2);
///
/// // Lowercase works, and plain queries parse unchanged.
/// assert_eq!(parse_statement("explain MATCH (n) RETURN n").unwrap().0, QueryMode::Explain);
/// assert_eq!(parse_statement("MATCH (n) RETURN n").unwrap().0, QueryMode::Query);
/// ```
pub fn parse_statement(src: &str) -> Result<(QueryMode, Query), CypherError> {
    let tokens = lex(src)?;
    let (mode, start) = match tokens.first().map(|t| &t.tok) {
        Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("PROFILE") => (QueryMode::Profile, 1),
        Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("EXPLAIN") => (QueryMode::Explain, 1),
        _ => (QueryMode::Query, 0),
    };
    let q = Parser { tokens, i: start }.query()?;
    Ok((mode, q))
}

/// Parses a standalone expression (used by tests and the text-to-Cypher
/// validator).
pub fn parse_expression(src: &str) -> Result<Expr, CypherError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        self.tokens
            .get(self.i + 1)
            .map(|t| &t.tok)
            .unwrap_or(&Tok::Eof)
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.i].tok.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(&Tok::Kw(kw))
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), CypherError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(CypherError::parse(
                format!("expected '{tok}', found '{}'", self.peek()),
                self.pos(),
            ))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), CypherError> {
        self.expect(&Tok::Kw(kw))
    }

    fn expect_eof(&mut self) -> Result<(), CypherError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(CypherError::parse(
                format!("unexpected trailing input '{}'", self.peek()),
                self.pos(),
            ))
        }
    }

    /// An identifier, also accepting keywords that double as names
    /// (e.g. a property called `count` or `end`).
    fn ident_like(&mut self) -> Result<String, CypherError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            Tok::Kw(k) => {
                // Allow keyword-as-identifier for names that commonly
                // appear as properties/labels.
                let text = match k {
                    // The IYP schema's main label is literally `AS`, which
                    // collides with the aliasing keyword. Alias positions
                    // consume the keyword explicitly before calling here,
                    // so treating it as an identifier elsewhere is safe.
                    Keyword::As => "AS",
                    Keyword::Count => "count",
                    Keyword::End => "end",
                    Keyword::Set => "set",
                    Keyword::In => "in",
                    Keyword::Contains => "contains",
                    Keyword::Order => "order",
                    Keyword::By => "by",
                    Keyword::Limit => "limit",
                    Keyword::Skip => "skip",
                    Keyword::Asc => "asc",
                    Keyword::Desc => "desc",
                    Keyword::All => "all",
                    Keyword::Union => "union",
                    _ => {
                        return Err(CypherError::parse(
                            format!("expected identifier, found keyword '{k:?}'"),
                            self.pos(),
                        ))
                    }
                };
                self.bump();
                Ok(text.to_string())
            }
            other => Err(CypherError::parse(
                format!("expected identifier, found '{other}'"),
                self.pos(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Clauses
    // ------------------------------------------------------------------

    fn query(&mut self) -> Result<Query, CypherError> {
        let mut clauses = Vec::new();
        loop {
            match self.peek() {
                Tok::Kw(Keyword::Match) => {
                    self.bump();
                    clauses.push(Clause::Match(self.match_clause(false)?));
                }
                Tok::Kw(Keyword::Optional) => {
                    self.bump();
                    self.expect_kw(Keyword::Match)?;
                    clauses.push(Clause::Match(self.match_clause(true)?));
                }
                Tok::Kw(Keyword::Unwind) => {
                    self.bump();
                    let expr = self.expr()?;
                    self.expect_kw(Keyword::As)?;
                    let var = self.ident_like()?;
                    clauses.push(Clause::Unwind { expr, var });
                }
                Tok::Kw(Keyword::With) => {
                    self.bump();
                    clauses.push(Clause::With(self.projection_clause(true)?));
                }
                Tok::Kw(Keyword::Return) => {
                    self.bump();
                    clauses.push(Clause::Return(self.projection_clause(false)?));
                }
                Tok::Kw(Keyword::Create) => {
                    self.bump();
                    let patterns = self.pattern_parts()?;
                    clauses.push(Clause::Create { patterns });
                }
                Tok::Kw(Keyword::Merge) => {
                    self.bump();
                    let mut parts = self.pattern_parts()?;
                    if parts.len() != 1 || !parts[0].hops.is_empty() {
                        return Err(CypherError::parse(
                            "MERGE supports a single node pattern",
                            self.pos(),
                        ));
                    }
                    clauses.push(Clause::Merge {
                        node: parts.remove(0).start,
                    });
                }
                Tok::Kw(Keyword::Set) => {
                    self.bump();
                    let mut items = Vec::new();
                    loop {
                        let var = self.ident_like()?;
                        if self.eat(&Tok::Plus) {
                            // `var += {map}`
                            self.expect(&Tok::Eq)?;
                            let expr = self.expr()?;
                            items.push(SetItem::MergeMap { var, expr });
                        } else {
                            self.expect(&Tok::Dot)?;
                            let key = self.ident_like()?;
                            self.expect(&Tok::Eq)?;
                            let expr = self.expr()?;
                            items.push(SetItem::Prop { var, key, expr });
                        }
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    clauses.push(Clause::Set { items });
                }
                Tok::Kw(Keyword::Remove) => {
                    // `REMOVE var.key` desugars to `SET var.key = null`.
                    self.bump();
                    let mut items = Vec::new();
                    loop {
                        let var = self.ident_like()?;
                        self.expect(&Tok::Dot)?;
                        let key = self.ident_like()?;
                        items.push(SetItem::Prop {
                            var,
                            key,
                            expr: Expr::Lit(Value::Null),
                        });
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    clauses.push(Clause::Set { items });
                }
                Tok::Kw(Keyword::Detach) => {
                    self.bump();
                    self.expect_kw(Keyword::Delete)?;
                    clauses.push(self.delete_clause(true)?);
                }
                Tok::Kw(Keyword::Delete) => {
                    self.bump();
                    clauses.push(self.delete_clause(false)?);
                }
                Tok::Kw(Keyword::Union) => {
                    self.bump();
                    let all = self.eat_kw(Keyword::All);
                    clauses.push(Clause::Union { all });
                }
                Tok::Eof => break,
                other => {
                    return Err(CypherError::parse(
                        format!("expected a clause keyword, found '{other}'"),
                        self.pos(),
                    ))
                }
            }
        }
        if clauses.is_empty() {
            return Err(CypherError::parse("empty query", self.pos()));
        }
        Ok(Query { clauses })
    }

    fn delete_clause(&mut self, detach: bool) -> Result<Clause, CypherError> {
        let mut vars = vec![self.ident_like()?];
        while self.eat(&Tok::Comma) {
            vars.push(self.ident_like()?);
        }
        Ok(Clause::Delete { vars, detach })
    }

    fn match_clause(&mut self, optional: bool) -> Result<MatchClause, CypherError> {
        let patterns = self.pattern_parts()?;
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(MatchClause {
            optional,
            patterns,
            where_clause,
        })
    }

    fn pattern_parts(&mut self) -> Result<Vec<PatternPart>, CypherError> {
        let mut parts = vec![self.pattern_part()?];
        while self.eat(&Tok::Comma) {
            parts.push(self.pattern_part()?);
        }
        Ok(parts)
    }

    fn pattern_part(&mut self) -> Result<PatternPart, CypherError> {
        // Optional path binding: `p = (...)`
        let path_var = if matches!(self.peek(), Tok::Ident(_)) && *self.peek2() == Tok::Eq {
            let v = self.ident_like()?;
            self.bump(); // '='
            Some(v)
        } else {
            None
        };
        // Optional `shortestPath( ... )` wrapper.
        let shortest = match self.peek() {
            Tok::Ident(name) if name.eq_ignore_ascii_case("shortestPath") => {
                self.bump();
                self.expect(&Tok::LParen)?;
                true
            }
            _ => false,
        };
        if shortest && path_var.is_none() {
            return Err(CypherError::parse(
                "shortestPath(...) requires a path binding: p = shortestPath(...)",
                self.pos(),
            ));
        }
        let start = self.node_pattern()?;
        let mut hops = Vec::new();
        while matches!(self.peek(), Tok::Minus | Tok::ArrowLeft) {
            let rel = self.rel_pattern()?;
            let node = self.node_pattern()?;
            hops.push((rel, node));
        }
        if shortest {
            self.expect(&Tok::RParen)?;
            if hops.len() != 1 {
                return Err(CypherError::parse(
                    "shortestPath(...) expects exactly one relationship pattern",
                    self.pos(),
                ));
            }
        }
        Ok(PatternPart {
            path_var,
            shortest,
            start,
            hops,
        })
    }

    fn node_pattern(&mut self) -> Result<NodePattern, CypherError> {
        self.expect(&Tok::LParen)?;
        let mut np = NodePattern::default();
        if matches!(self.peek(), Tok::Ident(_)) {
            np.var = Some(self.ident_like()?);
        }
        while self.eat(&Tok::Colon) {
            np.labels.push(self.ident_like()?);
        }
        if matches!(self.peek(), Tok::LBrace) {
            np.props = self.map_props()?;
        }
        self.expect(&Tok::RParen)?;
        Ok(np)
    }

    fn rel_pattern(&mut self) -> Result<RelPattern, CypherError> {
        // Leading: '-' or '<-'
        let from_left = match self.bump() {
            Tok::Minus => false,
            Tok::ArrowLeft => true,
            other => {
                return Err(CypherError::parse(
                    format!("expected relationship pattern, found '{other}'"),
                    self.pos(),
                ))
            }
        };
        let mut rel = RelPattern {
            var: None,
            types: Vec::new(),
            dir: RelDir::Undirected,
            hops: HopRange::single(),
            props: Vec::new(),
        };
        if self.eat(&Tok::LBracket) {
            if matches!(self.peek(), Tok::Ident(_)) {
                rel.var = Some(self.ident_like()?);
            }
            if self.eat(&Tok::Colon) {
                rel.types.push(self.ident_like()?);
                while self.eat(&Tok::Pipe) {
                    self.eat(&Tok::Colon); // `|:TYPE` and `|TYPE` both allowed
                    rel.types.push(self.ident_like()?);
                }
            }
            if self.eat(&Tok::Star) {
                rel.hops = self.hop_range()?;
            }
            if matches!(self.peek(), Tok::LBrace) {
                rel.props = self.map_props()?;
            }
            self.expect(&Tok::RBracket)?;
        }
        // Trailing: '->' or '-'
        let to_right = match self.bump() {
            Tok::ArrowRight => true,
            Tok::Minus => false,
            other => {
                return Err(CypherError::parse(
                    format!("expected '-' or '->' after relationship, found '{other}'"),
                    self.pos(),
                ))
            }
        };
        rel.dir = match (from_left, to_right) {
            (true, true) => {
                return Err(CypherError::parse(
                    "relationship cannot point both ways",
                    self.pos(),
                ))
            }
            (true, false) => RelDir::Left,
            (false, true) => RelDir::Right,
            (false, false) => RelDir::Undirected,
        };
        Ok(rel)
    }

    fn hop_range(&mut self) -> Result<HopRange, CypherError> {
        // Forms: * | *n | *n..m | *n.. | *..m
        let min = if let Tok::Int(n) = self.peek() {
            let n = *n;
            self.bump();
            Some(n)
        } else {
            None
        };
        if self.eat(&Tok::DotDot) {
            let max = if let Tok::Int(n) = self.peek() {
                let n = *n;
                self.bump();
                Some(n as u32)
            } else {
                None
            };
            Ok(HopRange {
                min: min.unwrap_or(1) as u32,
                max,
            })
        } else {
            match min {
                Some(n) => Ok(HopRange {
                    min: n as u32,
                    max: Some(n as u32),
                }),
                None => Ok(HopRange { min: 1, max: None }),
            }
        }
    }

    fn map_props(&mut self) -> Result<Vec<(String, Expr)>, CypherError> {
        self.expect(&Tok::LBrace)?;
        let mut props = Vec::new();
        if !matches!(self.peek(), Tok::RBrace) {
            loop {
                let key = self.ident_like()?;
                self.expect(&Tok::Colon)?;
                let val = self.expr()?;
                props.push((key, val));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(props)
    }

    fn projection_clause(&mut self, is_with: bool) -> Result<ProjectionClause, CypherError> {
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut items = Vec::new();
        let mut star = false;
        if self.eat(&Tok::Star) {
            star = true;
            while self.eat(&Tok::Comma) {
                items.push(self.projection_item()?);
            }
        } else {
            items.push(self.projection_item()?);
            while self.eat(&Tok::Comma) {
                items.push(self.projection_item()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw(Keyword::Desc) {
                    false
                } else {
                    self.eat_kw(Keyword::Asc);
                    true
                };
                order_by.push(OrderKey { expr, ascending });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let skip = if self.eat_kw(Keyword::Skip) {
            Some(self.expr()?)
        } else {
            None
        };
        let limit = if self.eat_kw(Keyword::Limit) {
            Some(self.expr()?)
        } else {
            None
        };
        let where_clause = if is_with && self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(ProjectionClause {
            distinct,
            items,
            star,
            order_by,
            skip,
            limit,
            where_clause,
        })
    }

    fn projection_item(&mut self) -> Result<ProjectionItem, CypherError> {
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident_like()?)
        } else {
            None
        };
        Ok(ProjectionItem { expr, alias })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Expr, CypherError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CypherError> {
        let mut lhs = self.xor_expr()?;
        while self.eat_kw(Keyword::Or) {
            let rhs = self.xor_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn xor_expr(&mut self) -> Result<Expr, CypherError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(Keyword::Xor) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CypherError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, CypherError> {
        if self.eat_kw(Keyword::Not) {
            let inner = self.not_expr()?;
            Ok(Expr::Un(UnOp::Not, Box::new(inner)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, CypherError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Tok::Eq => Some(BinOp::Eq),
            Tok::Neq => Some(BinOp::Neq),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            Tok::RegexMatch => Some(BinOp::RegexMatch),
            Tok::Kw(Keyword::In) => Some(BinOp::In),
            Tok::Kw(Keyword::Contains) => Some(BinOp::Contains),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.additive()?;
            return Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_kw(Keyword::Starts) {
            self.expect_kw(Keyword::With)?;
            let rhs = self.additive()?;
            return Ok(Expr::Bin(BinOp::StartsWith, Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_kw(Keyword::Ends) {
            self.expect_kw(Keyword::With)?;
            let rhs = self.additive()?;
            return Ok(Expr::Bin(BinOp::EndsWith, Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull(Box::new(lhs), negated));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, CypherError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, CypherError> {
        let mut lhs = self.power()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.power()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn power(&mut self) -> Result<Expr, CypherError> {
        let lhs = self.unary()?;
        if self.eat(&Tok::Caret) {
            // Right-associative.
            let rhs = self.power()?;
            return Ok(Expr::Bin(BinOp::Pow, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CypherError> {
        if self.eat(&Tok::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Un(UnOp::Neg, Box::new(inner)));
        }
        if self.eat(&Tok::Plus) {
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CypherError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let key = self.ident_like()?;
                    e = Expr::Prop(Box::new(e), key);
                }
                Tok::LBracket => {
                    self.bump();
                    // Slice or index.
                    if self.eat(&Tok::DotDot) {
                        let hi = if matches!(self.peek(), Tok::RBracket) {
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect(&Tok::RBracket)?;
                        e = Expr::Slice(Box::new(e), None, hi);
                    } else {
                        let idx = self.expr()?;
                        if self.eat(&Tok::DotDot) {
                            let hi = if matches!(self.peek(), Tok::RBracket) {
                                None
                            } else {
                                Some(Box::new(self.expr()?))
                            };
                            self.expect(&Tok::RBracket)?;
                            e = Expr::Slice(Box::new(e), Some(Box::new(idx)), hi);
                        } else {
                            self.expect(&Tok::RBracket)?;
                            e = Expr::Index(Box::new(e), Box::new(idx));
                        }
                    }
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, CypherError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Lit(Value::Int(n)))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Expr::Lit(Value::Float(x)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Value::Str(s)))
            }
            Tok::Kw(Keyword::True) => {
                self.bump();
                Ok(Expr::Lit(Value::Bool(true)))
            }
            Tok::Kw(Keyword::False) => {
                self.bump();
                Ok(Expr::Lit(Value::Bool(false)))
            }
            Tok::Kw(Keyword::Null) => {
                self.bump();
                Ok(Expr::Lit(Value::Null))
            }
            Tok::Param(p) => {
                self.bump();
                Ok(Expr::Param(p))
            }
            Tok::Kw(Keyword::Count) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let distinct = self.eat_kw(Keyword::Distinct);
                let args = if self.eat(&Tok::Star) {
                    vec![Expr::Star]
                } else {
                    vec![self.expr()?]
                };
                self.expect(&Tok::RParen)?;
                Ok(Expr::Call {
                    name: "count".into(),
                    distinct,
                    args,
                })
            }
            Tok::Kw(Keyword::Exists) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                // `exists((a)-[:T]->(b))` — a pattern, not an expression.
                if matches!(self.peek(), Tok::LParen) {
                    let part = self.pattern_part()?;
                    self.expect(&Tok::RParen)?;
                    if part.hops.is_empty() {
                        return Err(CypherError::parse(
                            "exists(pattern) requires at least one relationship",
                            pos,
                        ));
                    }
                    return Ok(Expr::ExistsPattern(Box::new(part)));
                }
                let inner = self.expr()?;
                self.expect(&Tok::RParen)?;
                match inner {
                    Expr::Prop(base, key) => Ok(Expr::ExistsProp(base, key)),
                    other => Ok(Expr::IsNull(Box::new(other), true)),
                }
            }
            Tok::Kw(Keyword::Case) => {
                self.bump();
                self.case_expr()
            }
            Tok::Ident(name) => {
                if *self.peek2() == Tok::LParen {
                    self.bump();
                    self.bump(); // '('
                    let distinct = self.eat_kw(Keyword::Distinct);
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Tok::RParen) {
                        if self.eat(&Tok::Star) {
                            args.push(Expr::Star);
                        } else {
                            args.push(self.expr()?);
                            while self.eat(&Tok::Comma) {
                                args.push(self.expr()?);
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call {
                        name: name.to_ascii_lowercase(),
                        distinct,
                        args,
                    })
                } else {
                    self.bump();
                    Ok(Expr::Var(name))
                }
            }
            Tok::LParen => {
                // Could be a parenthesized expression `(a + b)` or a bare
                // pattern predicate `(a)-[:T]->(b)`. Try the pattern first
                // with backtracking: it must parse a node pattern and be
                // followed by a relationship arrow.
                let mark = self.i;
                if let Ok(part) = self.pattern_part() {
                    if !part.hops.is_empty() {
                        return Ok(Expr::ExistsPattern(Box::new(part)));
                    }
                    self.i = mark;
                } else {
                    self.i = mark;
                }
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => self.list_or_comprehension(),
            Tok::LBrace => {
                let props = self.map_props()?;
                Ok(Expr::Map(props))
            }
            other => Err(CypherError::parse(
                format!("expected expression, found '{other}'"),
                pos,
            )),
        }
    }

    fn case_expr(&mut self) -> Result<Expr, CypherError> {
        let operand = if !matches!(self.peek(), Tok::Kw(Keyword::When)) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut arms = Vec::new();
        while self.eat_kw(Keyword::When) {
            let when = self.expr()?;
            self.expect_kw(Keyword::Then)?;
            let then = self.expr()?;
            arms.push((when, then));
        }
        if arms.is_empty() {
            return Err(CypherError::parse(
                "CASE requires at least one WHEN",
                self.pos(),
            ));
        }
        let default = if self.eat_kw(Keyword::Else) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            arms,
            default,
        })
    }

    fn list_or_comprehension(&mut self) -> Result<Expr, CypherError> {
        self.expect(&Tok::LBracket)?;
        // `[x IN list ...]` comprehension?
        if matches!(self.peek(), Tok::Ident(_)) && *self.peek2() == Tok::Kw(Keyword::In) {
            let var = self.ident_like()?;
            self.bump(); // IN
            let list = Box::new(self.expr()?);
            let pred = if self.eat_kw(Keyword::Where) {
                Some(Box::new(self.expr()?))
            } else {
                None
            };
            let map = if self.eat(&Tok::Pipe) {
                Some(Box::new(self.expr()?))
            } else {
                None
            };
            self.expect(&Tok::RBracket)?;
            return Ok(Expr::ListComp {
                var,
                list,
                pred,
                map,
            });
        }
        let mut items = Vec::new();
        if !matches!(self.peek(), Tok::RBracket) {
            items.push(self.expr()?);
            while self.eat(&Tok::Comma) {
                items.push(self.expr()?);
            }
        }
        self.expect(&Tok::RBracket)?;
        Ok(Expr::List(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> Query {
        parse(src).unwrap_or_else(|e| panic!("parse failed for {src}: {e}"))
    }

    #[test]
    fn simple_match_return() {
        let query = q("MATCH (a:AS {asn: 2497}) RETURN a.name");
        assert_eq!(query.clauses.len(), 2);
        match &query.clauses[0] {
            Clause::Match(m) => {
                assert!(!m.optional);
                let p = &m.patterns[0];
                assert_eq!(p.start.var.as_deref(), Some("a"));
                assert_eq!(p.start.labels, vec!["AS"]);
                assert_eq!(p.start.props.len(), 1);
            }
            other => panic!("expected MATCH, got {other:?}"),
        }
    }

    #[test]
    fn multi_hop_pattern_with_direction() {
        let query = q("MATCH (a:AS)-[:ORIGINATE]->(p:Prefix)<-[d:DEPENDS_ON]-(b) RETURN a, b");
        match &query.clauses[0] {
            Clause::Match(m) => {
                let part = &m.patterns[0];
                assert_eq!(part.hops.len(), 2);
                assert_eq!(part.hops[0].0.dir, RelDir::Right);
                assert_eq!(part.hops[0].0.types, vec!["ORIGINATE"]);
                assert_eq!(part.hops[1].0.dir, RelDir::Left);
                assert_eq!(part.hops[1].0.var.as_deref(), Some("d"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn variable_length_and_type_alternatives() {
        let query = q("MATCH (a)-[:PEERS_WITH|DEPENDS_ON*1..3]-(b) RETURN count(*)");
        match &query.clauses[0] {
            Clause::Match(m) => {
                let rel = &m.patterns[0].hops[0].0;
                assert_eq!(rel.types, vec!["PEERS_WITH", "DEPENDS_ON"]);
                assert_eq!(
                    rel.hops,
                    HopRange {
                        min: 1,
                        max: Some(3)
                    }
                );
                assert_eq!(rel.dir, RelDir::Undirected);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn where_with_boolean_precedence() {
        let query = q("MATCH (a) WHERE a.x = 1 OR a.y = 2 AND NOT a.z = 3 RETURN a");
        match &query.clauses[0] {
            Clause::Match(m) => {
                // OR at top: AND binds tighter.
                match m.where_clause.as_ref().unwrap() {
                    Expr::Bin(BinOp::Or, _, rhs) => match rhs.as_ref() {
                        Expr::Bin(BinOp::And, _, _) => {}
                        other => panic!("expected AND under OR, got {other:?}"),
                    },
                    other => panic!("expected OR, got {other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn return_modifiers() {
        let query =
            q("MATCH (a:AS) RETURN DISTINCT a.asn AS asn ORDER BY asn DESC SKIP 5 LIMIT 10");
        match &query.clauses[1] {
            Clause::Return(p) => {
                assert!(p.distinct);
                assert_eq!(p.items[0].alias.as_deref(), Some("asn"));
                assert!(!p.order_by[0].ascending);
                assert!(p.skip.is_some());
                assert!(p.limit.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn with_chaining_and_aggregation() {
        let query = q(
            "MATCH (a:AS)-[:MEMBER_OF]->(x:IXP) WITH x, count(a) AS members WHERE members > 10 RETURN x.name, members ORDER BY members DESC",
        );
        assert_eq!(query.clauses.len(), 3);
        match &query.clauses[1] {
            Clause::With(p) => {
                assert!(p.where_clause.is_some());
                assert!(p.items[1].expr.contains_aggregate());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star_and_distinct() {
        let query = q("MATCH (n) RETURN count(*), count(DISTINCT n.cc)");
        match &query.clauses[1] {
            Clause::Return(p) => {
                match &p.items[0].expr {
                    Expr::Call { name, args, .. } => {
                        assert_eq!(name, "count");
                        assert_eq!(args[0], Expr::Star);
                    }
                    other => panic!("{other:?}"),
                }
                match &p.items[1].expr {
                    Expr::Call { distinct, .. } => assert!(distinct),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn string_predicates() {
        let e = parse_expression("a.name STARTS WITH 'Goo' AND a.name CONTAINS 'g'").unwrap();
        match e {
            Expr::Bin(BinOp::And, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Bin(BinOp::StartsWith, _, _)));
                assert!(matches!(*rhs, Expr::Bin(BinOp::Contains, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn is_null_and_exists() {
        let e = parse_expression("a.x IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull(_, true)));
        let e = parse_expression("exists(a.x)").unwrap();
        assert!(matches!(e, Expr::ExistsProp(_, _)));
    }

    #[test]
    fn case_expression() {
        let e = parse_expression(
            "CASE WHEN a.rank < 10 THEN 'top' WHEN a.rank < 100 THEN 'mid' ELSE 'tail' END",
        )
        .unwrap();
        match e {
            Expr::Case {
                operand,
                arms,
                default,
            } => {
                assert!(operand.is_none());
                assert_eq!(arms.len(), 2);
                assert!(default.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn list_comprehension() {
        let e = parse_expression("[x IN a.prefixes WHERE x CONTAINS '/24' | toUpper(x)]").unwrap();
        match e {
            Expr::ListComp { var, pred, map, .. } => {
                assert_eq!(var, "x");
                assert!(pred.is_some());
                assert!(map.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expression("1 + 2 * 3 ^ 2").unwrap();
        // 1 + (2 * (3 ^ 2))
        match e {
            Expr::Bin(BinOp::Add, _, rhs) => match *rhs {
                Expr::Bin(BinOp::Mul, _, rhs2) => {
                    assert!(matches!(*rhs2, Expr::Bin(BinOp::Pow, _, _)))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unwind_and_params() {
        let query = q("UNWIND $asns AS asn MATCH (a:AS {asn: asn}) RETURN a.name");
        assert!(matches!(&query.clauses[0], Clause::Unwind { .. }));
    }

    #[test]
    fn create_merge_set() {
        let query = q("CREATE (a:AS {asn: 1})-[:COUNTRY]->(c:Country {country_code: 'JP'})");
        assert!(matches!(&query.clauses[0], Clause::Create { .. }));
        let query = q("MERGE (c:Country {country_code: 'JP'}) SET c.name = 'Japan'");
        assert!(matches!(&query.clauses[0], Clause::Merge { .. }));
        assert!(matches!(&query.clauses[1], Clause::Set { .. }));
    }

    #[test]
    fn index_and_slice() {
        let e = parse_expression("xs[0]").unwrap();
        assert!(matches!(e, Expr::Index(_, _)));
        let e = parse_expression("xs[1..3]").unwrap();
        assert!(matches!(e, Expr::Slice(_, Some(_), Some(_))));
        let e = parse_expression("xs[..2]").unwrap();
        assert!(matches!(e, Expr::Slice(_, None, Some(_))));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("MATCH (a RETURN a").is_err());
        assert!(parse("RETURN").is_err());
        assert!(parse("FROB (a) RETURN a").is_err());
        assert!(parse("MATCH (a)-[->(b) RETURN a").is_err());
    }

    #[test]
    fn path_variable_binding() {
        let query = q("MATCH p = (a:AS)-[:DEPENDS_ON*1..2]->(b:AS) RETURN length(p)");
        match &query.clauses[0] {
            Clause::Match(m) => assert_eq!(m.patterns[0].path_var.as_deref(), Some("p")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keyword_property_names() {
        // `count` used as a property key.
        let e = parse_expression("n.count + 1").unwrap();
        assert!(matches!(e, Expr::Bin(BinOp::Add, _, _)));
    }
}
