//! `PROFILE` support: execute a query and report, per operator, the rows
//! it emitted, the db hits it cost, and the wall-clock time it took.
//!
//! Where [`crate::explain()`] predicts a plan without running it, `PROFILE`
//! runs the pipeline with the driver bracketing every operator: rows come
//! from the operator's output, db hits from the thread-local
//! [`iyp_graphdb::dbhits`] counter, and time from the monotonic clock.
//! The plan text per operator is the same text `EXPLAIN` renders, so the
//! two read identically — `PROFILE` just adds the measured columns.
//!
//! Rendering comes in two flavors: [`QueryProfile::render`] includes
//! timings (for humans), [`QueryProfile::render_deterministic`] omits
//! them (rows and db hits are reproducible on a fixed dataset, so golden
//! tests pin that form).

use crate::error::CypherError;
use crate::eval::Params;
use crate::exec::{self, ExecLimits, Operator};
use crate::parser::{parse_statement, QueryMode};
use crate::result::QueryResult;
use iyp_graphdb::Graph;
use std::fmt::Write as _;
use std::time::Duration;

/// Measured execution of one operator in the pipeline.
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Operator name (e.g. `"MATCH"`, `"RETURN"`).
    pub name: String,
    /// The operator's plan text, as `EXPLAIN` would render it: first line
    /// is the numbered operator header, further lines are access-path and
    /// expansion details.
    pub plan: String,
    /// Rows the operator emitted.
    pub rows: u64,
    /// Db hits (storage accesses — see [`iyp_graphdb::dbhits`]) the
    /// operator cost.
    pub db_hits: u64,
    /// Wall-clock time spent inside the operator.
    pub elapsed: Duration,
}

/// The result of profiling one query: the executed operators in pipeline
/// order plus end-to-end totals.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Per-operator measurements, in execution order. `UNION` queries
    /// list every segment's operators, then a final `Union` merge entry.
    pub ops: Vec<OpProfile>,
    /// End-to-end execution wall clock.
    pub total: Duration,
    /// Rows in the final [`QueryResult`].
    pub result_rows: u64,
}

impl QueryProfile {
    /// Total db hits across all operators.
    pub fn total_db_hits(&self) -> u64 {
        self.ops.iter().map(|o| o.db_hits).sum()
    }

    /// Renders the profile as text: each operator's plan lines with
    /// `rows=… dbHits=… time=…` appended to its header line, then a
    /// totals line. Includes wall-clock times — for humans, not goldens.
    pub fn render(&self) -> String {
        self.render_inner(true)
    }

    /// Renders like [`render`](Self::render) but without wall-clock
    /// times, so output is reproducible on a fixed dataset. Golden tests
    /// pin this form.
    pub fn render_deterministic(&self) -> String {
        self.render_inner(false)
    }

    fn render_inner(&self, with_time: bool) -> String {
        let mut out = String::new();
        for op in &self.ops {
            let mut lines = op.plan.lines();
            let header = lines.next().unwrap_or(&op.name);
            write!(out, "{header}  (rows={} dbHits={}", op.rows, op.db_hits).unwrap();
            if with_time {
                write!(out, " time={:?}", op.elapsed).unwrap();
            }
            out.push_str(")\n");
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        write!(
            out,
            "returned {} row{}, {} db hits total",
            self.result_rows,
            if self.result_rows == 1 { "" } else { "s" },
            self.total_db_hits()
        )
        .unwrap();
        if with_time {
            write!(out, ", {:?}", self.total).unwrap();
        }
        out.push('\n');
        out
    }
}

/// Accumulates per-operator measurements while the driver runs a
/// profiled pipeline.
pub(crate) struct ProfileCollector {
    ops: Vec<OpProfile>,
    /// Variables bound so far, threaded through `explain_into` so later
    /// operators render bound-variable anchors correctly.
    bound: Vec<String>,
    idx: usize,
}

impl ProfileCollector {
    pub(crate) fn new() -> ProfileCollector {
        ProfileCollector {
            ops: Vec::new(),
            bound: Vec::new(),
            idx: 0,
        }
    }

    /// Records one operator's measured execution. Renders its plan text
    /// via `explain_into`, which also advances the bound-variable state.
    pub(crate) fn record(
        &mut self,
        op: &dyn Operator,
        graph: &Graph,
        rows: u64,
        db_hits: u64,
        elapsed: Duration,
    ) {
        let mut plan = String::new();
        op.explain_into(graph, &mut self.bound, self.idx, &mut plan);
        self.idx += 1;
        self.ops.push(OpProfile {
            name: op.name().to_string(),
            plan,
            rows,
            db_hits,
            elapsed,
        });
    }

    /// Records a synthetic pipeline step that is not a clause operator
    /// (the `UNION` merge).
    pub(crate) fn record_synthetic(&mut self, name: &str, rows: u64, elapsed: Duration) {
        let idx = self.idx;
        self.idx += 1;
        self.ops.push(OpProfile {
            name: name.to_string(),
            plan: format!("{idx:>2}. {name}\n"),
            rows,
            db_hits: 0,
            elapsed,
        });
    }

    /// Resets per-segment state at a `UNION` boundary: each segment is an
    /// independent pipeline with no variables bound.
    pub(crate) fn segment_boundary(&mut self) {
        self.bound.clear();
    }

    pub(crate) fn finish(self, total: Duration, result_rows: u64) -> QueryProfile {
        QueryProfile {
            ops: self.ops,
            total,
            result_rows,
        }
    }
}

/// Parses and profiles a read-only query: executes it with per-operator
/// measurement and returns the result alongside the profile. A leading
/// `PROFILE` keyword in `src` is accepted and ignored (the call itself
/// asks for profiling).
///
/// ```
/// use iyp_cypher::profile::profile;
/// use iyp_graphdb::{Graph, props};
///
/// let mut g = Graph::new();
/// for asn in 1..=5i64 {
///     g.add_node(["AS"], props!("asn" => asn));
/// }
/// let (result, prof) = profile(&g, "MATCH (a:AS) RETURN count(a)", &Default::default()).unwrap();
/// assert_eq!(result.rows.len(), 1);
/// assert_eq!(prof.result_rows, 1);
/// assert!(prof.total_db_hits() > 0);
/// assert!(prof.render_deterministic().contains("dbHits="));
/// ```
pub fn profile(
    graph: &Graph,
    src: &str,
    params: &Params,
) -> Result<(QueryResult, QueryProfile), CypherError> {
    profile_with_limits(graph, src, params, ExecLimits::none())
}

/// Like [`profile`], with execution limits — the entry point for services
/// profiling untrusted Cypher under a deadline.
pub fn profile_with_limits(
    graph: &Graph,
    src: &str,
    params: &Params,
    limits: ExecLimits,
) -> Result<(QueryResult, QueryProfile), CypherError> {
    let (mode, q) = parse_statement(src)?;
    if mode == QueryMode::Explain {
        return Err(CypherError::plan(
            "EXPLAIN renders a plan without executing; use explain() instead of profile()",
        ));
    }
    exec::profile_read(graph, &q, params, limits)
}
