//! Pattern planning: choosing where to start matching a pattern chain and
//! in which order to expand it.
//!
//! The planner scores the two ends of each linear pattern chain and anchors
//! at the cheaper one: a variable that is already bound beats an indexed
//! property seek, which beats a label scan, which beats a full node scan.
//! If the right end wins, the chain is reversed (flipping every hop's
//! direction) so the executor always expands left to right.

use crate::ast::{Expr, MatchClause, NodePattern, PatternPart, RelDir, RelPattern};
use iyp_graphdb::Graph;

/// How candidate anchor nodes are produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Anchor {
    /// The anchor variable is already bound in the incoming rows.
    Bound(String),
    /// Seek `label.key = expr` through a property index.
    IndexSeek {
        /// Indexed label.
        label: String,
        /// Indexed property key.
        key: String,
        /// Equality expression (literal or parameter).
        expr: Expr,
    },
    /// Range scan `lo <(=) label.key <(=) hi` through an ordered index.
    RangeSeek {
        /// Indexed label.
        label: String,
        /// Indexed property key.
        key: String,
        /// Lower bound `(expr, inclusive)`, if any.
        lo: Option<(Expr, bool)>,
        /// Upper bound `(expr, inclusive)`, if any.
        hi: Option<(Expr, bool)>,
    },
    /// Scan all nodes with a label.
    LabelScan(String),
    /// Scan every node.
    AllNodes,
}

/// An executable plan for one pattern part: the anchor, its node pattern,
/// and the expansion steps in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct PartPlan {
    /// Candidate generation strategy.
    pub anchor: Anchor,
    /// Pattern checks applied to anchor candidates.
    pub anchor_node: NodePattern,
    /// Hops to expand, in order.
    pub steps: Vec<(RelPattern, NodePattern)>,
    /// Path variable, if the part is bound to one.
    pub path_var: Option<String>,
    /// `shortestPath(...)`: keep only the minimal-length path per
    /// distinct endpoint pair.
    pub shortest: bool,
    /// True if the chain was reversed relative to source order (paths are
    /// un-reversed before binding).
    pub reversed: bool,
}

/// Plans every pattern part of a MATCH clause.
///
/// `bound` lists variables bound by earlier clauses/parts; it is extended
/// with the variables each planned part will bind, so later parts can
/// anchor on them.
pub fn plan_match(graph: &Graph, clause: &MatchClause, bound: &mut Vec<String>) -> Vec<PartPlan> {
    let t0 = std::time::Instant::now();
    let plans = plan_match_inner(graph, clause, bound);
    PLAN_NS.with(|c| c.set(c.get().wrapping_add(t0.elapsed().as_nanos() as u64)));
    plans
}

thread_local! {
    static PLAN_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The current thread's monotonic total of nanoseconds spent planning
/// (in [`plan_match`]). Planning happens lazily inside `MATCH` execution,
/// so stage timers measure it by taking a delta around an execute call —
/// the same before/after idiom as [`iyp_graphdb::dbhits::current`].
pub fn plan_time_ns() -> u64 {
    PLAN_NS.with(|c| c.get())
}

fn plan_match_inner(graph: &Graph, clause: &MatchClause, bound: &mut Vec<String>) -> Vec<PartPlan> {
    let eq_preds = clause
        .where_clause
        .as_ref()
        .map(extract_equality_predicates)
        .unwrap_or_default();
    let range_preds = clause
        .where_clause
        .as_ref()
        .map(extract_range_predicates)
        .unwrap_or_default();
    let mut plans = Vec::with_capacity(clause.patterns.len());
    for part in &clause.patterns {
        let plan = plan_part(graph, part, bound, &eq_preds, &range_preds);
        collect_part_vars(part, bound);
        plans.push(plan);
    }
    plans
}

/// Plans a single pattern part given the currently bound variables.
pub fn plan_part(
    graph: &Graph,
    part: &PatternPart,
    bound: &[String],
    eq_preds: &[(String, String, Expr)],
    range_preds: &[RangePred],
) -> PartPlan {
    let start_score = score_node(graph, &part.start, bound, eq_preds, range_preds);
    let end_node = part.hops.last().map(|(_, n)| n).unwrap_or(&part.start);
    let end_score = score_node(graph, end_node, bound, eq_preds, range_preds);

    // Reverse only when the far end is strictly better and there are hops.
    let reverse = !part.hops.is_empty() && end_score.0 < start_score.0;
    let (anchor_node, steps) = if reverse {
        reverse_chain(part)
    } else {
        (part.start.clone(), part.hops.clone())
    };
    let score = if reverse { end_score } else { start_score };
    PartPlan {
        anchor: score.1,
        anchor_node,
        steps,
        path_var: part.path_var.clone(),
        shortest: part.shortest,
        reversed: reverse,
    }
}

/// Lower score = cheaper anchor.
fn score_node(
    graph: &Graph,
    node: &NodePattern,
    bound: &[String],
    eq_preds: &[(String, String, Expr)],
    range_preds: &[RangePred],
) -> (u64, Anchor) {
    if let Some(var) = &node.var {
        if bound.contains(var) {
            return (0, Anchor::Bound(var.clone()));
        }
    }
    // Indexed equality: inline props or WHERE predicates on this node's var.
    for label in &node.labels {
        for (key, expr) in &node.props {
            if graph.has_index(label, key) && is_seekable(expr) {
                return (
                    1,
                    Anchor::IndexSeek {
                        label: label.clone(),
                        key: key.clone(),
                        expr: expr.clone(),
                    },
                );
            }
        }
        if let Some(var) = &node.var {
            for (pvar, key, expr) in eq_preds {
                if pvar == var && graph.has_index(label, key) && is_seekable(expr) {
                    return (
                        1,
                        Anchor::IndexSeek {
                            label: label.clone(),
                            key: key.clone(),
                            expr: expr.clone(),
                        },
                    );
                }
            }
            // Indexed range: cheaper than a label scan, dearer than an
            // exact seek.
            for rp in range_preds {
                if rp.var == *var && graph.has_index(label, &rp.key) {
                    return (
                        2,
                        Anchor::RangeSeek {
                            label: label.clone(),
                            key: rp.key.clone(),
                            lo: rp.lo.clone(),
                            hi: rp.hi.clone(),
                        },
                    );
                }
            }
        }
    }
    if let Some(label) = node.labels.first() {
        // Prefer the most selective label when several are present.
        let best = node
            .labels
            .iter()
            .min_by_key(|l| graph.label_count(l))
            .unwrap_or(label);
        return (
            2 + graph.label_count(best) as u64,
            Anchor::LabelScan(best.clone()),
        );
    }
    (2 + graph.node_count() as u64 * 4, Anchor::AllNodes)
}

/// An expression the anchor can evaluate without row context.
fn is_seekable(expr: &Expr) -> bool {
    matches!(expr, Expr::Lit(_) | Expr::Param(_))
}

fn reverse_chain(part: &PatternPart) -> (NodePattern, Vec<(RelPattern, NodePattern)>) {
    // Chain: n0 -r1- n1 -r2- ... -rk- nk  reversed to
    //        nk -rk'- n(k-1) ... -r1'- n0  with each rel direction flipped.
    let mut nodes: Vec<&NodePattern> = Vec::with_capacity(part.hops.len() + 1);
    nodes.push(&part.start);
    let mut rels: Vec<&RelPattern> = Vec::with_capacity(part.hops.len());
    for (r, n) in &part.hops {
        rels.push(r);
        nodes.push(n);
    }
    let anchor = nodes.last().expect("chain has at least one node");
    let mut steps = Vec::with_capacity(rels.len());
    for i in (0..rels.len()).rev() {
        let mut rel = rels[i].clone();
        rel.dir = match rel.dir {
            RelDir::Right => RelDir::Left,
            RelDir::Left => RelDir::Right,
            RelDir::Undirected => RelDir::Undirected,
        };
        steps.push((rel, nodes[i].clone()));
    }
    ((*anchor).clone(), steps)
}

/// A range constraint `lo <(=) var.key <(=) hi` usable by an ordered
/// index. Either bound may be absent.
#[derive(Debug, Clone, PartialEq)]
pub struct RangePred {
    /// Constrained variable.
    pub var: String,
    /// Constrained property key.
    pub key: String,
    /// Lower bound `(expr, inclusive)`.
    pub lo: Option<(Expr, bool)>,
    /// Upper bound `(expr, inclusive)`.
    pub hi: Option<(Expr, bool)>,
}

/// Collects `var.key = <seekable>` conjuncts from a WHERE tree.
pub fn extract_equality_predicates(expr: &Expr) -> Vec<(String, String, Expr)> {
    let mut out = Vec::new();
    collect_eq(expr, &mut out);
    out
}

/// Collects range conjuncts (`<`, `<=`, `>`, `>=` against seekable
/// expressions), merged per `(var, key)`.
pub fn extract_range_predicates(expr: &Expr) -> Vec<RangePred> {
    let mut out: Vec<RangePred> = Vec::new();
    let mut add =
        |var: String, key: String, lo: Option<(Expr, bool)>, hi: Option<(Expr, bool)>| match out
            .iter_mut()
            .find(|r| r.var == var && r.key == key)
        {
            Some(r) => {
                if r.lo.is_none() {
                    r.lo = lo;
                }
                if r.hi.is_none() {
                    r.hi = hi;
                }
            }
            None => out.push(RangePred { var, key, lo, hi }),
        };
    fn walk(
        expr: &Expr,
        add: &mut impl FnMut(String, String, Option<(Expr, bool)>, Option<(Expr, bool)>),
    ) {
        use crate::ast::BinOp::*;
        match expr {
            Expr::Bin(And, a, b) => {
                walk(a, add);
                walk(b, add);
            }
            Expr::Bin(op @ (Lt | Le | Gt | Ge), a, b) => {
                // `var.key OP bound`
                if let (Expr::Prop(base, key), rhs) = (&**a, &**b) {
                    if let Expr::Var(v) = &**base {
                        if matches!(rhs, Expr::Lit(_) | Expr::Param(_)) {
                            let (lo, hi) = match op {
                                Lt => (None, Some((rhs.clone(), false))),
                                Le => (None, Some((rhs.clone(), true))),
                                Gt => (Some((rhs.clone(), false)), None),
                                Ge => (Some((rhs.clone(), true)), None),
                                _ => unreachable!(),
                            };
                            add(v.clone(), key.clone(), lo, hi);
                        }
                    }
                }
                // `bound OP var.key` (operator flips)
                if let (lhs, Expr::Prop(base, key)) = (&**a, &**b) {
                    if let Expr::Var(v) = &**base {
                        if matches!(lhs, Expr::Lit(_) | Expr::Param(_)) {
                            let (lo, hi) = match op {
                                Lt => (Some((lhs.clone(), false)), None),
                                Le => (Some((lhs.clone(), true)), None),
                                Gt => (None, Some((lhs.clone(), false))),
                                Ge => (None, Some((lhs.clone(), true))),
                                _ => unreachable!(),
                            };
                            add(v.clone(), key.clone(), lo, hi);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    walk(expr, &mut add);
    out
}

fn collect_eq(expr: &Expr, out: &mut Vec<(String, String, Expr)>) {
    use crate::ast::BinOp;
    match expr {
        Expr::Bin(BinOp::And, a, b) => {
            collect_eq(a, out);
            collect_eq(b, out);
        }
        Expr::Bin(BinOp::Eq, a, b) => {
            if let (Expr::Prop(base, key), rhs) = (&**a, &**b) {
                if let Expr::Var(v) = &**base {
                    if is_seekable(rhs) {
                        out.push((v.clone(), key.clone(), rhs.clone()));
                    }
                }
            }
            if let (lhs, Expr::Prop(base, key)) = (&**a, &**b) {
                if let Expr::Var(v) = &**base {
                    if is_seekable(lhs) {
                        out.push((v.clone(), key.clone(), lhs.clone()));
                    }
                }
            }
        }
        _ => {}
    }
}

/// Appends the variables a pattern part binds (nodes, rels, path).
pub fn collect_part_vars(part: &PatternPart, out: &mut Vec<String>) {
    let mut push = |v: &Option<String>| {
        if let Some(v) = v {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
    };
    push(&part.path_var);
    push(&part.start.var);
    for (rel, node) in &part.hops {
        push(&rel.var);
        push(&node.var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use iyp_graphdb::{props, Props};

    fn graph_with_index() -> Graph {
        let mut g = Graph::new();
        for asn in 1..=50i64 {
            g.add_node(["AS"], props!("asn" => asn));
        }
        g.add_node(["Country"], props!("country_code" => "JP"));
        g.create_index("AS", "asn");
        g
    }

    fn first_match(src: &str) -> MatchClause {
        match parse(src).unwrap().clauses.into_iter().next().unwrap() {
            crate::ast::Clause::Match(m) => m,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inline_prop_uses_index() {
        let g = graph_with_index();
        let m = first_match("MATCH (a:AS {asn: 7}) RETURN a");
        let mut bound = Vec::new();
        let plans = plan_match(&g, &m, &mut bound);
        assert!(matches!(plans[0].anchor, Anchor::IndexSeek { .. }));
        assert_eq!(bound, vec!["a"]);
    }

    #[test]
    fn where_equality_uses_index() {
        let g = graph_with_index();
        let m = first_match("MATCH (a:AS) WHERE a.asn = 7 RETURN a");
        let plans = plan_match(&g, &m, &mut Vec::new());
        assert!(matches!(plans[0].anchor, Anchor::IndexSeek { .. }));
    }

    #[test]
    fn reversal_picks_cheaper_end() {
        let g = graph_with_index();
        // Start node is unlabeled (expensive), end is indexed: reverse.
        let m = first_match("MATCH (x)-[:COUNTRY]->(a:AS {asn: 7}) RETURN x");
        let plans = plan_match(&g, &m, &mut Vec::new());
        assert!(plans[0].reversed);
        assert!(matches!(plans[0].anchor, Anchor::IndexSeek { .. }));
        // The reversed step's direction flips.
        assert_eq!(plans[0].steps[0].0.dir, RelDir::Left);
    }

    #[test]
    fn bound_variable_beats_index() {
        let g = graph_with_index();
        let m = first_match("MATCH (a:AS {asn: 7}) RETURN a");
        let plans = plan_match(&g, &m, &mut vec!["a".to_string()]);
        assert!(matches!(&plans[0].anchor, Anchor::Bound(v) if v == "a"));
    }

    #[test]
    fn label_scan_fallback() {
        let g = graph_with_index();
        let m = first_match("MATCH (c:Country) RETURN c");
        let plans = plan_match(&g, &m, &mut Vec::new());
        assert!(matches!(&plans[0].anchor, Anchor::LabelScan(l) if l == "Country"));
    }

    #[test]
    fn all_nodes_last_resort() {
        let g = Graph::new();
        let m = first_match("MATCH (n) RETURN n");
        let plans = plan_match(&g, &m, &mut Vec::new());
        assert_eq!(plans[0].anchor, Anchor::AllNodes);
    }

    #[test]
    fn later_part_anchors_on_earlier_binding() {
        let mut g = graph_with_index();
        let c = g.nodes_with_label("Country").next().unwrap();
        let a = g.nodes_with_label("AS").next().unwrap();
        g.add_rel(a, "COUNTRY", c, Props::new()).unwrap();
        let m = first_match("MATCH (a:AS {asn: 1}), (a)-[:COUNTRY]->(c) RETURN c");
        let plans = plan_match(&g, &m, &mut Vec::new());
        assert!(matches!(&plans[1].anchor, Anchor::Bound(v) if v == "a"));
    }
}
