//! Compile-once, execute-many: lowering parsed queries to a slot-resolved
//! form executed without per-row string work.
//!
//! [`compile_expr`] lowers an AST [`Expr`] to a [`CompiledExpr`]: variable
//! names become row-slot indices resolved once against the environment,
//! literal subtrees are constant-folded (only when pure evaluation
//! succeeds, so lazily-reached runtime errors stay lazy), and evaluation
//! ([`CEvalCtx`]) mirrors the interpreted evaluator exactly — same values,
//! same error messages, same short-circuiting.
//!
//! [`compile_query`] lowers a whole parsed query to a [`CompiledQuery`]:
//! one compiled operator per clause, aligned with the interpreter's
//! pipeline, produced by simulating the environment the executor will
//! build (environment evolution is a pure function of the AST). Anything
//! the compiler cannot express — `exists(pattern)` predicates, write
//! clauses, projections the interpreter rejects — returns `None` and the
//! executor falls back to the interpreted pipeline, so compilation is
//! strictly a performance layer, never a semantics change.

use crate::ast::{
    is_aggregate_fn, BinOp, Clause, Expr, MatchClause, ProjectionClause, ProjectionItem, Query,
    UnOp,
};
use crate::error::CypherError;
use crate::eval::{self, Entry, Env, Params, Row};
use crate::exec::union::split_segments;
use iyp_graphdb::{Graph, Value};
use std::collections::BTreeMap;

/// Marker for an expression or clause the compiler cannot lower; the
/// whole query falls back to the interpreted pipeline.
pub(crate) struct Unsupported;

/// A compiled expression: variables resolved to row slots, constants
/// folded. Produced by [`compile_expr`], evaluated by [`CEvalCtx`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledExpr(pub(crate) CExpr);

/// The compiled expression tree. Kept crate-private so the public surface
/// stays `compile → eval`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CExpr {
    /// A constant (literal or successfully folded subtree).
    Const(Value),
    /// Environment variable resolved to a row slot.
    Slot(usize),
    /// Comprehension-bound variable resolved to a locals-stack index.
    Local(usize),
    /// A variable not bound anywhere at compile time; errors at eval with
    /// the interpreter's message.
    Unbound(String),
    Param(String),
    Prop(Box<CExpr>, String),
    Index(Box<CExpr>, Box<CExpr>),
    Slice(Box<CExpr>, Option<Box<CExpr>>, Option<Box<CExpr>>),
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    Not(Box<CExpr>),
    Neg(Box<CExpr>),
    IsNull(Box<CExpr>, bool),
    ExistsProp(Box<CExpr>, String),
    /// Non-aggregate function call.
    Call {
        name: String,
        args: Vec<CExpr>,
    },
    /// Aggregate call outside a projection rewrite: always errors at eval
    /// with the interpreter's message.
    AggErr(String),
    Star,
    List(Vec<CExpr>),
    Map(Vec<(String, CExpr)>),
    Case {
        operand: Option<Box<CExpr>>,
        arms: Vec<(CExpr, CExpr)>,
        default: Option<Box<CExpr>>,
    },
    ListComp {
        list: Box<CExpr>,
        pred: Option<Box<CExpr>>,
        map: Option<Box<CExpr>>,
    },
}

/// Compiles `expr` against the environment, resolving variable names to
/// row slots and folding constant subtrees. Returns `None` when the
/// expression contains a construct the compiler cannot lower
/// (`exists(pattern)`); callers then use the interpreted evaluator.
pub fn compile_expr(env: &Env, expr: &Expr) -> Option<CompiledExpr> {
    let mut locals = Vec::new();
    compile_scoped(&env.names, &mut locals, expr)
        .ok()
        .map(CompiledExpr)
}

pub(crate) fn compile_scoped(
    env: &[String],
    locals: &mut Vec<String>,
    expr: &Expr,
) -> Result<CExpr, Unsupported> {
    let out = match expr {
        Expr::Lit(v) => CExpr::Const(v.clone()),
        Expr::Var(name) => match locals.iter().rposition(|n| n == name) {
            Some(i) => CExpr::Local(i),
            None => match env.iter().position(|n| n == name) {
                Some(i) => CExpr::Slot(i),
                None => CExpr::Unbound(name.clone()),
            },
        },
        Expr::Param(name) => CExpr::Param(name.clone()),
        Expr::Prop(base, key) => fold_prop(compile_scoped(env, locals, base)?, key.clone()),
        Expr::Index(base, idx) => {
            let base = compile_scoped(env, locals, base)?;
            let idx = compile_scoped(env, locals, idx)?;
            match (&base, &idx) {
                (CExpr::Const(b), CExpr::Const(i)) => CExpr::Const(eval::index_value(b, i)),
                _ => CExpr::Index(Box::new(base), Box::new(idx)),
            }
        }
        Expr::Slice(base, lo, hi) => {
            let base = compile_scoped(env, locals, base)?;
            let lo = opt_compile(env, locals, lo.as_deref())?;
            let hi = opt_compile(env, locals, hi.as_deref())?;
            match (&base, &lo, &hi) {
                (CExpr::Const(b), lo, hi) if all_const(lo) && all_const(hi) => {
                    CExpr::Const(eval::slice_value(b, const_of(lo), const_of(hi)))
                }
                _ => CExpr::Slice(Box::new(base), lo.map(Box::new), hi.map(Box::new)),
            }
        }
        Expr::Bin(op, a, b) => {
            let a = compile_scoped(env, locals, a)?;
            let b = compile_scoped(env, locals, b)?;
            fold_bin(*op, a, b)
        }
        Expr::Un(UnOp::Not, a) => {
            let a = compile_scoped(env, locals, a)?;
            match &a {
                CExpr::Const(v) => match not_value(v) {
                    Ok(out) => CExpr::Const(out),
                    Err(_) => CExpr::Not(Box::new(a)),
                },
                _ => CExpr::Not(Box::new(a)),
            }
        }
        Expr::Un(UnOp::Neg, a) => {
            let a = compile_scoped(env, locals, a)?;
            match &a {
                CExpr::Const(v) => match v.neg() {
                    Ok(out) => CExpr::Const(out),
                    Err(_) => CExpr::Neg(Box::new(a)),
                },
                _ => CExpr::Neg(Box::new(a)),
            }
        }
        Expr::IsNull(a, negated) => {
            let a = compile_scoped(env, locals, a)?;
            match &a {
                CExpr::Const(v) => CExpr::Const(Value::Bool(v.is_null() != *negated)),
                _ => CExpr::IsNull(Box::new(a), *negated),
            }
        }
        Expr::ExistsProp(base, key) => {
            let base = compile_scoped(env, locals, base)?;
            match &base {
                CExpr::Const(v) => CExpr::Const(Value::Bool(!const_get_prop(v, key).is_null())),
                _ => CExpr::ExistsProp(Box::new(base), key.clone()),
            }
        }
        Expr::ExistsPattern(_) => return Err(Unsupported),
        Expr::Call { name, args, .. } => {
            if is_aggregate_fn(name) {
                // Aggregates outside projection rewrites error at runtime
                // in the interpreter; preserve that exactly.
                CExpr::AggErr(name.clone())
            } else {
                // Function results may depend on the graph; never folded.
                let args = args
                    .iter()
                    .map(|a| compile_scoped(env, locals, a))
                    .collect::<Result<Vec<_>, _>>()?;
                CExpr::Call {
                    name: name.clone(),
                    args,
                }
            }
        }
        Expr::Star => CExpr::Star,
        Expr::List(items) => {
            let items = items
                .iter()
                .map(|e| compile_scoped(env, locals, e))
                .collect::<Result<Vec<_>, _>>()?;
            if items.iter().all(|e| matches!(e, CExpr::Const(_))) {
                CExpr::Const(Value::List(items.into_iter().map(unwrap_const).collect()))
            } else {
                CExpr::List(items)
            }
        }
        Expr::Map(items) => {
            let items = items
                .iter()
                .map(|(k, e)| Ok((k.clone(), compile_scoped(env, locals, e)?)))
                .collect::<Result<Vec<_>, Unsupported>>()?;
            if items.iter().all(|(_, e)| matches!(e, CExpr::Const(_))) {
                CExpr::Const(Value::Map(
                    items
                        .into_iter()
                        .map(|(k, e)| (k, unwrap_const(e)))
                        .collect(),
                ))
            } else {
                CExpr::Map(items)
            }
        }
        Expr::Case {
            operand,
            arms,
            default,
        } => CExpr::Case {
            operand: opt_compile(env, locals, operand.as_deref())?.map(Box::new),
            arms: arms
                .iter()
                .map(|(w, t)| {
                    Ok((
                        compile_scoped(env, locals, w)?,
                        compile_scoped(env, locals, t)?,
                    ))
                })
                .collect::<Result<Vec<_>, Unsupported>>()?,
            default: opt_compile(env, locals, default.as_deref())?.map(Box::new),
        },
        Expr::ListComp {
            var,
            list,
            pred,
            map,
        } => {
            let list = compile_scoped(env, locals, list)?;
            locals.push(var.clone());
            let inner = (|| {
                Ok((
                    opt_compile(env, locals, pred.as_deref())?,
                    opt_compile(env, locals, map.as_deref())?,
                ))
            })();
            locals.pop();
            let (pred, map) = inner?;
            CExpr::ListComp {
                list: Box::new(list),
                pred: pred.map(Box::new),
                map: map.map(Box::new),
            }
        }
    };
    Ok(out)
}

fn opt_compile(
    env: &[String],
    locals: &mut Vec<String>,
    e: Option<&Expr>,
) -> Result<Option<CExpr>, Unsupported> {
    e.map(|e| compile_scoped(env, locals, e)).transpose()
}

fn all_const(e: &Option<CExpr>) -> bool {
    matches!(e, None | Some(CExpr::Const(_)))
}

fn const_of(e: &Option<CExpr>) -> Option<&Value> {
    match e {
        Some(CExpr::Const(v)) => Some(v),
        _ => None,
    }
}

fn unwrap_const(e: CExpr) -> Value {
    match e {
        CExpr::Const(v) => v,
        _ => unreachable!("caller checked all children are const"),
    }
}

/// Property access on a plain value (the constant-folding subset of
/// [`Entry::get_prop`]: maps resolve, everything else is null).
fn const_get_prop(v: &Value, key: &str) -> Value {
    match v {
        Value::Map(m) => m.get(key).cloned().unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

fn fold_prop(base: CExpr, key: String) -> CExpr {
    match &base {
        CExpr::Const(v) => CExpr::Const(const_get_prop(v, &key)),
        _ => CExpr::Prop(Box::new(base), key),
    }
}

/// `NOT` on a value; same table and error as the interpreter.
fn not_value(v: &Value) -> Result<Value, CypherError> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Bool(b) => Ok(Value::Bool(!b)),
        other => Err(CypherError::runtime(format!(
            "NOT expects a boolean, got {}",
            other.type_name()
        ))),
    }
}

/// Binary operation over two already-evaluated values — the shared
/// semantics behind both the compiled runtime and constant folding.
/// `And`/`Or` short-circuiting does not change the result once both
/// operands are known, so the full truth table applies here.
pub(crate) fn bin_values(op: BinOp, lhs: Value, rhs: Value) -> Result<Value, CypherError> {
    let out = match op {
        BinOp::And => match (lhs, rhs) {
            (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
            (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinOp::Or => match (lhs, rhs) {
            (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
            (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        BinOp::Xor => match (lhs, rhs) {
            (Value::Bool(x), Value::Bool(y)) => Value::Bool(x != y),
            _ => Value::Null,
        },
        BinOp::Add => lhs.add(&rhs)?,
        BinOp::Sub => lhs.sub(&rhs)?,
        BinOp::Mul => lhs.mul(&rhs)?,
        BinOp::Div => lhs.div(&rhs)?,
        BinOp::Mod => lhs.rem(&rhs)?,
        BinOp::Pow => match (lhs.as_f64(), rhs.as_f64()) {
            (Some(x), Some(y)) => Value::Float(x.powf(y)),
            _ => Value::Null,
        },
        BinOp::Eq => eval::tri(lhs.cypher_eq(&rhs)),
        BinOp::Neq => eval::tri(lhs.cypher_eq(&rhs).map(|b| !b)),
        BinOp::Lt => eval::tri(lhs.cypher_cmp(&rhs).map(|o| o == std::cmp::Ordering::Less)),
        BinOp::Le => eval::tri(
            lhs.cypher_cmp(&rhs)
                .map(|o| o != std::cmp::Ordering::Greater),
        ),
        BinOp::Gt => eval::tri(
            lhs.cypher_cmp(&rhs)
                .map(|o| o == std::cmp::Ordering::Greater),
        ),
        BinOp::Ge => eval::tri(lhs.cypher_cmp(&rhs).map(|o| o != std::cmp::Ordering::Less)),
        BinOp::In => match (&lhs, &rhs) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (x, Value::List(items)) => {
                let mut saw_null = false;
                let mut found = false;
                for item in items {
                    match x.cypher_eq(item) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if found {
                    Value::Bool(true)
                } else if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                }
            }
            _ => {
                return Err(CypherError::runtime(format!(
                    "IN expects a list on the right, got {}",
                    rhs.type_name()
                )))
            }
        },
        BinOp::StartsWith => eval::str_pred(&lhs, &rhs, |s, p| s.starts_with(p)),
        BinOp::EndsWith => eval::str_pred(&lhs, &rhs, |s, p| s.ends_with(p)),
        BinOp::Contains => eval::str_pred(&lhs, &rhs, |s, p| s.contains(p)),
        BinOp::RegexMatch => eval::str_pred(&lhs, &rhs, eval::wildcard_match),
    };
    Ok(out)
}

fn fold_bin(op: BinOp, a: CExpr, b: CExpr) -> CExpr {
    if let (CExpr::Const(x), CExpr::Const(y)) = (&a, &b) {
        // Fold only when pure evaluation succeeds; an erroring constant
        // subtree stays a tree so lazily-unreached errors never surface
        // (e.g. `false AND (1 + 'a')`).
        if let Ok(v) = bin_values(op, x.clone(), y.clone()) {
            return CExpr::Const(v);
        }
    }
    CExpr::Bin(op, Box::new(a), Box::new(b))
}

/// Evaluation context for compiled expressions: only the graph and the
/// parameters — variables come pre-resolved as slots.
pub struct CEvalCtx<'a> {
    /// The graph being queried.
    pub graph: &'a Graph,
    /// Query parameters.
    pub params: &'a Params,
}

impl<'a> CEvalCtx<'a> {
    /// Evaluates a compiled expression against `row`, producing an entry.
    /// Mirrors the interpreted evaluator bit-for-bit, including error
    /// messages.
    pub fn eval(&self, expr: &CompiledExpr, row: &Row) -> Result<Entry, CypherError> {
        let mut locals = Vec::new();
        self.eval_inner(&expr.0, row, &mut locals)
    }

    /// Evaluates to a plain `Value`.
    pub fn eval_value(&self, expr: &CompiledExpr, row: &Row) -> Result<Value, CypherError> {
        Ok(self.eval(expr, row)?.to_value(self.graph))
    }

    pub(crate) fn eval_c(&self, expr: &CExpr, row: &Row) -> Result<Entry, CypherError> {
        let mut locals = Vec::new();
        self.eval_inner(expr, row, &mut locals)
    }

    pub(crate) fn eval_c_value(&self, expr: &CExpr, row: &Row) -> Result<Value, CypherError> {
        Ok(self.eval_c(expr, row)?.to_value(self.graph))
    }

    fn eval_inner(
        &self,
        expr: &CExpr,
        row: &Row,
        locals: &mut Vec<Entry>,
    ) -> Result<Entry, CypherError> {
        match expr {
            CExpr::Const(v) => Ok(Entry::Val(v.clone())),
            // Same indexing (and the same panic on a short row) as the
            // interpreter's `row[slot]` lookup.
            CExpr::Slot(i) => Ok(row[*i].clone()),
            CExpr::Local(i) => Ok(locals[*i].clone()),
            CExpr::Unbound(name) => Err(CypherError::runtime(format!(
                "variable '{name}' is not defined"
            ))),
            CExpr::Param(name) => {
                Ok(Entry::Val(self.params.get(name).cloned().ok_or_else(
                    || CypherError::runtime(format!("missing parameter '${name}'")),
                )?))
            }
            CExpr::Prop(base, key) => {
                let base = self.eval_inner(base, row, locals)?;
                Ok(Entry::Val(base.get_prop(self.graph, key)))
            }
            CExpr::Index(base, idx) => {
                let base = self.eval_inner(base, row, locals)?.to_value(self.graph);
                let idx = self.eval_inner(idx, row, locals)?.to_value(self.graph);
                Ok(Entry::Val(eval::index_value(&base, &idx)))
            }
            CExpr::Slice(base, lo, hi) => {
                let base = self.eval_inner(base, row, locals)?.to_value(self.graph);
                let lo = match lo {
                    Some(e) => Some(self.eval_inner(e, row, locals)?.to_value(self.graph)),
                    None => None,
                };
                let hi = match hi {
                    Some(e) => Some(self.eval_inner(e, row, locals)?.to_value(self.graph)),
                    None => None,
                };
                Ok(Entry::Val(eval::slice_value(
                    &base,
                    lo.as_ref(),
                    hi.as_ref(),
                )))
            }
            CExpr::Bin(op, a, b) => {
                // Short-circuit logical operators (three-valued logic).
                match op {
                    BinOp::And => {
                        let lhs = self.eval_inner(a, row, locals)?.to_value(self.graph);
                        if lhs == Value::Bool(false) {
                            return Ok(Entry::Val(Value::Bool(false)));
                        }
                        let rhs = self.eval_inner(b, row, locals)?.to_value(self.graph);
                        return Ok(Entry::Val(bin_values(BinOp::And, lhs, rhs)?));
                    }
                    BinOp::Or => {
                        let lhs = self.eval_inner(a, row, locals)?.to_value(self.graph);
                        if lhs == Value::Bool(true) {
                            return Ok(Entry::Val(Value::Bool(true)));
                        }
                        let rhs = self.eval_inner(b, row, locals)?.to_value(self.graph);
                        return Ok(Entry::Val(bin_values(BinOp::Or, lhs, rhs)?));
                    }
                    _ => {}
                }
                let lhs = self.eval_inner(a, row, locals)?.to_value(self.graph);
                let rhs = self.eval_inner(b, row, locals)?.to_value(self.graph);
                Ok(Entry::Val(bin_values(*op, lhs, rhs)?))
            }
            CExpr::Not(a) => {
                let v = self.eval_inner(a, row, locals)?.to_value(self.graph);
                Ok(Entry::Val(not_value(&v)?))
            }
            CExpr::Neg(a) => {
                let v = self.eval_inner(a, row, locals)?.to_value(self.graph);
                Ok(Entry::Val(v.neg()?))
            }
            CExpr::IsNull(a, negated) => {
                let v = self.eval_inner(a, row, locals)?;
                Ok(Entry::Val(Value::Bool(v.is_null() != *negated)))
            }
            CExpr::ExistsProp(base, key) => {
                let base = self.eval_inner(base, row, locals)?;
                Ok(Entry::Val(Value::Bool(
                    !base.get_prop(self.graph, key).is_null(),
                )))
            }
            CExpr::Call { name, args } => {
                let mut arg_entries = Vec::with_capacity(args.len());
                for a in args {
                    arg_entries.push(self.eval_inner(a, row, locals)?);
                }
                crate::functions::call_function(self.graph, name, &arg_entries).map(Entry::Val)
            }
            CExpr::AggErr(name) => Err(CypherError::runtime(format!(
                "aggregate function {name}() is only allowed in WITH/RETURN projections"
            ))),
            CExpr::Star => Err(CypherError::runtime("'*' is only valid inside count()")),
            CExpr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval_inner(e, row, locals)?.to_value(self.graph));
                }
                Ok(Entry::Val(Value::List(out)))
            }
            CExpr::Map(items) => {
                let mut out = BTreeMap::new();
                for (k, e) in items {
                    out.insert(
                        k.clone(),
                        self.eval_inner(e, row, locals)?.to_value(self.graph),
                    );
                }
                Ok(Entry::Val(Value::Map(out)))
            }
            CExpr::Case {
                operand,
                arms,
                default,
            } => {
                let operand_val = match operand {
                    Some(e) => Some(self.eval_inner(e, row, locals)?.to_value(self.graph)),
                    None => None,
                };
                for (when, then) in arms {
                    let matched = match &operand_val {
                        Some(op) => {
                            let w = self.eval_inner(when, row, locals)?.to_value(self.graph);
                            op.cypher_eq(&w) == Some(true)
                        }
                        None => self
                            .eval_inner(when, row, locals)?
                            .to_value(self.graph)
                            .is_true(),
                    };
                    if matched {
                        return self.eval_inner(then, row, locals);
                    }
                }
                match default {
                    Some(e) => self.eval_inner(e, row, locals),
                    None => Ok(Entry::Val(Value::Null)),
                }
            }
            CExpr::ListComp { list, pred, map } => {
                let list = self.eval_inner(list, row, locals)?.to_value(self.graph);
                let Value::List(items) = list else {
                    if list.is_null() {
                        return Ok(Entry::Val(Value::Null));
                    }
                    return Err(CypherError::runtime(
                        "list comprehension expects a list".to_string(),
                    ));
                };
                let mut out = Vec::new();
                for item in items {
                    locals.push(Entry::Val(item.clone()));
                    let keep = match pred {
                        Some(p) => self
                            .eval_inner(p, row, locals)?
                            .to_value(self.graph)
                            .is_true(),
                        None => true,
                    };
                    if keep {
                        let mapped = match map {
                            Some(m) => self.eval_inner(m, row, locals)?.to_value(self.graph),
                            None => item,
                        };
                        out.push(mapped);
                    }
                    locals.pop();
                }
                Ok(Entry::Val(Value::List(out)))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-query compilation
// ---------------------------------------------------------------------------

/// A query compiled for repeated execution: one compiled operator per
/// clause, aligned with the interpreted pipeline's segments. Produced by
/// [`compile_query`], executed by the executor when
/// [`crate::ExecLimits::compiled`] is set (the default), cached alongside
/// the parsed AST by [`crate::PlanCache`].
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    pub(crate) segments: Vec<CompiledSegment>,
}

/// One UNION segment's compiled operators, 1:1 with its clauses.
#[derive(Debug, Clone)]
pub(crate) struct CompiledSegment {
    pub ops: Vec<CompiledOp>,
}

/// One clause, compiled.
#[derive(Debug, Clone)]
pub(crate) enum CompiledOp {
    Match(CMatch),
    Unwind(CUnwind),
    Project(CProject),
    Return(CProject),
}

/// A compiled `MATCH`: the clause is kept for apply-time planning (anchor
/// scoring must see the live graph) while the `WHERE` predicate and all
/// pattern property expressions are pre-validated compilable; pattern
/// plans are lowered to symbol/slot form once per apply, never per row.
#[derive(Debug, Clone)]
pub(crate) struct CMatch {
    pub clause: MatchClause,
    /// Environment expected before this clause runs (defensive check).
    pub env_before: Vec<String>,
    /// `WHERE`, compiled against the extended environment.
    pub where_c: Option<CExpr>,
}

/// A compiled `UNWIND`.
#[derive(Debug, Clone)]
pub(crate) struct CUnwind {
    pub ast: Expr,
    pub var: String,
    pub env_before: Vec<String>,
    pub expr_c: CExpr,
}

/// One compiled aggregate call instance.
#[derive(Debug, Clone)]
pub(crate) struct CAggSpec {
    pub name: String,
    pub distinct: bool,
    /// `None` = `count(*)`; compiled against the pre-projection env.
    pub arg: Option<CExpr>,
    /// percentileCont's p, compiled against the pre-projection env.
    pub extra: Option<CExpr>,
}

/// A compiled `WITH` / `RETURN` projection: every expression the
/// interpreter evaluates — items (aggregate-rewritten), grouping keys,
/// aggregate arguments, `WHERE`, `ORDER BY`, `SKIP`/`LIMIT` — compiled
/// once against the environment it runs in.
#[derive(Debug, Clone)]
pub(crate) struct CProject {
    pub ast: ProjectionClause,
    pub env_before: Vec<String>,
    /// False when a `RETURN` is not the final clause (errors at apply).
    pub is_last: bool,
    pub out_names: Vec<String>,
    /// Item expressions with aggregates rewritten to `__aggN` slots,
    /// compiled against `env + __aggN`.
    pub rewritten: Vec<CExpr>,
    /// Grouping keys (non-aggregate items), compiled against env.
    pub keys_c: Vec<CExpr>,
    pub specs: Vec<CAggSpec>,
    /// Take the aggregation path (mirrors `has_agg || !specs.is_empty()`).
    pub use_agg: bool,
    pub distinct: bool,
    /// `WITH ... WHERE`, compiled against the post-projection env.
    pub where_c: Option<CExpr>,
    /// `ORDER BY` keys (compiled against post env) and ascending flags.
    pub order_c: Vec<(CExpr, bool)>,
    /// `SKIP`/`LIMIT`, compiled against the pre-projection env
    /// (evaluated row-free, exactly like the interpreter).
    pub skip_c: Option<CExpr>,
    pub limit_c: Option<CExpr>,
    /// Post-projection appended indices into the evaluation row.
    pub appended: Vec<usize>,
    /// Pre-projection environment width (zero-row aggregation null row).
    pub env_len: usize,
}

/// Compiles a parsed query into a [`CompiledQuery`], or `None` when any
/// clause is outside the compiler's subset (write clauses,
/// `exists(pattern)`, projections the interpreter rejects at plan time).
/// `None` is not an error: the executor falls back to the interpreted
/// pipeline with identical semantics.
pub fn compile_query(q: &Query) -> Option<CompiledQuery> {
    let t0 = std::time::Instant::now();
    let out = compile_query_inner(q);
    COMPILE_NS.with(|c| c.set(c.get().wrapping_add(t0.elapsed().as_nanos() as u64)));
    out
}

thread_local! {
    static COMPILE_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The current thread's monotonic total of nanoseconds spent in
/// [`compile_query`]. Stage timers measure compilation by taking a delta
/// around a prepare call — the same before/after idiom as
/// [`crate::plan::plan_time_ns`].
pub fn compile_time_ns() -> u64 {
    COMPILE_NS.with(|c| c.get())
}

fn compile_query_inner(q: &Query) -> Option<CompiledQuery> {
    let mut segments = Vec::new();
    for (clauses, _) in split_segments(q) {
        let mut ops = Vec::new();
        // Simulated environment: evolution is a pure function of the AST,
        // mirroring the executor's env step for step.
        let mut env: Vec<String> = Vec::new();
        for (i, clause) in clauses.iter().enumerate() {
            let is_last = i + 1 == clauses.len();
            let op = match clause {
                Clause::Match(m) => CompiledOp::Match(compile_match(&env, m).ok()?),
                Clause::Unwind { expr, var } => {
                    let expr_c = compile_scoped(&env, &mut Vec::new(), expr).ok()?;
                    let op = CUnwind {
                        ast: expr.clone(),
                        var: var.clone(),
                        env_before: env.clone(),
                        expr_c,
                    };
                    env.push(var.clone());
                    CompiledOp::Unwind(op)
                }
                Clause::With(p) => CompiledOp::Project(compile_project(&mut env, p, true).ok()?),
                Clause::Return(p) => {
                    CompiledOp::Return(compile_project(&mut env, p, is_last).ok()?)
                }
                // Write clauses and stray UNION separators: interpreted.
                _ => return None,
            };
            if let CompiledOp::Match(m) = &op {
                // Mirror the executor's env extension.
                for part in &m.clause.patterns {
                    let mut vars = Vec::new();
                    crate::plan::collect_part_vars(part, &mut vars);
                    for v in vars {
                        if !env.contains(&v) {
                            env.push(v);
                        }
                    }
                }
            }
            ops.push(op);
        }
        segments.push(CompiledSegment { ops });
    }
    Some(CompiledQuery { segments })
}

fn compile_match(env: &[String], m: &MatchClause) -> Result<CMatch, Unsupported> {
    // Simulate the extended environment this clause binds.
    let mut ext: Vec<String> = env.to_vec();
    for part in &m.patterns {
        let mut vars = Vec::new();
        crate::plan::collect_part_vars(part, &mut vars);
        for v in vars {
            if !ext.contains(&v) {
                ext.push(v);
            }
        }
    }
    // Pre-validate every pattern property expression so per-apply plan
    // lowering cannot fail. (Anchor seek expressions are either inline
    // props — covered here — or literal/param conjuncts of WHERE.)
    for part in &m.patterns {
        for (_, e) in &part.start.props {
            compile_scoped(&ext, &mut Vec::new(), e)?;
        }
        for (rel, node) in &part.hops {
            for (_, e) in &rel.props {
                compile_scoped(&ext, &mut Vec::new(), e)?;
            }
            for (_, e) in &node.props {
                compile_scoped(&ext, &mut Vec::new(), e)?;
            }
        }
    }
    let where_c = match &m.where_clause {
        Some(w) => Some(compile_scoped(&ext, &mut Vec::new(), w)?),
        None => None,
    };
    Ok(CMatch {
        clause: m.clone(),
        env_before: env.to_vec(),
        where_c,
    })
}

fn compile_project(
    env: &mut Vec<String>,
    p: &ProjectionClause,
    is_last: bool,
) -> Result<CProject, Unsupported> {
    // Mirror `project()`: expand `*`, reject empty projections (fallback —
    // the interpreter raises the plan error).
    let mut items: Vec<ProjectionItem> = Vec::new();
    if p.star {
        for name in env.iter() {
            items.push(ProjectionItem {
                expr: Expr::Var(name.clone()),
                alias: Some(name.clone()),
            });
        }
    }
    items.extend(p.items.iter().cloned());
    if items.is_empty() {
        return Err(Unsupported);
    }

    let has_agg = items.iter().any(|it| it.expr.contains_aggregate())
        || p.order_by.iter().any(|k| k.expr.contains_aggregate());

    let mut specs_ast: Vec<crate::exec::aggregate::AggSpec> = Vec::new();
    let rewritten_ast: Vec<Expr> = items
        .iter()
        .map(|it| crate::exec::aggregate::extract_aggs(&it.expr, &mut specs_ast))
        .collect();
    let order_rewritten_ast: Vec<Expr> = p
        .order_by
        .iter()
        .map(|k| crate::exec::aggregate::extract_aggs(&k.expr, &mut specs_ast))
        .collect();

    let out_names: Vec<String> = items.iter().map(|it| it.name()).collect();

    let mut eval_env: Vec<String> = env.clone();
    for i in 0..specs_ast.len() {
        eval_env.push(format!("__agg{i}"));
    }

    let rewritten = rewritten_ast
        .iter()
        .map(|e| compile_scoped(&eval_env, &mut Vec::new(), e))
        .collect::<Result<Vec<_>, _>>()?;

    let keys_c = items
        .iter()
        .filter(|it| !it.expr.contains_aggregate())
        .map(|it| compile_scoped(env, &mut Vec::new(), &it.expr))
        .collect::<Result<Vec<_>, _>>()?;

    let specs = specs_ast
        .iter()
        .map(|s| {
            Ok(CAggSpec {
                name: s.name.clone(),
                distinct: s.distinct,
                arg: s
                    .arg
                    .as_ref()
                    .map(|e| compile_scoped(env, &mut Vec::new(), e))
                    .transpose()?,
                extra: s
                    .extra
                    .as_ref()
                    .map(|e| compile_scoped(env, &mut Vec::new(), e))
                    .transpose()?,
            })
        })
        .collect::<Result<Vec<_>, Unsupported>>()?;

    // Post-projection environment: projected names, then non-shadowed
    // evaluation-context names.
    let appended: Vec<usize> = eval_env
        .iter()
        .enumerate()
        .filter(|(_, n)| !out_names.contains(n))
        .map(|(i, _)| i)
        .collect();
    let mut post_names = out_names.clone();
    for &i in &appended {
        post_names.push(eval_env[i].clone());
    }

    let where_c = match &p.where_clause {
        Some(w) => {
            let mut w_specs = Vec::new();
            let w_re = crate::exec::aggregate::extract_aggs(w, &mut w_specs);
            if !w_specs.is_empty() {
                // Interpreter raises "aggregate functions are not allowed
                // in WITH ... WHERE"; fall back so it does.
                return Err(Unsupported);
            }
            Some(compile_scoped(&post_names, &mut Vec::new(), &w_re)?)
        }
        None => None,
    };

    let order_c = order_rewritten_ast
        .iter()
        .zip(p.order_by.iter())
        .map(|(e, k)| {
            Ok((
                compile_scoped(&post_names, &mut Vec::new(), e)?,
                k.ascending,
            ))
        })
        .collect::<Result<Vec<_>, Unsupported>>()?;

    let skip_c = p
        .skip
        .as_ref()
        .map(|e| compile_scoped(env, &mut Vec::new(), e))
        .transpose()?;
    let limit_c = p
        .limit
        .as_ref()
        .map(|e| compile_scoped(env, &mut Vec::new(), e))
        .transpose()?;

    let out = CProject {
        ast: p.clone(),
        env_before: env.clone(),
        is_last,
        out_names: out_names.clone(),
        rewritten,
        keys_c,
        specs,
        use_agg: has_agg || !specs_ast.is_empty(),
        distinct: p.distinct,
        where_c,
        order_c,
        skip_c,
        limit_c,
        appended,
        env_len: env.len(),
    };
    *env = out_names;
    Ok(out)
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledQuery>();
    assert_send_sync::<CompiledExpr>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalCtx;
    use crate::parser::parse_expression;

    fn both(src: &str) -> (Result<Value, CypherError>, Result<Value, CypherError>) {
        let graph = Graph::new();
        let env = Env::new();
        let params = Params::new();
        let e = parse_expression(src).unwrap();
        let interp = EvalCtx {
            graph: &graph,
            env: &env,
            params: &params,
        }
        .eval_value(&e, &Vec::new());
        let c = compile_expr(&env, &e).expect("compilable");
        let compiled = CEvalCtx {
            graph: &graph,
            params: &params,
        }
        .eval_value(&c, &Vec::new());
        (interp, compiled)
    }

    #[test]
    fn const_folding_matches_interpreter() {
        for src in [
            "1 + 2 * 3",
            "2 ^ 10",
            "null AND false",
            "null OR true",
            "NOT null",
            "[10, 20, 30][-1]",
            "[10, 20, 30][0..2]",
            "'AS2497' =~ 'AS.*'",
            "CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END",
            "{a: 1, b: [2, 3]}.b[0]",
            "2 IN [1, 2, 3]",
            "4 IN [1, null]",
        ] {
            let (i, c) = both(src);
            assert_eq!(i.unwrap(), c.unwrap(), "{src}");
        }
    }

    #[test]
    fn folded_constants_are_const_nodes() {
        let env = Env::new();
        let e = parse_expression("1 + 2 * 3").unwrap();
        let c = compile_expr(&env, &e).unwrap();
        assert_eq!(c.0, CExpr::Const(Value::Int(7)));
    }

    #[test]
    fn failed_folds_stay_lazy() {
        // `NOT 1` errors; the fold must not surface it eagerly, and
        // short-circuiting must still hide it at runtime.
        let env = Env::new();
        let e = parse_expression("false AND (NOT 1)").unwrap();
        let c = compile_expr(&env, &e).unwrap();
        assert_ne!(
            c.0,
            CExpr::Const(Value::Bool(false)),
            "erroring subtree must not fold"
        );
        let (i, cv) = both("false AND (NOT 1)");
        assert_eq!(i.unwrap(), cv.unwrap());
        // And when reached, the error matches the interpreter's.
        let (i, cv) = both("true AND (NOT 1)");
        assert_eq!(i.unwrap_err().message, cv.unwrap_err().message);
    }

    #[test]
    fn unbound_variable_same_error() {
        let (i, c) = both("ghost + 1");
        assert_eq!(i.unwrap_err().message, c.unwrap_err().message);
    }

    #[test]
    fn slots_resolve_against_env() {
        let mut env = Env::new();
        env.push("a");
        env.push("b");
        let e = parse_expression("b").unwrap();
        let c = compile_expr(&env, &e).unwrap();
        assert_eq!(c.0, CExpr::Slot(1));
    }

    #[test]
    fn listcomp_binder_shadows_env_slot() {
        let mut env = Env::new();
        env.push("x");
        let e = parse_expression("[x IN [1, 2, 3] | x * 10]").unwrap();
        let c = compile_expr(&env, &e).unwrap();
        let graph = Graph::new();
        let params = Params::new();
        let ctx = CEvalCtx {
            graph: &graph,
            params: &params,
        };
        // Row binds env's x to 99; the comprehension variable shadows it.
        let row = vec![Entry::Val(Value::Int(99))];
        assert_eq!(
            ctx.eval_value(&c, &row).unwrap(),
            Value::from(vec![10i64, 20, 30])
        );
    }

    #[test]
    fn exists_pattern_is_unsupported() {
        let env = Env::new();
        let e = parse_expression("exists((a)-[:PEERS_WITH]->(b))").unwrap();
        assert!(compile_expr(&env, &e).is_none());
    }

    #[test]
    fn compile_query_covers_read_queries_and_skips_writes() {
        let q = crate::parser::parse("MATCH (a:AS) WHERE a.asn > 1 RETURN a.asn ORDER BY a.asn")
            .unwrap();
        assert!(compile_query(&q).is_some());
        let w = crate::parser::parse("CREATE (a:AS {asn: 1})").unwrap();
        assert!(compile_query(&w).is_none());
        let e = crate::parser::parse("MATCH (a:AS) WHERE exists((a)-[:PEERS_WITH]->()) RETURN a")
            .unwrap();
        assert!(compile_query(&e).is_none());
    }
}
