//! Plan caching: normalized query text → parsed query, shared across
//! threads.
//!
//! Parsing is the per-query fixed cost every execution pays before any row
//! is produced, and text-to-Cypher workloads repeat a small set of
//! templated queries heavily. The [`PlanCache`] stores the parsed
//! [`Query`] behind an [`Arc`] so concurrent executions share one plan
//! with no copying; parsing is side-effect-free and the AST is immutable,
//! which is what makes the shared plan safe (asserted `Send + Sync` at
//! compile time below).
//!
//! The cache also exports the building blocks the result cache in
//! `chatiyp-core` composes: the bounded [`Lru`] map and the
//! [`normalize_query`] keying function, so both tiers agree on what "the
//! same query text" means.

use crate::ast::Query;
use crate::compile::{compile_query, CompiledQuery};
use crate::error::CypherError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

// A cached plan is handed to arbitrary worker threads; the AST must be
// freely shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Query>();
    assert_send_sync::<PlanCache>();
};

/// Normalizes query text for cache keying: runs of ASCII whitespace
/// collapse to one space and surrounding whitespace is trimmed.
///
/// This is deliberately cheaper than full canonicalization (which would
/// require the very parse the plan cache exists to avoid): queries that
/// differ in keyword case or clause formatting key separately, which
/// costs a duplicate entry but never correctness.
pub fn normalize_query(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut in_ws = true; // leading whitespace is dropped
    for ch in src.chars() {
        if ch.is_ascii_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(ch);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// A bounded least-recently-used map with string keys.
///
/// Recency is a monotonic tick stamped on every access; eviction scans for
/// the minimum stamp, which is O(len) but runs only when the map is full
/// and capacities are small (hundreds to a few thousand entries).
#[derive(Debug)]
pub struct Lru<V> {
    map: HashMap<String, Slot<V>>,
    capacity: usize,
    tick: u64,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    last_used: u64,
}

impl<V> Lru<V> {
    /// An empty LRU holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.last_used = tick;
            &slot.value
        })
    }

    /// Inserts (or replaces) an entry, evicting the least recently used
    /// one when full. Returns `true` when an eviction happened.
    pub fn insert(&mut self, key: String, value: V) -> bool {
        self.tick += 1;
        let mut evicted = false;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                evicted = true;
            }
        }
        self.map.insert(
            key,
            Slot {
                value,
                last_used: self.tick,
            },
        );
        evicted
    }

    /// Removes an entry, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<V> {
        self.map.remove(key).map(|slot| slot.value)
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Counter snapshot of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to parse.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Queries successfully lowered to compiled form on a cache miss.
    /// Misses minus compiled = queries running interpreted (write
    /// statements and constructs outside the compiler's subset).
    pub compiled: u64,
    /// Live entries.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

/// A parsed query together with its compiled form, as cached by
/// [`PlanCache::prepare`]. `compiled` is `None` when the query is outside
/// the compiler's subset; execution then runs interpreted.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The parsed AST.
    pub query: Arc<Query>,
    /// The compiled pipeline, when the query is compilable.
    pub compiled: Option<Arc<CompiledQuery>>,
}

/// A bounded, thread-safe cache of parsed queries keyed by normalized
/// source text. Parse errors are not cached: a failing query re-parses
/// (and re-fails) on each attempt, keeping error reporting fresh.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Lru<Prepared>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    compiled: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` parsed queries.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Lru::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            compiled: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Lru<Prepared>> {
        // A panic while holding the lock leaves only a cache (safe to
        // reuse: entries are immutable Arcs), so poisoning is ignored.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the parsed form of `src`, parsing at most once per
    /// normalized text while the entry stays resident.
    pub fn parse(&self, src: &str) -> Result<Arc<Query>, CypherError> {
        Ok(self.prepare(src)?.query)
    }

    /// Returns the parsed *and compiled* form of `src`, parsing and
    /// compiling at most once per normalized text while the entry stays
    /// resident. Uncompilable queries cache `compiled: None` so repeat
    /// executions skip the compilation attempt too.
    pub fn prepare(&self, src: &str) -> Result<Prepared, CypherError> {
        let key = normalize_query(src);
        if let Some(p) = self.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let parsed = Arc::new(crate::parser::parse(src)?);
        let compiled = compile_query(&parsed).map(Arc::new);
        if compiled.is_some() {
            self.compiled.fetch_add(1, Ordering::Relaxed);
        }
        let prepared = Prepared {
            query: parsed,
            compiled,
        };
        if self.lock().insert(key, prepared.clone()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(prepared)
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.lock();
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            compiled: self.compiled.load(Ordering::Relaxed),
            len: inner.len(),
            capacity: inner.capacity(),
        }
    }

    /// Drops every cached plan (counters are retained).
    pub fn clear(&self) {
        self.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_whitespace_only() {
        assert_eq!(
            normalize_query("  MATCH (a:AS)\n\t RETURN  a.asn "),
            "MATCH (a:AS) RETURN a.asn"
        );
        // Case differences key separately (no parse, no case folding).
        assert_ne!(
            normalize_query("match (a) return a"),
            normalize_query("MATCH (a) RETURN a")
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<i32> = Lru::new(2);
        assert!(!lru.insert("a".into(), 1));
        assert!(!lru.insert("b".into(), 2));
        assert_eq!(lru.get("a"), Some(&1)); // refresh a; b is now oldest
        assert!(lru.insert("c".into(), 3));
        assert_eq!(lru.get("b"), None);
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.get("c"), Some(&3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn plan_cache_hits_on_equivalent_whitespace() {
        let cache = PlanCache::new(8);
        let a = cache.parse("MATCH (a:AS) RETURN a.asn").unwrap();
        let b = cache.parse("MATCH   (a:AS)\n RETURN a.asn").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "whitespace variant missed the cache");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn plan_cache_does_not_cache_errors() {
        let cache = PlanCache::new(8);
        assert!(cache.parse("MATCH (").is_err());
        assert!(cache.parse("MATCH (").is_err());
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
        assert_eq!(s.len, 0);
    }

    #[test]
    fn plan_cache_bounded_and_counts_evictions() {
        let cache = PlanCache::new(2);
        cache.parse("RETURN 1").unwrap();
        cache.parse("RETURN 2").unwrap();
        cache.parse("RETURN 3").unwrap();
        let s = cache.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn cached_plan_executes_identically() {
        use iyp_graphdb::{props, Graph, Props};
        let mut g = Graph::new();
        let a = g.add_node(["AS"], props!("asn" => 2497i64, "name" => "IIJ"));
        let c = g.add_node(["Country"], props!("country_code" => "JP"));
        g.add_rel(a, "COUNTRY", c, Props::new()).unwrap();

        let src = "MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN a.name, c.country_code";
        let fresh = crate::query(&g, src).unwrap();
        let cache = PlanCache::new(4);
        for _ in 0..3 {
            let plan = cache.parse(src).unwrap();
            let via_cache = crate::execute_read(&g, &plan, &crate::eval::Params::new()).unwrap();
            assert_eq!(fresh, via_cache);
        }
        assert_eq!(cache.stats().hits, 2);
    }
}
