//! The query executor: a clause-by-clause interpreter over materialized
//! row sets, with index-aware pattern matching planned by [`crate::plan`].

use crate::ast::*;
use crate::error::CypherError;
use crate::eval::{Entry, Env, EvalCtx, Params, Row};
use crate::plan::{self, Anchor, PartPlan};
use crate::result::QueryResult;
use iyp_graphdb::{Direction, Graph, NodeId, Props, RelId, Value, ValueKey};
use std::collections::{HashMap, HashSet};

/// Hard cap on intermediate row counts — protects against pattern
/// explosions on dense graphs.
pub const MAX_ROWS: usize = 2_000_000;

/// Default cap for unbounded variable-length patterns (`*` / `*2..`).
pub const VARLEN_CAP: u32 = 8;

/// Execution limits: a wall-clock deadline checked during pattern
/// expansion, protecting services that execute untrusted Cypher.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecLimits {
    /// Abort with a runtime error once this instant passes.
    pub deadline: Option<std::time::Instant>,
}

impl ExecLimits {
    /// No limits (library default).
    pub fn none() -> Self {
        ExecLimits::default()
    }

    /// A deadline `timeout` from now.
    pub fn timeout(timeout: std::time::Duration) -> Self {
        ExecLimits {
            deadline: Some(std::time::Instant::now() + timeout),
        }
    }

    #[inline]
    fn check(&self) -> Result<(), CypherError> {
        if let Some(d) = self.deadline {
            if std::time::Instant::now() > d {
                return Err(CypherError::runtime(
                    "query exceeded its execution deadline",
                ));
            }
        }
        Ok(())
    }
}

/// Parses and executes a read-only query with no parameters.
pub fn query(graph: &Graph, src: &str) -> Result<QueryResult, CypherError> {
    let q = crate::parser::parse(src)?;
    execute_read(graph, &q, &Params::new())
}

/// Parses and executes a read-only query under a wall-clock deadline —
/// the entry point for services executing untrusted Cypher.
pub fn query_with_deadline(
    graph: &Graph,
    src: &str,
    params: &Params,
    timeout: std::time::Duration,
) -> Result<QueryResult, CypherError> {
    let q = crate::parser::parse(src)?;
    let mut src_graph = ReadOnly(graph);
    run(&mut src_graph, &q, params, ExecLimits::timeout(timeout))
}

/// Parses and executes a read-only query with parameters.
pub fn query_with(graph: &Graph, src: &str, params: &Params) -> Result<QueryResult, CypherError> {
    let q = crate::parser::parse(src)?;
    execute_read(graph, &q, params)
}

/// Parses and executes a query that may contain write clauses.
pub fn update(graph: &mut Graph, src: &str) -> Result<QueryResult, CypherError> {
    let q = crate::parser::parse(src)?;
    execute(graph, &q, &Params::new())
}

/// Executes a parsed read-only query. Write clauses produce a plan error.
pub fn execute_read(
    graph: &Graph,
    q: &Query,
    params: &Params,
) -> Result<QueryResult, CypherError> {
    let mut src = ReadOnly(graph);
    run(&mut src, q, params, ExecLimits::none())
}

/// Executes a parsed query, allowing writes.
pub fn execute(graph: &mut Graph, q: &Query, params: &Params) -> Result<QueryResult, CypherError> {
    let mut src = ReadWrite(graph);
    run(&mut src, q, params, ExecLimits::none())
}

trait GraphSource {
    fn g(&self) -> &Graph;
    fn g_mut(&mut self) -> Result<&mut Graph, CypherError>;
}

struct ReadOnly<'a>(&'a Graph);
impl GraphSource for ReadOnly<'_> {
    fn g(&self) -> &Graph {
        self.0
    }
    fn g_mut(&mut self) -> Result<&mut Graph, CypherError> {
        Err(CypherError::plan(
            "write clause not allowed in read-only execution",
        ))
    }
}

struct ReadWrite<'a>(&'a mut Graph);
impl GraphSource for ReadWrite<'_> {
    fn g(&self) -> &Graph {
        self.0
    }
    fn g_mut(&mut self) -> Result<&mut Graph, CypherError> {
        Ok(self.0)
    }
}

fn run<G: GraphSource>(
    src: &mut G,
    q: &Query,
    params: &Params,
    limits: ExecLimits,
) -> Result<QueryResult, CypherError> {
    // Split on UNION separators: each segment is a complete sub-query.
    let segments: Vec<(&[Clause], bool)> = {
        let mut out: Vec<(&[Clause], bool)> = Vec::new();
        let mut start = 0usize;
        let mut keep_dups = false; // `all` flag of the *preceding* UNION
        for (i, c) in q.clauses.iter().enumerate() {
            if let Clause::Union { all } = c {
                out.push((&q.clauses[start..i], keep_dups));
                keep_dups = *all;
                start = i + 1;
            }
        }
        out.push((&q.clauses[start..], keep_dups));
        out
    };
    if segments.len() > 1 {
        let mut combined = QueryResult::empty();
        let mut dedup_all = true;
        for (i, (clauses, all_flag)) in segments.iter().enumerate() {
            if clauses.is_empty() {
                return Err(CypherError::plan("empty UNION branch"));
            }
            let sub = Query {
                clauses: clauses.to_vec(),
            };
            let result = run_single(src, &sub, params, limits)?;
            if i == 0 {
                combined.columns = result.columns;
            } else if combined.columns.len() != result.columns.len() {
                return Err(CypherError::plan(format!(
                    "UNION branches return different column counts ({} vs {})",
                    combined.columns.len(),
                    result.columns.len()
                )));
            }
            if *all_flag {
                dedup_all = false;
            }
            combined.rows.extend(result.rows);
        }
        if dedup_all {
            let mut seen = HashSet::new();
            combined
                .rows
                .retain(|row| seen.insert(row.iter().map(ValueKey::of).collect::<Vec<_>>()));
        }
        return Ok(combined);
    }
    run_single(src, q, params, limits)
}

fn run_single<G: GraphSource>(
    src: &mut G,
    q: &Query,
    params: &Params,
    limits: ExecLimits,
) -> Result<QueryResult, CypherError> {
    let mut env = Env::new();
    let mut rows: Vec<Row> = vec![Vec::new()];
    let mut result = QueryResult::empty();
    for (i, clause) in q.clauses.iter().enumerate() {
        let is_last = i + 1 == q.clauses.len();
        match clause {
            Clause::Match(m) => {
                rows = apply_match(src.g(), &mut env, rows, m, params, limits)?;
            }
            Clause::Unwind { expr, var } => {
                rows = apply_unwind(src.g(), &mut env, rows, expr, var, params)?;
            }
            Clause::With(p) => {
                let (new_env, new_rows) = project(src.g(), &env, rows, p, params, false)?;
                env = new_env;
                rows = new_rows;
            }
            Clause::Return(p) => {
                if !is_last {
                    return Err(CypherError::plan("RETURN must be the final clause"));
                }
                let (new_env, new_rows) = project(src.g(), &env, rows, p, params, true)?;
                result.columns = new_env.names;
                result.rows = new_rows
                    .into_iter()
                    .map(|r| r.into_iter().map(|e| e.to_value(src.g())).collect())
                    .collect();
                return Ok(result);
            }
            Clause::Create { patterns } => {
                rows = apply_create(src.g_mut()?, &mut env, rows, patterns, params)?;
            }
            Clause::Merge { node } => {
                rows = apply_merge(src.g_mut()?, &mut env, rows, node, params)?;
            }
            Clause::Set { items } => {
                apply_set(src, &env, &rows, items, params)?;
            }
            Clause::Delete { vars, detach } => {
                apply_delete(src, &env, &rows, vars, *detach)?;
            }
            Clause::Union { .. } => {
                unreachable!("UNION separators are split out before run_single")
            }
        }
        if rows.len() > MAX_ROWS {
            return Err(CypherError::runtime(format!(
                "intermediate result exceeded {MAX_ROWS} rows"
            )));
        }
    }
    // No RETURN: a write-only query; report affected row count as shape.
    Ok(result)
}

// ----------------------------------------------------------------------
// MATCH
// ----------------------------------------------------------------------

fn apply_match(
    graph: &Graph,
    env: &mut Env,
    rows: Vec<Row>,
    clause: &MatchClause,
    params: &Params,
    limits: ExecLimits,
) -> Result<Vec<Row>, CypherError> {
    // Plan all parts with knowledge of previously bound variables.
    let mut bound: Vec<String> = env.names.clone();
    let plans = plan::plan_match(graph, clause, &mut bound);

    // Extend the environment with this clause's new variables up front.
    let mut new_slots: HashSet<usize> = HashSet::new();
    for part in &clause.patterns {
        let mut vars = Vec::new();
        plan::collect_part_vars(part, &mut vars);
        for v in vars {
            if env.slot(&v).is_none() {
                let slot = env.push(v);
                new_slots.insert(slot);
            }
        }
    }
    let width = env.names.len();

    let mut out = Vec::new();
    for mut row in rows {
        row.resize(width, Entry::Val(Value::Null));
        // Match all parts for this row.
        let mut current = vec![row.clone()];
        for plan in &plans {
            let mut next = Vec::new();
            for r in &current {
                limits.check()?;
                expand_part(graph, env, r, plan, params, &new_slots, limits, &mut next)?;
                if next.len() > MAX_ROWS {
                    return Err(CypherError::runtime(format!(
                        "pattern expansion exceeded {MAX_ROWS} rows"
                    )));
                }
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        // Apply WHERE.
        if let Some(w) = &clause.where_clause {
            let ctx = EvalCtx {
                graph,
                env,
                params,
            };
            let mut kept = Vec::with_capacity(current.len());
            for r in current {
                if ctx.eval_value(w, &r)?.is_true() {
                    kept.push(r);
                }
            }
            current = kept;
        }
        if current.is_empty() && clause.optional {
            // OPTIONAL MATCH: keep the input row, new vars stay null.
            out.push(row);
        } else {
            out.extend(current);
        }
    }
    Ok(out)
}

/// Expands one planned pattern part for one input row, pushing every
/// complete binding into `out`.
#[allow(clippy::too_many_arguments)]
fn expand_part(
    graph: &Graph,
    env: &Env,
    row: &Row,
    plan: &PartPlan,
    params: &Params,
    new_slots: &HashSet<usize>,
    limits: ExecLimits,
    out: &mut Vec<Row>,
) -> Result<(), CypherError> {
    let ctx = EvalCtx {
        graph,
        env,
        params,
    };
    let candidates: Vec<NodeId> = match &plan.anchor {
        Anchor::Bound(var) => {
            let slot = env
                .slot(var)
                .ok_or_else(|| CypherError::plan(format!("unbound anchor '{var}'")))?;
            match &row[slot] {
                Entry::Node(id) => vec![*id],
                Entry::Val(Value::Null) => Vec::new(),
                _ => {
                    return Err(CypherError::runtime(format!(
                        "variable '{var}' is not a node"
                    )))
                }
            }
        }
        Anchor::IndexSeek { label, key, expr } => {
            let v = ctx.eval_value(expr, row)?;
            graph
                .index_lookup(label, key, &v)
                .unwrap_or_default()
        }
        Anchor::RangeSeek { label, key, lo, hi } => {
            let lo_v = match lo {
                Some((e, inc)) => Some((ctx.eval_value(e, row)?, *inc)),
                None => None,
            };
            let hi_v = match hi {
                Some((e, inc)) => Some((ctx.eval_value(e, row)?, *inc)),
                None => None,
            };
            graph
                .index_range(
                    label,
                    key,
                    lo_v.as_ref().map(|(v, inc)| (v, *inc)),
                    hi_v.as_ref().map(|(v, inc)| (v, *inc)),
                )
                .unwrap_or_default()
        }
        Anchor::LabelScan(label) => graph.nodes_with_label(label).collect(),
        Anchor::AllNodes => graph.all_nodes().collect(),
    };

    let mut local: Vec<Row> = Vec::new();
    let sink: &mut Vec<Row> = if plan.shortest { &mut local } else { out };
    for cand in candidates {
        if !node_matches(graph, &ctx, row, cand, &plan.anchor_node)? {
            continue;
        }
        let mut r = row.clone();
        if !bind_node(env, &mut r, &plan.anchor_node.var, cand, new_slots)? {
            continue;
        }
        let mut used = HashSet::new();
        let mut path: Vec<(Vec<RelId>, NodeId)> = Vec::new();
        dfs_steps(
            graph, env, params, plan, 0, cand, cand, &r, &mut used, &mut path, new_slots,
            limits, sink,
        )?;
    }
    if plan.shortest {
        out.extend(keep_shortest(env, plan, local)?);
    }
    Ok(())
}

/// For `shortestPath`, keeps only the minimal-length binding per distinct
/// (start, end) node pair, breaking ties deterministically by the path's
/// relationship ids.
fn keep_shortest(
    env: &Env,
    plan: &PartPlan,
    rows: Vec<Row>,
) -> Result<Vec<Row>, CypherError> {
    let path_var = plan
        .path_var
        .as_ref()
        .ok_or_else(|| CypherError::plan("shortestPath requires a path binding"))?;
    let slot = env
        .slot(path_var)
        .ok_or_else(|| CypherError::plan("path variable missing from environment"))?;
    let mut best: HashMap<(NodeId, NodeId), Row> = HashMap::new();
    let mut order: Vec<(NodeId, NodeId)> = Vec::new();
    for row in rows {
        let Entry::Path(nodes, rels) = &row[slot] else {
            return Err(CypherError::runtime("shortestPath binding is not a path"));
        };
        let (Some(&first), Some(&last)) = (nodes.first(), nodes.last()) else {
            continue;
        };
        let key = (first, last);
        match best.get(&key) {
            None => {
                order.push(key);
                best.insert(key, row);
            }
            Some(cur) => {
                let Entry::Path(_, cur_rels) = &cur[slot] else {
                    unreachable!("only paths are inserted");
                };
                let replace = rels.len() < cur_rels.len()
                    || (rels.len() == cur_rels.len() && rels < cur_rels);
                if replace {
                    best.insert(key, row);
                }
            }
        }
    }
    Ok(order
        .into_iter()
        .filter_map(|k| best.remove(&k))
        .collect())
}

#[allow(clippy::too_many_arguments)]
fn dfs_steps(
    graph: &Graph,
    env: &Env,
    params: &Params,
    plan: &PartPlan,
    step_idx: usize,
    anchor: NodeId,
    cur: NodeId,
    row: &Row,
    used: &mut HashSet<RelId>,
    path: &mut Vec<(Vec<RelId>, NodeId)>,
    new_slots: &HashSet<usize>,
    limits: ExecLimits,
    out: &mut Vec<Row>,
) -> Result<(), CypherError> {
    limits.check()?;
    if step_idx == plan.steps.len() {
        let mut r = row.clone();
        if let Some(pv) = &plan.path_var {
            bind_path(env, &mut r, pv, plan, anchor, path)?;
        }
        out.push(r);
        return Ok(());
    }
    let ctx = EvalCtx {
        graph,
        env,
        params,
    };
    let (rel_pat, node_pat) = &plan.steps[step_idx];
    let dir = match rel_pat.dir {
        RelDir::Right => Direction::Outgoing,
        RelDir::Left => Direction::Incoming,
        RelDir::Undirected => Direction::Both,
    };
    let types: Option<Vec<&str>> = if rel_pat.types.is_empty() {
        None
    } else {
        Some(rel_pat.types.iter().map(String::as_str).collect())
    };

    if rel_pat.hops.is_single() {
        for (rid, nbr) in graph.neighbors(cur, dir, types.as_deref()) {
            if used.contains(&rid) {
                continue;
            }
            if !rel_matches(graph, &ctx, row, rid, rel_pat)? {
                continue;
            }
            if !node_matches(graph, &ctx, row, nbr, node_pat)? {
                continue;
            }
            let mut r = row.clone();
            if !bind_node(env, &mut r, &node_pat.var, nbr, new_slots)? {
                continue;
            }
            if let Some(rv) = &rel_pat.var {
                if !bind_entry(env, &mut r, rv, Entry::Rel(rid), new_slots)? {
                    continue;
                }
            }
            used.insert(rid);
            path.push((vec![rid], nbr));
            dfs_steps(
                graph, env, params, plan, step_idx + 1, anchor, nbr, &r, used, path, new_slots,
                limits, out,
            )?;
            path.pop();
            used.remove(&rid);
        }
    } else {
        // Variable-length expansion. An explicit upper bound is honored;
        // an open-ended `*` is capped to keep expansion bounded.
        let min = rel_pat.hops.min;
        let max = rel_pat.hops.max.unwrap_or(VARLEN_CAP);
        let mut stack_rels: Vec<RelId> = Vec::new();
        varlen_dfs(
            graph, env, params, plan, step_idx, anchor, cur, row, used, path, new_slots, limits,
            out, &ctx, rel_pat, node_pat, dir, types.as_deref(), min, max, &mut stack_rels,
        )?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn varlen_dfs(
    graph: &Graph,
    env: &Env,
    params: &Params,
    plan: &PartPlan,
    step_idx: usize,
    anchor: NodeId,
    cur: NodeId,
    row: &Row,
    used: &mut HashSet<RelId>,
    path: &mut Vec<(Vec<RelId>, NodeId)>,
    new_slots: &HashSet<usize>,
    limits: ExecLimits,
    out: &mut Vec<Row>,
    ctx: &EvalCtx<'_>,
    rel_pat: &RelPattern,
    node_pat: &NodePattern,
    dir: Direction,
    types: Option<&[&str]>,
    min: u32,
    max: u32,
    stack_rels: &mut Vec<RelId>,
) -> Result<(), CypherError> {
    limits.check()?;
    let depth = stack_rels.len() as u32;
    if depth >= min {
        // Try ending the variable-length segment here.
        if node_matches(graph, ctx, row, cur, node_pat)? {
            let mut r = row.clone();
            let mut ok = bind_node(env, &mut r, &node_pat.var, cur, new_slots)?;
            if ok {
                if let Some(rv) = &rel_pat.var {
                    let rel_list = Value::List(
                        stack_rels
                            .iter()
                            .map(|rid| Entry::Rel(*rid).to_value(graph))
                            .collect(),
                    );
                    ok = bind_entry(env, &mut r, rv, Entry::Val(rel_list), new_slots)?;
                }
            }
            if ok {
                for rid in stack_rels.iter() {
                    used.insert(*rid);
                }
                path.push((stack_rels.clone(), cur));
                dfs_steps(
                    graph, env, params, plan, step_idx + 1, anchor, cur, &r, used, path,
                    new_slots, limits, out,
                )?;
                path.pop();
                for rid in stack_rels.iter() {
                    used.remove(rid);
                }
            }
        }
    }
    if depth == max {
        return Ok(());
    }
    for (rid, nbr) in graph.neighbors(cur, dir, types) {
        if used.contains(&rid) || stack_rels.contains(&rid) {
            continue;
        }
        if !rel_matches(graph, ctx, row, rid, rel_pat)? {
            continue;
        }
        stack_rels.push(rid);
        varlen_dfs(
            graph, env, params, plan, step_idx, anchor, nbr, row, used, path, new_slots, limits,
            out, ctx, rel_pat, node_pat, dir, types, min, max, stack_rels,
        )?;
        stack_rels.pop();
    }
    Ok(())
}

fn node_matches(
    graph: &Graph,
    ctx: &EvalCtx<'_>,
    row: &Row,
    node: NodeId,
    pat: &NodePattern,
) -> Result<bool, CypherError> {
    for label in &pat.labels {
        if !graph.node_has_label(node, label) {
            return Ok(false);
        }
    }
    for (key, expr) in &pat.props {
        let want = ctx.eval_value(expr, row)?;
        let have = graph
            .node(node)
            .map(|n| n.props.get_or_null(key))
            .unwrap_or(Value::Null);
        if have.cypher_eq(&want) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

fn rel_matches(
    graph: &Graph,
    ctx: &EvalCtx<'_>,
    row: &Row,
    rel: RelId,
    pat: &RelPattern,
) -> Result<bool, CypherError> {
    for (key, expr) in &pat.props {
        let want = ctx.eval_value(expr, row)?;
        let have = graph
            .rel(rel)
            .map(|r| r.props.get_or_null(key))
            .unwrap_or(Value::Null);
        if have.cypher_eq(&want) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Binds `var` (if named) to a node, or checks equality when already bound.
/// Returns false when the binding conflicts.
fn bind_node(
    env: &Env,
    row: &mut Row,
    var: &Option<String>,
    node: NodeId,
    new_slots: &HashSet<usize>,
) -> Result<bool, CypherError> {
    match var {
        None => Ok(true),
        Some(v) => bind_entry(env, row, v, Entry::Node(node), new_slots),
    }
}

fn bind_entry(
    env: &Env,
    row: &mut Row,
    var: &str,
    entry: Entry,
    new_slots: &HashSet<usize>,
) -> Result<bool, CypherError> {
    let slot = env
        .slot(var)
        .ok_or_else(|| CypherError::plan(format!("variable '{var}' missing from environment")))?;
    match &row[slot] {
        Entry::Val(Value::Null) if new_slots.contains(&slot) => {
            row[slot] = entry;
            Ok(true)
        }
        Entry::Val(Value::Null) => Ok(false), // pre-existing null binding never matches
        existing => Ok(*existing == entry),
    }
}

fn bind_path(
    env: &Env,
    row: &mut Row,
    path_var: &str,
    plan: &PartPlan,
    anchor: NodeId,
    path: &[(Vec<RelId>, NodeId)],
) -> Result<(), CypherError> {
    // Node/rel sequence: the anchor, then each step's end node.
    let mut nodes: Vec<NodeId> = vec![anchor];
    let mut rels: Vec<RelId> = Vec::new();
    for (seg_rels, end) in path {
        rels.extend(seg_rels.iter().copied());
        nodes.push(*end);
    }
    if plan.reversed {
        nodes.reverse();
        rels.reverse();
    }
    let slot = env
        .slot(path_var)
        .ok_or_else(|| CypherError::plan(format!("path variable '{path_var}' missing")))?;
    row[slot] = Entry::Path(nodes, rels);
    Ok(())
}

// ----------------------------------------------------------------------
// UNWIND
// ----------------------------------------------------------------------

fn apply_unwind(
    graph: &Graph,
    env: &mut Env,
    rows: Vec<Row>,
    expr: &Expr,
    var: &str,
    params: &Params,
) -> Result<Vec<Row>, CypherError> {
    let values: Vec<(Row, Value)> = {
        let ctx = EvalCtx {
            graph,
            env,
            params,
        };
        let mut out = Vec::new();
        for row in rows {
            let v = ctx.eval_value(expr, &row)?;
            out.push((row, v));
        }
        out
    };
    env.push(var.to_string());
    let mut out = Vec::new();
    for (row, v) in values {
        match v {
            Value::Null => {}
            Value::List(items) => {
                for item in items {
                    let mut r = row.clone();
                    r.push(Entry::Val(item));
                    out.push(r);
                }
            }
            other => {
                let mut r = row;
                r.push(Entry::Val(other));
                out.push(r);
            }
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Projection (WITH / RETURN) incl. aggregation
// ----------------------------------------------------------------------

/// One aggregate call instance found in a projection.
#[derive(Debug, Clone, PartialEq)]
struct AggSpec {
    name: String,
    distinct: bool,
    /// `None` = `count(*)`.
    arg: Option<Expr>,
    /// Second argument (percentileCont's p).
    extra: Option<Expr>,
}

fn extract_aggs(expr: &Expr, specs: &mut Vec<AggSpec>) -> Expr {
    match expr {
        Expr::Call {
            name,
            distinct,
            args,
        } if is_aggregate_fn(name) => {
            let spec = AggSpec {
                name: name.clone(),
                distinct: *distinct,
                arg: match args.first() {
                    Some(Expr::Star) | None => None,
                    Some(e) => Some(e.clone()),
                },
                extra: args.get(1).cloned(),
            };
            let idx = match specs.iter().position(|s| *s == spec) {
                Some(i) => i,
                None => {
                    specs.push(spec);
                    specs.len() - 1
                }
            };
            Expr::Var(format!("__agg{idx}"))
        }
        Expr::Prop(e, k) => Expr::Prop(Box::new(extract_aggs(e, specs)), k.clone()),
        Expr::Index(a, b) => Expr::Index(
            Box::new(extract_aggs(a, specs)),
            Box::new(extract_aggs(b, specs)),
        ),
        Expr::Slice(a, lo, hi) => Expr::Slice(
            Box::new(extract_aggs(a, specs)),
            lo.as_ref().map(|e| Box::new(extract_aggs(e, specs))),
            hi.as_ref().map(|e| Box::new(extract_aggs(e, specs))),
        ),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(extract_aggs(a, specs)),
            Box::new(extract_aggs(b, specs)),
        ),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(extract_aggs(a, specs))),
        Expr::IsNull(a, n) => Expr::IsNull(Box::new(extract_aggs(a, specs)), *n),
        Expr::Call {
            name,
            distinct,
            args,
        } => Expr::Call {
            name: name.clone(),
            distinct: *distinct,
            args: args.iter().map(|a| extract_aggs(a, specs)).collect(),
        },
        Expr::List(items) => Expr::List(items.iter().map(|e| extract_aggs(e, specs)).collect()),
        Expr::Map(items) => Expr::Map(
            items
                .iter()
                .map(|(k, e)| (k.clone(), extract_aggs(e, specs)))
                .collect(),
        ),
        Expr::Case {
            operand,
            arms,
            default,
        } => Expr::Case {
            operand: operand.as_ref().map(|e| Box::new(extract_aggs(e, specs))),
            arms: arms
                .iter()
                .map(|(w, t)| (extract_aggs(w, specs), extract_aggs(t, specs)))
                .collect(),
            default: default.as_ref().map(|e| Box::new(extract_aggs(e, specs))),
        },
        other => other.clone(),
    }
}

/// One aggregate accumulator: optional DISTINCT dedup in front of the
/// kind-specific state (every aggregate supports DISTINCT, as in Neo4j).
#[derive(Debug)]
struct AggAccum {
    seen: Option<HashSet<ValueKey>>,
    state: AggState,
}

impl AggAccum {
    fn new(spec: &AggSpec, p: f64) -> AggAccum {
        AggAccum {
            seen: spec.distinct.then(HashSet::new),
            state: AggState::new(spec, p),
        }
    }

    fn update(&mut self, value: Option<Value>) -> Result<(), CypherError> {
        if let (Some(seen), Some(v)) = (self.seen.as_mut(), value.as_ref()) {
            if !v.is_null() && !seen.insert(ValueKey::of(v)) {
                return Ok(()); // duplicate under DISTINCT
            }
        }
        self.state.update(value)
    }

    fn finish(self) -> Value {
        self.state.finish()
    }
}

#[derive(Debug)]
enum AggState {
    Count {
        n: i64,
    },
    Sum {
        int: i64,
        float: f64,
        saw_float: bool,
    },
    Avg {
        sum: f64,
        n: usize,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    Collect {
        items: Vec<Value>,
    },
    Stdev {
        n: usize,
        mean: f64,
        m2: f64,
    },
    Percentile {
        values: Vec<f64>,
        p: f64,
    },
}

impl AggState {
    fn new(spec: &AggSpec, p: f64) -> AggState {
        match spec.name.as_str() {
            "count" => AggState::Count { n: 0 },
            "sum" => AggState::Sum {
                int: 0,
                float: 0.0,
                saw_float: false,
            },
            "avg" => AggState::Avg { sum: 0.0, n: 0 },
            "min" => AggState::Min(None),
            "max" => AggState::Max(None),
            "collect" => AggState::Collect { items: Vec::new() },
            "stdev" => AggState::Stdev {
                n: 0,
                mean: 0.0,
                m2: 0.0,
            },
            "percentilecont" => AggState::Percentile {
                values: Vec::new(),
                p,
            },
            other => unreachable!("not an aggregate: {other}"),
        }
    }

    fn update(&mut self, value: Option<Value>) -> Result<(), CypherError> {
        match self {
            AggState::Count { n } => match value {
                None => *n += 1, // count(*)
                Some(Value::Null) => {}
                Some(_) => *n += 1,
            },
            AggState::Sum {
                int,
                float,
                saw_float,
            } => match value {
                Some(Value::Int(i)) => *int += i,
                Some(Value::Float(f)) => {
                    *float += f;
                    *saw_float = true;
                }
                Some(Value::Null) | None => {}
                Some(other) => {
                    return Err(CypherError::runtime(format!(
                        "sum() expects numbers, got {}",
                        other.type_name()
                    )))
                }
            },
            AggState::Avg { sum, n } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_f64() {
                        *sum += f;
                        *n += 1;
                    } else if !v.is_null() {
                        return Err(CypherError::runtime(format!(
                            "avg() expects numbers, got {}",
                            v.type_name()
                        )));
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => v.order_key_cmp(c) == std::cmp::Ordering::Less,
                        };
                        if replace {
                            *cur = Some(v);
                        }
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => v.order_key_cmp(c) == std::cmp::Ordering::Greater,
                        };
                        if replace {
                            *cur = Some(v);
                        }
                    }
                }
            }
            AggState::Collect { items } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        items.push(v);
                    }
                }
            }
            AggState::Stdev { n, mean, m2 } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *n += 1;
                        let delta = x - *mean;
                        *mean += delta / *n as f64;
                        *m2 += delta * (x - *mean);
                    }
                }
            }
            AggState::Percentile { values, .. } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_f64() {
                        values.push(f);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count { n } => Value::Int(n),
            AggState::Sum {
                int,
                float,
                saw_float,
            } => {
                if saw_float {
                    Value::Float(float + int as f64)
                } else {
                    Value::Int(int)
                }
            }
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Collect { items } => Value::List(items),
            AggState::Stdev { n, m2, .. } => {
                if n < 2 {
                    Value::Float(0.0)
                } else {
                    Value::Float((m2 / (n as f64 - 1.0)).sqrt())
                }
            }
            AggState::Percentile { mut values, p } => {
                if values.is_empty() {
                    return Value::Null;
                }
                values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let rank = p.clamp(0.0, 1.0) * (values.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let frac = rank - lo as f64;
                Value::Float(values[lo] * (1.0 - frac) + values[hi] * frac)
            }
        }
    }
}

fn entry_key(_graph: &Graph, e: &Entry) -> ValueKey {
    match e {
        Entry::Node(id) => ValueKey::List(vec![
            ValueKey::Str("#node".into()),
            ValueKey::Int(id.0 as i64),
        ]),
        Entry::Rel(id) => ValueKey::List(vec![
            ValueKey::Str("#rel".into()),
            ValueKey::Int(id.0 as i64),
        ]),
        Entry::Path(nodes, rels) => ValueKey::List(
            std::iter::once(ValueKey::Str("#path".into()))
                .chain(nodes.iter().map(|n| ValueKey::Int(n.0 as i64)))
                .chain(rels.iter().map(|r| ValueKey::Int(r.0 as i64)))
                .collect(),
        ),
        Entry::Val(v) => ValueKey::of(v),
    }
}

fn project(
    graph: &Graph,
    env: &Env,
    rows: Vec<Row>,
    p: &ProjectionClause,
    params: &Params,
    _is_return: bool,
) -> Result<(Env, Vec<Row>), CypherError> {
    // Expand `*` into explicit items.
    let mut items: Vec<ProjectionItem> = Vec::new();
    if p.star {
        for name in &env.names {
            items.push(ProjectionItem {
                expr: Expr::Var(name.clone()),
                alias: Some(name.clone()),
            });
        }
    }
    items.extend(p.items.iter().cloned());
    if items.is_empty() {
        return Err(CypherError::plan("projection with no items"));
    }

    let has_agg = items.iter().any(|it| it.expr.contains_aggregate())
        || p.order_by.iter().any(|k| k.expr.contains_aggregate());

    // Rewrite aggregates out of item and order-key expressions.
    let mut specs: Vec<AggSpec> = Vec::new();
    let rewritten: Vec<Expr> = items
        .iter()
        .map(|it| extract_aggs(&it.expr, &mut specs))
        .collect();
    let order_rewritten: Vec<Expr> = p
        .order_by
        .iter()
        .map(|k| extract_aggs(&k.expr, &mut specs))
        .collect();

    let out_names: Vec<String> = items.iter().map(|it| it.name()).collect();

    // (projected row, context row for ORDER BY evaluation)
    let mut projected: Vec<(Row, Row)> = Vec::new();

    // Environment in which rewritten expressions are evaluated:
    // original vars + __agg slots (aggregation case only).
    let mut eval_env = env.clone();
    for i in 0..specs.len() {
        eval_env.push(format!("__agg{i}"));
    }

    if has_agg || !specs.is_empty() {
        // Grouping keys: projection items without aggregates.
        let key_exprs: Vec<&ProjectionItem> = items
            .iter()
            .filter(|it| !it.expr.contains_aggregate())
            .collect();
        let ctx = EvalCtx {
            graph,
            env,
            params,
        };
        let mut groups: HashMap<Vec<ValueKey>, usize> = HashMap::new();
        let mut group_data: Vec<(Row, Vec<AggAccum>)> = Vec::new();
        for row in &rows {
            let mut key = Vec::with_capacity(key_exprs.len());
            for it in &key_exprs {
                key.push(entry_key(graph, &ctx.eval(&it.expr, row)?));
            }
            let gi = match groups.get(&key) {
                Some(&i) => i,
                None => {
                    let mut states = Vec::with_capacity(specs.len());
                    for spec in &specs {
                        let pval = match &spec.extra {
                            Some(e) => ctx.eval_value(e, row)?.as_f64().unwrap_or(0.5),
                            None => 0.5,
                        };
                        states.push(AggAccum::new(spec, pval));
                    }
                    group_data.push((row.clone(), states));
                    groups.insert(key, group_data.len() - 1);
                    group_data.len() - 1
                }
            };
            for (si, spec) in specs.iter().enumerate() {
                let val = match &spec.arg {
                    None => None,
                    Some(e) => Some(ctx.eval_value(e, row)?),
                };
                group_data[gi].1[si].update(val)?;
            }
        }
        // Global aggregation over zero rows still yields one group.
        if group_data.is_empty() && key_exprs.is_empty() {
            let states = specs.iter().map(|s| AggAccum::new(s, 0.5)).collect();
            let null_row: Row = vec![Entry::Val(Value::Null); env.names.len()];
            group_data.push((null_row, states));
        }
        let eval_ctx = EvalCtx {
            graph,
            env: &eval_env,
            params,
        };
        for (rep_row, states) in group_data {
            let mut ext = rep_row.clone();
            for st in states {
                ext.push(Entry::Val(st.finish()));
            }
            let mut out_row = Vec::with_capacity(rewritten.len());
            for rexpr in &rewritten {
                out_row.push(eval_ctx.eval(rexpr, &ext)?);
            }
            projected.push((out_row, ext));
        }
    } else {
        let ctx = EvalCtx {
            graph,
            env,
            params,
        };
        for row in rows {
            let mut out_row = Vec::with_capacity(rewritten.len());
            for rexpr in &rewritten {
                out_row.push(ctx.eval(rexpr, &row)?);
            }
            projected.push((out_row, row));
        }
    }

    // DISTINCT.
    if p.distinct {
        let mut seen = HashSet::new();
        projected.retain(|(r, _)| {
            let key: Vec<ValueKey> = r.iter().map(|e| entry_key(graph, e)).collect();
            seen.insert(key)
        });
    }

    // Environment for post-projection predicates: projected names first
    // (aliases shadow originals; `slot` finds the first occurrence), then
    // the evaluation context (original vars + agg slots).
    let mut post_names = out_names.clone();
    let appended: Vec<usize> = eval_env
        .names
        .iter()
        .enumerate()
        .filter(|(_, n)| !out_names.contains(n))
        .map(|(i, _)| i)
        .collect();
    for &i in &appended {
        post_names.push(eval_env.names[i].clone());
    }
    let post_env = Env { names: post_names };
    let extend = |proj: &Row, ctx_row: &Row| -> Row {
        let mut r = proj.clone();
        for &i in &appended {
            r.push(ctx_row.get(i).cloned().unwrap_or(Entry::Val(Value::Null)));
        }
        r
    };

    // WHERE (WITH ... WHERE).
    if let Some(w) = &p.where_clause {
        let mut w_specs = Vec::new();
        let w_re = extract_aggs(w, &mut w_specs);
        if !w_specs.is_empty() {
            return Err(CypherError::plan(
                "aggregate functions are not allowed in WITH ... WHERE; project them first",
            ));
        }
        let ctx = EvalCtx {
            graph,
            env: &post_env,
            params,
        };
        let mut kept = Vec::with_capacity(projected.len());
        for (proj, ctx_row) in projected {
            let ext = extend(&proj, &ctx_row);
            if ctx.eval_value(&w_re, &ext)?.is_true() {
                kept.push((proj, ctx_row));
            }
        }
        projected = kept;
    }

    // ORDER BY.
    if !p.order_by.is_empty() {
        let ctx = EvalCtx {
            graph,
            env: &post_env,
            params,
        };
        let mut keyed: Vec<(Vec<Value>, (Row, Row))> = Vec::with_capacity(projected.len());
        for (proj, ctx_row) in projected {
            let ext = extend(&proj, &ctx_row);
            let mut keys = Vec::with_capacity(order_rewritten.len());
            for oexpr in &order_rewritten {
                keys.push(ctx.eval_value(oexpr, &ext)?);
            }
            keyed.push((keys, (proj, ctx_row)));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, ok) in p.order_by.iter().enumerate() {
                let c = ka[i].order_key_cmp(&kb[i]);
                let c = if ok.ascending { c } else { c.reverse() };
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
            std::cmp::Ordering::Equal
        });
        projected = keyed.into_iter().map(|(_, v)| v).collect();
    }

    // SKIP / LIMIT.
    let eval_count = |e: &Expr| -> Result<usize, CypherError> {
        let ctx = EvalCtx {
            graph,
            env,
            params,
        };
        let v = ctx.eval_value(e, &Vec::new())?;
        v.as_int()
            .filter(|i| *i >= 0)
            .map(|i| i as usize)
            .ok_or_else(|| CypherError::runtime("SKIP/LIMIT must be a non-negative integer"))
    };
    if let Some(e) = &p.skip {
        let n = eval_count(e)?;
        projected = projected.into_iter().skip(n).collect();
    }
    if let Some(e) = &p.limit {
        let n = eval_count(e)?;
        projected.truncate(n);
    }

    let out_env = Env { names: out_names };
    let out_rows = projected.into_iter().map(|(r, _)| r).collect();
    Ok((out_env, out_rows))
}

// ----------------------------------------------------------------------
// Write clauses
// ----------------------------------------------------------------------

fn apply_create(
    graph: &mut Graph,
    env: &mut Env,
    rows: Vec<Row>,
    patterns: &[PatternPart],
    params: &Params,
) -> Result<Vec<Row>, CypherError> {
    // Extend env with new vars.
    let mut new_slots = HashSet::new();
    for part in patterns {
        let mut vars = Vec::new();
        plan::collect_part_vars(part, &mut vars);
        for v in vars {
            if env.slot(&v).is_none() {
                new_slots.insert(env.push(v));
            }
        }
    }
    let width = env.names.len();
    let mut out = Vec::with_capacity(rows.len());
    for mut row in rows {
        row.resize(width, Entry::Val(Value::Null));
        for part in patterns {
            let mut cur = create_node_or_reuse(graph, env, &mut row, &part.start, params, &new_slots)?;
            for (rel_pat, node_pat) in &part.hops {
                if !rel_pat.hops.is_single() {
                    return Err(CypherError::plan(
                        "CREATE does not allow variable-length relationships",
                    ));
                }
                let next =
                    create_node_or_reuse(graph, env, &mut row, node_pat, params, &new_slots)?;
                let ty = rel_pat.types.first().ok_or_else(|| {
                    CypherError::plan("CREATE relationships must have a type")
                })?;
                let (src, dst) = match rel_pat.dir {
                    RelDir::Right => (cur, next),
                    RelDir::Left => (next, cur),
                    RelDir::Undirected => {
                        return Err(CypherError::plan(
                            "CREATE relationships must be directed",
                        ))
                    }
                };
                let props = eval_props(graph, env, &row, &rel_pat.props, params)?;
                let rid = graph.add_rel(src, ty, dst, props)?;
                if let Some(rv) = &rel_pat.var {
                    let slot = env.slot(rv).expect("pushed above");
                    row[slot] = Entry::Rel(rid);
                }
                cur = next;
            }
        }
        out.push(row);
    }
    Ok(out)
}

fn create_node_or_reuse(
    graph: &mut Graph,
    env: &Env,
    row: &mut Row,
    pat: &NodePattern,
    params: &Params,
    new_slots: &HashSet<usize>,
) -> Result<NodeId, CypherError> {
    if let Some(v) = &pat.var {
        let slot = env
            .slot(v)
            .ok_or_else(|| CypherError::plan(format!("variable '{v}' missing")))?;
        if let Entry::Node(id) = &row[slot] {
            // Reuse a node bound earlier (by MATCH or earlier in CREATE).
            return Ok(*id);
        }
        if !new_slots.contains(&slot) && !row[slot].is_null() {
            return Err(CypherError::runtime(format!(
                "variable '{v}' is bound to a non-node value"
            )));
        }
    }
    let props = eval_props(graph, env, row, &pat.props, params)?;
    let id = graph.add_node(pat.labels.iter().map(String::as_str), props);
    if let Some(v) = &pat.var {
        let slot = env.slot(v).expect("checked above");
        row[slot] = Entry::Node(id);
    }
    Ok(id)
}

fn eval_props(
    graph: &Graph,
    env: &Env,
    row: &Row,
    props: &[(String, Expr)],
    params: &Params,
) -> Result<Props, CypherError> {
    let ctx = EvalCtx {
        graph,
        env,
        params,
    };
    let mut out = Props::new();
    for (k, e) in props {
        out.set(k.clone(), ctx.eval_value(e, row)?);
    }
    Ok(out)
}

fn apply_merge(
    graph: &mut Graph,
    env: &mut Env,
    rows: Vec<Row>,
    node: &NodePattern,
    params: &Params,
) -> Result<Vec<Row>, CypherError> {
    let var_slot = node.var.as_ref().map(|v| match env.slot(v) {
            Some(s) => s,
            None => env.push(v.clone()),
        });
    let width = env.names.len();
    let mut out = Vec::new();
    for mut row in rows {
        row.resize(width, Entry::Val(Value::Null));
        let props = eval_props(graph, env, &row, &node.props, params)?;
        // Find all nodes carrying every label with exactly-equal listed props.
        let candidates: Vec<NodeId> = match node.labels.first() {
            Some(first) => graph.nodes_with_label(first).collect(),
            None => graph.all_nodes().collect(),
        };
        let matches: Vec<NodeId> = candidates
            .into_iter()
            .filter(|&id| {
                node.labels.iter().all(|l| graph.node_has_label(id, l))
                    && props.iter().all(|(k, v)| {
                        graph
                            .node(id)
                            .map(|n| n.props.get_or_null(k).cypher_eq(v) == Some(true))
                            .unwrap_or(false)
                    })
            })
            .collect();
        if matches.is_empty() {
            let id = graph.add_node(node.labels.iter().map(String::as_str), props);
            if let Some(slot) = var_slot {
                row[slot] = Entry::Node(id);
            }
            out.push(row);
        } else {
            for id in matches {
                let mut r = row.clone();
                if let Some(slot) = var_slot {
                    r[slot] = Entry::Node(id);
                }
                out.push(r);
            }
        }
    }
    Ok(out)
}

fn apply_set<G: GraphSource>(
    src: &mut G,
    env: &Env,
    rows: &[Row],
    items: &[SetItem],
    params: &Params,
) -> Result<(), CypherError> {
    for row in rows {
        for item in items {
            let (var, updates) = match item {
                SetItem::Prop { var, key, expr } => {
                    let value = {
                        let ctx = EvalCtx {
                            graph: src.g(),
                            env,
                            params,
                        };
                        ctx.eval_value(expr, row)?
                    };
                    (var, vec![(key.clone(), value)])
                }
                SetItem::MergeMap { var, expr } => {
                    let value = {
                        let ctx = EvalCtx {
                            graph: src.g(),
                            env,
                            params,
                        };
                        ctx.eval_value(expr, row)?
                    };
                    match value {
                        Value::Map(m) => (var, m.into_iter().collect::<Vec<_>>()),
                        Value::Null => (var, Vec::new()),
                        other => {
                            return Err(CypherError::runtime(format!(
                                "SET += expects a map, got {}",
                                other.type_name()
                            )))
                        }
                    }
                }
            };
            let slot = env.slot(var).ok_or_else(|| {
                CypherError::runtime(format!("variable '{var}' is not defined"))
            })?;
            for (key, value) in updates {
                match &row[slot] {
                    Entry::Node(id) => src.g_mut()?.set_node_prop(*id, &key, value)?,
                    Entry::Rel(id) => src.g_mut()?.set_rel_prop(*id, &key, value)?,
                    Entry::Val(Value::Null) => {}
                    _ => {
                        return Err(CypherError::runtime(format!(
                            "SET target '{var}' is not an entity"
                        )))
                    }
                }
            }
        }
    }
    Ok(())
}

fn apply_delete<G: GraphSource>(
    src: &mut G,
    env: &Env,
    rows: &[Row],
    vars: &[String],
    detach: bool,
) -> Result<(), CypherError> {
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut rels: Vec<RelId> = Vec::new();
    for row in rows {
        for var in vars {
            let slot = env.slot(var).ok_or_else(|| {
                CypherError::runtime(format!("variable '{var}' is not defined"))
            })?;
            match &row[slot] {
                Entry::Node(id) => nodes.push(*id),
                Entry::Rel(id) => rels.push(*id),
                Entry::Val(Value::Null) => {}
                _ => {
                    return Err(CypherError::runtime(format!(
                        "cannot DELETE non-entity '{var}'"
                    )))
                }
            }
        }
    }
    nodes.sort_unstable();
    nodes.dedup();
    rels.sort_unstable();
    rels.dedup();
    let g = src.g_mut()?;
    for r in rels {
        if g.rel(r).is_some() {
            g.remove_rel(r)?;
        }
    }
    for n in nodes {
        if g.node(n).is_some() {
            if !detach && g.degree(n, Direction::Both) > 0 {
                return Err(CypherError::runtime(
                    "cannot delete a node with relationships; use DETACH DELETE",
                ));
            }
            g.remove_node(n)?;
        }
    }
    Ok(())
}
