//! Query result tables.

use iyp_graphdb::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A materialized query result: named columns and value rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct QueryResult {
    /// Output column names, in `RETURN` order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// A result with no rows and no columns.
    pub fn empty() -> Self {
        QueryResult::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a 1×1 result, if that is the shape.
    pub fn single_value(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Iterates the values of one column.
    pub fn column(&self, name: &str) -> Option<Vec<&Value>> {
        let i = self.column_index(name)?;
        Some(self.rows.iter().map(|r| &r[i]).collect())
    }

    /// A canonical, order-insensitive fingerprint of the result contents,
    /// used to compare a generated query's result against a gold query's
    /// result. Column names are ignored (aliases differ harmlessly); row
    /// order is ignored unless the caller says it matters.
    pub fn fingerprint(&self, ordered: bool) -> String {
        let mut rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| r.iter().map(canonical_value).collect::<Vec<_>>().join("|"))
            .collect();
        if !ordered {
            rows.sort();
        }
        rows.join("\n")
    }
}

fn canonical_value(v: &Value) -> String {
    match v {
        Value::Float(f) => {
            // Fold float noise so 33.299999999 and 33.3 fingerprint equal.
            format!("{:.6}", f)
        }
        Value::Int(i) => format!("{:.6}", *i as f64),
        Value::List(items) => format!(
            "[{}]",
            items
                .iter()
                .map(canonical_value)
                .collect::<Vec<_>>()
                .join(",")
        ),
        Value::Map(m) => format!(
            "{{{}}}",
            m.iter()
                .map(|(k, v)| format!("{k}:{}", canonical_value(v)))
                .collect::<Vec<_>>()
                .join(",")
        ),
        other => other.to_string(),
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Simple fixed-width table.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{:width$}", c, width = widths[i])?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-")
        )?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(
                    f,
                    "{:width$}",
                    cell,
                    width = widths.get(i).copied().unwrap_or(0)
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qr(cols: &[&str], rows: Vec<Vec<Value>>) -> QueryResult {
        QueryResult {
            columns: cols.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    #[test]
    fn single_value_shape() {
        let r = qr(&["n"], vec![vec![Value::Int(5)]]);
        assert_eq!(r.single_value(), Some(&Value::Int(5)));
        let r2 = qr(&["n"], vec![vec![Value::Int(5)], vec![Value::Int(6)]]);
        assert!(r2.single_value().is_none());
    }

    #[test]
    fn fingerprint_order_insensitive() {
        let a = qr(&["x"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let b = qr(&["y"], vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
        assert_eq!(a.fingerprint(false), b.fingerprint(false));
        assert_ne!(a.fingerprint(true), b.fingerprint(true));
    }

    #[test]
    fn fingerprint_folds_float_noise_and_int_float() {
        let a = qr(&["x"], vec![vec![Value::Float(33.3)]]);
        let b = qr(&["x"], vec![vec![Value::Float(33.300000001)]]);
        assert_eq!(a.fingerprint(false), b.fingerprint(false));
        let c = qr(&["x"], vec![vec![Value::Int(5)]]);
        let d = qr(&["x"], vec![vec![Value::Float(5.0)]]);
        assert_eq!(c.fingerprint(false), d.fingerprint(false));
    }

    #[test]
    fn display_renders_table() {
        let r = qr(
            &["asn", "name"],
            vec![vec![Value::Int(2497), Value::from("IIJ")]],
        );
        let s = r.to_string();
        assert!(s.contains("asn"));
        assert!(s.contains("2497"));
        assert!(s.contains("IIJ"));
    }

    #[test]
    fn column_access() {
        let r = qr(
            &["asn", "name"],
            vec![
                vec![Value::Int(1), Value::from("a")],
                vec![Value::Int(2), Value::from("b")],
            ],
        );
        let col = r.column("asn").unwrap();
        assert_eq!(col, vec![&Value::Int(1), &Value::Int(2)]);
        assert!(r.column("missing").is_none());
    }
}
