//! Hand-written tokenizer for the Cypher subset.

use crate::error::CypherError;
use crate::token::{Keyword, Pos, Tok, Token};

/// Tokenizes a query string. Returns the token list terminated by
/// [`Tok::Eof`], or a positioned lexical error.
pub fn lex(src: &str) -> Result<Vec<Token>, CypherError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
            offset: self.i,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn run(mut self) -> Result<Vec<Token>, CypherError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos();
            let Some(b) = self.peek() else {
                out.push(Token { tok: Tok::Eof, pos });
                return Ok(out);
            };
            let tok = match b {
                b'(' => self.one(Tok::LParen),
                b')' => self.one(Tok::RParen),
                b'[' => self.one(Tok::LBracket),
                b']' => self.one(Tok::RBracket),
                b'{' => self.one(Tok::LBrace),
                b'}' => self.one(Tok::RBrace),
                b',' => self.one(Tok::Comma),
                b':' => self.one(Tok::Colon),
                b'|' => self.one(Tok::Pipe),
                b'+' => self.one(Tok::Plus),
                b'*' => self.one(Tok::Star),
                b'%' => self.one(Tok::Percent),
                b'^' => self.one(Tok::Caret),
                b'.' => {
                    if self.peek2() == Some(b'.') {
                        self.bump();
                        self.bump();
                        Tok::DotDot
                    } else if self.peek2().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                        self.number(pos)?
                    } else {
                        self.one(Tok::Dot)
                    }
                }
                b'/' => {
                    // Comments are stripped in skip_trivia; a lone slash is division.
                    self.one(Tok::Slash)
                }
                b'-' => {
                    if self.peek2() == Some(b'>') {
                        self.bump();
                        self.bump();
                        Tok::ArrowRight
                    } else {
                        self.one(Tok::Minus)
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => self.one(Tok::Le),
                        Some(b'>') => self.one(Tok::Neq),
                        Some(b'-') => self.one(Tok::ArrowLeft),
                        _ => Tok::Lt,
                    }
                }
                b'>' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => self.one(Tok::Ge),
                        _ => Tok::Gt,
                    }
                }
                b'=' => {
                    self.bump();
                    match self.peek() {
                        Some(b'~') => self.one(Tok::RegexMatch),
                        _ => Tok::Eq,
                    }
                }
                b'\'' | b'"' => self.string(pos)?,
                b'`' => self.backtick_ident(pos)?,
                b'$' => {
                    self.bump();
                    let name = self.ident_text();
                    if name.is_empty() {
                        return Err(CypherError::lex("expected parameter name after '$'", pos));
                    }
                    Tok::Param(name)
                }
                b'0'..=b'9' => self.number(pos)?,
                b if b.is_ascii_alphabetic() || b == b'_' => {
                    let text = self.ident_text();
                    match Keyword::from_ident(&text) {
                        Some(kw) => Tok::Kw(kw),
                        None => Tok::Ident(text),
                    }
                }
                other => {
                    return Err(CypherError::lex(
                        format!("unexpected character '{}'", other as char),
                        pos,
                    ))
                }
            };
            out.push(Token { tok, pos });
        }
    }

    fn one(&mut self, tok: Tok) -> Tok {
        self.bump();
        tok
    }

    fn skip_trivia(&mut self) -> Result<(), CypherError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let pos = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => {
                                return Err(CypherError::lex("unterminated block comment", pos))
                            }
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident_text(&mut self) -> String {
        let start = self.i;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        self.src[start..self.i].to_string()
    }

    fn string(&mut self, pos: Pos) -> Result<Tok, CypherError> {
        let quote = self.bump().expect("caller saw a quote");
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(CypherError::lex("unterminated string literal", pos)),
                Some(b) if b == quote => return Ok(Tok::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'\'') => out.push('\''),
                    Some(b'"') => out.push('"'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other as char);
                    }
                    None => return Err(CypherError::lex("unterminated escape", pos)),
                },
                Some(b) => {
                    // Collect full UTF-8 sequences.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let len = utf8_len(b);
                        let start = self.i - 1;
                        for _ in 1..len {
                            self.bump();
                        }
                        out.push_str(&self.src[start..self.i]);
                    }
                }
            }
        }
    }

    fn backtick_ident(&mut self, pos: Pos) -> Result<Tok, CypherError> {
        self.bump(); // opening backtick
        let start = self.i;
        loop {
            match self.peek() {
                None => return Err(CypherError::lex("unterminated backtick identifier", pos)),
                Some(b'`') => {
                    let text = self.src[start..self.i].to_string();
                    self.bump();
                    return Ok(Tok::Ident(text));
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn number(&mut self, pos: Pos) -> Result<Tok, CypherError> {
        let start = self.i;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' => {
                    // `1..3` range syntax: the dot belongs to DotDot, not the number.
                    if self.peek2() == Some(b'.') || is_float {
                        break;
                    }
                    // `1.foo` property access on a literal is not supported;
                    // treat digit-dot-digit as float, otherwise stop.
                    if self
                        .bytes
                        .get(self.i + 1)
                        .map(|c| c.is_ascii_digit())
                        .unwrap_or(false)
                    {
                        is_float = true;
                        self.bump();
                    } else {
                        break;
                    }
                }
                b'e' | b'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.i];
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|e| CypherError::lex(format!("bad float literal '{text}': {e}"), pos))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|e| CypherError::lex(format!("bad integer literal '{text}': {e}"), pos))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("match RETURN Where"),
            vec![
                Tok::Kw(Keyword::Match),
                Tok::Kw(Keyword::Return),
                Tok::Kw(Keyword::Where),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn pattern_tokens() {
        assert_eq!(
            toks("(a:AS)-[:ORIGINATE]->(p:Prefix)"),
            vec![
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Colon,
                // `AS` the label lexes as the keyword; the parser maps it
                // back to an identifier in label positions.
                Tok::Kw(Keyword::As),
                Tok::RParen,
                Tok::Minus,
                Tok::LBracket,
                Tok::Colon,
                Tok::Ident("ORIGINATE".into()),
                Tok::RBracket,
                Tok::ArrowRight,
                Tok::LParen,
                Tok::Ident("p".into()),
                Tok::Colon,
                Tok::Ident("Prefix".into()),
                Tok::RParen,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("2.75"), vec![Tok::Float(2.75), Tok::Eof]);
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
        // Range syntax is not a float.
        assert_eq!(
            toks("*1..3"),
            vec![Tok::Star, Tok::Int(1), Tok::DotDot, Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks("'IIJ'"), vec![Tok::Str("IIJ".into()), Tok::Eof]);
        assert_eq!(toks("\"a\\n\""), vec![Tok::Str("a\n".into()), Tok::Eof]);
        assert_eq!(toks("'日本'"), vec![Tok::Str("日本".into()), Tok::Eof]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a <= b <> c >= d =~ e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Neq,
                Tok::Ident("c".into()),
                Tok::Ge,
                Tok::Ident("d".into()),
                Tok::RegexMatch,
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn arrows_vs_comparisons() {
        assert_eq!(
            toks("<-[r]-"),
            vec![
                Tok::ArrowLeft,
                Tok::LBracket,
                Tok::Ident("r".into()),
                Tok::RBracket,
                Tok::Minus,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_stripped() {
        assert_eq!(
            toks("RETURN 1 // trailing\n/* block\ncomment */ + 2"),
            vec![
                Tok::Kw(Keyword::Return),
                Tok::Int(1),
                Tok::Plus,
                Tok::Int(2),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn params_and_backticks() {
        assert_eq!(
            toks("$asn `weird name`"),
            vec![
                Tok::Param("asn".into()),
                Tok::Ident("weird name".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors_are_positioned() {
        let err = lex("RETURN 'oops").unwrap_err();
        assert_eq!(err.pos.unwrap().col, 8);
        let err = lex("RETURN @").unwrap_err();
        assert!(err.message.contains('@'));
    }
}
