//! Abstract syntax tree for the Cypher subset.

use iyp_graphdb::Value;

/// A complete query: a sequence of clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Clauses in source order.
    pub clauses: Vec<Clause>,
}

/// A top-level clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `MATCH` / `OPTIONAL MATCH` with an optional `WHERE`.
    Match(MatchClause),
    /// `UNWIND expr AS var`.
    Unwind {
        /// The list expression.
        expr: Expr,
        /// The introduced variable.
        var: String,
    },
    /// `WITH items [WHERE] [ORDER BY] [SKIP] [LIMIT]`.
    With(ProjectionClause),
    /// `RETURN items [ORDER BY] [SKIP] [LIMIT]`.
    Return(ProjectionClause),
    /// `CREATE pattern` (used by the dataset loader and tests).
    Create {
        /// Patterns to create.
        patterns: Vec<PatternPart>,
    },
    /// `MERGE (n:Label {props})` — single-node merge.
    Merge {
        /// The node pattern to match-or-create.
        node: NodePattern,
    },
    /// `SET var.key = expr, ...`.
    Set {
        /// Assignments.
        items: Vec<SetItem>,
    },
    /// `DELETE` / `DETACH DELETE`.
    Delete {
        /// Variables to delete.
        vars: Vec<String>,
        /// Whether relationships are removed implicitly.
        detach: bool,
    },
    /// `UNION [ALL]` — separates two complete sub-queries whose results
    /// are combined (deduplicated unless `all`).
    Union {
        /// Keep duplicate rows?
        all: bool,
    },
}

/// One `SET` action.
#[derive(Debug, Clone, PartialEq)]
pub enum SetItem {
    /// `var.key = expr` (also the desugaring of `REMOVE var.key`, with a
    /// null expression).
    Prop {
        /// Entity variable.
        var: String,
        /// Property key.
        key: String,
        /// Value expression.
        expr: Expr,
    },
    /// `var += {map}` — merge every entry of a map expression into the
    /// entity's properties (null values delete keys).
    MergeMap {
        /// Entity variable.
        var: String,
        /// Map expression.
        expr: Expr,
    },
}

/// A `MATCH` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchClause {
    /// True for `OPTIONAL MATCH`.
    pub optional: bool,
    /// Comma-separated pattern parts.
    pub patterns: Vec<PatternPart>,
    /// Attached `WHERE` predicate.
    pub where_clause: Option<Expr>,
}

/// One comma-separated element of a pattern: a node followed by zero or
/// more (relationship, node) hops. May be bound to a path variable.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternPart {
    /// `p = (...)-[...]->(...)` path binding, if present.
    pub path_var: Option<String>,
    /// `shortestPath(...)` wrapper: keep only the minimal-length path per
    /// distinct endpoint pair. Requires a path binding.
    pub shortest: bool,
    /// The first node.
    pub start: NodePattern,
    /// Subsequent hops.
    pub hops: Vec<(RelPattern, NodePattern)>,
}

/// A node pattern `(var:Label1:Label2 {key: expr})`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// Bound variable, if named.
    pub var: Option<String>,
    /// Required labels.
    pub labels: Vec<String>,
    /// Inline property equality constraints.
    pub props: Vec<(String, Expr)>,
}

/// Direction of a relationship pattern in source syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelDir {
    /// `-[..]->`
    Right,
    /// `<-[..]-`
    Left,
    /// `-[..]-`
    Undirected,
}

/// A relationship pattern `-[var:TYPE1|TYPE2 *min..max {key: expr}]->`.
#[derive(Debug, Clone, PartialEq)]
pub struct RelPattern {
    /// Bound variable, if named.
    pub var: Option<String>,
    /// Allowed relationship types (empty = any).
    pub types: Vec<String>,
    /// Arrow direction.
    pub dir: RelDir,
    /// Variable-length range, if starred. `(1, Some(1))` is a plain hop.
    pub hops: HopRange,
    /// Inline property equality constraints.
    pub props: Vec<(String, Expr)>,
}

/// Hop count range for variable-length patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRange {
    /// Minimum hops.
    pub min: u32,
    /// Maximum hops (`None` = unbounded, capped by the executor).
    pub max: Option<u32>,
}

impl HopRange {
    /// A single fixed hop (the non-starred case).
    pub fn single() -> Self {
        HopRange {
            min: 1,
            max: Some(1),
        }
    }

    /// Is this a plain single hop?
    pub fn is_single(&self) -> bool {
        self.min == 1 && self.max == Some(1)
    }
}

/// `WITH` / `RETURN` body.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionClause {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Projected items; empty plus `star` for `RETURN *`.
    pub items: Vec<ProjectionItem>,
    /// `*` projection (keep all current variables).
    pub star: bool,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `SKIP` expression.
    pub skip: Option<Expr>,
    /// `LIMIT` expression.
    pub limit: Option<Expr>,
    /// `WHERE` after `WITH`.
    pub where_clause: Option<Expr>,
}

/// One projected expression with its output name.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionItem {
    /// The expression.
    pub expr: Expr,
    /// `AS alias`, if given.
    pub alias: Option<String>,
}

impl ProjectionItem {
    /// The output column name: the alias if present, else the source text
    /// rendering of the expression.
    pub fn name(&self) -> String {
        match &self.alias {
            Some(a) => a.clone(),
            None => crate::pretty::expr_to_string(&self.expr),
        }
    }
}

/// An `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending?
    pub ascending: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Xor,
    In,
    StartsWith,
    EndsWith,
    Contains,
    RegexMatch,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Variable reference.
    Var(String),
    /// `$param`.
    Param(String),
    /// `expr.key` property access (also map access).
    Prop(Box<Expr>, String),
    /// `expr[index]` subscript.
    Index(Box<Expr>, Box<Expr>),
    /// `expr[lo..hi]` list slice; either bound optional.
    Slice(Box<Expr>, Option<Box<Expr>>, Option<Box<Expr>>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// `expr IS NULL` / `IS NOT NULL` (bool = negated).
    IsNull(Box<Expr>, bool),
    /// Function call. Aggregations are also parsed as calls and split out
    /// during planning. `distinct` applies to aggregation arguments.
    Call {
        /// Lower-cased function name.
        name: String,
        /// `DISTINCT` inside the call parentheses.
        distinct: bool,
        /// Arguments; `count(*)` has a single `Star` argument.
        args: Vec<Expr>,
    },
    /// `count(*)`'s star, and `RETURN *`'s marker inside calls.
    Star,
    /// List literal.
    List(Vec<Expr>),
    /// Map literal.
    Map(Vec<(String, Expr)>),
    /// `CASE [expr] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        /// Operand for the simple form; `None` for the searched form.
        operand: Option<Box<Expr>>,
        /// `(when, then)` arms.
        arms: Vec<(Expr, Expr)>,
        /// `ELSE` result.
        default: Option<Box<Expr>>,
    },
    /// List comprehension `[x IN list WHERE pred | map]`.
    ListComp {
        /// Iteration variable.
        var: String,
        /// Source list.
        list: Box<Expr>,
        /// Filter predicate.
        pred: Option<Box<Expr>>,
        /// Mapping expression (`None` keeps the element).
        map: Option<Box<Expr>>,
    },
    /// `EXISTS { MATCH ... }` / `exists(expr)` simplified: property-exists.
    ExistsProp(Box<Expr>, String),
    /// `exists((a)-[:T]->(:Label))` — pattern-existence predicate. At
    /// least one endpoint variable must be bound at evaluation time.
    ExistsPattern(Box<PatternPart>),
}

impl Expr {
    /// Does this expression contain an aggregation call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Call { name, args, .. } => {
                is_aggregate_fn(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Prop(e, _) => e.contains_aggregate(),
            Expr::Index(a, b) => a.contains_aggregate() || b.contains_aggregate(),
            Expr::Slice(a, lo, hi) => {
                a.contains_aggregate()
                    || lo.as_ref().is_some_and(|e| e.contains_aggregate())
                    || hi.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            Expr::Bin(_, a, b) => a.contains_aggregate() || b.contains_aggregate(),
            Expr::Un(_, a) => a.contains_aggregate(),
            Expr::IsNull(a, _) => a.contains_aggregate(),
            Expr::List(items) => items.iter().any(Expr::contains_aggregate),
            Expr::Map(items) => items.iter().any(|(_, e)| e.contains_aggregate()),
            Expr::Case {
                operand,
                arms,
                default,
            } => {
                operand.as_ref().is_some_and(|e| e.contains_aggregate())
                    || arms
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || default.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            Expr::ListComp {
                list, pred, map, ..
            } => {
                list.contains_aggregate()
                    || pred.as_ref().is_some_and(|e| e.contains_aggregate())
                    || map.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            Expr::ExistsProp(e, _) => e.contains_aggregate(),
            Expr::ExistsPattern(_) => false,
            Expr::Lit(_) | Expr::Var(_) | Expr::Param(_) | Expr::Star => false,
        }
    }

    /// Free variables referenced by the expression (excluding
    /// comprehension-bound names).
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Prop(e, _) | Expr::Un(_, e) | Expr::IsNull(e, _) | Expr::ExistsProp(e, _) => {
                e.free_vars(out)
            }
            Expr::Index(a, b) | Expr::Bin(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Expr::Slice(a, lo, hi) => {
                a.free_vars(out);
                if let Some(e) = lo {
                    e.free_vars(out);
                }
                if let Some(e) = hi {
                    e.free_vars(out);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.free_vars(out);
                }
            }
            Expr::List(items) => {
                for e in items {
                    e.free_vars(out);
                }
            }
            Expr::Map(items) => {
                for (_, e) in items {
                    e.free_vars(out);
                }
            }
            Expr::Case {
                operand,
                arms,
                default,
            } => {
                if let Some(e) = operand {
                    e.free_vars(out);
                }
                for (w, t) in arms {
                    w.free_vars(out);
                    t.free_vars(out);
                }
                if let Some(e) = default {
                    e.free_vars(out);
                }
            }
            Expr::ListComp {
                var,
                list,
                pred,
                map,
            } => {
                list.free_vars(out);
                let mut inner = Vec::new();
                if let Some(e) = pred {
                    e.free_vars(&mut inner);
                }
                if let Some(e) = map {
                    e.free_vars(&mut inner);
                }
                for v in inner {
                    if v != *var && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            Expr::ExistsPattern(part) => {
                let mut push = |v: &Option<String>| {
                    if let Some(v) = v {
                        if !out.contains(v) {
                            out.push(v.clone());
                        }
                    }
                };
                push(&part.start.var);
                for (rel, node) in &part.hops {
                    push(&rel.var);
                    push(&node.var);
                }
            }
            Expr::Lit(_) | Expr::Param(_) | Expr::Star => {}
        }
    }
}

/// Is `name` (lower-cased) an aggregation function?
pub fn is_aggregate_fn(name: &str) -> bool {
    matches!(
        name,
        "count" | "sum" | "avg" | "min" | "max" | "collect" | "stdev" | "percentilecont"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let e = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Call {
                name: "count".into(),
                distinct: false,
                args: vec![Expr::Star],
            }),
            Box::new(Expr::Lit(Value::Int(100))),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::Var("x".into()).contains_aggregate());
    }

    #[test]
    fn free_vars_skips_comprehension_binder() {
        let e = Expr::ListComp {
            var: "x".into(),
            list: Box::new(Expr::Var("xs".into())),
            pred: Some(Box::new(Expr::Bin(
                BinOp::Gt,
                Box::new(Expr::Var("x".into())),
                Box::new(Expr::Var("threshold".into())),
            ))),
            map: None,
        };
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["xs".to_string(), "threshold".to_string()]);
    }
}
