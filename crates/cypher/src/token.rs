//! Token definitions for the Cypher lexer.

use std::fmt;

/// A source position (1-based line/column plus byte offset), carried on
/// every token and every error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Byte offset into the query string.
    pub offset: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Keywords recognized by the parser. Cypher keywords are case-insensitive;
/// the lexer normalizes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Match,
    Optional,
    Where,
    Return,
    With,
    Unwind,
    As,
    Order,
    By,
    Asc,
    Desc,
    Skip,
    Limit,
    Distinct,
    And,
    Or,
    Xor,
    Not,
    In,
    Starts,
    Ends,
    Contains,
    Is,
    Null,
    True,
    False,
    Case,
    When,
    Then,
    Else,
    End,
    Create,
    Merge,
    Set,
    Delete,
    Detach,
    Count,
    Exists,
    Union,
    All,
    Remove,
}

impl Keyword {
    /// Parses a keyword from an identifier (case-insensitive).
    pub fn from_ident(s: &str) -> Option<Keyword> {
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "MATCH" => Keyword::Match,
            "OPTIONAL" => Keyword::Optional,
            "WHERE" => Keyword::Where,
            "RETURN" => Keyword::Return,
            "WITH" => Keyword::With,
            "UNWIND" => Keyword::Unwind,
            "AS" => Keyword::As,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "ASC" | "ASCENDING" => Keyword::Asc,
            "DESC" | "DESCENDING" => Keyword::Desc,
            "SKIP" => Keyword::Skip,
            "LIMIT" => Keyword::Limit,
            "DISTINCT" => Keyword::Distinct,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "XOR" => Keyword::Xor,
            "NOT" => Keyword::Not,
            "IN" => Keyword::In,
            "STARTS" => Keyword::Starts,
            "ENDS" => Keyword::Ends,
            "CONTAINS" => Keyword::Contains,
            "IS" => Keyword::Is,
            "NULL" => Keyword::Null,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "CASE" => Keyword::Case,
            "WHEN" => Keyword::When,
            "THEN" => Keyword::Then,
            "ELSE" => Keyword::Else,
            "END" => Keyword::End,
            "CREATE" => Keyword::Create,
            "MERGE" => Keyword::Merge,
            "SET" => Keyword::Set,
            "DELETE" => Keyword::Delete,
            "DETACH" => Keyword::Detach,
            "EXISTS" => Keyword::Exists,
            "UNION" => Keyword::Union,
            "REMOVE" => Keyword::Remove,
            "ALL" => Keyword::All,
            _ => return None,
        })
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword (case-insensitive in source).
    Kw(Keyword),
    /// Identifier: variable, label, relationship type, function or
    /// property name. Backtick-quoted identifiers also land here.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes and escapes already processed).
    Str(String),
    /// `$name` query parameter.
    Param(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `|`
    Pipe,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=~` regex-ish match (we implement substring/wildcard semantics)
    RegexMatch,
    /// `->`
    ArrowRight,
    /// `<-`
    ArrowLeft,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Kw(k) => write!(f, "{k:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Param(p) => write!(f, "${p}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::Dot => write!(f, "."),
            Tok::DotDot => write!(f, ".."),
            Tok::Pipe => write!(f, "|"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Caret => write!(f, "^"),
            Tok::Eq => write!(f, "="),
            Tok::Neq => write!(f, "<>"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::RegexMatch => write!(f, "=~"),
            Tok::ArrowRight => write!(f, "->"),
            Tok::ArrowLeft => write!(f, "<-"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}
