//! Built-in scalar and entity functions.

use crate::error::CypherError;
use crate::eval::Entry;
use iyp_graphdb::{Graph, Value};

/// Invokes a built-in function by (lower-cased) name.
pub fn call_function(graph: &Graph, name: &str, args: &[Entry]) -> Result<Value, CypherError> {
    let arity = |n: usize| -> Result<(), CypherError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(CypherError::runtime(format!(
                "{name}() expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    let val = |i: usize| args[i].to_value(graph);

    match name {
        // ---- entity functions ----
        "id" => {
            arity(1)?;
            Ok(match &args[0] {
                Entry::Node(n) => Value::Int(n.0 as i64),
                Entry::Rel(r) => Value::Int(r.0 as i64),
                Entry::Val(Value::Null) => Value::Null,
                _ => return Err(CypherError::runtime("id() expects a node or relationship")),
            })
        }
        "labels" => {
            arity(1)?;
            Ok(match &args[0] {
                Entry::Node(n) => {
                    Value::List(graph.node_labels(*n).into_iter().map(Value::from).collect())
                }
                Entry::Val(Value::Null) => Value::Null,
                _ => return Err(CypherError::runtime("labels() expects a node")),
            })
        }
        "type" => {
            arity(1)?;
            Ok(match &args[0] {
                Entry::Rel(r) => graph
                    .rel(*r)
                    .map(|rec| Value::from(graph.rel_type_name(rec.ty)))
                    .unwrap_or(Value::Null),
                Entry::Val(Value::Null) => Value::Null,
                _ => return Err(CypherError::runtime("type() expects a relationship")),
            })
        }
        "startnode" | "endnode" => {
            arity(1)?;
            Ok(match &args[0] {
                Entry::Rel(r) => graph
                    .rel(*r)
                    .map(|rec| {
                        let n = if name == "startnode" {
                            rec.src
                        } else {
                            rec.dst
                        };
                        Entry::Node(n).to_value(graph)
                    })
                    .unwrap_or(Value::Null),
                Entry::Val(Value::Null) => Value::Null,
                _ => {
                    return Err(CypherError::runtime(
                        "startNode()/endNode() expect a relationship",
                    ))
                }
            })
        }
        "properties" => {
            arity(1)?;
            Ok(match &args[0] {
                Entry::Node(n) => graph
                    .node(*n)
                    .map(|rec| rec.props.to_value())
                    .unwrap_or(Value::Null),
                Entry::Rel(r) => graph
                    .rel(*r)
                    .map(|rec| rec.props.to_value())
                    .unwrap_or(Value::Null),
                Entry::Val(v @ Value::Map(_)) => v.clone(),
                Entry::Val(Value::Null) => Value::Null,
                _ => {
                    return Err(CypherError::runtime(
                        "properties() expects an entity or map",
                    ))
                }
            })
        }
        "keys" => {
            arity(1)?;
            let v = match &args[0] {
                Entry::Node(n) => graph
                    .node(*n)
                    .map(|rec| rec.props.to_value())
                    .unwrap_or(Value::Null),
                Entry::Rel(r) => graph
                    .rel(*r)
                    .map(|rec| rec.props.to_value())
                    .unwrap_or(Value::Null),
                e => e.to_value(graph),
            };
            Ok(match v {
                Value::Map(m) => Value::List(m.keys().map(|k| Value::from(k.as_str())).collect()),
                Value::Null => Value::Null,
                _ => return Err(CypherError::runtime("keys() expects a map or entity")),
            })
        }
        "length" | "size" => {
            arity(1)?;
            Ok(match &args[0] {
                Entry::Path(_, rels) => Value::Int(rels.len() as i64),
                e => match e.to_value(graph) {
                    Value::List(items) => Value::Int(items.len() as i64),
                    Value::Str(s) => Value::Int(s.chars().count() as i64),
                    Value::Map(m) => {
                        // A path projected to a map still answers length().
                        match m.get("_rels") {
                            Some(Value::List(rels)) => Value::Int(rels.len() as i64),
                            _ => Value::Int(m.len() as i64),
                        }
                    }
                    Value::Null => Value::Null,
                    other => {
                        return Err(CypherError::runtime(format!(
                            "{name}() cannot measure {}",
                            other.type_name()
                        )))
                    }
                },
            })
        }
        "nodes" | "relationships" => {
            arity(1)?;
            Ok(match &args[0] {
                Entry::Path(nodes, rels) => {
                    if name == "nodes" {
                        Value::List(
                            nodes
                                .iter()
                                .map(|n| Entry::Node(*n).to_value(graph))
                                .collect(),
                        )
                    } else {
                        Value::List(
                            rels.iter()
                                .map(|r| Entry::Rel(*r).to_value(graph))
                                .collect(),
                        )
                    }
                }
                Entry::Val(Value::Null) => Value::Null,
                _ => return Err(CypherError::runtime(format!("{name}() expects a path"))),
            })
        }

        // ---- scalar functions ----
        "coalesce" => {
            for a in args {
                let v = a.to_value(graph);
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "head" => {
            arity(1)?;
            Ok(match val(0) {
                Value::List(items) => items.first().cloned().unwrap_or(Value::Null),
                Value::Null => Value::Null,
                _ => return Err(CypherError::runtime("head() expects a list")),
            })
        }
        "last" => {
            arity(1)?;
            Ok(match val(0) {
                Value::List(items) => items.last().cloned().unwrap_or(Value::Null),
                Value::Null => Value::Null,
                _ => return Err(CypherError::runtime("last() expects a list")),
            })
        }
        "reverse" => {
            arity(1)?;
            Ok(match val(0) {
                Value::List(mut items) => {
                    items.reverse();
                    Value::List(items)
                }
                Value::Str(s) => Value::Str(s.chars().rev().collect()),
                Value::Null => Value::Null,
                _ => return Err(CypherError::runtime("reverse() expects a list or string")),
            })
        }
        "range" => {
            if args.len() < 2 || args.len() > 3 {
                return Err(CypherError::runtime("range() expects 2 or 3 arguments"));
            }
            let lo = val(0)
                .as_int()
                .ok_or_else(|| CypherError::runtime("range() bounds must be integers"))?;
            let hi = val(1)
                .as_int()
                .ok_or_else(|| CypherError::runtime("range() bounds must be integers"))?;
            let step = if args.len() == 3 {
                val(2)
                    .as_int()
                    .ok_or_else(|| CypherError::runtime("range() step must be an integer"))?
            } else {
                1
            };
            if step == 0 {
                return Err(CypherError::runtime("range() step must not be zero"));
            }
            let mut out = Vec::new();
            let mut x = lo;
            while (step > 0 && x <= hi) || (step < 0 && x >= hi) {
                out.push(Value::Int(x));
                x += step;
                if out.len() > 1_000_000 {
                    return Err(CypherError::runtime("range() too large"));
                }
            }
            Ok(Value::List(out))
        }

        // ---- string functions ----
        "toupper" => str_fn(name, graph, args, |s| s.to_uppercase()),
        "tolower" => str_fn(name, graph, args, |s| s.to_lowercase()),
        "trim" => str_fn(name, graph, args, |s| s.trim().to_string()),
        "ltrim" => str_fn(name, graph, args, |s| s.trim_start().to_string()),
        "rtrim" => str_fn(name, graph, args, |s| s.trim_end().to_string()),
        "tostring" => {
            arity(1)?;
            Ok(match val(0) {
                Value::Null => Value::Null,
                v => Value::Str(v.to_string()),
            })
        }
        "tointeger" => {
            arity(1)?;
            Ok(match val(0) {
                Value::Int(i) => Value::Int(i),
                Value::Float(f) => Value::Int(f as i64),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .or_else(|_| s.trim().parse::<f64>().map(|f| Value::Int(f as i64)))
                    .unwrap_or(Value::Null),
                Value::Bool(b) => Value::Int(i64::from(b)),
                _ => Value::Null,
            })
        }
        "tofloat" => {
            arity(1)?;
            Ok(match val(0) {
                Value::Int(i) => Value::Float(i as f64),
                Value::Float(f) => Value::Float(f),
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Float)
                    .unwrap_or(Value::Null),
                _ => Value::Null,
            })
        }
        "split" => {
            arity(2)?;
            match (val(0), val(1)) {
                (Value::Str(s), Value::Str(sep)) => Ok(Value::List(
                    s.split(sep.as_str()).map(Value::from).collect(),
                )),
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                _ => Err(CypherError::runtime("split() expects two strings")),
            }
        }
        "replace" => {
            arity(3)?;
            match (val(0), val(1), val(2)) {
                (Value::Str(s), Value::Str(from), Value::Str(to)) => {
                    Ok(Value::Str(s.replace(from.as_str(), to.as_str())))
                }
                _ => Ok(Value::Null),
            }
        }
        "substring" => {
            if args.len() < 2 || args.len() > 3 {
                return Err(CypherError::runtime("substring() expects 2 or 3 arguments"));
            }
            match (val(0), val(1)) {
                (Value::Str(s), Value::Int(start)) => {
                    let chars: Vec<char> = s.chars().collect();
                    let start = (start.max(0) as usize).min(chars.len());
                    let end = if args.len() == 3 {
                        match val(2) {
                            Value::Int(len) => (start + len.max(0) as usize).min(chars.len()),
                            _ => chars.len(),
                        }
                    } else {
                        chars.len()
                    };
                    Ok(Value::Str(chars[start..end].iter().collect()))
                }
                _ => Ok(Value::Null),
            }
        }
        "left" => {
            arity(2)?;
            match (val(0), val(1)) {
                (Value::Str(s), Value::Int(n)) => {
                    Ok(Value::Str(s.chars().take(n.max(0) as usize).collect()))
                }
                _ => Ok(Value::Null),
            }
        }
        "right" => {
            arity(2)?;
            match (val(0), val(1)) {
                (Value::Str(s), Value::Int(n)) => {
                    let chars: Vec<char> = s.chars().collect();
                    let n = (n.max(0) as usize).min(chars.len());
                    Ok(Value::Str(chars[chars.len() - n..].iter().collect()))
                }
                _ => Ok(Value::Null),
            }
        }

        // ---- numeric functions ----
        "abs" => num_fn(name, graph, args, |f| f.abs(), Some(|i: i64| i.abs())),
        "sign" => num_fn(name, graph, args, |f| f.signum(), Some(|i: i64| i.signum())),
        "sqrt" => num_fn(name, graph, args, |f| f.sqrt(), None),
        "exp" => num_fn(name, graph, args, |f| f.exp(), None),
        "log" => num_fn(name, graph, args, |f| f.ln(), None),
        "log10" => num_fn(name, graph, args, |f| f.log10(), None),
        "ceil" => num_fn(name, graph, args, |f| f.ceil(), Some(|i: i64| i)),
        "floor" => num_fn(name, graph, args, |f| f.floor(), Some(|i: i64| i)),
        "round" => {
            if args.is_empty() || args.len() > 2 {
                return Err(CypherError::runtime("round() expects 1 or 2 arguments"));
            }
            let v = val(0);
            if v.is_null() {
                return Ok(Value::Null);
            }
            let f = v
                .as_f64()
                .ok_or_else(|| CypherError::runtime("round() expects a number"))?;
            if args.len() == 2 {
                let digits = val(1).as_int().unwrap_or(0).clamp(0, 12) as u32;
                let scale = 10f64.powi(digits as i32);
                Ok(Value::Float((f * scale).round() / scale))
            } else {
                Ok(Value::Float(f.round()))
            }
        }

        other => Err(CypherError::runtime(format!("unknown function {other}()"))),
    }
}

fn str_fn(
    name: &str,
    graph: &Graph,
    args: &[Entry],
    f: impl Fn(&str) -> String,
) -> Result<Value, CypherError> {
    if args.len() != 1 {
        return Err(CypherError::runtime(format!(
            "{name}() expects 1 argument, got {}",
            args.len()
        )));
    }
    match &args[0].to_value(graph) {
        Value::Str(s) => Ok(Value::Str(f(s))),
        Value::Null => Ok(Value::Null),
        other => Err(CypherError::runtime(format!(
            "{name}() expects a string, got {}",
            other.type_name()
        ))),
    }
}

fn num_fn(
    name: &str,
    graph: &Graph,
    args: &[Entry],
    ff: impl Fn(f64) -> f64,
    fi: Option<fn(i64) -> i64>,
) -> Result<Value, CypherError> {
    if args.len() != 1 {
        return Err(CypherError::runtime(format!(
            "{name}() expects 1 argument, got {}",
            args.len()
        )));
    }
    match &args[0].to_value(graph) {
        Value::Int(i) => match fi {
            Some(fi) => Ok(Value::Int(fi(*i))),
            None => Ok(Value::Float(ff(*i as f64))),
        },
        Value::Float(f) => Ok(Value::Float(ff(*f))),
        Value::Null => Ok(Value::Null),
        other => Err(CypherError::runtime(format!(
            "{name}() expects a number, got {}",
            other.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iyp_graphdb::props;

    fn g() -> Graph {
        Graph::new()
    }

    fn v(x: impl Into<Value>) -> Entry {
        Entry::Val(x.into())
    }

    #[test]
    fn string_functions() {
        let g = g();
        assert_eq!(
            call_function(&g, "toupper", &[v("abc")]).unwrap(),
            Value::from("ABC")
        );
        assert_eq!(
            call_function(&g, "trim", &[v("  x ")]).unwrap(),
            Value::from("x")
        );
        assert_eq!(
            call_function(&g, "split", &[v("a,b,c"), v(",")]).unwrap(),
            Value::from(vec!["a", "b", "c"])
        );
        assert_eq!(
            call_function(&g, "substring", &[v("prefix"), v(3i64)]).unwrap(),
            Value::from("fix")
        );
        assert_eq!(
            call_function(&g, "replace", &[v("a-b"), v("-"), v("+")]).unwrap(),
            Value::from("a+b")
        );
        // Null propagates.
        assert!(call_function(&g, "toupper", &[v(Value::Null)])
            .unwrap()
            .is_null());
    }

    #[test]
    fn numeric_functions() {
        let g = g();
        assert_eq!(
            call_function(&g, "abs", &[v(-5i64)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            call_function(&g, "sqrt", &[v(9i64)]).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            call_function(&g, "round", &[v(2.6)]).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            call_function(&g, "round", &[v(2.345), v(2i64)]).unwrap(),
            Value::Float(2.35)
        );
        assert_eq!(
            call_function(&g, "floor", &[v(2.9)]).unwrap(),
            Value::Float(2.0)
        );
    }

    #[test]
    fn conversions() {
        let g = g();
        assert_eq!(
            call_function(&g, "tointeger", &[v("42")]).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            call_function(&g, "tointeger", &[v("4.7")]).unwrap(),
            Value::Int(4)
        );
        assert!(call_function(&g, "tointeger", &[v("nope")])
            .unwrap()
            .is_null());
        assert_eq!(
            call_function(&g, "tofloat", &[v("2.5")]).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            call_function(&g, "tostring", &[v(7i64)]).unwrap(),
            Value::from("7")
        );
    }

    #[test]
    fn list_functions() {
        let g = g();
        let list = v(vec![1i64, 2, 3]);
        assert_eq!(
            call_function(&g, "head", std::slice::from_ref(&list)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            call_function(&g, "last", std::slice::from_ref(&list)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            call_function(&g, "size", std::slice::from_ref(&list)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            call_function(&g, "reverse", &[list]).unwrap(),
            Value::from(vec![3i64, 2, 1])
        );
        assert_eq!(
            call_function(&g, "range", &[v(1i64), v(4i64)]).unwrap(),
            Value::from(vec![1i64, 2, 3, 4])
        );
        assert_eq!(
            call_function(&g, "range", &[v(10i64), v(4i64), v(-3i64)]).unwrap(),
            Value::from(vec![10i64, 7, 4])
        );
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        let g = g();
        assert_eq!(
            call_function(&g, "coalesce", &[v(Value::Null), v("x"), v("y")]).unwrap(),
            Value::from("x")
        );
        assert!(call_function(&g, "coalesce", &[v(Value::Null)])
            .unwrap()
            .is_null());
    }

    #[test]
    fn entity_functions() {
        let mut graph = Graph::new();
        let a = graph.add_node(["AS", "Tier1"], props!("asn" => 2497i64));
        let b = graph.add_node(["Country"], props!());
        let r = graph.add_rel(a, "COUNTRY", b, props!()).unwrap();

        assert_eq!(
            call_function(&graph, "id", &[Entry::Node(a)]).unwrap(),
            Value::Int(a.0 as i64)
        );
        assert_eq!(
            call_function(&graph, "labels", &[Entry::Node(a)]).unwrap(),
            Value::from(vec!["AS", "Tier1"])
        );
        assert_eq!(
            call_function(&graph, "type", &[Entry::Rel(r)]).unwrap(),
            Value::from("COUNTRY")
        );
        assert_eq!(
            call_function(&graph, "keys", &[Entry::Node(a)]).unwrap(),
            Value::from(vec!["asn"])
        );
        // Path length.
        let p = Entry::Path(vec![a, b], vec![r]);
        assert_eq!(
            call_function(&graph, "length", &[p]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn unknown_function_is_an_error() {
        let g = g();
        let err = call_function(&g, "frobnicate", &[]).unwrap_err();
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let g = g();
        assert!(call_function(&g, "abs", &[]).is_err());
        assert!(call_function(&g, "split", &[v("a")]).is_err());
    }
}
