//! The shared differential-parity corpus: 58 representative Cypher queries
//! over the deterministic default IYP dataset.
//!
//! The corpus is consumed in three places, which is why it lives in the
//! library rather than a test file:
//!
//! * `tests/parity_corpus.rs` runs every query and compares the serialized
//!   results byte-for-byte against recorded goldens
//!   (`tests/goldens/parity_corpus.json`);
//! * `chatiyp-core`'s cache tests prove cached results are byte-identical
//!   to uncached execution across the whole corpus;
//! * the `cache_hit_rate` bench binary replays the corpus to measure the
//!   cache-hit path against cold execution.
//!
//! Changing, reordering, or extending this list requires re-recording the
//! goldens (see the ignored `regenerate_goldens` test).

/// Each entry exercises a distinct slice of the executor (anchors,
/// expansion, var-length, optional match, aggregation, sorting,
/// pagination, unwind, union, write-free functions, and combinations).
pub const PARITY_QUERIES: &[&str] = &[
    // -- Anchors: index seek, label scan, bound re-use -----------------
    "MATCH (a:AS {asn: 2497}) RETURN a.name",
    "MATCH (a:AS {asn: 15169}) RETURN a.asn, a.name",
    "MATCH (a:AS) RETURN count(a)",
    "MATCH (c:Country {country_code: 'JP'}) RETURN c.name, c.population",
    "MATCH (n:Tag) RETURN n.label ORDER BY n.label",
    "MATCH (a:AS) WHERE a.asn > 60000 RETURN a.asn ORDER BY a.asn",
    "MATCH (a:AS) WHERE a.asn >= 2497 AND a.asn < 3000 RETURN a.asn ORDER BY a.asn",
    "MATCH (a:AS) WHERE a.name CONTAINS 'Tele' RETURN a.name ORDER BY a.name",
    "MATCH (a:AS) WHERE a.name STARTS WITH 'A' RETURN a.name ORDER BY a.name LIMIT 12",
    // -- One-hop expansion ---------------------------------------------
    "MATCH (a:AS {asn: 2497})-[:ORIGINATE]->(p:Prefix) RETURN count(p)",
    "MATCH (a:AS {asn: 2497})-[:ORIGINATE]->(p:Prefix) RETURN p.prefix ORDER BY p.prefix",
    "MATCH (a:AS {asn: 2497})-[:COUNTRY]->(c:Country) RETURN c.country_code",
    "MATCH (a:AS)-[:COUNTRY]->(c:Country {country_code: 'US'}) RETURN count(a)",
    "MATCH (a:AS {asn: 2497})-[:PEERS_WITH]-(b:AS) RETURN b.asn ORDER BY b.asn",
    "MATCH (a:AS {asn: 2497})<-[:DEPENDS_ON]-(b:AS) RETURN count(b)",
    "MATCH (d:DomainName)-[:RESOLVES_TO]->(p:Prefix) RETURN count(d)",
    "MATCH (x:IXP)<-[:MEMBER_OF]-(a:AS) RETURN x.name, count(a) ORDER BY count(a) DESC, x.name LIMIT 8",
    // -- Multi-hop chains ----------------------------------------------
    "MATCH (a:AS {asn: 2497})-[:ORIGINATE]->(p:Prefix)<-[:RESOLVES_TO]-(d:DomainName) RETURN count(d)",
    "MATCH (a:AS)-[:MANAGED_BY]->(o:Organization)-[:COUNTRY]->(c:Country) RETURN c.country_code, count(a) ORDER BY count(a) DESC, c.country_code LIMIT 10",
    "MATCH (a:AS {asn: 2497})-[:PEERS_WITH]-(b:AS)-[:COUNTRY]->(c:Country) RETURN DISTINCT c.country_code ORDER BY c.country_code",
    "MATCH (a:AS)-[:COUNTRY]->(c:Country)<-[:COUNTRY]-(b:AS) WHERE a.asn < b.asn AND c.country_code = 'JP' RETURN count(*)",
    "MATCH (f:Facility)<-[:LOCATED_IN]-(a:AS)-[:COUNTRY]->(c:Country {country_code: 'DE'}) RETURN count(DISTINCT f)",
    // -- Variable-length paths -----------------------------------------
    "MATCH (a:AS {asn: 2497})-[:PEERS_WITH*1..2]-(b:AS) RETURN count(DISTINCT b)",
    "MATCH (a:AS {asn: 2497})-[:DEPENDS_ON*1..3]->(b:AS) RETURN DISTINCT b.asn ORDER BY b.asn",
    "MATCH p = shortestPath((a:AS {asn: 2497})-[:PEERS_WITH*1..4]-(b:AS {asn: 3356})) RETURN length(p)",
    "MATCH (a:AS {asn: 7018})-[:PEERS_WITH*2..2]-(b:AS) RETURN count(DISTINCT b)",
    // -- OPTIONAL MATCH ------------------------------------------------
    "MATCH (a:AS {asn: 2497}) OPTIONAL MATCH (a)-[:MEMBER_OF]->(x:IXP) RETURN a.asn, count(x)",
    "MATCH (a:AS) WHERE a.asn > 60000 OPTIONAL MATCH (a)-[:ORIGINATE]->(p:Prefix) RETURN a.asn, count(p) ORDER BY a.asn",
    "MATCH (c:Country) OPTIONAL MATCH (c)<-[:COUNTRY]-(a:AS) RETURN c.country_code, count(a) ORDER BY count(a) DESC, c.country_code LIMIT 12",
    "MATCH (a:AS {asn: 2497}) OPTIONAL MATCH (a)-[:RESOLVES_TO]->(d:DomainName) RETURN a.name, d.name",
    // -- Aggregation ---------------------------------------------------
    "MATCH (c:Country) RETURN sum(c.population)",
    "MATCH (c:Country) RETURN avg(c.population), min(c.population), max(c.population)",
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN a.asn, count(p) AS prefixes ORDER BY prefixes DESC, a.asn LIMIT 10",
    "MATCH (a:AS) WHERE a.asn < 3000 RETURN collect(a.asn)",
    "MATCH (c:Country) RETURN stdev(c.population)",
    "MATCH (c:Country) RETURN percentileCont(c.population, 0.5)",
    "MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN count(DISTINCT c.country_code)",
    "MATCH (p:Prefix) RETURN p.af, count(p) ORDER BY p.af",
    "MATCH (a:AS)-[r:POPULATION]->(c:Country {country_code: 'JP'}) RETURN a.asn, r.percent ORDER BY r.percent DESC, a.asn LIMIT 5",
    // -- WITH chaining -------------------------------------------------
    "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) WITH a, count(p) AS n WHERE n > 8 RETURN a.asn, n ORDER BY n DESC, a.asn",
    "MATCH (a:AS)-[:COUNTRY]->(c:Country) WITH c, count(a) AS members WITH avg(members) AS mean RETURN mean",
    "MATCH (a:AS) WITH a ORDER BY a.asn LIMIT 5 MATCH (a)-[:COUNTRY]->(c:Country) RETURN a.asn, c.country_code",
    // -- UNWIND --------------------------------------------------------
    "UNWIND [1, 2, 3] AS x RETURN x * 10",
    "UNWIND [2497, 15169, 7018] AS asn MATCH (a:AS {asn: asn}) RETURN a.name ORDER BY a.name",
    "UNWIND ['JP', 'US'] AS code MATCH (c:Country {country_code: code})<-[:COUNTRY]-(a:AS) RETURN code, count(a) ORDER BY code",
    "UNWIND [1, 2, 2, 3, 3, 3] AS x RETURN x, count(*) ORDER BY x",
    // -- ORDER BY / SKIP / LIMIT / DISTINCT ----------------------------
    "MATCH (a:AS) RETURN a.asn ORDER BY a.asn LIMIT 10",
    "MATCH (a:AS) RETURN a.asn ORDER BY a.asn DESC SKIP 5 LIMIT 5",
    "MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN DISTINCT c.country_code ORDER BY c.country_code",
    "MATCH (a:AS) RETURN a.name ORDER BY a.name SKIP 40 LIMIT 3",
    // -- UNION ---------------------------------------------------------
    "MATCH (a:AS {asn: 2497}) RETURN a.name AS name UNION MATCH (a:AS {asn: 15169}) RETURN a.name AS name",
    "MATCH (c:Country {country_code: 'JP'}) RETURN c.name AS n UNION ALL MATCH (c:Country {country_code: 'JP'}) RETURN c.name AS n",
    "MATCH (a:AS) WHERE a.asn < 3000 RETURN a.asn AS x UNION MATCH (a:AS) WHERE a.asn < 3500 RETURN a.asn AS x ORDER BY x",
    // -- Expressions, functions, CASE ----------------------------------
    "MATCH (a:AS {asn: 2497}) RETURN labels(a), size(a.name)",
    "MATCH (a:AS {asn: 2497})-[r:COUNTRY]->(c) RETURN type(r)",
    "MATCH (a:AS {asn: 2497}) RETURN coalesce(a.missing, a.name, 'fallback')",
    "MATCH (a:AS) RETURN CASE WHEN a.asn < 3000 THEN 'low' ELSE 'high' END AS bucket, count(*) ORDER BY bucket",
    "MATCH (c:Country {country_code: 'JP'}) RETURN [x IN [1,2,3,4] WHERE x > 2 | x * 10]",
    "RETURN 1 + 2 * 3, 'a' + 'b', 7 % 3, -(4.5)",
];
