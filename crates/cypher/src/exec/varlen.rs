//! Variable-length expansion (`-[:T*min..max]-`) and `shortestPath`
//! minimal-length selection.

use crate::ast::{NodePattern, RelPattern};
use crate::error::CypherError;
use crate::eval::{Entry, Env, EvalCtx, Row};
use crate::plan::PartPlan;
use iyp_graphdb::{Direction, NodeId, RelId, Value};
use std::collections::{HashMap, HashSet};

use super::context::ExecContext;
use super::expand::{bind_entry, bind_node, dfs_steps, node_matches, rel_matches};

#[allow(clippy::too_many_arguments)]
pub(crate) fn varlen_dfs(
    cx: &ExecContext<'_>,
    env: &Env,
    plan: &PartPlan,
    step_idx: usize,
    anchor: NodeId,
    cur: NodeId,
    row: &Row,
    used: &mut HashSet<RelId>,
    path: &mut Vec<(Vec<RelId>, NodeId)>,
    new_slots: &HashSet<usize>,
    out: &mut Vec<Row>,
    ctx: &EvalCtx<'_>,
    rel_pat: &RelPattern,
    node_pat: &NodePattern,
    dir: Direction,
    types: Option<&[&str]>,
    min: u32,
    max: u32,
    stack_rels: &mut Vec<RelId>,
) -> Result<(), CypherError> {
    cx.check_deadline()?;
    let graph = cx.graph();
    let depth = stack_rels.len() as u32;
    if depth >= min {
        // Try ending the variable-length segment here.
        if node_matches(graph, ctx, row, cur, node_pat)? {
            let mut r = row.clone();
            let mut ok = bind_node(env, &mut r, &node_pat.var, cur, new_slots)?;
            if ok {
                if let Some(rv) = &rel_pat.var {
                    let rel_list = Value::List(
                        stack_rels
                            .iter()
                            .map(|rid| Entry::Rel(*rid).to_value(graph))
                            .collect(),
                    );
                    ok = bind_entry(env, &mut r, rv, Entry::Val(rel_list), new_slots)?;
                }
            }
            if ok {
                for rid in stack_rels.iter() {
                    used.insert(*rid);
                }
                path.push((stack_rels.clone(), cur));
                dfs_steps(
                    cx,
                    env,
                    plan,
                    step_idx + 1,
                    anchor,
                    cur,
                    &r,
                    used,
                    path,
                    new_slots,
                    out,
                )?;
                path.pop();
                for rid in stack_rels.iter() {
                    used.remove(rid);
                }
            }
        }
    }
    if depth == max {
        return Ok(());
    }
    for (rid, nbr) in graph.neighbors(cur, dir, types) {
        if used.contains(&rid) || stack_rels.contains(&rid) {
            continue;
        }
        if !rel_matches(graph, ctx, row, rid, rel_pat)? {
            continue;
        }
        stack_rels.push(rid);
        varlen_dfs(
            cx, env, plan, step_idx, anchor, nbr, row, used, path, new_slots, out, ctx, rel_pat,
            node_pat, dir, types, min, max, stack_rels,
        )?;
        stack_rels.pop();
    }
    Ok(())
}

/// For `shortestPath`, keeps only the minimal-length binding per distinct
/// (start, end) node pair, breaking ties deterministically by the path's
/// relationship ids.
pub(crate) fn keep_shortest(
    env: &Env,
    plan: &PartPlan,
    rows: Vec<Row>,
) -> Result<Vec<Row>, CypherError> {
    let path_var = plan
        .path_var
        .as_ref()
        .ok_or_else(|| CypherError::plan("shortestPath requires a path binding"))?;
    let slot = env
        .slot(path_var)
        .ok_or_else(|| CypherError::plan("path variable missing from environment"))?;
    let mut best: HashMap<(NodeId, NodeId), Row> = HashMap::new();
    let mut order: Vec<(NodeId, NodeId)> = Vec::new();
    for row in rows {
        let Entry::Path(nodes, rels) = &row[slot] else {
            return Err(CypherError::runtime("shortestPath binding is not a path"));
        };
        let (Some(&first), Some(&last)) = (nodes.first(), nodes.last()) else {
            continue;
        };
        let key = (first, last);
        match best.get(&key) {
            None => {
                order.push(key);
                best.insert(key, row);
            }
            Some(cur) => {
                let Entry::Path(_, cur_rels) = &cur[slot] else {
                    unreachable!("only paths are inserted");
                };
                let replace = rels.len() < cur_rels.len()
                    || (rels.len() == cur_rels.len() && rels < cur_rels);
                if replace {
                    best.insert(key, row);
                }
            }
        }
    }
    Ok(order.into_iter().filter_map(|k| best.remove(&k)).collect())
}
