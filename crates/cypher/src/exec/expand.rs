//! The match operator: anchors each pattern part (via [`super::scan`]),
//! expands relationship steps depth-first, and applies the clause's
//! `WHERE` filter — including `OPTIONAL MATCH` null-row fallback.

use crate::ast::{MatchClause, NodePattern, RelDir, RelPattern};
use crate::error::CypherError;
use crate::eval::{Entry, Env, EvalCtx, Row};
use crate::plan::{self, Anchor, PartPlan};
use crate::pretty;
use iyp_graphdb::{Direction, Graph, NodeId, RelId, Value};
use std::collections::HashSet;
use std::fmt::Write;

use super::context::ExecContext;
use super::{filter, scan, varlen, Operator};

/// `MATCH` / `OPTIONAL MATCH`: the pattern-expansion operator.
///
/// Planning happens at apply time, not build time, so that anchor scoring
/// sees the graph as mutated by any earlier write clauses and the
/// variables bound by earlier clauses in the pipeline.
pub(crate) struct MatchOp<'q> {
    pub clause: &'q MatchClause,
}

impl Operator for MatchOp<'_> {
    fn name(&self) -> &'static str {
        if self.clause.optional {
            "OptionalMatch"
        } else {
            "Match"
        }
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        let clause = self.clause;
        // Plan all parts with knowledge of previously bound variables.
        let mut bound: Vec<String> = env.names.clone();
        let plans = plan::plan_match(cx.graph(), clause, &mut bound);

        // Extend the environment with this clause's new variables up front.
        let mut new_slots: HashSet<usize> = HashSet::new();
        for part in &clause.patterns {
            let mut vars = Vec::new();
            plan::collect_part_vars(part, &mut vars);
            for v in vars {
                if env.slot(&v).is_none() {
                    let slot = env.push(v);
                    new_slots.insert(slot);
                }
            }
        }
        let width = env.names.len();

        let mut out = Vec::new();
        for mut row in rows {
            row.resize(width, Entry::Val(Value::Null));
            // Match all parts for this row.
            let mut current = vec![row.clone()];
            for plan in &plans {
                let mut next = Vec::new();
                for r in &current {
                    cx.check_deadline()?;
                    expand_part(cx, env, r, plan, &new_slots, &mut next)?;
                    cx.check_expansion(next.len())?;
                }
                current = next;
                if current.is_empty() {
                    break;
                }
            }
            // Apply WHERE.
            if let Some(w) = &clause.where_clause {
                let ctx = EvalCtx {
                    graph: cx.graph(),
                    env,
                    params: cx.params,
                };
                current = filter::filter_rows(&ctx, w, current)?;
            }
            if current.is_empty() && clause.optional {
                // OPTIONAL MATCH: keep the input row, new vars stay null.
                out.push(row);
            } else {
                out.extend(current);
            }
        }
        Ok(out)
    }

    fn explain_into(&self, graph: &Graph, bound: &mut Vec<String>, idx: usize, out: &mut String) {
        let m = self.clause;
        writeln!(out, "{idx:>2}. {}", self.name()).expect("write to string");
        let plans = plan::plan_match(graph, m, bound);
        for (j, plan) in plans.iter().enumerate() {
            let anchor = match &plan.anchor {
                Anchor::Bound(v) => format!("BoundVariable({v})"),
                Anchor::IndexSeek { label, key, expr } => format!(
                    "IndexSeek(:{label}.{key} = {})",
                    pretty::expr_to_string(expr)
                ),
                Anchor::RangeSeek { label, key, lo, hi } => {
                    let mut bounds: Vec<String> = Vec::new();
                    if let Some((e, inc)) = lo {
                        bounds.push(format!(
                            "{} {}",
                            if *inc { ">=" } else { ">" },
                            pretty::expr_to_string(e)
                        ));
                    }
                    if let Some((e, inc)) = hi {
                        bounds.push(format!(
                            "{} {}",
                            if *inc { "<=" } else { "<" },
                            pretty::expr_to_string(e)
                        ));
                    }
                    format!("RangeSeek(:{label}.{key} {})", bounds.join(" and "))
                }
                Anchor::LabelScan(label) => {
                    format!("LabelScan(:{label}, ~{} nodes)", graph.label_count(label))
                }
                Anchor::AllNodes => {
                    format!("AllNodesScan(~{} nodes)", graph.node_count())
                }
            };
            let mut line = format!("      part {j}: {anchor}");
            if plan.reversed {
                line.push_str(" [chain reversed]");
            }
            if plan.shortest {
                line.push_str(" [shortestPath]");
            }
            writeln!(out, "{line}").expect("write to string");
            for (k, (rel, node)) in plan.steps.iter().enumerate() {
                let types = if rel.types.is_empty() {
                    "*any*".to_string()
                } else {
                    rel.types.join("|")
                };
                let hops = if rel.hops.is_single() {
                    String::new()
                } else {
                    format!(
                        " x{}..{}",
                        rel.hops.min,
                        rel.hops
                            .max
                            .map(|m| m.to_string())
                            .unwrap_or_else(|| "∞".into())
                    )
                };
                let target = node
                    .labels
                    .first()
                    .map(|l| format!(":{l}"))
                    .unwrap_or_else(|| "(any)".into());
                writeln!(out, "        expand {k}: -[:{types}{hops}]- -> {target}")
                    .expect("write to string");
            }
        }
        if m.where_clause.is_some() {
            writeln!(out, "      filter: WHERE …").expect("write to string");
        }
    }
}

/// Expands one planned pattern part for one input row, pushing every
/// complete binding into `out`.
pub(crate) fn expand_part(
    cx: &ExecContext<'_>,
    env: &Env,
    row: &Row,
    plan: &PartPlan,
    new_slots: &HashSet<usize>,
    out: &mut Vec<Row>,
) -> Result<(), CypherError> {
    let graph = cx.graph();
    let ctx = EvalCtx {
        graph,
        env,
        params: cx.params,
    };
    let candidates = scan::anchor_candidates(cx, env, row, plan)?;

    let mut local: Vec<Row> = Vec::new();
    let sink: &mut Vec<Row> = if plan.shortest { &mut local } else { out };
    for cand in candidates {
        if !node_matches(graph, &ctx, row, cand, &plan.anchor_node)? {
            continue;
        }
        let mut r = row.clone();
        if !bind_node(env, &mut r, &plan.anchor_node.var, cand, new_slots)? {
            continue;
        }
        let mut used = HashSet::new();
        let mut path: Vec<(Vec<RelId>, NodeId)> = Vec::new();
        dfs_steps(
            cx, env, plan, 0, cand, cand, &r, &mut used, &mut path, new_slots, sink,
        )?;
    }
    if plan.shortest {
        out.extend(varlen::keep_shortest(env, plan, local)?);
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn dfs_steps(
    cx: &ExecContext<'_>,
    env: &Env,
    plan: &PartPlan,
    step_idx: usize,
    anchor: NodeId,
    cur: NodeId,
    row: &Row,
    used: &mut HashSet<RelId>,
    path: &mut Vec<(Vec<RelId>, NodeId)>,
    new_slots: &HashSet<usize>,
    out: &mut Vec<Row>,
) -> Result<(), CypherError> {
    cx.check_deadline()?;
    if step_idx == plan.steps.len() {
        let mut r = row.clone();
        if let Some(pv) = &plan.path_var {
            bind_path(env, &mut r, pv, plan, anchor, path)?;
        }
        out.push(r);
        return Ok(());
    }
    let graph = cx.graph();
    let ctx = EvalCtx {
        graph,
        env,
        params: cx.params,
    };
    let (rel_pat, node_pat) = &plan.steps[step_idx];
    let dir = match rel_pat.dir {
        RelDir::Right => Direction::Outgoing,
        RelDir::Left => Direction::Incoming,
        RelDir::Undirected => Direction::Both,
    };
    let types: Option<Vec<&str>> = if rel_pat.types.is_empty() {
        None
    } else {
        Some(rel_pat.types.iter().map(String::as_str).collect())
    };

    if rel_pat.hops.is_single() {
        for (rid, nbr) in graph.neighbors(cur, dir, types.as_deref()) {
            if used.contains(&rid) {
                continue;
            }
            if !rel_matches(graph, &ctx, row, rid, rel_pat)? {
                continue;
            }
            if !node_matches(graph, &ctx, row, nbr, node_pat)? {
                continue;
            }
            let mut r = row.clone();
            if !bind_node(env, &mut r, &node_pat.var, nbr, new_slots)? {
                continue;
            }
            if let Some(rv) = &rel_pat.var {
                if !bind_entry(env, &mut r, rv, Entry::Rel(rid), new_slots)? {
                    continue;
                }
            }
            used.insert(rid);
            path.push((vec![rid], nbr));
            dfs_steps(
                cx,
                env,
                plan,
                step_idx + 1,
                anchor,
                nbr,
                &r,
                used,
                path,
                new_slots,
                out,
            )?;
            path.pop();
            used.remove(&rid);
        }
    } else {
        // Variable-length expansion. An explicit upper bound is honored;
        // an open-ended `*` is capped to keep expansion bounded.
        let min = rel_pat.hops.min;
        let max = rel_pat.hops.max.unwrap_or(super::VARLEN_CAP);
        let mut stack_rels: Vec<RelId> = Vec::new();
        varlen::varlen_dfs(
            cx,
            env,
            plan,
            step_idx,
            anchor,
            cur,
            row,
            used,
            path,
            new_slots,
            out,
            &ctx,
            rel_pat,
            node_pat,
            dir,
            types.as_deref(),
            min,
            max,
            &mut stack_rels,
        )?;
    }
    Ok(())
}

pub(crate) fn node_matches(
    graph: &Graph,
    ctx: &EvalCtx<'_>,
    row: &Row,
    node: NodeId,
    pat: &NodePattern,
) -> Result<bool, CypherError> {
    for label in &pat.labels {
        if !graph.node_has_label(node, label) {
            return Ok(false);
        }
    }
    for (key, expr) in &pat.props {
        let want = ctx.eval_value(expr, row)?;
        let have = graph
            .node(node)
            .map(|n| n.props.get_or_null(key))
            .unwrap_or(Value::Null);
        if have.cypher_eq(&want) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

pub(crate) fn rel_matches(
    graph: &Graph,
    ctx: &EvalCtx<'_>,
    row: &Row,
    rel: RelId,
    pat: &RelPattern,
) -> Result<bool, CypherError> {
    for (key, expr) in &pat.props {
        let want = ctx.eval_value(expr, row)?;
        let have = graph
            .rel(rel)
            .map(|r| r.props.get_or_null(key))
            .unwrap_or(Value::Null);
        if have.cypher_eq(&want) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Binds `var` (if named) to a node, or checks equality when already bound.
/// Returns false when the binding conflicts.
pub(crate) fn bind_node(
    env: &Env,
    row: &mut Row,
    var: &Option<String>,
    node: NodeId,
    new_slots: &HashSet<usize>,
) -> Result<bool, CypherError> {
    match var {
        None => Ok(true),
        Some(v) => bind_entry(env, row, v, Entry::Node(node), new_slots),
    }
}

pub(crate) fn bind_entry(
    env: &Env,
    row: &mut Row,
    var: &str,
    entry: Entry,
    new_slots: &HashSet<usize>,
) -> Result<bool, CypherError> {
    let slot = env
        .slot(var)
        .ok_or_else(|| CypherError::plan(format!("variable '{var}' missing from environment")))?;
    match &row[slot] {
        Entry::Val(Value::Null) if new_slots.contains(&slot) => {
            row[slot] = entry;
            Ok(true)
        }
        Entry::Val(Value::Null) => Ok(false), // pre-existing null binding never matches
        existing => Ok(*existing == entry),
    }
}

pub(crate) fn bind_path(
    env: &Env,
    row: &mut Row,
    path_var: &str,
    plan: &PartPlan,
    anchor: NodeId,
    path: &[(Vec<RelId>, NodeId)],
) -> Result<(), CypherError> {
    // Node/rel sequence: the anchor, then each step's end node.
    let mut nodes: Vec<NodeId> = vec![anchor];
    let mut rels: Vec<RelId> = Vec::new();
    for (seg_rels, end) in path {
        rels.extend(seg_rels.iter().copied());
        nodes.push(*end);
    }
    if plan.reversed {
        nodes.reverse();
        rels.reverse();
    }
    let slot = env
        .slot(path_var)
        .ok_or_else(|| CypherError::plan(format!("path variable '{path_var}' missing")))?;
    row[slot] = Entry::Path(nodes, rels);
    Ok(())
}
