//! The write operators used by the dataset loader and tests: `CREATE`,
//! `MERGE`, `SET`, `DELETE`. These are the only operators that request
//! mutable graph access from the context; in read-only execution that
//! request fails with a plan error.

use crate::ast::{Clause, Expr, NodePattern, PatternPart, RelDir, SetItem};
use crate::error::CypherError;
use crate::eval::{Entry, Env, EvalCtx, Params, Row};
use crate::plan;
use iyp_graphdb::{Direction, Graph, NodeId, Props, RelId, Value};
use std::collections::HashSet;

use super::context::ExecContext;
use super::Operator;

/// `CREATE pattern`.
pub(crate) struct CreateOp<'q> {
    pub patterns: &'q [PatternPart],
}

impl Operator for CreateOp<'_> {
    fn name(&self) -> &'static str {
        "Create"
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        let patterns = self.patterns;
        // Extend env with new vars.
        let mut new_slots = HashSet::new();
        for part in patterns {
            let mut vars = Vec::new();
            plan::collect_part_vars(part, &mut vars);
            for v in vars {
                if env.slot(&v).is_none() {
                    new_slots.insert(env.push(v));
                }
            }
        }
        let width = env.names.len();
        let params = cx.params;
        let graph = cx.graph_mut()?;
        let mut out = Vec::with_capacity(rows.len());
        for mut row in rows {
            row.resize(width, Entry::Val(Value::Null));
            for part in patterns {
                let mut cur =
                    create_node_or_reuse(graph, env, &mut row, &part.start, params, &new_slots)?;
                for (rel_pat, node_pat) in &part.hops {
                    if !rel_pat.hops.is_single() {
                        return Err(CypherError::plan(
                            "CREATE does not allow variable-length relationships",
                        ));
                    }
                    let next =
                        create_node_or_reuse(graph, env, &mut row, node_pat, params, &new_slots)?;
                    let ty = rel_pat.types.first().ok_or_else(|| {
                        CypherError::plan("CREATE relationships must have a type")
                    })?;
                    let (src, dst) = match rel_pat.dir {
                        RelDir::Right => (cur, next),
                        RelDir::Left => (next, cur),
                        RelDir::Undirected => {
                            return Err(CypherError::plan("CREATE relationships must be directed"))
                        }
                    };
                    let props = eval_props(graph, env, &row, &rel_pat.props, params)?;
                    let rid = graph.add_rel(src, ty, dst, props)?;
                    if let Some(rv) = &rel_pat.var {
                        let slot = env.slot(rv).expect("pushed above");
                        row[slot] = Entry::Rel(rid);
                    }
                    cur = next;
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    fn explain_into(&self, _graph: &Graph, _bound: &mut Vec<String>, idx: usize, out: &mut String) {
        super::explain_simple(
            &Clause::Create {
                patterns: self.patterns.to_vec(),
            },
            idx,
            out,
        );
    }
}

fn create_node_or_reuse(
    graph: &mut Graph,
    env: &Env,
    row: &mut Row,
    pat: &NodePattern,
    params: &Params,
    new_slots: &HashSet<usize>,
) -> Result<NodeId, CypherError> {
    if let Some(v) = &pat.var {
        let slot = env
            .slot(v)
            .ok_or_else(|| CypherError::plan(format!("variable '{v}' missing")))?;
        if let Entry::Node(id) = &row[slot] {
            // Reuse a node bound earlier (by MATCH or earlier in CREATE).
            return Ok(*id);
        }
        if !new_slots.contains(&slot) && !row[slot].is_null() {
            return Err(CypherError::runtime(format!(
                "variable '{v}' is bound to a non-node value"
            )));
        }
    }
    let props = eval_props(graph, env, row, &pat.props, params)?;
    let id = graph.add_node(pat.labels.iter().map(String::as_str), props);
    if let Some(v) = &pat.var {
        let slot = env.slot(v).expect("checked above");
        row[slot] = Entry::Node(id);
    }
    Ok(id)
}

fn eval_props(
    graph: &Graph,
    env: &Env,
    row: &Row,
    props: &[(String, Expr)],
    params: &Params,
) -> Result<Props, CypherError> {
    let ctx = EvalCtx { graph, env, params };
    let mut out = Props::new();
    for (k, e) in props {
        out.set(k.clone(), ctx.eval_value(e, row)?);
    }
    Ok(out)
}

/// `MERGE (node)`.
pub(crate) struct MergeOp<'q> {
    pub node: &'q NodePattern,
}

impl Operator for MergeOp<'_> {
    fn name(&self) -> &'static str {
        "Merge"
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        let node = self.node;
        let var_slot = node.var.as_ref().map(|v| match env.slot(v) {
            Some(s) => s,
            None => env.push(v.clone()),
        });
        let width = env.names.len();
        let params = cx.params;
        let graph = cx.graph_mut()?;
        let mut out = Vec::new();
        for mut row in rows {
            row.resize(width, Entry::Val(Value::Null));
            let props = eval_props(graph, env, &row, &node.props, params)?;
            // Find all nodes carrying every label with exactly-equal listed props.
            let candidates: Vec<NodeId> = match node.labels.first() {
                Some(first) => graph.nodes_with_label(first).collect(),
                None => graph.all_nodes().collect(),
            };
            let matches: Vec<NodeId> = candidates
                .into_iter()
                .filter(|&id| {
                    node.labels.iter().all(|l| graph.node_has_label(id, l))
                        && props.iter().all(|(k, v)| {
                            graph
                                .node(id)
                                .map(|n| n.props.get_or_null(k).cypher_eq(v) == Some(true))
                                .unwrap_or(false)
                        })
                })
                .collect();
            if matches.is_empty() {
                let id = graph.add_node(node.labels.iter().map(String::as_str), props);
                if let Some(slot) = var_slot {
                    row[slot] = Entry::Node(id);
                }
                out.push(row);
            } else {
                for id in matches {
                    let mut r = row.clone();
                    if let Some(slot) = var_slot {
                        r[slot] = Entry::Node(id);
                    }
                    out.push(r);
                }
            }
        }
        Ok(out)
    }

    fn explain_into(&self, _graph: &Graph, _bound: &mut Vec<String>, idx: usize, out: &mut String) {
        super::explain_simple(
            &Clause::Merge {
                node: self.node.clone(),
            },
            idx,
            out,
        );
    }
}

/// `SET var.key = expr` / `SET var += {map}`.
pub(crate) struct SetOp<'q> {
    pub items: &'q [SetItem],
}

impl Operator for SetOp<'_> {
    fn name(&self) -> &'static str {
        "Set"
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        for row in &rows {
            for item in self.items {
                let (var, updates) = match item {
                    SetItem::Prop { var, key, expr } => {
                        let value = {
                            let ctx = EvalCtx {
                                graph: cx.graph(),
                                env,
                                params: cx.params,
                            };
                            ctx.eval_value(expr, row)?
                        };
                        (var, vec![(key.clone(), value)])
                    }
                    SetItem::MergeMap { var, expr } => {
                        let value = {
                            let ctx = EvalCtx {
                                graph: cx.graph(),
                                env,
                                params: cx.params,
                            };
                            ctx.eval_value(expr, row)?
                        };
                        match value {
                            Value::Map(m) => (var, m.into_iter().collect::<Vec<_>>()),
                            Value::Null => (var, Vec::new()),
                            other => {
                                return Err(CypherError::runtime(format!(
                                    "SET += expects a map, got {}",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                };
                let slot = env.slot(var).ok_or_else(|| {
                    CypherError::runtime(format!("variable '{var}' is not defined"))
                })?;
                for (key, value) in updates {
                    match &row[slot] {
                        Entry::Node(id) => cx.graph_mut()?.set_node_prop(*id, &key, value)?,
                        Entry::Rel(id) => cx.graph_mut()?.set_rel_prop(*id, &key, value)?,
                        Entry::Val(Value::Null) => {}
                        _ => {
                            return Err(CypherError::runtime(format!(
                                "SET target '{var}' is not an entity"
                            )))
                        }
                    }
                }
            }
        }
        Ok(rows)
    }

    fn explain_into(&self, _graph: &Graph, _bound: &mut Vec<String>, idx: usize, out: &mut String) {
        super::explain_simple(
            &Clause::Set {
                items: self.items.to_vec(),
            },
            idx,
            out,
        );
    }
}

/// `DELETE` / `DETACH DELETE`.
pub(crate) struct DeleteOp<'q> {
    pub vars: &'q [String],
    pub detach: bool,
}

impl Operator for DeleteOp<'_> {
    fn name(&self) -> &'static str {
        "Delete"
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut rels: Vec<RelId> = Vec::new();
        for row in &rows {
            for var in self.vars {
                let slot = env.slot(var).ok_or_else(|| {
                    CypherError::runtime(format!("variable '{var}' is not defined"))
                })?;
                match &row[slot] {
                    Entry::Node(id) => nodes.push(*id),
                    Entry::Rel(id) => rels.push(*id),
                    Entry::Val(Value::Null) => {}
                    _ => {
                        return Err(CypherError::runtime(format!(
                            "cannot DELETE non-entity '{var}'"
                        )))
                    }
                }
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        rels.sort_unstable();
        rels.dedup();
        let g = cx.graph_mut()?;
        for r in rels {
            if g.rel(r).is_some() {
                g.remove_rel(r)?;
            }
        }
        for n in nodes {
            if g.node(n).is_some() {
                if !self.detach && g.degree(n, Direction::Both) > 0 {
                    return Err(CypherError::runtime(
                        "cannot delete a node with relationships; use DETACH DELETE",
                    ));
                }
                g.remove_node(n)?;
            }
        }
        Ok(rows)
    }

    fn explain_into(&self, _graph: &Graph, _bound: &mut Vec<String>, idx: usize, out: &mut String) {
        super::explain_simple(
            &Clause::Delete {
                vars: self.vars.to_vec(),
                detach: self.detach,
            },
            idx,
            out,
        );
    }
}
