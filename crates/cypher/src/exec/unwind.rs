//! The unwind operator: `UNWIND expr AS var` — expands a list-valued
//! expression into one row per element.

use crate::ast::{Clause, Expr};
use crate::error::CypherError;
use crate::eval::{Entry, Env, EvalCtx, Row};
use iyp_graphdb::{Graph, Value};

use super::context::ExecContext;
use super::Operator;

pub(crate) struct UnwindOp<'q> {
    pub expr: &'q Expr,
    pub var: &'q str,
}

impl Operator for UnwindOp<'_> {
    fn name(&self) -> &'static str {
        "Unwind"
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        let values: Vec<(Row, Value)> = {
            let ctx = EvalCtx {
                graph: cx.graph(),
                env,
                params: cx.params,
            };
            let mut out = Vec::new();
            for row in rows {
                let v = ctx.eval_value(self.expr, &row)?;
                out.push((row, v));
            }
            out
        };
        env.push(self.var.to_string());
        let mut out = Vec::new();
        for (row, v) in values {
            match v {
                Value::Null => {}
                Value::List(items) => {
                    for item in items {
                        let mut r = row.clone();
                        r.push(Entry::Val(item));
                        out.push(r);
                    }
                }
                other => {
                    let mut r = row;
                    r.push(Entry::Val(other));
                    out.push(r);
                }
            }
        }
        Ok(out)
    }

    fn explain_into(&self, _graph: &Graph, _bound: &mut Vec<String>, idx: usize, out: &mut String) {
        super::explain_simple(
            &Clause::Unwind {
                expr: self.expr.clone(),
                var: self.var.to_string(),
            },
            idx,
            out,
        );
    }
}
