//! The sort / skip / limit operators applied at the tail of a projection.

use crate::ast::{Expr, OrderKey};
use crate::error::CypherError;
use crate::eval::{Env, EvalCtx, Params, Row};
use iyp_graphdb::Graph;

use super::project::PostProject;

/// Stable ORDER BY over `(projected, context)` row pairs. Keys are the
/// rewritten order expressions evaluated in the post-projection
/// environment.
pub(crate) fn order_rows(
    graph: &Graph,
    params: &Params,
    post: &PostProject,
    order_by: &[OrderKey],
    order_rewritten: &[Expr],
    projected: Vec<(Row, Row)>,
) -> Result<Vec<(Row, Row)>, CypherError> {
    let ctx = EvalCtx {
        graph,
        env: &post.env,
        params,
    };
    let mut keyed: Vec<(Vec<iyp_graphdb::Value>, (Row, Row))> = Vec::with_capacity(projected.len());
    for (proj, ctx_row) in projected {
        let ext = post.extend(&proj, &ctx_row);
        let mut keys = Vec::with_capacity(order_rewritten.len());
        for oexpr in order_rewritten {
            keys.push(ctx.eval_value(oexpr, &ext)?);
        }
        keyed.push((keys, (proj, ctx_row)));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, ok) in order_by.iter().enumerate() {
            let c = ka[i].order_key_cmp(&kb[i]);
            let c = if ok.ascending { c } else { c.reverse() };
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, v)| v).collect())
}

/// Applies SKIP and LIMIT expressions (evaluated row-free) to the
/// projected rows.
pub(crate) fn apply_skip_limit(
    graph: &Graph,
    env: &Env,
    params: &Params,
    skip: &Option<Expr>,
    limit: &Option<Expr>,
    mut projected: Vec<(Row, Row)>,
) -> Result<Vec<(Row, Row)>, CypherError> {
    let eval_count = |e: &Expr| -> Result<usize, CypherError> {
        let ctx = EvalCtx { graph, env, params };
        let v = ctx.eval_value(e, &Vec::new())?;
        v.as_int()
            .filter(|i| *i >= 0)
            .map(|i| i as usize)
            .ok_or_else(|| CypherError::runtime("SKIP/LIMIT must be a non-negative integer"))
    };
    if let Some(e) = skip {
        let n = eval_count(e)?;
        projected = projected.into_iter().skip(n).collect();
    }
    if let Some(e) = limit {
        let n = eval_count(e)?;
        projected.truncate(n);
    }
    Ok(projected)
}
