//! Shared execution state: the graph source, parameters, limits, and the
//! row budget every operator draws from.

use crate::error::CypherError;
use crate::eval::Params;
use iyp_graphdb::Graph;
use std::cell::Cell;

use super::{GraphSource, MAX_ROWS};

/// How many deadline checks elapse between `Instant::now()` calls.
///
/// Reading the clock on every expansion step costs more than the step
/// itself on hot paths; polling once per stride keeps the overhead
/// negligible while still bounding detection latency to a few hundred
/// steps. The counter starts at zero so an already-expired deadline is
/// caught on the very first check.
pub(crate) const DEADLINE_CHECK_STRIDE: u32 = 256;

/// Execution limits and tuning: a wall-clock deadline checked during
/// pattern expansion (protecting services that execute untrusted Cypher),
/// the worker count for morsel-parallel `MATCH`, and the
/// compiled-pipeline switch.
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Abort with a runtime error once this instant passes.
    pub deadline: Option<std::time::Instant>,
    /// Worker threads for morsel-parallel `MATCH` expansion. `1` (the
    /// default) executes sequentially; results are byte-identical at any
    /// setting.
    pub parallelism: usize,
    /// Execute through the compiled pipeline when the query is
    /// compilable (the default). `false` forces the interpreter —
    /// a debugging/benchmarking escape hatch, never a semantics change.
    pub compiled: bool,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            deadline: None,
            parallelism: 1,
            compiled: true,
        }
    }
}

impl ExecLimits {
    /// No limits (library default).
    pub fn none() -> Self {
        ExecLimits::default()
    }

    /// A deadline `timeout` from now.
    pub fn timeout(timeout: std::time::Duration) -> Self {
        ExecLimits {
            deadline: Some(std::time::Instant::now() + timeout),
            ..ExecLimits::default()
        }
    }

    /// Sets the morsel-parallel worker count (`0` is treated as `1`).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Enables or disables the compiled pipeline.
    pub fn with_compiled(mut self, compiled: bool) -> Self {
        self.compiled = compiled;
        self
    }

    /// Reads the clock and compares against the deadline. Callers should
    /// go through [`ExecContext::check_deadline`], which amortizes the
    /// clock read over [`DEADLINE_CHECK_STRIDE`] calls.
    #[inline]
    pub(crate) fn check_now(&self) -> Result<(), CypherError> {
        if let Some(d) = self.deadline {
            if std::time::Instant::now() > d {
                return Err(CypherError::runtime(
                    "query exceeded its execution deadline",
                ));
            }
        }
        Ok(())
    }
}

/// The context shared by every operator in a query's pipeline: the graph
/// source (read-only or read-write), query parameters, execution limits,
/// and the intermediate-row budget.
pub(crate) struct ExecContext<'e> {
    src: &'e mut (dyn GraphSource + 'e),
    /// Query parameters (`$name` bindings).
    pub params: &'e Params,
    /// Wall-clock limits.
    pub limits: ExecLimits,
    /// Hard cap on intermediate row counts.
    pub max_rows: usize,
    /// Deadline-check tick counter (see [`DEADLINE_CHECK_STRIDE`]).
    ticks: Cell<u32>,
}

impl<'e> ExecContext<'e> {
    pub fn new(
        src: &'e mut (dyn GraphSource + 'e),
        params: &'e Params,
        limits: ExecLimits,
    ) -> Self {
        ExecContext {
            src,
            params,
            limits,
            max_rows: MAX_ROWS,
            ticks: Cell::new(0),
        }
    }

    /// The graph, for reading.
    #[inline]
    pub fn graph(&self) -> &Graph {
        self.src.g()
    }

    /// The graph, for writing. Errors in read-only execution.
    pub fn graph_mut(&mut self) -> Result<&mut Graph, CypherError> {
        self.src.g_mut()
    }

    /// Deadline check amortized over [`DEADLINE_CHECK_STRIDE`] calls:
    /// only every stride-th call reads the clock.
    #[inline]
    pub fn check_deadline(&self) -> Result<(), CypherError> {
        if self.limits.deadline.is_none() {
            return Ok(());
        }
        let t = self.ticks.get();
        self.ticks.set(t.wrapping_add(1));
        if !t.is_multiple_of(DEADLINE_CHECK_STRIDE) {
            return Ok(());
        }
        self.limits.check_now()
    }

    /// Charges one clause's output row count against the budget.
    pub fn check_intermediate(&self, len: usize) -> Result<(), CypherError> {
        if len > self.max_rows {
            let max = self.max_rows;
            return Err(CypherError::runtime(format!(
                "intermediate result exceeded {max} rows"
            )));
        }
        Ok(())
    }

    /// Charges a pattern expansion's in-flight row count against the budget.
    pub fn check_expansion(&self, len: usize) -> Result<(), CypherError> {
        if len > self.max_rows {
            let max = self.max_rows;
            return Err(CypherError::runtime(format!(
                "pattern expansion exceeded {max} rows"
            )));
        }
        Ok(())
    }
}
