//! The aggregation operator: aggregate-call extraction, per-group
//! accumulators (`count`, `sum`, `avg`, `min`, `max`, `collect`, `stdev`,
//! `percentileCont`), and grouped evaluation of a projection's row set.

use crate::ast::{is_aggregate_fn, Expr, ProjectionItem};
use crate::error::CypherError;
use crate::eval::{Entry, Env, EvalCtx, Params, Row};
use iyp_graphdb::{Graph, Value, ValueKey};
use std::collections::{HashMap, HashSet};

use super::project::entry_key;

/// One aggregate call instance found in a projection.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AggSpec {
    pub name: String,
    pub distinct: bool,
    /// `None` = `count(*)`.
    pub arg: Option<Expr>,
    /// Second argument (percentileCont's p).
    pub extra: Option<Expr>,
}

/// Rewrites aggregate calls in `expr` into `__aggN` variable references,
/// collecting each distinct call into `specs`.
pub(crate) fn extract_aggs(expr: &Expr, specs: &mut Vec<AggSpec>) -> Expr {
    match expr {
        Expr::Call {
            name,
            distinct,
            args,
        } if is_aggregate_fn(name) => {
            let spec = AggSpec {
                name: name.clone(),
                distinct: *distinct,
                arg: match args.first() {
                    Some(Expr::Star) | None => None,
                    Some(e) => Some(e.clone()),
                },
                extra: args.get(1).cloned(),
            };
            let idx = match specs.iter().position(|s| *s == spec) {
                Some(i) => i,
                None => {
                    specs.push(spec);
                    specs.len() - 1
                }
            };
            Expr::Var(format!("__agg{idx}"))
        }
        Expr::Prop(e, k) => Expr::Prop(Box::new(extract_aggs(e, specs)), k.clone()),
        Expr::Index(a, b) => Expr::Index(
            Box::new(extract_aggs(a, specs)),
            Box::new(extract_aggs(b, specs)),
        ),
        Expr::Slice(a, lo, hi) => Expr::Slice(
            Box::new(extract_aggs(a, specs)),
            lo.as_ref().map(|e| Box::new(extract_aggs(e, specs))),
            hi.as_ref().map(|e| Box::new(extract_aggs(e, specs))),
        ),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(extract_aggs(a, specs)),
            Box::new(extract_aggs(b, specs)),
        ),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(extract_aggs(a, specs))),
        Expr::IsNull(a, n) => Expr::IsNull(Box::new(extract_aggs(a, specs)), *n),
        Expr::Call {
            name,
            distinct,
            args,
        } => Expr::Call {
            name: name.clone(),
            distinct: *distinct,
            args: args.iter().map(|a| extract_aggs(a, specs)).collect(),
        },
        Expr::List(items) => Expr::List(items.iter().map(|e| extract_aggs(e, specs)).collect()),
        Expr::Map(items) => Expr::Map(
            items
                .iter()
                .map(|(k, e)| (k.clone(), extract_aggs(e, specs)))
                .collect(),
        ),
        Expr::Case {
            operand,
            arms,
            default,
        } => Expr::Case {
            operand: operand.as_ref().map(|e| Box::new(extract_aggs(e, specs))),
            arms: arms
                .iter()
                .map(|(w, t)| (extract_aggs(w, specs), extract_aggs(t, specs)))
                .collect(),
            default: default.as_ref().map(|e| Box::new(extract_aggs(e, specs))),
        },
        other => other.clone(),
    }
}

/// One aggregate accumulator: optional DISTINCT dedup in front of the
/// kind-specific state (every aggregate supports DISTINCT, as in Neo4j).
#[derive(Debug)]
pub(crate) struct AggAccum {
    seen: Option<HashSet<ValueKey>>,
    state: AggState,
}

impl AggAccum {
    pub fn new(spec: &AggSpec, p: f64) -> AggAccum {
        AggAccum::new_named(&spec.name, spec.distinct, p)
    }

    /// Accumulator from a bare function name — the entry point for the
    /// compiled pipeline, whose specs carry pre-compiled argument
    /// expressions instead of an [`AggSpec`] AST.
    pub fn new_named(name: &str, distinct: bool, p: f64) -> AggAccum {
        AggAccum {
            seen: distinct.then(HashSet::new),
            state: AggState::new_named(name, p),
        }
    }

    pub fn update(&mut self, value: Option<Value>) -> Result<(), CypherError> {
        if let (Some(seen), Some(v)) = (self.seen.as_mut(), value.as_ref()) {
            if !v.is_null() && !seen.insert(ValueKey::of(v)) {
                return Ok(()); // duplicate under DISTINCT
            }
        }
        self.state.update(value)
    }

    pub fn finish(self) -> Value {
        self.state.finish()
    }
}

#[derive(Debug)]
enum AggState {
    Count {
        n: i64,
    },
    Sum {
        int: i64,
        float: f64,
        saw_float: bool,
    },
    Avg {
        sum: f64,
        n: usize,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    Collect {
        items: Vec<Value>,
    },
    Stdev {
        n: usize,
        mean: f64,
        m2: f64,
    },
    Percentile {
        values: Vec<f64>,
        p: f64,
    },
}

impl AggState {
    fn new_named(name: &str, p: f64) -> AggState {
        match name {
            "count" => AggState::Count { n: 0 },
            "sum" => AggState::Sum {
                int: 0,
                float: 0.0,
                saw_float: false,
            },
            "avg" => AggState::Avg { sum: 0.0, n: 0 },
            "min" => AggState::Min(None),
            "max" => AggState::Max(None),
            "collect" => AggState::Collect { items: Vec::new() },
            "stdev" => AggState::Stdev {
                n: 0,
                mean: 0.0,
                m2: 0.0,
            },
            "percentilecont" => AggState::Percentile {
                values: Vec::new(),
                p,
            },
            other => unreachable!("not an aggregate: {other}"),
        }
    }

    fn update(&mut self, value: Option<Value>) -> Result<(), CypherError> {
        match self {
            AggState::Count { n } => match value {
                None => *n += 1, // count(*)
                Some(Value::Null) => {}
                Some(_) => *n += 1,
            },
            AggState::Sum {
                int,
                float,
                saw_float,
            } => match value {
                Some(Value::Int(i)) => *int += i,
                Some(Value::Float(f)) => {
                    *float += f;
                    *saw_float = true;
                }
                Some(Value::Null) | None => {}
                Some(other) => {
                    return Err(CypherError::runtime(format!(
                        "sum() expects numbers, got {}",
                        other.type_name()
                    )))
                }
            },
            AggState::Avg { sum, n } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_f64() {
                        *sum += f;
                        *n += 1;
                    } else if !v.is_null() {
                        return Err(CypherError::runtime(format!(
                            "avg() expects numbers, got {}",
                            v.type_name()
                        )));
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => v.order_key_cmp(c) == std::cmp::Ordering::Less,
                        };
                        if replace {
                            *cur = Some(v);
                        }
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => v.order_key_cmp(c) == std::cmp::Ordering::Greater,
                        };
                        if replace {
                            *cur = Some(v);
                        }
                    }
                }
            }
            AggState::Collect { items } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        items.push(v);
                    }
                }
            }
            AggState::Stdev { n, mean, m2 } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *n += 1;
                        let delta = x - *mean;
                        *mean += delta / *n as f64;
                        *m2 += delta * (x - *mean);
                    }
                }
            }
            AggState::Percentile { values, .. } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_f64() {
                        values.push(f);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count { n } => Value::Int(n),
            AggState::Sum {
                int,
                float,
                saw_float,
            } => {
                if saw_float {
                    Value::Float(float + int as f64)
                } else {
                    Value::Int(int)
                }
            }
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Collect { items } => Value::List(items),
            AggState::Stdev { n, m2, .. } => {
                if n < 2 {
                    Value::Float(0.0)
                } else {
                    Value::Float((m2 / (n as f64 - 1.0)).sqrt())
                }
            }
            AggState::Percentile { mut values, p } => {
                if values.is_empty() {
                    return Value::Null;
                }
                values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let rank = p.clamp(0.0, 1.0) * (values.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let frac = rank - lo as f64;
                Value::Float(values[lo] * (1.0 - frac) + values[hi] * frac)
            }
        }
    }
}

/// Evaluates an aggregating projection: groups `rows` by the non-aggregate
/// items, feeds each group's accumulators, then evaluates the rewritten
/// item expressions against each group's representative row extended with
/// the finished aggregate values. Returns `(projected row, context row)`
/// pairs, the context row being the extended representative.
#[allow(clippy::too_many_arguments)]
pub(crate) fn aggregate_rows(
    graph: &Graph,
    env: &Env,
    eval_env: &Env,
    rows: &[Row],
    params: &Params,
    key_exprs: &[&ProjectionItem],
    specs: &[AggSpec],
    rewritten: &[Expr],
) -> Result<Vec<(Row, Row)>, CypherError> {
    let ctx = EvalCtx { graph, env, params };
    let mut groups: HashMap<Vec<ValueKey>, usize> = HashMap::new();
    let mut group_data: Vec<(Row, Vec<AggAccum>)> = Vec::new();
    for row in rows {
        let mut key = Vec::with_capacity(key_exprs.len());
        for it in key_exprs {
            key.push(entry_key(graph, &ctx.eval(&it.expr, row)?));
        }
        let gi = match groups.get(&key) {
            Some(&i) => i,
            None => {
                let mut states = Vec::with_capacity(specs.len());
                for spec in specs {
                    let pval = match &spec.extra {
                        Some(e) => ctx.eval_value(e, row)?.as_f64().unwrap_or(0.5),
                        None => 0.5,
                    };
                    states.push(AggAccum::new(spec, pval));
                }
                group_data.push((row.clone(), states));
                groups.insert(key, group_data.len() - 1);
                group_data.len() - 1
            }
        };
        for (si, spec) in specs.iter().enumerate() {
            let val = match &spec.arg {
                None => None,
                Some(e) => Some(ctx.eval_value(e, row)?),
            };
            group_data[gi].1[si].update(val)?;
        }
    }
    // Global aggregation over zero rows still yields one group.
    if group_data.is_empty() && key_exprs.is_empty() {
        let states = specs.iter().map(|s| AggAccum::new(s, 0.5)).collect();
        let null_row: Row = vec![Entry::Val(Value::Null); env.names.len()];
        group_data.push((null_row, states));
    }
    let eval_ctx = EvalCtx {
        graph,
        env: eval_env,
        params,
    };
    let mut projected = Vec::with_capacity(group_data.len());
    for (rep_row, states) in group_data {
        let mut ext = rep_row.clone();
        for st in states {
            ext.push(Entry::Val(st.finish()));
        }
        let mut out_row = Vec::with_capacity(rewritten.len());
        for rexpr in rewritten {
            out_row.push(eval_ctx.eval(rexpr, &ext)?);
        }
        projected.push((out_row, ext));
    }
    Ok(projected)
}
