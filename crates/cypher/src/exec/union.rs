//! The union operator: splits a query at `UNION` / `UNION ALL`
//! separators, runs each segment as an independent pipeline, and merges
//! the results — deduplicating unless every separator was `UNION ALL`.

use crate::ast::{Clause, Query};
use crate::error::CypherError;
use crate::eval::{Env, Row};
use crate::result::QueryResult;
use iyp_graphdb::{Graph, ValueKey};
use std::collections::HashSet;

use super::context::{ExecContext, ExecLimits};
use super::{GraphSource, Operator};

/// Splits `q` at UNION separators. Each entry is one segment's clauses
/// plus the `all` flag of the separator *preceding* it (false for the
/// first segment).
pub(crate) fn split_segments(q: &Query) -> Vec<(&[Clause], bool)> {
    let mut out: Vec<(&[Clause], bool)> = Vec::new();
    let mut start = 0usize;
    let mut keep_dups = false; // `all` flag of the *preceding* UNION
    for (i, c) in q.clauses.iter().enumerate() {
        if let Clause::Union { all } = c {
            out.push((&q.clauses[start..i], keep_dups));
            keep_dups = *all;
            start = i + 1;
        }
    }
    out.push((&q.clauses[start..], keep_dups));
    out
}

/// Runs each segment as its own pipeline and merges the results. When
/// profiling, each segment's operators are recorded in order and a final
/// synthetic `Union` entry covers the merge/dedup step.
pub(crate) fn run_segments<G: GraphSource>(
    src: &mut G,
    segments: &[(&[Clause], bool)],
    compiled: Option<&crate::compile::CompiledQuery>,
    params: &crate::eval::Params,
    limits: ExecLimits,
    mut prof: Option<&mut crate::profile::ProfileCollector>,
) -> Result<QueryResult, CypherError> {
    // Use compiled segments only when they align one-to-one with the
    // split; a mismatch means the compiled form came from a different
    // query shape, so run interpreted instead of guessing.
    let compiled_segments = compiled
        .map(|c| &c.segments)
        .filter(|cs| cs.len() == segments.len());
    let mut combined = QueryResult::empty();
    let mut dedup_all = true;
    for (i, (clauses, all_flag)) in segments.iter().enumerate() {
        if clauses.is_empty() {
            return Err(CypherError::plan("empty UNION branch"));
        }
        if let Some(p) = prof.as_deref_mut() {
            if i > 0 {
                p.segment_boundary();
            }
        }
        let sub = Query {
            clauses: clauses.to_vec(),
        };
        let cs = compiled_segments.map(|c| &c[i]);
        let result = super::run_single(src, &sub, cs, params, limits, prof.as_deref_mut())?;
        if i == 0 {
            combined.columns = result.columns;
        } else if combined.columns.len() != result.columns.len() {
            return Err(CypherError::plan(format!(
                "UNION branches return different column counts ({} vs {})",
                combined.columns.len(),
                result.columns.len()
            )));
        }
        if *all_flag {
            dedup_all = false;
        }
        combined.rows.extend(result.rows);
    }
    let merge_start = prof.as_ref().map(|_| std::time::Instant::now());
    if dedup_all {
        let mut seen = HashSet::new();
        combined
            .rows
            .retain(|row| seen.insert(row.iter().map(ValueKey::of).collect::<Vec<_>>()));
    }
    if let (Some(p), Some(t0)) = (prof, merge_start) {
        p.record_synthetic("Union", combined.rows.len() as u64, t0.elapsed());
    }
    Ok(combined)
}

/// A `UNION` separator. Never executed — the driver splits queries into
/// segments before building pipelines — but rendered by EXPLAIN.
pub(crate) struct UnionBoundaryOp {
    pub all: bool,
}

impl Operator for UnionBoundaryOp {
    fn name(&self) -> &'static str {
        "Union"
    }

    fn apply(
        &self,
        _cx: &mut ExecContext<'_>,
        _env: &mut Env,
        _rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        unreachable!("UNION separators are split out before run_single")
    }

    fn explain_into(&self, _graph: &Graph, _bound: &mut Vec<String>, idx: usize, out: &mut String) {
        super::explain_simple(&Clause::Union { all: self.all }, idx, out);
    }
}
