//! Execution of compiled queries ([`crate::compile`]): operators that are
//! drop-in replacements for the interpreted pipeline — same `name()`
//! strings, same plan rendering (delegated to the interpreted operators),
//! same results and errors — but with all per-row string work done at
//! lowering time, neighbor lists reused through scratch buffers, bindings
//! applied in place with an undo stack, and `MATCH` fan-out optionally
//! spread over a scoped worker pool in morsels.
//!
//! Determinism: morsels are fixed contiguous ranges merged back in morsel
//! order, so output rows are byte-identical to sequential execution at any
//! worker count; per-worker db-hit deltas are added back to the calling
//! thread's counter so `PROFILE` totals stay exact.

use crate::ast::RelDir;
use crate::compile::{CEvalCtx, CExpr, CMatch, CProject, CUnwind, CompiledOp};
use crate::error::CypherError;
use crate::eval::{Entry, Env, Params, Row};
use crate::plan::{self, Anchor, PartPlan};
use iyp_graphdb::{dbhits, Direction, Graph, NodeId, RelId, Sym, Value, ValueKey};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use super::aggregate::AggAccum;
use super::context::{ExecContext, ExecLimits, DEADLINE_CHECK_STRIDE};
use super::project::entry_key;
use super::{expand, project, unwind, varlen, Operator, VARLEN_CAP};

/// Builds the executable operator for one compiled clause.
pub(crate) fn build_compiled_op(op: &CompiledOp) -> Box<dyn Operator + '_> {
    match op {
        CompiledOp::Match(m) => Box::new(CMatchOp { m }),
        CompiledOp::Unwind(u) => Box::new(CUnwindOp { u }),
        CompiledOp::Project(p) => Box::new(CProjectOp { p }),
        CompiledOp::Return(p) => Box::new(CReturnOp { p }),
    }
}

fn env_mismatch() -> CypherError {
    CypherError::plan("internal: compiled environment mismatch")
}

// ---------------------------------------------------------------------------
// Lowered patterns: all names resolved to slots / interned symbols
// ---------------------------------------------------------------------------

/// A variable binding site resolved to its row slot. The slot is `None`
/// only in impossible internal states; the interpreted error message is
/// raised lazily, exactly where the interpreter would raise it.
struct LBind {
    name: String,
    slot: Option<usize>,
}

struct LNode {
    bind: Option<LBind>,
    /// Pre-resolved label symbols.
    labels: Vec<Sym>,
    /// True when the pattern names a label unknown to the graph: the
    /// node pattern matches nothing (mirrors `node_has_label` on an
    /// unknown name).
    impossible: bool,
    props: Vec<(String, CExpr)>,
}

struct LRel {
    bind: Option<LBind>,
    /// `None` = any type; `Some` holds the resolvable symbols (unknown
    /// names drop out, so all-unknown = `Some(empty)` = matches nothing,
    /// mirroring `Graph::neighbors`).
    types: Option<Vec<Sym>>,
    dir: Direction,
    single: bool,
    min: u32,
    max: u32,
    props: Vec<(String, CExpr)>,
}

enum LAnchor {
    Bound {
        var: String,
        slot: Option<usize>,
    },
    IndexSeek {
        label: String,
        key: String,
        expr: CExpr,
    },
    RangeSeek {
        label: String,
        key: String,
        lo: Option<(CExpr, bool)>,
        hi: Option<(CExpr, bool)>,
    },
    LabelScan(String),
    AllNodes,
}

struct LPart {
    anchor: LAnchor,
    anchor_node: LNode,
    steps: Vec<(LRel, LNode)>,
    /// Path variable name and slot, when the part binds a path.
    path_slot: Option<(String, Option<usize>)>,
    /// Evaluate the `WHERE` predicate at the DFS leaf of this part,
    /// before the per-result row clone. Set only on the final part of a
    /// non-`shortestPath` match: every pattern variable is bound there,
    /// so rows the predicate rejects are never materialized at all.
    leaf_filter: bool,
    /// `WHERE` conjuncts scheduled mid-DFS: `(ready_at, predicate)`
    /// pairs where `ready_at` is the step count after which every slot
    /// the conjunct reads is bound. A conjunct that is definitely not
    /// true prunes the whole subtree before any neighbor expansion; an
    /// erroring conjunct never prunes — the full leaf predicate
    /// reproduces the interpreter's error on any row that survives.
    filters: Vec<(usize, CExpr)>,
}

fn lower_expr(env: &Env, e: &crate::ast::Expr) -> Result<CExpr, CypherError> {
    // Pattern/seek expressions were pre-validated by `compile_query`;
    // failure here means the simulated and actual environments diverged.
    crate::compile::compile_scoped(&env.names, &mut Vec::new(), e).map_err(|_| env_mismatch())
}

fn lower_node(
    graph: &Graph,
    env: &Env,
    pat: &crate::ast::NodePattern,
) -> Result<LNode, CypherError> {
    let mut labels = Vec::new();
    let mut impossible = false;
    for l in &pat.labels {
        match graph.label_sym(l) {
            Some(s) => labels.push(s),
            None => impossible = true,
        }
    }
    Ok(LNode {
        bind: pat.var.as_ref().map(|v| LBind {
            name: v.clone(),
            slot: env.slot(v),
        }),
        labels,
        impossible,
        props: pat
            .props
            .iter()
            .map(|(k, e)| Ok((k.clone(), lower_expr(env, e)?)))
            .collect::<Result<_, CypherError>>()?,
    })
}

fn lower_rel(graph: &Graph, env: &Env, pat: &crate::ast::RelPattern) -> Result<LRel, CypherError> {
    let types = if pat.types.is_empty() {
        None
    } else {
        Some(
            pat.types
                .iter()
                .filter_map(|t| graph.rel_type_sym(t))
                .collect(),
        )
    };
    Ok(LRel {
        bind: pat.var.as_ref().map(|v| LBind {
            name: v.clone(),
            slot: env.slot(v),
        }),
        types,
        dir: match pat.dir {
            RelDir::Right => Direction::Outgoing,
            RelDir::Left => Direction::Incoming,
            RelDir::Undirected => Direction::Both,
        },
        single: pat.hops.is_single(),
        min: pat.hops.min,
        max: pat.hops.max.unwrap_or(VARLEN_CAP),
        props: pat
            .props
            .iter()
            .map(|(k, e)| Ok((k.clone(), lower_expr(env, e)?)))
            .collect::<Result<_, CypherError>>()?,
    })
}

fn lower_part(graph: &Graph, env: &Env, p: &PartPlan) -> Result<LPart, CypherError> {
    let anchor = match &p.anchor {
        Anchor::Bound(var) => LAnchor::Bound {
            var: var.clone(),
            slot: env.slot(var),
        },
        Anchor::IndexSeek { label, key, expr } => LAnchor::IndexSeek {
            label: label.clone(),
            key: key.clone(),
            expr: lower_expr(env, expr)?,
        },
        Anchor::RangeSeek { label, key, lo, hi } => LAnchor::RangeSeek {
            label: label.clone(),
            key: key.clone(),
            lo: lo
                .as_ref()
                .map(|(e, inc)| Ok::<_, CypherError>((lower_expr(env, e)?, *inc)))
                .transpose()?,
            hi: hi
                .as_ref()
                .map(|(e, inc)| Ok::<_, CypherError>((lower_expr(env, e)?, *inc)))
                .transpose()?,
        },
        Anchor::LabelScan(label) => LAnchor::LabelScan(label.clone()),
        Anchor::AllNodes => LAnchor::AllNodes,
    };
    Ok(LPart {
        anchor,
        anchor_node: lower_node(graph, env, &p.anchor_node)?,
        steps: p
            .steps
            .iter()
            .map(|(r, n)| Ok((lower_rel(graph, env, r)?, lower_node(graph, env, n)?)))
            .collect::<Result<_, CypherError>>()?,
        path_slot: p.path_var.as_ref().map(|pv| (pv.clone(), env.slot(pv))),
        leaf_filter: false,
        filters: Vec::new(),
    })
}

/// Splits a predicate into its top-level `AND` conjuncts.
fn conjuncts_of<'e>(e: &'e CExpr, out: &mut Vec<&'e CExpr>) {
    if let CExpr::Bin(crate::ast::BinOp::And, l, r) = e {
        conjuncts_of(l, out);
        conjuncts_of(r, out);
    } else {
        out.push(e);
    }
}

/// Collects every row slot `e` reads into `out`; returns `false` when
/// the expression also references something slot analysis cannot see
/// (unbound names, `*`, stray aggregates) and must stay at the leaf.
fn collect_slots(e: &CExpr, out: &mut Vec<usize>) -> bool {
    match e {
        CExpr::Const(_) | CExpr::Param(_) | CExpr::Local(_) => true,
        CExpr::Slot(i) => {
            out.push(*i);
            true
        }
        CExpr::Unbound(_) | CExpr::AggErr(_) | CExpr::Star => false,
        CExpr::Prop(b, _)
        | CExpr::Not(b)
        | CExpr::Neg(b)
        | CExpr::IsNull(b, _)
        | CExpr::ExistsProp(b, _) => collect_slots(b, out),
        CExpr::Index(a, b) | CExpr::Bin(_, a, b) => collect_slots(a, out) && collect_slots(b, out),
        CExpr::Slice(a, lo, hi) => {
            collect_slots(a, out)
                && lo.as_deref().is_none_or(|e| collect_slots(e, out))
                && hi.as_deref().is_none_or(|e| collect_slots(e, out))
        }
        CExpr::Call { args, .. } | CExpr::List(args) => args.iter().all(|e| collect_slots(e, out)),
        CExpr::Map(kvs) => kvs.iter().all(|(_, e)| collect_slots(e, out)),
        CExpr::Case {
            operand,
            arms,
            default,
        } => {
            operand.as_deref().is_none_or(|e| collect_slots(e, out))
                && arms
                    .iter()
                    .all(|(c, r)| collect_slots(c, out) && collect_slots(r, out))
                && default.as_deref().is_none_or(|e| collect_slots(e, out))
        }
        CExpr::ListComp { list, pred, map } => {
            collect_slots(list, out)
                && pred.as_deref().is_none_or(|e| collect_slots(e, out))
                && map.as_deref().is_none_or(|e| collect_slots(e, out))
        }
    }
}

/// Schedules `WHERE` conjuncts onto the part's DFS: each conjunct lands
/// at the first step count where every slot it reads is bound. Conjuncts
/// only ready at the leaf are excluded — the full predicate runs there
/// regardless.
fn schedule_filters(part: &LPart, where_c: &CExpr) -> Vec<(usize, CExpr)> {
    // Earliest bind position per slot within this part: the anchor binds
    // at 0, step k's node and relationship at k + 1. Slots the part never
    // binds were bound before it (earlier parts or earlier clauses).
    let mut bind_pos: HashMap<usize, usize> = HashMap::new();
    let mut record = |bind: &Option<LBind>, pos: usize| {
        if let Some(LBind { slot: Some(s), .. }) = bind {
            bind_pos.entry(*s).or_insert(pos);
        }
    };
    record(&part.anchor_node.bind, 0);
    for (k, (lrel, lnode)) in part.steps.iter().enumerate() {
        record(&lrel.bind, k + 1);
        record(&lnode.bind, k + 1);
    }
    // The path variable only materializes at the leaf.
    if let Some((_, Some(s))) = &part.path_slot {
        bind_pos.insert(*s, part.steps.len());
    }
    let mut cs = Vec::new();
    conjuncts_of(where_c, &mut cs);
    let mut out = Vec::new();
    for c in cs {
        let mut slots = Vec::new();
        if !collect_slots(c, &mut slots) {
            continue;
        }
        let ready = slots
            .iter()
            .map(|s| bind_pos.get(s).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        if ready < part.steps.len() {
            out.push((ready, c.clone()));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Worker-side context and reusable buffers
// ---------------------------------------------------------------------------

/// Per-worker stand-in for the deadline/budget checks of `ExecContext`
/// (which is not `Sync`): same stride-amortized deadline poll, same
/// budget error messages.
struct WorkCtx {
    limits: ExecLimits,
    max_rows: usize,
    ticks: Cell<u32>,
}

impl WorkCtx {
    fn new(limits: ExecLimits, max_rows: usize) -> WorkCtx {
        WorkCtx {
            limits,
            max_rows,
            ticks: Cell::new(0),
        }
    }

    #[inline]
    fn check_deadline(&self) -> Result<(), CypherError> {
        if self.limits.deadline.is_none() {
            return Ok(());
        }
        let t = self.ticks.get();
        self.ticks.set(t.wrapping_add(1));
        if !t.is_multiple_of(DEADLINE_CHECK_STRIDE) {
            return Ok(());
        }
        self.limits.check_now()
    }

    fn check_expansion(&self, len: usize) -> Result<(), CypherError> {
        if len > self.max_rows {
            let max = self.max_rows;
            return Err(CypherError::runtime(format!(
                "pattern expansion exceeded {max} rows"
            )));
        }
        Ok(())
    }
}

/// Reusable per-worker buffers: the binding undo stack, the used-rel set
/// (a small vec with stack discipline), path bookkeeping, and the
/// neighbor scratch pool fed to [`Graph::neighbors_into`] — the
/// allocation-free replacement for per-hop `Vec` churn.
#[derive(Default)]
struct Workspace {
    undo: Vec<(usize, Entry)>,
    used: Vec<RelId>,
    path: Vec<(Vec<RelId>, NodeId)>,
    scratch: Vec<Vec<(RelId, NodeId)>>,
}

fn rollback(w: &mut Row, undo: &mut Vec<(usize, Entry)>, mark: usize) {
    while undo.len() > mark {
        let (slot, old) = undo.pop().expect("len checked");
        w[slot] = old;
    }
}

// ---------------------------------------------------------------------------
// The compiled MATCH operator
// ---------------------------------------------------------------------------

pub(crate) struct CMatchOp<'q> {
    pub m: &'q CMatch,
}

/// Everything a match expansion worker needs, all `Sync`.
struct MatchRun<'a> {
    graph: &'a Graph,
    params: &'a Params,
    env: &'a Env,
    plans: &'a [PartPlan],
    lowered: &'a [LPart],
    new_slots: &'a HashSet<usize>,
    where_c: Option<&'a CExpr>,
    optional: bool,
    width: usize,
}

impl Operator for CMatchOp<'_> {
    fn name(&self) -> &'static str {
        if self.m.clause.optional {
            "OptionalMatch"
        } else {
            "Match"
        }
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        mut rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        if env.names != self.m.env_before {
            return Err(env_mismatch());
        }
        let clause = &self.m.clause;
        let mut bound: Vec<String> = env.names.clone();
        let plans = plan::plan_match(cx.graph(), clause, &mut bound);

        let mut new_slots: HashSet<usize> = HashSet::new();
        for part in &clause.patterns {
            let mut vars = Vec::new();
            plan::collect_part_vars(part, &mut vars);
            for v in vars {
                if env.slot(&v).is_none() {
                    let slot = env.push(v);
                    new_slots.insert(slot);
                }
            }
        }
        let width = env.names.len();
        let graph = cx.graph();
        let mut lowered: Vec<LPart> = plans
            .iter()
            .map(|p| lower_part(graph, env, p))
            .collect::<Result<_, CypherError>>()?;
        // `WHERE` pushdown: the final part's DFS leaf has every pattern
        // variable bound, so the predicate can run there and reject rows
        // before they are ever cloned. `shortestPath` keeps the late
        // filter — minimal-length selection must see unfiltered rows.
        if let Some(wc) = self.m.where_c.as_ref() {
            if plans.last().is_some_and(|p| !p.shortest) {
                if let Some(last) = lowered.last_mut() {
                    last.leaf_filter = true;
                    last.filters = schedule_filters(last, wc);
                }
            }
        }

        let run = MatchRun {
            graph,
            params: cx.params,
            env,
            plans: &plans,
            lowered: &lowered,
            new_slots: &new_slots,
            where_c: self.m.where_c.as_ref(),
            optional: clause.optional,
            width,
        };
        let par = cx.limits.parallelism.max(1);

        // Morsel-parallel fan-out over input rows.
        if par > 1 && rows.len() > 1 {
            if let Some(out) =
                run_parallel(&rows, par, cx.limits, cx.max_rows, |wctx, ws, row, out| {
                    run.process_row(wctx, ws, row.clone(), out)
                })?
            {
                return Ok(out);
            }
        }

        // Morsel-parallel fan-out over the first part's anchor candidates
        // (single input row). `shortestPath` needs a global minimal-length
        // pass over all of part 0's output, so it stays sequential.
        if par > 1 && rows.len() == 1 && !plans.is_empty() && !plans[0].shortest {
            let mut base = rows.pop().expect("len checked");
            base.resize(width, Entry::Val(Value::Null));
            let cands = run.anchor_candidates_c(&lowered[0], &base)?;
            let parallel = run_parallel(
                &cands,
                par,
                cx.limits,
                cx.max_rows,
                |wctx, ws, cand, out| run.process_candidate(wctx, ws, &base, *cand, out),
            )?;
            let mut out = match parallel {
                Some(out) => out,
                None => {
                    // Too few candidates to morselize: same per-candidate
                    // path, sequentially (candidates are already charged).
                    let wctx = WorkCtx::new(cx.limits, cx.max_rows);
                    let mut ws = Workspace::default();
                    let mut out = Vec::new();
                    for &cand in &cands {
                        run.process_candidate(&wctx, &mut ws, &base, cand, &mut out)?;
                    }
                    out
                }
            };
            let wctx = WorkCtx::new(cx.limits, cx.max_rows);
            wctx.check_expansion(out.len())?;
            if out.is_empty() && run.optional {
                out.push(base);
            }
            return Ok(out);
        }

        // Sequential execution (parallelism 1, or nothing to morselize).
        let wctx = WorkCtx::new(cx.limits, cx.max_rows);
        let mut ws = Workspace::default();
        let mut out = Vec::new();
        for row in rows {
            run.process_row(&wctx, &mut ws, row, &mut out)?;
        }
        Ok(out)
    }

    fn explain_into(&self, graph: &Graph, bound: &mut Vec<String>, idx: usize, out: &mut String) {
        expand::MatchOp {
            clause: &self.m.clause,
        }
        .explain_into(graph, bound, idx, out)
    }
}

impl<'a> MatchRun<'a> {
    #[inline]
    fn cev(&self) -> CEvalCtx<'a> {
        CEvalCtx {
            graph: self.graph,
            params: self.params,
        }
    }

    /// Is the `WHERE` predicate applied at the final part's DFS leaf
    /// (so the late filter pass must be skipped)?
    #[inline]
    fn leaf_filtered(&self) -> bool {
        self.lowered.last().is_some_and(|l| l.leaf_filter)
    }

    /// Full pipeline for one input row: all parts, `WHERE`, and the
    /// `OPTIONAL MATCH` null-row fallback. Mirrors the interpreted
    /// operator's per-row loop.
    fn process_row(
        &self,
        wctx: &WorkCtx,
        ws: &mut Workspace,
        mut row: Row,
        out: &mut Vec<Row>,
    ) -> Result<(), CypherError> {
        row.resize(self.width, Entry::Val(Value::Null));
        let mut current = vec![row.clone()];
        for pi in 0..self.plans.len() {
            let mut next = Vec::new();
            for r in &current {
                wctx.check_deadline()?;
                self.expand_part_c(wctx, ws, r, pi, &mut next)?;
                wctx.check_expansion(next.len())?;
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        if let Some(wc) = self.where_c.filter(|_| !self.leaf_filtered()) {
            let cev = self.cev();
            let mut kept = Vec::with_capacity(current.len());
            for r in current {
                if cev.eval_c_value(wc, &r)?.is_true() {
                    kept.push(r);
                }
            }
            current = kept;
        }
        if current.is_empty() && self.optional {
            out.push(row);
        } else {
            out.extend(current);
        }
        Ok(())
    }

    /// Pipeline for one part-0 anchor candidate of a single input row
    /// (the candidate-morsel mode): expand part 0 from this candidate,
    /// then the remaining parts and `WHERE`. The caller applies the
    /// `OPTIONAL MATCH` fallback on the merged total.
    fn process_candidate(
        &self,
        wctx: &WorkCtx,
        ws: &mut Workspace,
        base: &Row,
        cand: NodeId,
        out: &mut Vec<Row>,
    ) -> Result<(), CypherError> {
        let mut current = Vec::new();
        self.expand_from_candidates(wctx, ws, base, 0, std::slice::from_ref(&cand), &mut current)?;
        wctx.check_expansion(current.len())?;
        for pi in 1..self.plans.len() {
            let mut next = Vec::new();
            for r in &current {
                wctx.check_deadline()?;
                self.expand_part_c(wctx, ws, r, pi, &mut next)?;
                wctx.check_expansion(next.len())?;
            }
            current = next;
            if current.is_empty() {
                return Ok(());
            }
        }
        if let Some(wc) = self.where_c.filter(|_| !self.leaf_filtered()) {
            let cev = self.cev();
            for r in current {
                if cev.eval_c_value(wc, &r)?.is_true() {
                    out.push(r);
                }
            }
        } else {
            out.extend(current);
        }
        Ok(())
    }

    fn expand_part_c(
        &self,
        wctx: &WorkCtx,
        ws: &mut Workspace,
        row: &Row,
        pi: usize,
        out: &mut Vec<Row>,
    ) -> Result<(), CypherError> {
        let cands = self.anchor_candidates_c(&self.lowered[pi], row)?;
        self.expand_from_candidates(wctx, ws, row, pi, &cands, out)
    }

    fn expand_from_candidates(
        &self,
        wctx: &WorkCtx,
        ws: &mut Workspace,
        row: &Row,
        pi: usize,
        cands: &[NodeId],
        out: &mut Vec<Row>,
    ) -> Result<(), CypherError> {
        debug_assert!(ws.undo.is_empty() && ws.used.is_empty() && ws.path.is_empty());
        let plan = &self.plans[pi];
        let lp = &self.lowered[pi];
        let mut w = row.clone();
        if plan.shortest {
            let mut local = Vec::new();
            for &cand in cands {
                self.one_candidate(wctx, ws, plan, lp, &mut w, cand, &mut local)?;
            }
            out.extend(varlen::keep_shortest(self.env, plan, local)?);
        } else {
            for &cand in cands {
                self.one_candidate(wctx, ws, plan, lp, &mut w, cand, out)?;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn one_candidate(
        &self,
        wctx: &WorkCtx,
        ws: &mut Workspace,
        plan: &PartPlan,
        lp: &LPart,
        w: &mut Row,
        cand: NodeId,
        out: &mut Vec<Row>,
    ) -> Result<(), CypherError> {
        if !self.node_matches_c(&lp.anchor_node, cand, w)? {
            return Ok(());
        }
        let mark = ws.undo.len();
        if self.bind_node_c(w, &mut ws.undo, &lp.anchor_node.bind, Entry::Node(cand))? {
            self.dfs_c(wctx, ws, plan, lp, 0, cand, cand, w, out)?;
        }
        rollback(w, &mut ws.undo, mark);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_c(
        &self,
        wctx: &WorkCtx,
        ws: &mut Workspace,
        plan: &PartPlan,
        lp: &LPart,
        step_idx: usize,
        anchor: NodeId,
        cur: NodeId,
        w: &mut Row,
        out: &mut Vec<Row>,
    ) -> Result<(), CypherError> {
        wctx.check_deadline()?;
        // Mid-DFS conjunct pruning: a conjunct whose slots are all bound
        // by now and which is definitely not true kills this subtree
        // before any neighbor expansion. Errors never prune (leaf eval
        // reproduces them); pruned subtrees produce no rows either way.
        for (ready, f) in &lp.filters {
            if *ready == step_idx {
                if let Ok(v) = self.cev().eval_c_value(f, w) {
                    if !v.is_true() {
                        return Ok(());
                    }
                }
            }
        }
        if step_idx == lp.steps.len() {
            // Complete binding. With `WHERE` pushdown the predicate runs
            // on the bound workspace first, so rejected rows skip the
            // per-result clone entirely (paths must be bound pre-check —
            // the predicate may reference the path variable).
            if lp.leaf_filter && lp.path_slot.is_none() {
                if let Some(wc) = self.where_c {
                    if !self.cev().eval_c_value(wc, w)?.is_true() {
                        return Ok(());
                    }
                }
            }
            let mut r = w.clone();
            if let Some((name, slot)) = &lp.path_slot {
                let slot = slot
                    .ok_or_else(|| CypherError::plan(format!("path variable '{name}' missing")))?;
                bind_path_into(&mut r, slot, plan, anchor, &ws.path);
                if lp.leaf_filter {
                    if let Some(wc) = self.where_c {
                        if !self.cev().eval_c_value(wc, &r)?.is_true() {
                            return Ok(());
                        }
                    }
                }
            }
            out.push(r);
            return Ok(());
        }
        let (lrel, lnode) = &lp.steps[step_idx];
        if lrel.single {
            let track_path = lp.path_slot.is_some();
            let mut buf = ws.scratch.pop().unwrap_or_default();
            self.graph
                .neighbors_into(cur, lrel.dir, lrel.types.as_deref(), &mut buf);
            for &(rid, nbr) in &buf {
                if ws.used.contains(&rid) {
                    continue;
                }
                if !self.rel_matches_c(lrel, rid, w)? {
                    continue;
                }
                if !self.node_matches_c(lnode, nbr, w)? {
                    continue;
                }
                let mark = ws.undo.len();
                let mut ok = self.bind_node_c(w, &mut ws.undo, &lnode.bind, Entry::Node(nbr))?;
                if ok {
                    if let Some(b) = &lrel.bind {
                        ok = self.bind_entry_c(w, &mut ws.undo, b, Entry::Rel(rid))?;
                    }
                }
                if ok {
                    ws.used.push(rid);
                    if track_path {
                        ws.path.push((vec![rid], nbr));
                    }
                    self.dfs_c(wctx, ws, plan, lp, step_idx + 1, anchor, nbr, w, out)?;
                    if track_path {
                        ws.path.pop();
                    }
                    ws.used.pop();
                }
                rollback(w, &mut ws.undo, mark);
            }
            ws.scratch.push(buf);
        } else {
            let mut stack_rels: Vec<RelId> = Vec::new();
            self.varlen_c(
                wctx,
                ws,
                plan,
                lp,
                step_idx,
                anchor,
                cur,
                w,
                out,
                &mut stack_rels,
            )?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn varlen_c(
        &self,
        wctx: &WorkCtx,
        ws: &mut Workspace,
        plan: &PartPlan,
        lp: &LPart,
        step_idx: usize,
        anchor: NodeId,
        cur: NodeId,
        w: &mut Row,
        out: &mut Vec<Row>,
        stack_rels: &mut Vec<RelId>,
    ) -> Result<(), CypherError> {
        wctx.check_deadline()?;
        let (lrel, lnode) = &lp.steps[step_idx];
        let depth = stack_rels.len() as u32;
        if depth >= lrel.min {
            // Try ending the variable-length segment here.
            if self.node_matches_c(lnode, cur, w)? {
                let mark = ws.undo.len();
                let mut ok = self.bind_node_c(w, &mut ws.undo, &lnode.bind, Entry::Node(cur))?;
                if ok {
                    if let Some(b) = &lrel.bind {
                        let rel_list = Value::List(
                            stack_rels
                                .iter()
                                .map(|rid| Entry::Rel(*rid).to_value(self.graph))
                                .collect(),
                        );
                        ok = self.bind_entry_c(w, &mut ws.undo, b, Entry::Val(rel_list))?;
                    }
                }
                if ok {
                    let used_mark = ws.used.len();
                    ws.used.extend_from_slice(stack_rels);
                    let track_path = lp.path_slot.is_some();
                    if track_path {
                        ws.path.push((stack_rels.clone(), cur));
                    }
                    self.dfs_c(wctx, ws, plan, lp, step_idx + 1, anchor, cur, w, out)?;
                    if track_path {
                        ws.path.pop();
                    }
                    ws.used.truncate(used_mark);
                }
                rollback(w, &mut ws.undo, mark);
            }
        }
        if depth == lrel.max {
            return Ok(());
        }
        let mut buf = ws.scratch.pop().unwrap_or_default();
        self.graph
            .neighbors_into(cur, lrel.dir, lrel.types.as_deref(), &mut buf);
        for &(rid, nbr) in &buf {
            if ws.used.contains(&rid) || stack_rels.contains(&rid) {
                continue;
            }
            if !self.rel_matches_c(lrel, rid, w)? {
                continue;
            }
            stack_rels.push(rid);
            self.varlen_c(
                wctx, ws, plan, lp, step_idx, anchor, nbr, w, out, stack_rels,
            )?;
            stack_rels.pop();
        }
        ws.scratch.push(buf);
        Ok(())
    }

    fn anchor_candidates_c(&self, lp: &LPart, row: &Row) -> Result<Vec<NodeId>, CypherError> {
        let graph = self.graph;
        let cev = self.cev();
        let candidates = match &lp.anchor {
            LAnchor::Bound { var, slot } => {
                let slot =
                    slot.ok_or_else(|| CypherError::plan(format!("unbound anchor '{var}'")))?;
                match &row[slot] {
                    Entry::Node(id) => vec![*id],
                    Entry::Val(Value::Null) => Vec::new(),
                    _ => {
                        return Err(CypherError::runtime(format!(
                            "variable '{var}' is not a node"
                        )))
                    }
                }
            }
            LAnchor::IndexSeek { label, key, expr } => {
                let v = cev.eval_c_value(expr, row)?;
                graph.index_lookup(label, key, &v).unwrap_or_default()
            }
            LAnchor::RangeSeek { label, key, lo, hi } => {
                let lo_v = match lo {
                    Some((e, inc)) => Some((cev.eval_c_value(e, row)?, *inc)),
                    None => None,
                };
                let hi_v = match hi {
                    Some((e, inc)) => Some((cev.eval_c_value(e, row)?, *inc)),
                    None => None,
                };
                graph
                    .index_range(
                        label,
                        key,
                        lo_v.as_ref().map(|(v, inc)| (v, *inc)),
                        hi_v.as_ref().map(|(v, inc)| (v, *inc)),
                    )
                    .unwrap_or_default()
            }
            LAnchor::LabelScan(label) => graph.nodes_with_label(label).collect(),
            LAnchor::AllNodes => graph.all_nodes().collect(),
        };
        Ok(candidates)
    }

    fn node_matches_c(&self, ln: &LNode, node: NodeId, row: &Row) -> Result<bool, CypherError> {
        if ln.impossible {
            return Ok(false);
        }
        for &sym in &ln.labels {
            if !self.graph.node_has_label_sym(node, sym) {
                return Ok(false);
            }
        }
        if !ln.props.is_empty() {
            let cev = self.cev();
            for (key, expr) in &ln.props {
                let want = cev.eval_c_value(expr, row)?;
                let have = self
                    .graph
                    .node(node)
                    .map(|n| n.props.get_or_null(key))
                    .unwrap_or(Value::Null);
                if have.cypher_eq(&want) != Some(true) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    fn rel_matches_c(&self, lr: &LRel, rel: RelId, row: &Row) -> Result<bool, CypherError> {
        if !lr.props.is_empty() {
            let cev = self.cev();
            for (key, expr) in &lr.props {
                let want = cev.eval_c_value(expr, row)?;
                let have = self
                    .graph
                    .rel(rel)
                    .map(|r| r.props.get_or_null(key))
                    .unwrap_or(Value::Null);
                if have.cypher_eq(&want) != Some(true) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    fn bind_node_c(
        &self,
        w: &mut Row,
        undo: &mut Vec<(usize, Entry)>,
        bind: &Option<LBind>,
        entry: Entry,
    ) -> Result<bool, CypherError> {
        match bind {
            None => Ok(true),
            Some(b) => self.bind_entry_c(w, undo, b, entry),
        }
    }

    fn bind_entry_c(
        &self,
        w: &mut Row,
        undo: &mut Vec<(usize, Entry)>,
        bind: &LBind,
        entry: Entry,
    ) -> Result<bool, CypherError> {
        let slot = bind.slot.ok_or_else(|| {
            CypherError::plan(format!("variable '{}' missing from environment", bind.name))
        })?;
        match &w[slot] {
            Entry::Val(Value::Null) if self.new_slots.contains(&slot) => {
                undo.push((slot, std::mem::replace(&mut w[slot], entry)));
                Ok(true)
            }
            Entry::Val(Value::Null) => Ok(false), // pre-existing null binding never matches
            existing => Ok(*existing == entry),
        }
    }
}

fn bind_path_into(
    r: &mut Row,
    slot: usize,
    plan: &PartPlan,
    anchor: NodeId,
    path: &[(Vec<RelId>, NodeId)],
) {
    let mut nodes: Vec<NodeId> = vec![anchor];
    let mut rels: Vec<RelId> = Vec::new();
    for (seg_rels, end) in path {
        rels.extend(seg_rels.iter().copied());
        nodes.push(*end);
    }
    if plan.reversed {
        nodes.reverse();
        rels.reverse();
    }
    r[slot] = Entry::Path(nodes, rels);
}

// ---------------------------------------------------------------------------
// Morsel scheduling
// ---------------------------------------------------------------------------

/// Runs `f` over `items` in fixed contiguous morsels on a scoped worker
/// pool, merging per-morsel outputs back in morsel order (byte-identical
/// to sequential). Per-worker db-hit deltas are credited back to the
/// calling thread. Returns `Ok(None)` when there are too few items to
/// morselize — the caller runs sequentially.
fn run_parallel<I, F>(
    items: &[I],
    workers: usize,
    limits: ExecLimits,
    max_rows: usize,
    f: F,
) -> Result<Option<Vec<Row>>, CypherError>
where
    I: Sync,
    F: Fn(&WorkCtx, &mut Workspace, &I, &mut Vec<Row>) -> Result<(), CypherError> + Sync,
{
    let per = items.len().div_ceil(workers * 4).max(1);
    let morsels: Vec<(usize, usize)> = (0..items.len())
        .step_by(per)
        .map(|s| (s, (s + per).min(items.len())))
        .collect();
    if morsels.len() < 2 {
        return Ok(None);
    }
    let n_workers = workers.min(morsels.len());
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);

    // Per worker: the morsels it completed (index + outcome) and its
    // db-hit delta, credited back to the calling thread after the join.
    type WorkerResult = (Vec<(usize, Result<Vec<Row>, CypherError>)>, u64);
    let worker_results: Vec<WorkerResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                s.spawn(|| {
                    let h0 = dbhits::current();
                    let wctx = WorkCtx::new(limits, max_rows);
                    let mut ws = Workspace::default();
                    let mut done = Vec::new();
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let mi = next.fetch_add(1, Ordering::Relaxed);
                        if mi >= morsels.len() {
                            break;
                        }
                        let (start, end) = morsels[mi];
                        let mut rows = Vec::new();
                        let mut res = Ok(());
                        for item in &items[start..end] {
                            if let Err(e) = f(&wctx, &mut ws, item, &mut rows) {
                                res = Err(e);
                                break;
                            }
                        }
                        let errored = res.is_err();
                        done.push((mi, res.map(|()| rows)));
                        if errored {
                            failed.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    (done, dbhits::current().wrapping_sub(h0))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("match worker panicked"))
            .collect()
    });

    // Credit worker-thread graph accesses to the calling thread so
    // PROFILE's db-hit totals match sequential execution exactly.
    let mut parts: Vec<(usize, Result<Vec<Row>, CypherError>)> = Vec::new();
    for (done, delta) in worker_results {
        dbhits::add(delta);
        parts.extend(done);
    }
    parts.sort_by_key(|(mi, _)| *mi);
    let mut merged = Vec::new();
    for (_, res) in parts {
        // The first error in morsel order wins, matching what sequential
        // execution would have reported first.
        merged.extend(res?);
    }
    Ok(Some(merged))
}

// ---------------------------------------------------------------------------
// Compiled UNWIND and projections
// ---------------------------------------------------------------------------

pub(crate) struct CUnwindOp<'q> {
    pub u: &'q CUnwind,
}

impl Operator for CUnwindOp<'_> {
    fn name(&self) -> &'static str {
        "Unwind"
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        let u = self.u;
        if env.names != u.env_before {
            return Err(env_mismatch());
        }
        let cev = CEvalCtx {
            graph: cx.graph(),
            params: cx.params,
        };
        let mut values: Vec<(Row, Value)> = Vec::with_capacity(rows.len());
        for row in rows {
            let v = cev.eval_c_value(&u.expr_c, &row)?;
            values.push((row, v));
        }
        env.push(u.var.clone());
        let mut out = Vec::new();
        for (row, v) in values {
            match v {
                Value::Null => {}
                Value::List(items) => {
                    for item in items {
                        let mut r = row.clone();
                        r.push(Entry::Val(item));
                        out.push(r);
                    }
                }
                other => {
                    let mut r = row;
                    r.push(Entry::Val(other));
                    out.push(r);
                }
            }
        }
        Ok(out)
    }

    fn explain_into(&self, graph: &Graph, bound: &mut Vec<String>, idx: usize, out: &mut String) {
        unwind::UnwindOp {
            expr: &self.u.ast,
            var: &self.u.var,
        }
        .explain_into(graph, bound, idx, out)
    }
}

pub(crate) struct CProjectOp<'q> {
    pub p: &'q CProject,
}

impl Operator for CProjectOp<'_> {
    fn name(&self) -> &'static str {
        "Project"
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        apply_cproject(cx, env, rows, self.p)
    }

    fn explain_into(&self, graph: &Graph, bound: &mut Vec<String>, idx: usize, out: &mut String) {
        project::ProjectOp {
            clause: &self.p.ast,
        }
        .explain_into(graph, bound, idx, out)
    }
}

pub(crate) struct CReturnOp<'q> {
    pub p: &'q CProject,
}

impl Operator for CReturnOp<'_> {
    fn name(&self) -> &'static str {
        "Return"
    }

    fn is_terminal(&self) -> bool {
        true
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        if !self.p.is_last {
            return Err(CypherError::plan("RETURN must be the final clause"));
        }
        apply_cproject(cx, env, rows, self.p)
    }

    fn explain_into(&self, graph: &Graph, bound: &mut Vec<String>, idx: usize, out: &mut String) {
        project::ReturnOp {
            clause: &self.p.ast,
            is_last: self.p.is_last,
        }
        .explain_into(graph, bound, idx, out)
    }
}

/// The projected row extended with the non-shadowed evaluation-context
/// entries — the compiled mirror of `PostProject::extend`.
fn extend_c(p: &CProject, proj: &Row, ctx_row: &Row) -> Row {
    let mut r = proj.clone();
    for &i in &p.appended {
        r.push(ctx_row.get(i).cloned().unwrap_or(Entry::Val(Value::Null)));
    }
    r
}

fn apply_cproject(
    cx: &mut ExecContext<'_>,
    env: &mut Env,
    rows: Vec<Row>,
    p: &CProject,
) -> Result<Vec<Row>, CypherError> {
    if env.names != p.env_before {
        return Err(env_mismatch());
    }
    let graph = cx.graph();
    let cev = CEvalCtx {
        graph,
        params: cx.params,
    };
    let mut projected: Vec<(Row, Row)> = if p.use_agg {
        aggregate_rows_c(graph, &cev, &rows, p)?
    } else {
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let mut out_row = Vec::with_capacity(p.rewritten.len());
            for rexpr in &p.rewritten {
                out_row.push(cev.eval_c(rexpr, &row)?);
            }
            out.push((out_row, row));
        }
        out
    };

    if p.distinct {
        let mut seen = HashSet::new();
        projected.retain(|(r, _)| {
            let key: Vec<ValueKey> = r.iter().map(|e| entry_key(graph, e)).collect();
            seen.insert(key)
        });
    }

    if let Some(w) = &p.where_c {
        let mut kept = Vec::with_capacity(projected.len());
        for (proj, ctx_row) in projected {
            let ext = extend_c(p, &proj, &ctx_row);
            if cev.eval_c_value(w, &ext)?.is_true() {
                kept.push((proj, ctx_row));
            }
        }
        projected = kept;
    }

    if !p.order_c.is_empty() {
        let mut keyed: Vec<(Vec<Value>, (Row, Row))> = Vec::with_capacity(projected.len());
        for (proj, ctx_row) in projected {
            let ext = extend_c(p, &proj, &ctx_row);
            let mut keys = Vec::with_capacity(p.order_c.len());
            for (oe, _) in &p.order_c {
                keys.push(cev.eval_c_value(oe, &ext)?);
            }
            keyed.push((keys, (proj, ctx_row)));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, (_, ascending)) in p.order_c.iter().enumerate() {
                let c = ka[i].order_key_cmp(&kb[i]);
                let c = if *ascending { c } else { c.reverse() };
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
            std::cmp::Ordering::Equal
        });
        projected = keyed.into_iter().map(|(_, v)| v).collect();
    }

    // SKIP / LIMIT: row-free evaluation, exactly like the interpreter.
    let eval_count = |e: &CExpr| -> Result<usize, CypherError> {
        let v = cev.eval_c_value(e, &Vec::new())?;
        v.as_int()
            .filter(|i| *i >= 0)
            .map(|i| i as usize)
            .ok_or_else(|| CypherError::runtime("SKIP/LIMIT must be a non-negative integer"))
    };
    if let Some(e) = &p.skip_c {
        let n = eval_count(e)?;
        projected = projected.into_iter().skip(n).collect();
    }
    if let Some(e) = &p.limit_c {
        let n = eval_count(e)?;
        projected.truncate(n);
    }

    *env = Env {
        names: p.out_names.clone(),
    };
    Ok(projected.into_iter().map(|(r, _)| r).collect())
}

fn aggregate_rows_c(
    graph: &Graph,
    cev: &CEvalCtx<'_>,
    rows: &[Row],
    p: &CProject,
) -> Result<Vec<(Row, Row)>, CypherError> {
    let mut groups: HashMap<Vec<ValueKey>, usize> = HashMap::new();
    let mut group_data: Vec<(Row, Vec<AggAccum>)> = Vec::new();
    for row in rows {
        let mut key = Vec::with_capacity(p.keys_c.len());
        for ke in &p.keys_c {
            key.push(entry_key(graph, &cev.eval_c(ke, row)?));
        }
        let gi = match groups.get(&key) {
            Some(&i) => i,
            None => {
                let mut states = Vec::with_capacity(p.specs.len());
                for spec in &p.specs {
                    let pval = match &spec.extra {
                        Some(e) => cev.eval_c_value(e, row)?.as_f64().unwrap_or(0.5),
                        None => 0.5,
                    };
                    states.push(AggAccum::new_named(&spec.name, spec.distinct, pval));
                }
                group_data.push((row.clone(), states));
                groups.insert(key, group_data.len() - 1);
                group_data.len() - 1
            }
        };
        for (si, spec) in p.specs.iter().enumerate() {
            let val = match &spec.arg {
                None => None,
                Some(e) => Some(cev.eval_c_value(e, row)?),
            };
            group_data[gi].1[si].update(val)?;
        }
    }
    // Global aggregation over zero rows still yields one group.
    if group_data.is_empty() && p.keys_c.is_empty() {
        let states = p
            .specs
            .iter()
            .map(|s| AggAccum::new_named(&s.name, s.distinct, 0.5))
            .collect();
        let null_row: Row = vec![Entry::Val(Value::Null); p.env_len];
        group_data.push((null_row, states));
    }
    let mut projected = Vec::with_capacity(group_data.len());
    for (rep_row, states) in group_data {
        let mut ext = rep_row.clone();
        for st in states {
            ext.push(Entry::Val(st.finish()));
        }
        let mut out_row = Vec::with_capacity(p.rewritten.len());
        for rexpr in &p.rewritten {
            out_row.push(cev.eval_c(rexpr, &ext)?);
        }
        projected.push((out_row, ext));
    }
    Ok(projected)
}
