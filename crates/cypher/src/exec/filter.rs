//! The filter operator: predicate evaluation over row sets. Shared by the
//! match operator (pattern `WHERE`) and the projection operator
//! (`WITH ... WHERE`).

use crate::ast::Expr;
use crate::error::CypherError;
use crate::eval::{EvalCtx, Row};

/// True when `pred` evaluates truthy for `row`.
#[inline]
pub(crate) fn predicate_keeps(
    ctx: &EvalCtx<'_>,
    pred: &Expr,
    row: &Row,
) -> Result<bool, CypherError> {
    Ok(ctx.eval_value(pred, row)?.is_true())
}

/// Keeps only the rows for which `pred` evaluates truthy.
pub(crate) fn filter_rows(
    ctx: &EvalCtx<'_>,
    pred: &Expr,
    rows: Vec<Row>,
) -> Result<Vec<Row>, CypherError> {
    let mut kept = Vec::with_capacity(rows.len());
    for r in rows {
        if predicate_keeps(ctx, pred, &r)? {
            kept.push(r);
        }
    }
    Ok(kept)
}
