//! Leaf access-path operators of the match pipeline: given one input row
//! and a planned pattern part, produce the candidate anchor nodes.
//!
//! This is where the planner's [`Anchor`] choice becomes a physical scan:
//! a bound-variable lookup, an index seek, an ordered-index range seek, a
//! label scan, or a full node scan.

use crate::error::CypherError;
use crate::eval::{Entry, Env, EvalCtx, Row};
use crate::plan::{Anchor, PartPlan};
use iyp_graphdb::{NodeId, Value};

use super::context::ExecContext;

/// Produces the anchor candidates for `plan` under the bindings of `row`.
pub(crate) fn anchor_candidates(
    cx: &ExecContext<'_>,
    env: &Env,
    row: &Row,
    plan: &PartPlan,
) -> Result<Vec<NodeId>, CypherError> {
    let graph = cx.graph();
    let ctx = EvalCtx {
        graph,
        env,
        params: cx.params,
    };
    let candidates = match &plan.anchor {
        Anchor::Bound(var) => {
            let slot = env
                .slot(var)
                .ok_or_else(|| CypherError::plan(format!("unbound anchor '{var}'")))?;
            match &row[slot] {
                Entry::Node(id) => vec![*id],
                Entry::Val(Value::Null) => Vec::new(),
                _ => {
                    return Err(CypherError::runtime(format!(
                        "variable '{var}' is not a node"
                    )))
                }
            }
        }
        Anchor::IndexSeek { label, key, expr } => {
            let v = ctx.eval_value(expr, row)?;
            graph.index_lookup(label, key, &v).unwrap_or_default()
        }
        Anchor::RangeSeek { label, key, lo, hi } => {
            let lo_v = match lo {
                Some((e, inc)) => Some((ctx.eval_value(e, row)?, *inc)),
                None => None,
            };
            let hi_v = match hi {
                Some((e, inc)) => Some((ctx.eval_value(e, row)?, *inc)),
                None => None,
            };
            graph
                .index_range(
                    label,
                    key,
                    lo_v.as_ref().map(|(v, inc)| (v, *inc)),
                    hi_v.as_ref().map(|(v, inc)| (v, *inc)),
                )
                .unwrap_or_default()
        }
        Anchor::LabelScan(label) => graph.nodes_with_label(label).collect(),
        Anchor::AllNodes => graph.all_nodes().collect(),
    };
    Ok(candidates)
}
