//! The query executor: a pipeline of physical operators over materialized
//! row sets, with index-aware pattern matching planned by [`crate::plan`].
//!
//! Each clause of a (UNION-free) query becomes one `Operator` in a
//! pipeline; the driver threads a row set through the operators, all of
//! which draw on a shared `ExecContext` for graph access,
//! parameters, wall-clock limits, and the intermediate-row budget.
//!
//! Module map:
//!
//! | module        | operators |
//! |---------------|-----------|
//! | `context`   | [`ExecLimits`] and the shared `ExecContext` |
//! | `scan`      | anchor access paths: index seek, range seek, label scan, all-nodes scan, bound variable |
//! | `expand`    | `MATCH` / `OPTIONAL MATCH` pattern expansion |
//! | `varlen`    | variable-length expansion and `shortestPath` |
//! | `filter`    | predicate filtering (`WHERE`, shared by match and projection) |
//! | `project`   | `WITH` / `RETURN` projection |
//! | `aggregate` | grouped aggregation accumulators |
//! | `sort`      | `ORDER BY`, `SKIP`, `LIMIT` |
//! | `unwind`    | `UNWIND` |
//! | `union`     | `UNION` segmentation and result merging |
//! | [`write`]     | `CREATE`, `MERGE`, `SET`, `DELETE` |

pub(crate) mod aggregate;
pub(crate) mod compiled;
pub(crate) mod context;
pub(crate) mod expand;
pub(crate) mod filter;
pub(crate) mod project;
pub(crate) mod scan;
pub(crate) mod sort;
pub(crate) mod union;
pub(crate) mod unwind;
pub(crate) mod varlen;
pub(crate) mod write;

use crate::ast::{Clause, Query};
use crate::compile::{compile_query, CompiledQuery, CompiledSegment};
use crate::error::CypherError;
use crate::eval::{Env, Params, Row};
use crate::pretty;
use crate::profile::{ProfileCollector, QueryProfile};
use crate::result::QueryResult;
use iyp_graphdb::Graph;
use std::fmt::Write as _;

use context::ExecContext;
pub use context::ExecLimits;

/// Hard cap on intermediate row counts — protects against pattern
/// explosions on dense graphs.
pub const MAX_ROWS: usize = 2_000_000;

/// Default cap for unbounded variable-length patterns (`*` / `*2..`).
pub const VARLEN_CAP: u32 = 8;

/// Parses and executes a read-only query with no parameters.
pub fn query(graph: &Graph, src: &str) -> Result<QueryResult, CypherError> {
    let q = crate::parser::parse(src)?;
    execute_read(graph, &q, &Params::new())
}

/// Parses and executes a read-only query under a wall-clock deadline —
/// the entry point for services executing untrusted Cypher.
pub fn query_with_deadline(
    graph: &Graph,
    src: &str,
    params: &Params,
    timeout: std::time::Duration,
) -> Result<QueryResult, CypherError> {
    let q = crate::parser::parse(src)?;
    let mut src_graph = ReadOnly(graph);
    run(&mut src_graph, &q, params, ExecLimits::timeout(timeout))
}

/// Parses and executes a read-only query with parameters.
pub fn query_with(graph: &Graph, src: &str, params: &Params) -> Result<QueryResult, CypherError> {
    let q = crate::parser::parse(src)?;
    execute_read(graph, &q, params)
}

/// Parses and executes a query that may contain write clauses.
pub fn update(graph: &mut Graph, src: &str) -> Result<QueryResult, CypherError> {
    let q = crate::parser::parse(src)?;
    execute(graph, &q, &Params::new())
}

/// Executes a parsed read-only query. Write clauses produce a plan error.
pub fn execute_read(graph: &Graph, q: &Query, params: &Params) -> Result<QueryResult, CypherError> {
    execute_read_with_limits(graph, q, params, ExecLimits::none())
}

/// Executes a parsed read-only query under explicit limits — the entry
/// point for callers that cache parsed queries (see [`crate::cache`]) and
/// still need per-execution deadlines.
pub fn execute_read_with_limits(
    graph: &Graph,
    q: &Query,
    params: &Params,
    limits: ExecLimits,
) -> Result<QueryResult, CypherError> {
    let mut src = ReadOnly(graph);
    run(&mut src, q, params, limits)
}

/// Executes a parsed query, allowing writes.
pub fn execute(graph: &mut Graph, q: &Query, params: &Params) -> Result<QueryResult, CypherError> {
    let mut src = ReadWrite(graph);
    run(&mut src, q, params, ExecLimits::none())
}

/// Executes a read-only query whose compiled form was produced earlier
/// (typically by [`crate::cache::PlanCache::prepare`]), skipping the
/// per-execution compilation that [`execute_read_with_limits`] performs.
/// `compiled` is ignored when `limits.compiled` is off or when it is
/// `None` (the query falls back to the interpreter).
pub fn execute_prepared_with_limits(
    graph: &Graph,
    q: &Query,
    compiled: Option<&CompiledQuery>,
    params: &Params,
    limits: ExecLimits,
) -> Result<QueryResult, CypherError> {
    let mut src = ReadOnly(graph);
    let compiled = if limits.compiled { compiled } else { None };
    run_with_profile(&mut src, q, compiled, params, limits, None)
}

/// Read-only or read-write access to the graph under execution.
pub(crate) trait GraphSource {
    fn g(&self) -> &Graph;
    fn g_mut(&mut self) -> Result<&mut Graph, CypherError>;
}

struct ReadOnly<'a>(&'a Graph);
impl GraphSource for ReadOnly<'_> {
    fn g(&self) -> &Graph {
        self.0
    }
    fn g_mut(&mut self) -> Result<&mut Graph, CypherError> {
        Err(CypherError::plan(
            "write clause not allowed in read-only execution",
        ))
    }
}

struct ReadWrite<'a>(&'a mut Graph);
impl GraphSource for ReadWrite<'_> {
    fn g(&self) -> &Graph {
        self.0
    }
    fn g_mut(&mut self) -> Result<&mut Graph, CypherError> {
        Ok(self.0)
    }
}

/// One physical operator in a query pipeline. Operators transform a
/// materialized row set, drawing graph access, parameters, limits, and
/// the row budget from the shared [`ExecContext`].
pub(crate) trait Operator {
    /// Operator name, as shown in plan introspection.
    fn name(&self) -> &'static str;

    /// True for the terminal `RETURN` operator: the driver stops the
    /// pipeline and converts its output into the query result.
    fn is_terminal(&self) -> bool {
        false
    }

    /// Transforms the row set, possibly extending or replacing `env`.
    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError>;

    /// Renders this operator's plan lines for [`crate::explain`].
    /// `bound` accumulates the variables match operators bind, so later
    /// operators can show bound-variable anchors.
    fn explain_into(&self, graph: &Graph, bound: &mut Vec<String>, idx: usize, out: &mut String);
}

/// Builds the operator for one clause. `is_last` marks the query's final
/// clause (RETURN elsewhere is rejected when it executes).
pub(crate) fn build_clause_op<'q>(clause: &'q Clause, is_last: bool) -> Box<dyn Operator + 'q> {
    match clause {
        Clause::Match(m) => Box::new(expand::MatchOp { clause: m }),
        Clause::Unwind { expr, var } => Box::new(unwind::UnwindOp { expr, var }),
        Clause::With(p) => Box::new(project::ProjectOp { clause: p }),
        Clause::Return(p) => Box::new(project::ReturnOp { clause: p, is_last }),
        Clause::Create { patterns } => Box::new(write::CreateOp { patterns }),
        Clause::Merge { node } => Box::new(write::MergeOp { node }),
        Clause::Set { items } => Box::new(write::SetOp { items }),
        Clause::Delete { vars, detach } => Box::new(write::DeleteOp {
            vars,
            detach: *detach,
        }),
        Clause::Union { all } => Box::new(union::UnionBoundaryOp { all: *all }),
    }
}

/// Renders a one-line plan entry for a clause-shaped operator: the
/// clause's leading keyword.
pub(crate) fn explain_simple(clause: &Clause, idx: usize, out: &mut String) {
    writeln!(
        out,
        "{idx:>2}. {}",
        pretty::clause_to_string(clause)
            .split_whitespace()
            .next()
            .unwrap_or("?")
    )
    .expect("write to string");
}

/// Executes a parsed read-only query with per-operator measurement,
/// returning the result alongside the [`QueryProfile`]. Prefer the
/// convenience wrappers in [`crate::profile`].
pub(crate) fn profile_read(
    graph: &Graph,
    q: &Query,
    params: &Params,
    limits: ExecLimits,
) -> Result<(QueryResult, QueryProfile), CypherError> {
    let mut src = ReadOnly(graph);
    let mut collector = ProfileCollector::new();
    let compiled = limits.compiled.then(|| compile_query(q)).flatten();
    let t0 = std::time::Instant::now();
    let result = run_with_profile(
        &mut src,
        q,
        compiled.as_ref(),
        params,
        limits,
        Some(&mut collector),
    )?;
    let total = t0.elapsed();
    let rows = result.rows.len() as u64;
    Ok((result, collector.finish(total, rows)))
}

fn run<G: GraphSource>(
    src: &mut G,
    q: &Query,
    params: &Params,
    limits: ExecLimits,
) -> Result<QueryResult, CypherError> {
    let compiled = limits.compiled.then(|| compile_query(q)).flatten();
    run_with_profile(src, q, compiled.as_ref(), params, limits, None)
}

fn run_with_profile<G: GraphSource>(
    src: &mut G,
    q: &Query,
    compiled: Option<&CompiledQuery>,
    params: &Params,
    limits: ExecLimits,
    prof: Option<&mut ProfileCollector>,
) -> Result<QueryResult, CypherError> {
    // Split on UNION separators: each segment is a complete sub-query.
    let segments = union::split_segments(q);
    if segments.len() > 1 {
        return union::run_segments(src, &segments, compiled, params, limits, prof);
    }
    let cs = compiled.and_then(|c| c.segments.first());
    run_single(src, q, cs, params, limits, prof)
}

pub(crate) fn run_single<'q, G: GraphSource>(
    src: &mut G,
    q: &'q Query,
    compiled: Option<&'q CompiledSegment>,
    params: &Params,
    limits: ExecLimits,
    mut prof: Option<&mut ProfileCollector>,
) -> Result<QueryResult, CypherError> {
    // Compiled operators are drop-in replacements (same names, same plan
    // rendering, same results); any shape mismatch falls back to the
    // interpreter rather than guessing.
    let use_compiled = compiled.filter(|cs| cs.ops.len() == q.clauses.len());
    let ops: Vec<Box<dyn Operator + 'q>> = match use_compiled {
        Some(cs) => cs.ops.iter().map(compiled::build_compiled_op).collect(),
        None => q
            .clauses
            .iter()
            .enumerate()
            .map(|(i, c)| build_clause_op(c, i + 1 == q.clauses.len()))
            .collect(),
    };
    let mut cx = ExecContext::new(src, params, limits);
    let mut env = Env::new();
    let mut rows: Vec<Row> = vec![Vec::new()];
    let mut result = QueryResult::empty();
    for op in &ops {
        // When profiling, bracket the operator with the clock and the
        // thread-local db-hit counter and record the deltas.
        let before = prof
            .as_ref()
            .map(|_| (std::time::Instant::now(), iyp_graphdb::dbhits::current()));
        rows = op.apply(&mut cx, &mut env, rows)?;
        if let (Some(p), Some((t0, h0))) = (prof.as_deref_mut(), before) {
            let hits = iyp_graphdb::dbhits::current().wrapping_sub(h0);
            p.record(
                op.as_ref(),
                cx.graph(),
                rows.len() as u64,
                hits,
                t0.elapsed(),
            );
        }
        if op.is_terminal() {
            // RETURN: convert the projected entries into result values.
            result.columns = env.names;
            result.rows = rows
                .into_iter()
                .map(|r| r.into_iter().map(|e| e.to_value(cx.graph())).collect())
                .collect();
            return Ok(result);
        }
        cx.check_intermediate(rows.len())?;
    }
    // No RETURN: a write-only query; report affected row count as shape.
    Ok(result)
}
