//! The projection operator (`WITH` / `RETURN`): item evaluation, star
//! expansion, DISTINCT, and the post-projection environment in which
//! `WHERE` and `ORDER BY` see both aliases and the original variables.
//! Grouped aggregation is delegated to [`super::aggregate`], ordering and
//! paging to [`super::sort`].

use crate::ast::{Clause, Expr, ProjectionClause, ProjectionItem};
use crate::error::CypherError;
use crate::eval::{Entry, Env, EvalCtx, Params, Row};
use iyp_graphdb::{Graph, Value, ValueKey};
use std::collections::HashSet;

use super::context::ExecContext;
use super::{aggregate, filter, sort, Operator};

/// `WITH`: projects rows into a fresh environment mid-pipeline.
pub(crate) struct ProjectOp<'q> {
    pub clause: &'q ProjectionClause,
}

impl Operator for ProjectOp<'_> {
    fn name(&self) -> &'static str {
        "Project"
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        let (new_env, new_rows) = project(cx.graph(), env, rows, self.clause, cx.params)?;
        *env = new_env;
        Ok(new_rows)
    }

    fn explain_into(&self, _graph: &Graph, _bound: &mut Vec<String>, idx: usize, out: &mut String) {
        super::explain_simple(&Clause::With(self.clause.clone()), idx, out);
    }
}

/// `RETURN`: the terminal projection. Must be the final operator of its
/// pipeline segment; the driver converts its output rows into the
/// [`crate::result::QueryResult`].
pub(crate) struct ReturnOp<'q> {
    pub clause: &'q ProjectionClause,
    /// False when RETURN is not the query's final clause — rejected at
    /// apply time (after any earlier clauses have run, matching the
    /// clause-by-clause interpreter's behavior).
    pub is_last: bool,
}

impl Operator for ReturnOp<'_> {
    fn name(&self) -> &'static str {
        "Return"
    }

    fn is_terminal(&self) -> bool {
        true
    }

    fn apply(
        &self,
        cx: &mut ExecContext<'_>,
        env: &mut Env,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, CypherError> {
        if !self.is_last {
            return Err(CypherError::plan("RETURN must be the final clause"));
        }
        let (new_env, new_rows) = project(cx.graph(), env, rows, self.clause, cx.params)?;
        *env = new_env;
        Ok(new_rows)
    }

    fn explain_into(&self, _graph: &Graph, _bound: &mut Vec<String>, idx: usize, out: &mut String) {
        super::explain_simple(&Clause::Return(self.clause.clone()), idx, out);
    }
}

/// A stable identity key for a projected entry, used for DISTINCT and
/// aggregation grouping.
pub(crate) fn entry_key(_graph: &Graph, e: &Entry) -> ValueKey {
    match e {
        Entry::Node(id) => ValueKey::List(vec![
            ValueKey::Str("#node".into()),
            ValueKey::Int(id.0 as i64),
        ]),
        Entry::Rel(id) => ValueKey::List(vec![
            ValueKey::Str("#rel".into()),
            ValueKey::Int(id.0 as i64),
        ]),
        Entry::Path(nodes, rels) => ValueKey::List(
            std::iter::once(ValueKey::Str("#path".into()))
                .chain(nodes.iter().map(|n| ValueKey::Int(n.0 as i64)))
                .chain(rels.iter().map(|r| ValueKey::Int(r.0 as i64)))
                .collect(),
        ),
        Entry::Val(v) => ValueKey::of(v),
    }
}

/// The post-projection evaluation environment: projected names first
/// (aliases shadow originals; `slot` finds the first occurrence), then the
/// evaluation context's remaining names (original vars + agg slots).
pub(crate) struct PostProject {
    pub env: Env,
    /// Indices into the evaluation-context row appended after the
    /// projected entries.
    appended: Vec<usize>,
}

impl PostProject {
    fn new(out_names: &[String], eval_env: &Env) -> PostProject {
        let mut post_names = out_names.to_vec();
        let appended: Vec<usize> = eval_env
            .names
            .iter()
            .enumerate()
            .filter(|(_, n)| !out_names.contains(n))
            .map(|(i, _)| i)
            .collect();
        for &i in &appended {
            post_names.push(eval_env.names[i].clone());
        }
        PostProject {
            env: Env { names: post_names },
            appended,
        }
    }

    /// The projected row extended with the non-shadowed context entries.
    pub fn extend(&self, proj: &Row, ctx_row: &Row) -> Row {
        let mut r = proj.clone();
        for &i in &self.appended {
            r.push(ctx_row.get(i).cloned().unwrap_or(Entry::Val(Value::Null)));
        }
        r
    }
}

pub(crate) fn project(
    graph: &Graph,
    env: &Env,
    rows: Vec<Row>,
    p: &ProjectionClause,
    params: &Params,
) -> Result<(Env, Vec<Row>), CypherError> {
    // Expand `*` into explicit items.
    let mut items: Vec<ProjectionItem> = Vec::new();
    if p.star {
        for name in &env.names {
            items.push(ProjectionItem {
                expr: Expr::Var(name.clone()),
                alias: Some(name.clone()),
            });
        }
    }
    items.extend(p.items.iter().cloned());
    if items.is_empty() {
        return Err(CypherError::plan("projection with no items"));
    }

    let has_agg = items.iter().any(|it| it.expr.contains_aggregate())
        || p.order_by.iter().any(|k| k.expr.contains_aggregate());

    // Rewrite aggregates out of item and order-key expressions.
    let mut specs: Vec<aggregate::AggSpec> = Vec::new();
    let rewritten: Vec<Expr> = items
        .iter()
        .map(|it| aggregate::extract_aggs(&it.expr, &mut specs))
        .collect();
    let order_rewritten: Vec<Expr> = p
        .order_by
        .iter()
        .map(|k| aggregate::extract_aggs(&k.expr, &mut specs))
        .collect();

    let out_names: Vec<String> = items.iter().map(|it| it.name()).collect();

    // Environment in which rewritten expressions are evaluated:
    // original vars + __agg slots (aggregation case only).
    let mut eval_env = env.clone();
    for i in 0..specs.len() {
        eval_env.push(format!("__agg{i}"));
    }

    // (projected row, context row for ORDER BY evaluation)
    let mut projected: Vec<(Row, Row)> = if has_agg || !specs.is_empty() {
        // Grouping keys: projection items without aggregates.
        let key_exprs: Vec<&ProjectionItem> = items
            .iter()
            .filter(|it| !it.expr.contains_aggregate())
            .collect();
        aggregate::aggregate_rows(
            graph, env, &eval_env, &rows, params, &key_exprs, &specs, &rewritten,
        )?
    } else {
        let ctx = EvalCtx { graph, env, params };
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let mut out_row = Vec::with_capacity(rewritten.len());
            for rexpr in &rewritten {
                out_row.push(ctx.eval(rexpr, &row)?);
            }
            out.push((out_row, row));
        }
        out
    };

    // DISTINCT.
    if p.distinct {
        let mut seen = HashSet::new();
        projected.retain(|(r, _)| {
            let key: Vec<ValueKey> = r.iter().map(|e| entry_key(graph, e)).collect();
            seen.insert(key)
        });
    }

    let post = PostProject::new(&out_names, &eval_env);

    // WHERE (WITH ... WHERE).
    if let Some(w) = &p.where_clause {
        let mut w_specs = Vec::new();
        let w_re = aggregate::extract_aggs(w, &mut w_specs);
        if !w_specs.is_empty() {
            return Err(CypherError::plan(
                "aggregate functions are not allowed in WITH ... WHERE; project them first",
            ));
        }
        let ctx = EvalCtx {
            graph,
            env: &post.env,
            params,
        };
        let mut kept = Vec::with_capacity(projected.len());
        for (proj, ctx_row) in projected {
            let ext = post.extend(&proj, &ctx_row);
            if filter::predicate_keeps(&ctx, &w_re, &ext)? {
                kept.push((proj, ctx_row));
            }
        }
        projected = kept;
    }

    // ORDER BY.
    if !p.order_by.is_empty() {
        projected = sort::order_rows(
            graph,
            params,
            &post,
            &p.order_by,
            &order_rewritten,
            projected,
        )?;
    }

    // SKIP / LIMIT.
    projected = sort::apply_skip_limit(graph, env, params, &p.skip, &p.limit, projected)?;

    let out_env = Env { names: out_names };
    let out_rows = projected.into_iter().map(|(r, _)| r).collect();
    Ok((out_env, out_rows))
}
