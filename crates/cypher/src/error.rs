//! Positioned errors for every stage of query processing.

use crate::token::Pos;
use std::fmt;

/// Which stage produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Planning (semantic analysis).
    Plan,
    /// Execution.
    Runtime,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Lex => write!(f, "lex"),
            Stage::Parse => write!(f, "parse"),
            Stage::Plan => write!(f, "plan"),
            Stage::Runtime => write!(f, "runtime"),
        }
    }
}

/// A Cypher error with stage, message and (when known) source position.
#[derive(Debug, Clone, PartialEq)]
pub struct CypherError {
    /// The pipeline stage that failed.
    pub stage: Stage,
    /// Human-readable description.
    pub message: String,
    /// Source position, if the stage tracks one.
    pub pos: Option<Pos>,
}

impl CypherError {
    /// Lexer error at a position.
    pub fn lex(message: impl Into<String>, pos: Pos) -> Self {
        CypherError {
            stage: Stage::Lex,
            message: message.into(),
            pos: Some(pos),
        }
    }

    /// Parser error at a position.
    pub fn parse(message: impl Into<String>, pos: Pos) -> Self {
        CypherError {
            stage: Stage::Parse,
            message: message.into(),
            pos: Some(pos),
        }
    }

    /// Planner error (no position).
    pub fn plan(message: impl Into<String>) -> Self {
        CypherError {
            stage: Stage::Plan,
            message: message.into(),
            pos: None,
        }
    }

    /// Runtime error (no position).
    pub fn runtime(message: impl Into<String>) -> Self {
        CypherError {
            stage: Stage::Runtime,
            message: message.into(),
            pos: None,
        }
    }
}

impl fmt::Display for CypherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(f, "{} error at {}: {}", self.stage, pos, self.message),
            None => write!(f, "{} error: {}", self.stage, self.message),
        }
    }
}

impl std::error::Error for CypherError {}

impl From<iyp_graphdb::ValueError> for CypherError {
    fn from(e: iyp_graphdb::ValueError) -> Self {
        CypherError::runtime(e.to_string())
    }
}

impl From<iyp_graphdb::GraphError> for CypherError {
    fn from(e: iyp_graphdb::GraphError) -> Self {
        CypherError::runtime(e.to_string())
    }
}
