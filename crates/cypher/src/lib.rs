//! # iyp-cypher
//!
//! A Cypher query engine for [`iyp_graphdb`] — the openCypher substitute in
//! the ChatIYP reproduction.
//!
//! Pipeline: [`lexer`] → [`parser`] (AST in [`ast`]) → [`plan`] (anchor
//! selection & chain ordering) → [`exec`] (row interpreter). Supported
//! subset: `MATCH` / `OPTIONAL MATCH` with multi-hop and variable-length
//! patterns, `WHERE`, `WITH` chaining, aggregation (`count`, `sum`, `avg`,
//! `min`, `max`, `collect`, `stdev`, `percentileCont`), `ORDER BY`,
//! `SKIP`/`LIMIT`, `DISTINCT`, `UNWIND`, list/map expressions, `CASE`,
//! list comprehensions, and the write clauses used by the dataset loader
//! (`CREATE`, `MERGE`, `SET`, `DELETE`).
//!
//! ```
//! use iyp_graphdb::{Graph, Props, props};
//! use iyp_cypher::query;
//!
//! let mut g = Graph::new();
//! let a = g.add_node(["AS"], props!("asn" => 2497i64, "name" => "IIJ"));
//! let c = g.add_node(["Country"], props!("country_code" => "JP"));
//! g.add_rel(a, "COUNTRY", c, Props::new()).unwrap();
//!
//! let result = query(&g, "MATCH (a:AS)-[:COUNTRY]->(c:Country) \
//!                         RETURN a.name, c.country_code").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! assert_eq!(result.rows[0][0].to_string(), "IIJ");
//! ```

#![deny(missing_docs)]

pub mod ast;
pub mod cache;
pub mod compile;
pub mod corpus;
pub mod error;
pub mod eval;
pub mod exec;
pub mod explain;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod pretty;
pub mod profile;
pub mod result;
pub mod token;

pub use cache::{normalize_query, PlanCache, PlanCacheStats, Prepared};
pub use compile::{
    compile_expr, compile_query, compile_time_ns, CEvalCtx, CompiledExpr, CompiledQuery,
};
pub use error::{CypherError, Stage};
pub use eval::{Entry, Env, Params, Row};
pub use exec::{
    execute, execute_prepared_with_limits, execute_read, execute_read_with_limits, query,
    query_with, query_with_deadline, update, ExecLimits,
};
pub use explain::explain;
pub use parser::{parse, parse_expression, parse_statement, QueryMode};
pub use pretty::{canonicalize, query_to_string};
pub use profile::{profile_with_limits, OpProfile, QueryProfile};
pub use result::QueryResult;
