//! Canonical rendering of ASTs back to Cypher text.
//!
//! Used for result column naming, for the text-to-Cypher translator's
//! transparency output (the generated query shown to the user), and for
//! comparing generated queries against gold queries modulo formatting.

use crate::ast::*;
use crate::token::Keyword;
use iyp_graphdb::Value;
use std::fmt::Write;

/// Renders an identifier, backtick-quoting names that would otherwise
/// lex as keywords (a lowercase property called `as`, say) or that
/// contain non-identifier characters.
fn ident(name: &str) -> String {
    let reserved = match Keyword::from_ident(name) {
        // `AS` (the label) and other all-caps keyword-collisions are
        // round-tripped by the parser's keyword-as-identifier mapping;
        // anything that would come back in different case needs quoting.
        Some(_) => !matches!(
            name,
            "AS" | "count"
                | "end"
                | "set"
                | "in"
                | "contains"
                | "order"
                | "by"
                | "limit"
                | "skip"
                | "asc"
                | "desc"
                | "all"
                | "union"
        ),
        None => false,
    };
    let plain = !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if reserved || !plain {
        format!("`{name}`")
    } else {
        name.to_string()
    }
}

/// Renders a whole query on one line.
pub fn query_to_string(q: &Query) -> String {
    q.clauses
        .iter()
        .map(clause_to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders a single clause.
pub fn clause_to_string(c: &Clause) -> String {
    match c {
        Clause::Match(m) => {
            let mut s = String::new();
            if m.optional {
                s.push_str("OPTIONAL ");
            }
            s.push_str("MATCH ");
            s.push_str(
                &m.patterns
                    .iter()
                    .map(pattern_to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            if let Some(w) = &m.where_clause {
                write!(s, " WHERE {}", expr_to_string(w)).unwrap();
            }
            s
        }
        Clause::Unwind { expr, var } => format!("UNWIND {} AS {var}", expr_to_string(expr)),
        Clause::With(p) => format!("WITH {}", projection_to_string(p)),
        Clause::Return(p) => format!("RETURN {}", projection_to_string(p)),
        Clause::Create { patterns } => format!(
            "CREATE {}",
            patterns
                .iter()
                .map(pattern_to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Clause::Merge { node } => format!("MERGE {}", node_to_string(node)),
        Clause::Set { items } => format!(
            "SET {}",
            items
                .iter()
                .map(|it| match it {
                    SetItem::Prop { var, key, expr } =>
                        format!("{}.{} = {}", ident(var), ident(key), expr_to_string(expr)),
                    SetItem::MergeMap { var, expr } =>
                        format!("{} += {}", ident(var), expr_to_string(expr)),
                })
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Clause::Delete { vars, detach } => {
            let kw = if *detach { "DETACH DELETE" } else { "DELETE" };
            format!("{kw} {}", vars.join(", "))
        }
        Clause::Union { all } => {
            if *all {
                "UNION ALL".to_string()
            } else {
                "UNION".to_string()
            }
        }
    }
}

fn projection_to_string(p: &ProjectionClause) -> String {
    let mut s = String::new();
    if p.distinct {
        s.push_str("DISTINCT ");
    }
    let mut parts: Vec<String> = Vec::new();
    if p.star {
        parts.push("*".to_string());
    }
    parts.extend(p.items.iter().map(|it| match &it.alias {
        Some(a) => format!("{} AS {a}", expr_to_string(&it.expr)),
        None => expr_to_string(&it.expr),
    }));
    s.push_str(&parts.join(", "));
    if !p.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        s.push_str(
            &p.order_by
                .iter()
                .map(|k| {
                    let dir = if k.ascending { "" } else { " DESC" };
                    format!("{}{dir}", expr_to_string(&k.expr))
                })
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    if let Some(e) = &p.skip {
        write!(s, " SKIP {}", expr_to_string(e)).unwrap();
    }
    if let Some(e) = &p.limit {
        write!(s, " LIMIT {}", expr_to_string(e)).unwrap();
    }
    if let Some(e) = &p.where_clause {
        write!(s, " WHERE {}", expr_to_string(e)).unwrap();
    }
    s
}

/// Renders a pattern part.
pub fn pattern_to_string(p: &PatternPart) -> String {
    let mut s = String::new();
    if let Some(v) = &p.path_var {
        write!(s, "{v} = ").unwrap();
    }
    if p.shortest {
        s.push_str("shortestPath(");
    }
    s.push_str(&node_to_string(&p.start));
    for (rel, node) in &p.hops {
        s.push_str(&rel_to_string(rel));
        s.push_str(&node_to_string(node));
    }
    if p.shortest {
        s.push(')');
    }
    s
}

fn node_to_string(n: &NodePattern) -> String {
    let mut s = String::from("(");
    if let Some(v) = &n.var {
        s.push_str(v);
    }
    for l in &n.labels {
        write!(s, ":{l}").unwrap();
    }
    if !n.props.is_empty() {
        s.push_str(" {");
        s.push_str(
            &n.props
                .iter()
                .map(|(k, e)| format!("{}: {}", ident(k), expr_to_string(e)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push('}');
    }
    s.push(')');
    s
}

fn rel_to_string(r: &RelPattern) -> String {
    let mut inner = String::new();
    if let Some(v) = &r.var {
        inner.push_str(v);
    }
    if !r.types.is_empty() {
        write!(inner, ":{}", r.types.join("|")).unwrap();
    }
    if !r.hops.is_single() {
        inner.push('*');
        match (r.hops.min, r.hops.max) {
            (min, Some(max)) if min == max => write!(inner, "{min}").unwrap(),
            (min, Some(max)) => write!(inner, "{min}..{max}").unwrap(),
            (1, None) => {}
            (min, None) => write!(inner, "{min}..").unwrap(),
        }
    }
    if !r.props.is_empty() {
        inner.push_str(" {");
        inner.push_str(
            &r.props
                .iter()
                .map(|(k, e)| format!("{}: {}", ident(k), expr_to_string(e)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        inner.push('}');
    }
    let body = if inner.is_empty() {
        String::new()
    } else {
        format!("[{inner}]")
    };
    match r.dir {
        RelDir::Right => format!("-{body}->"),
        RelDir::Left => format!("<-{body}-"),
        RelDir::Undirected => format!("-{body}-"),
    }
}

/// Precedence levels, mirroring the parser's grammar. A child expression
/// whose level is *below* the level its position requires gets
/// parenthesized, so rendering always re-parses to the same tree.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Bin(op, _, _) => match op {
            BinOp::Or => 1,
            BinOp::Xor => 2,
            BinOp::And => 3,
            BinOp::Eq
            | BinOp::Neq
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::In
            | BinOp::StartsWith
            | BinOp::EndsWith
            | BinOp::Contains
            | BinOp::RegexMatch => 5,
            BinOp::Add | BinOp::Sub => 6,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 7,
            BinOp::Pow => 8,
        },
        Expr::Un(UnOp::Not, _) => 4,
        Expr::IsNull(_, _) => 5,
        Expr::Un(UnOp::Neg, _) => 9,
        Expr::Prop(_, _) | Expr::Index(_, _) | Expr::Slice(_, _, _) => 10,
        _ => 11, // atoms: literals, vars, params, calls, lists, maps, CASE
    }
}

/// Renders an expression (top-level: no outer parentheses needed).
pub fn expr_to_string(e: &Expr) -> String {
    render(e, 0)
}

fn render(e: &Expr, min_prec: u8) -> String {
    let p = prec(e);
    let s = render_raw(e, p);
    if p < min_prec {
        format!("({s})")
    } else {
        s
    }
}

fn render_raw(e: &Expr, p: u8) -> String {
    match e {
        Expr::Lit(v) => lit_to_string(v),
        Expr::Var(v) => ident(v),
        Expr::Param(name) => format!("${name}"),
        Expr::Prop(base, key) => format!("{}.{}", render(base, p), ident(key)),
        Expr::Index(base, idx) => format!("{}[{}]", render(base, p), render(idx, 0)),
        Expr::Slice(base, lo, hi) => format!(
            "{}[{}..{}]",
            render(base, p),
            lo.as_ref().map(|e| render(e, 0)).unwrap_or_default(),
            hi.as_ref().map(|e| render(e, 0)).unwrap_or_default()
        ),
        Expr::Bin(op, a, b) => {
            let op_str = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Pow => "^",
                BinOp::Eq => "=",
                BinOp::Neq => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Xor => "XOR",
                BinOp::In => "IN",
                BinOp::StartsWith => "STARTS WITH",
                BinOp::EndsWith => "ENDS WITH",
                BinOp::Contains => "CONTAINS",
                BinOp::RegexMatch => "=~",
            };
            // Comparisons are non-associative (both sides one level up);
            // `^` is right-associative; the rest are left-associative.
            let (lmin, rmin) = match op {
                BinOp::Pow => (p + 1, p),
                BinOp::Eq
                | BinOp::Neq
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::In
                | BinOp::StartsWith
                | BinOp::EndsWith
                | BinOp::Contains
                | BinOp::RegexMatch => (p + 1, p + 1),
                _ => (p, p + 1),
            };
            format!("{} {op_str} {}", render(a, lmin), render(b, rmin))
        }
        Expr::Un(UnOp::Not, a) => format!("NOT {}", render(a, p)),
        Expr::Un(UnOp::Neg, a) => format!("-{}", render(a, p)),
        Expr::IsNull(a, false) => format!("{} IS NULL", render(a, p + 1)),
        Expr::IsNull(a, true) => format!("{} IS NOT NULL", render(a, p + 1)),
        Expr::Call {
            name,
            distinct,
            args,
        } => {
            let d = if *distinct { "DISTINCT " } else { "" };
            format!(
                "{name}({d}{})",
                args.iter()
                    .map(|a| render(a, 0))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
        Expr::Star => "*".to_string(),
        Expr::List(items) => {
            let rendered: Vec<String> = items
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    // `[x IN ...]` is comprehension syntax: a literal list
                    // whose first element is a bare `var IN list` must be
                    // disambiguated with parentheses.
                    let ambiguous = i == 0
                        && matches!(e, Expr::Bin(BinOp::In, lhs, _) if matches!(**lhs, Expr::Var(_)));
                    if ambiguous {
                        format!("({})", render(e, 0))
                    } else {
                        render(e, 0)
                    }
                })
                .collect();
            format!("[{}]", rendered.join(", "))
        }
        Expr::Map(items) => format!(
            "{{{}}}",
            items
                .iter()
                .map(|(k, e)| format!("{}: {}", ident(k), render(e, 0)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Expr::Case {
            operand,
            arms,
            default,
        } => {
            let mut s = String::from("CASE");
            if let Some(op) = operand {
                write!(s, " {}", render(op, 0)).unwrap();
            }
            for (w, t) in arms {
                write!(s, " WHEN {} THEN {}", render(w, 0), render(t, 0)).unwrap();
            }
            if let Some(d) = default {
                write!(s, " ELSE {}", render(d, 0)).unwrap();
            }
            s.push_str(" END");
            s
        }
        Expr::ListComp {
            var,
            list,
            pred,
            map,
        } => {
            let mut s = format!("[{var} IN {}", render(list, 0));
            if let Some(pr) = pred {
                write!(s, " WHERE {}", render(pr, 0)).unwrap();
            }
            if let Some(m) = map {
                write!(s, " | {}", render(m, 0)).unwrap();
            }
            s.push(']');
            s
        }
        Expr::ExistsProp(base, key) => format!("exists({}.{})", render(base, 10), ident(key)),
        Expr::ExistsPattern(part) => format!("exists({})", pattern_to_string(part)),
    }
}

fn lit_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
        Value::List(items) => format!(
            "[{}]",
            items
                .iter()
                .map(lit_to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        other => other.to_string(),
    }
}

/// Parses and re-renders a query, producing a canonical single-line form.
/// Two queries that differ only in whitespace/case-of-keywords compare
/// equal after canonicalization.
pub fn canonicalize(src: &str) -> Result<String, crate::error::CypherError> {
    Ok(query_to_string(&crate::parser::parse(src)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let q1 = parse(src).unwrap();
        let rendered = query_to_string(&q1);
        let q2 =
            parse(&rendered).unwrap_or_else(|e| panic!("re-parse of '{rendered}' failed: {e}"));
        assert_eq!(q1, q2, "AST changed after round-trip: {src} -> {rendered}");
    }

    #[test]
    fn roundtrip_stability() {
        for src in [
            "MATCH (a:AS {asn: 2497})-[:COUNTRY]->(c:Country) RETURN c.country_code",
            "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) WHERE p.af = 4 RETURN a.asn, count(p) AS cnt ORDER BY cnt DESC LIMIT 5",
            "MATCH (a)-[:PEERS_WITH|MEMBER_OF*1..3]-(b) RETURN DISTINCT b",
            "UNWIND [1, 2, 3] AS x RETURN x * 2 AS doubled",
            "MATCH (a:AS) WHERE a.name STARTS WITH 'G' AND NOT a.asn IN [1, 2] RETURN a",
            "MATCH (c:Country) OPTIONAL MATCH (c)<-[:COUNTRY]-(a:AS) RETURN c.country_code, count(a)",
            "MATCH (a) RETURN CASE WHEN a.rank < 10 THEN 'top' ELSE 'rest' END AS tier",
            "MERGE (c:Country {country_code: 'JP'}) SET c.name = 'Japan'",
            "MATCH (a:AS) RETURN a.asn SKIP 2 LIMIT 3",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn canonicalization_normalizes_case_and_space() {
        let a = canonicalize("match (a:AS)   return a.asn").unwrap();
        let b = canonicalize("MATCH (a:AS) RETURN a.asn").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn string_literal_escaping() {
        let q = parse("RETURN 'it\\'s'").unwrap();
        let s = query_to_string(&q);
        assert!(s.contains("\\'"));
        roundtrip("RETURN 'it\\'s'");
    }

    #[test]
    fn boolean_parenthesization_preserves_structure() {
        roundtrip("MATCH (a) WHERE (a.x = 1 OR a.y = 2) AND a.z = 3 RETURN a");
    }
}
