//! Differential tests for the compiled pipeline: the full parity corpus
//! must produce byte-identical results (a) compiled vs interpreted and
//! (b) at any morsel-parallel worker count vs sequential, and PROFILE's
//! per-query db-hit totals must not change with the worker count.

use iyp_cypher::corpus::PARITY_QUERIES as QUERIES;
use iyp_cypher::{
    compile_query, execute_read_with_limits, parse, profile_with_limits, ExecLimits, Params,
};
use iyp_data::{generate, IypConfig};
use iyp_graphdb::Graph;

fn dataset_graph() -> Graph {
    generate(&IypConfig::default()).graph
}

fn run_json(g: &Graph, src: &str, limits: ExecLimits) -> String {
    let q = parse(src).unwrap_or_else(|e| panic!("corpus query failed to parse: {src}\n{e}"));
    let r = execute_read_with_limits(g, &q, &Params::new(), limits)
        .unwrap_or_else(|e| panic!("corpus query failed: {src}\n{e}"));
    serde_json::to_string(&r).expect("serialize result")
}

/// The compiled pipeline is an optimization, never a semantics change:
/// every corpus query returns byte-identical JSON either way.
#[test]
fn corpus_compiled_matches_interpreted() {
    let g = dataset_graph();
    for q in QUERIES {
        let compiled = run_json(&g, q, ExecLimits::none().with_compiled(true));
        let interpreted = run_json(&g, q, ExecLimits::none().with_compiled(false));
        assert_eq!(compiled, interpreted, "compiled diverged on: {q}");
    }
}

/// Morsel-parallel MATCH merges results in morsel order, so any worker
/// count reproduces the sequential row order exactly.
#[test]
fn corpus_parallel_matches_sequential() {
    let g = dataset_graph();
    for q in QUERIES {
        let seq = run_json(&g, q, ExecLimits::none().with_parallelism(1));
        for workers in [2, 4] {
            let par = run_json(&g, q, ExecLimits::none().with_parallelism(workers));
            assert_eq!(par, seq, "parallelism {workers} diverged on: {q}");
        }
    }
}

/// The corpus is the compiler's coverage gauge: every read query in it
/// must lower to compiled form, or the parity tests above silently stop
/// exercising the compiled path.
#[test]
fn corpus_fully_compilable() {
    let uncompiled: Vec<&str> = QUERIES
        .iter()
        .filter(|q| compile_query(&parse(q).unwrap()).is_none())
        .copied()
        .collect();
    assert!(
        uncompiled.is_empty(),
        "{} corpus queries fell back to the interpreter:\n{}",
        uncompiled.len(),
        uncompiled.join("\n")
    );
}

/// PROFILE's db-hit accounting is exact under parallelism: worker-thread
/// hits are credited back to the profiled operator, so totals (and the
/// result itself) match sequential execution for every corpus query.
#[test]
fn profile_dbhits_stable_across_parallelism() {
    let g = dataset_graph();
    let params = Params::new();
    for q in QUERIES {
        let (r1, p1) = profile_with_limits(&g, q, &params, ExecLimits::none().with_parallelism(1))
            .unwrap_or_else(|e| panic!("profile failed: {q}\n{e}"));
        let (r4, p4) = profile_with_limits(&g, q, &params, ExecLimits::none().with_parallelism(4))
            .unwrap_or_else(|e| panic!("profile failed: {q}\n{e}"));
        assert_eq!(r1, r4, "parallel PROFILE changed the result of: {q}");
        assert_eq!(
            p1.total_db_hits(),
            p4.total_db_hits(),
            "parallel PROFILE changed db-hit totals of: {q}"
        );
        let per_op_1: Vec<(String, u64, u64)> = p1
            .ops
            .iter()
            .map(|o| (o.name.clone(), o.rows, o.db_hits))
            .collect();
        let per_op_4: Vec<(String, u64, u64)> = p4
            .ops
            .iter()
            .map(|o| (o.name.clone(), o.rows, o.db_hits))
            .collect();
        assert_eq!(per_op_1, per_op_4, "per-operator profile diverged on: {q}");
    }
}
