//! Property tests for the Cypher engine: pretty-printer round-trips over
//! generated expressions, and executor invariants over random graphs.

use iyp_cypher::ast::{BinOp, Expr, UnOp};
use iyp_cypher::{parse_expression, pretty, query, ExecLimits, Params};
use iyp_graphdb::{Graph, Props, Value};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Expression round-trip: render(parse(render(e))) == render(e)
// ----------------------------------------------------------------------

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i32>().prop_map(|i| Expr::Lit(Value::Int(i64::from(i)))),
        (-1000i32..1000).prop_map(|i| Expr::Lit(Value::Float(f64::from(i) / 8.0))),
        "[a-z][a-z0-9]{0,6}".prop_map(Expr::Var),
        "[a-z]{1,8}".prop_map(|s| Expr::Lit(Value::Str(s))),
        Just(Expr::Lit(Value::Bool(true))),
        Just(Expr::Lit(Value::Null)),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(3, 24, 4, |inner| {
        let bin_ops = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Eq),
            Just(BinOp::Lt),
            Just(BinOp::And),
            Just(BinOp::Or),
            Just(BinOp::In),
            Just(BinOp::Contains),
        ];
        prop_oneof![
            (bin_ops, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner
                .clone()
                .prop_map(|a| Expr::Un(UnOp::Not, Box::new(Expr::IsNull(Box::new(a), false)))),
            (inner.clone(), "[a-z]{1,6}").prop_map(|(a, k)| Expr::Prop(Box::new(a), k)),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Expr::List),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Case {
                operand: None,
                arms: vec![(Expr::Lit(Value::Bool(true)), a)],
                default: Some(Box::new(b)),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expression_pretty_parse_roundtrip(e in expr_strategy()) {
        let rendered = pretty::expr_to_string(&e);
        let reparsed = parse_expression(&rendered)
            .unwrap_or_else(|err| panic!("render produced unparseable text {rendered:?}: {err}"));
        // Idempotence: rendering the reparsed tree gives the same text.
        prop_assert_eq!(pretty::expr_to_string(&reparsed), rendered);
    }
}

// ----------------------------------------------------------------------
// Differential: compiled expression evaluation vs the interpreter
// ----------------------------------------------------------------------

/// Runs `src` through the engine with the compiled pipeline on or off,
/// normalizing both results and errors to strings so error parity is
/// checked too (the compiler must reproduce evaluation errors, not just
/// values).
fn run_either(g: &Graph, src: &str, compiled: bool) -> Result<String, String> {
    let q = iyp_cypher::parse(src).map_err(|e| format!("parse: {e}"))?;
    iyp_cypher::execute_read_with_limits(
        g,
        &q,
        &Params::new(),
        ExecLimits::none().with_compiled(compiled),
    )
    .map(|r| serde_json::to_string(&r).expect("serialize"))
    .map_err(|e| e.to_string())
}

/// Rewrites every variable reference to `x` so generated expressions can
/// be evaluated against a row binding instead of erroring as unbound.
fn bind_vars_to_x(e: &Expr) -> Expr {
    match e {
        Expr::Var(_) => Expr::Var("x".into()),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(bind_vars_to_x(a)),
            Box::new(bind_vars_to_x(b)),
        ),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(bind_vars_to_x(a))),
        Expr::IsNull(a, neg) => Expr::IsNull(Box::new(bind_vars_to_x(a)), *neg),
        Expr::Prop(a, k) => Expr::Prop(Box::new(bind_vars_to_x(a)), k.clone()),
        Expr::List(items) => Expr::List(items.iter().map(bind_vars_to_x).collect()),
        Expr::Case {
            operand,
            arms,
            default,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(bind_vars_to_x(o))),
            arms: arms
                .iter()
                .map(|(c, v)| (bind_vars_to_x(c), bind_vars_to_x(v)))
                .collect(),
            default: default.as_ref().map(|d| Box::new(bind_vars_to_x(d))),
        },
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random (mostly closed) expressions: identical value or identical
    /// error, compiled vs interpreted. Unbound variables stay unbound so
    /// the `Unbound` error path is part of the contract.
    #[test]
    fn compiled_expression_matches_interpreted(e in expr_strategy()) {
        let g = Graph::new();
        let src = format!("RETURN {} AS v", pretty::expr_to_string(&e));
        prop_assert_eq!(run_either(&g, &src, true), run_either(&g, &src, false));
    }

    /// Random expressions over a bound row: every variable resolves to a
    /// slot, exercising slot loads, per-row evaluation order, and the
    /// projection pipeline at parallelism 1 and 4.
    #[test]
    fn compiled_expression_matches_interpreted_per_row(
        e in expr_strategy(),
        vals in proptest::collection::vec(-5i64..5, 1..4),
    ) {
        let g = Graph::new();
        let list = vals
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let rendered = pretty::expr_to_string(&bind_vars_to_x(&e));
        let src = format!("UNWIND [{list}] AS x RETURN {rendered} AS v");
        let interpreted = run_either(&g, &src, false);
        prop_assert_eq!(run_either(&g, &src, true), interpreted.clone());
        // Parallelism must not change results or errors either.
        let q = iyp_cypher::parse(&src).unwrap();
        let par = iyp_cypher::execute_read_with_limits(
            &g,
            &q,
            &Params::new(),
            ExecLimits::none().with_parallelism(4),
        )
        .map(|r| serde_json::to_string(&r).expect("serialize"))
        .map_err(|e| e.to_string());
        prop_assert_eq!(par, interpreted);
    }
}

// ----------------------------------------------------------------------
// Executor invariants on random graphs
// ----------------------------------------------------------------------

fn random_graph(seedish: &[(u8, i64)], edges: &[(usize, usize)]) -> Graph {
    let mut g = Graph::new();
    let mut ids = Vec::new();
    for (label, key) in seedish {
        let mut p = Props::new();
        p.set("key", *key);
        let label = ["A", "B", "C"][*label as usize % 3];
        ids.push(g.add_node([label], p));
    }
    for (s, d) in edges {
        if !ids.is_empty() {
            let s = ids[s % ids.len()];
            let d = ids[d % ids.len()];
            g.add_rel(s, "R", d, Props::new()).unwrap();
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn limit_caps_rows(
        nodes in proptest::collection::vec((0u8..3, -50i64..50), 0..40),
        limit in 0usize..20,
    ) {
        let g = random_graph(&nodes, &[]);
        let r = query(&g, &format!("MATCH (n) RETURN n.key LIMIT {limit}")).unwrap();
        prop_assert!(r.rows.len() <= limit);
        prop_assert!(r.rows.len() <= g.node_count());
    }

    #[test]
    fn count_star_equals_node_count(
        nodes in proptest::collection::vec((0u8..3, -50i64..50), 0..40),
    ) {
        let g = random_graph(&nodes, &[]);
        let r = query(&g, "MATCH (n) RETURN count(*)").unwrap();
        prop_assert_eq!(r.single_value(), Some(&Value::Int(g.node_count() as i64)));
    }

    #[test]
    fn distinct_never_increases_and_dedups(
        nodes in proptest::collection::vec((0u8..3, -5i64..5), 0..40),
    ) {
        let g = random_graph(&nodes, &[]);
        let all = query(&g, "MATCH (n) RETURN n.key").unwrap();
        let distinct = query(&g, "MATCH (n) RETURN DISTINCT n.key").unwrap();
        prop_assert!(distinct.rows.len() <= all.rows.len());
        // Re-applying DISTINCT is a fixpoint.
        let mut seen = std::collections::HashSet::new();
        for row in &distinct.rows {
            prop_assert!(seen.insert(format!("{:?}", row)), "duplicate after DISTINCT");
        }
    }

    #[test]
    fn order_by_sorts(
        nodes in proptest::collection::vec((0u8..3, -50i64..50), 0..40),
    ) {
        let g = random_graph(&nodes, &[]);
        let r = query(&g, "MATCH (n) RETURN n.key ORDER BY n.key").unwrap();
        let keys: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_int()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        prop_assert_eq!(keys, sorted);
        // DESC is the exact reverse ordering.
        let rd = query(&g, "MATCH (n) RETURN n.key ORDER BY n.key DESC").unwrap();
        let keys_desc: Vec<i64> = rd.rows.iter().filter_map(|row| row[0].as_int()).collect();
        let mut rev = keys_desc.clone();
        rev.sort();
        let mut expect: Vec<i64> = rev;
        expect.reverse();
        prop_assert_eq!(keys_desc, expect);
    }

    #[test]
    fn where_partition_is_exhaustive(
        nodes in proptest::collection::vec((0u8..3, -50i64..50), 0..40),
        pivot in -50i64..50,
    ) {
        let g = random_graph(&nodes, &[]);
        let total = query(&g, "MATCH (n) RETURN count(*)").unwrap();
        let lo = query(&g, &format!("MATCH (n) WHERE n.key < {pivot} RETURN count(*)")).unwrap();
        let hi = query(&g, &format!("MATCH (n) WHERE n.key >= {pivot} RETURN count(*)")).unwrap();
        let t = total.single_value().unwrap().as_int().unwrap();
        let l = lo.single_value().unwrap().as_int().unwrap();
        let h = hi.single_value().unwrap().as_int().unwrap();
        prop_assert_eq!(t, l + h, "WHERE partition lost rows");
    }

    #[test]
    fn expand_matches_adjacency(
        nodes in proptest::collection::vec((0u8..3, -50i64..50), 1..25),
        edges in proptest::collection::vec((any::<usize>(), any::<usize>()), 0..60),
    ) {
        let g = random_graph(&nodes, &edges);
        let r = query(&g, "MATCH (a)-[r:R]->(b) RETURN count(r)").unwrap();
        prop_assert_eq!(
            r.single_value(),
            Some(&Value::Int(g.rel_count() as i64))
        );
        // Undirected traversal sees each edge from both sides except
        // self-loops, which appear once per side but bind distinct rows.
        let undirected = query(&g, "MATCH (a)-[r:R]-(b) RETURN count(r)").unwrap();
        let u = undirected.single_value().unwrap().as_int().unwrap();
        prop_assert!(u >= g.rel_count() as i64);
        prop_assert!(u <= 2 * g.rel_count() as i64);
    }

    #[test]
    fn aggregate_sum_matches_manual(
        nodes in proptest::collection::vec((0u8..3, -50i64..50), 0..40),
    ) {
        let g = random_graph(&nodes, &[]);
        let manual: i64 = g
            .all_nodes()
            .filter_map(|id| g.node(id).unwrap().props.get("key").and_then(Value::as_int))
            .sum();
        let r = query(&g, "MATCH (n) RETURN sum(n.key)").unwrap();
        prop_assert_eq!(r.single_value(), Some(&Value::Int(manual)));
    }

    #[test]
    fn skip_plus_limit_tile_the_results(
        nodes in proptest::collection::vec((0u8..3, -50i64..50), 0..30),
        chunk in 1usize..7,
    ) {
        let g = random_graph(&nodes, &[]);
        let all = query(&g, "MATCH (n) RETURN n.key ORDER BY n.key, id(n)").unwrap();
        let mut tiled = Vec::new();
        let mut skip = 0;
        loop {
            let page = query(
                &g,
                &format!("MATCH (n) RETURN n.key ORDER BY n.key, id(n) SKIP {skip} LIMIT {chunk}"),
            )
            .unwrap();
            if page.rows.is_empty() {
                break;
            }
            tiled.extend(page.rows);
            skip += chunk;
        }
        prop_assert_eq!(tiled, all.rows);
    }
}
