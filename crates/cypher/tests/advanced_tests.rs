//! Advanced executor scenarios: features in combination, IYP-realistic
//! analytical queries, and edge-case semantics.

use iyp_cypher::{query, query_with, update, Params, QueryResult};
use iyp_data::{generate, IypConfig};
use iyp_graphdb::{props, Graph, Props, Value};

fn iyp() -> Graph {
    generate(&IypConfig::tiny()).graph
}

fn col0(r: &QueryResult) -> Vec<String> {
    r.rows.iter().map(|row| row[0].to_string()).collect()
}

#[test]
fn with_chain_of_three_stages() {
    let g = iyp();
    // Countries → AS counts → keep big ones → average of those counts.
    let r = query(
        &g,
        "MATCH (a:AS)-[:COUNTRY]->(c:Country) \
         WITH c, count(a) AS n \
         WITH n WHERE n >= 2 \
         RETURN count(n) AS countries, avg(n) AS mean_ases",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(r.rows[0][0].as_int().unwrap() >= 1);
    assert!(r.rows[0][1].as_f64().unwrap() >= 2.0);
}

#[test]
fn unwind_collect_roundtrip() {
    let g = iyp();
    let r = query(
        &g,
        "MATCH (a:AS)-[:COUNTRY]->(c:Country {country_code: 'JP'}) \
         WITH collect(a.asn) AS asns \
         UNWIND asns AS asn RETURN count(asn)",
    )
    .unwrap();
    let direct = query(
        &g,
        "MATCH (a:AS)-[:COUNTRY]->(c:Country {country_code: 'JP'}) RETURN count(a)",
    )
    .unwrap();
    assert_eq!(r.single_value(), direct.single_value());
}

#[test]
fn case_with_aggregation_buckets() {
    let g = iyp();
    let r = query(
        &g,
        "MATCH (a:AS)-[r:RANK]->(:Ranking {name: 'CAIDA ASRank'}) \
         RETURN CASE WHEN r.rank <= 10 THEN 'top10' ELSE 'rest' END AS tier, count(a) \
         ORDER BY tier",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 2);
    let rest = &r.rows[0];
    let top = &r.rows[1];
    assert_eq!(top[0], Value::from("top10"));
    assert_eq!(top[1], Value::Int(10));
    assert!(rest[1].as_int().unwrap() > 10);
}

#[test]
fn multihop_with_property_math() {
    let g = iyp();
    // Population-weighted rank: percent / rank for JP eyeballs.
    let r = query(
        &g,
        "MATCH (a:AS)-[p:POPULATION]->(:Country {country_code: 'JP'}) \
         MATCH (a)-[r:RANK]->(:Ranking {name: 'CAIDA ASRank'}) \
         RETURN a.asn, round(p.percent / r.rank, 3) AS weighted \
         ORDER BY weighted DESC LIMIT 3",
    )
    .unwrap();
    assert!(!r.is_empty());
    // Descending order respected.
    let w: Vec<f64> = r.rows.iter().map(|row| row[1].as_f64().unwrap()).collect();
    for pair in w.windows(2) {
        assert!(pair[0] >= pair[1]);
    }
}

#[test]
fn optional_match_preserves_aggregate_zero() {
    let mut g = Graph::new();
    g.add_node(["Country"], props!("country_code" => "XX"));
    let r = query(
        &g,
        "MATCH (c:Country) OPTIONAL MATCH (c)<-[:COUNTRY]-(a:AS) \
         RETURN c.country_code, count(a)",
    )
    .unwrap();
    assert_eq!(r.rows[0], vec![Value::from("XX"), Value::Int(0)]);
}

#[test]
fn union_combines_entity_classes() {
    let g = iyp();
    let r = query(
        &g,
        "MATCH (x:IXP) RETURN x.name AS name \
         UNION MATCH (f:Facility) RETURN f.name AS name",
    )
    .unwrap();
    let ixps = g.label_count("IXP");
    let facs = g.label_count("Facility");
    // Names are unique across both sets in the generator.
    assert_eq!(r.rows.len(), ixps + facs);
}

#[test]
fn shortest_path_on_the_as_hierarchy() {
    let g = iyp();
    // Shortest dependency path from some stub to a tier-1 exists and is
    // no longer than the var-length cap.
    let r = query(
        &g,
        "MATCH p = shortestPath((a:AS {asn: 2497})-[:DEPENDS_ON*1..4]->(t:AS {asn: 1299})) \
         RETURN length(p)",
    )
    .unwrap();
    if let Some(v) = r.single_value() {
        let len = v.as_int().unwrap();
        assert!((1..=4).contains(&len));
    } // absence is fine: 2497's providers are seeded
}

#[test]
fn parameterized_in_list() {
    let g = iyp();
    let mut params = Params::new();
    params.insert(
        "asns".into(),
        Value::List(vec![
            Value::Int(2497),
            Value::Int(15169),
            Value::Int(999_999),
        ]),
    );
    let r = query_with(
        &g,
        "MATCH (a:AS) WHERE a.asn IN $asns RETURN a.asn ORDER BY a.asn",
        &params,
    )
    .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::Int(2497)], vec![Value::Int(15169)]]
    );
}

#[test]
fn string_functions_compose_in_where() {
    let g = iyp();
    let r = query(
        &g,
        "MATCH (d:DomainName) WHERE toUpper(d.name) ENDS WITH '.COM' \
         RETURN count(d)",
    );
    // toUpper produces '.COM' for .com domains.
    let n = r.unwrap().single_value().unwrap().as_int().unwrap();
    let total = query(&g, "MATCH (d:DomainName) RETURN count(d)")
        .unwrap()
        .single_value()
        .unwrap()
        .as_int()
        .unwrap();
    assert!(n > 0 && n < total);
}

#[test]
fn collect_distinct_and_size() {
    let g = iyp();
    let r = query(
        &g,
        "MATCH (a:AS)-[:COUNTRY]->(c:Country) \
         WITH collect(DISTINCT c.country_code) AS codes \
         RETURN size(codes)",
    )
    .unwrap();
    let distinct = query(
        &g,
        "MATCH (:AS)-[:COUNTRY]->(c:Country) RETURN count(DISTINCT c.country_code)",
    )
    .unwrap();
    assert_eq!(r.single_value(), distinct.single_value());
}

#[test]
fn list_comprehension_over_collected_values() {
    let g = iyp();
    let r = query(
        &g,
        "MATCH (a:AS)-[r:RANK]->(:Ranking {name: 'CAIDA ASRank'}) \
         WITH collect(r.rank) AS ranks \
         RETURN size([x IN ranks WHERE x <= 5]) AS top5",
    )
    .unwrap();
    assert_eq!(r.single_value(), Some(&Value::Int(5)));
}

#[test]
fn write_then_union_read() {
    let mut g = iyp();
    update(&mut g, "CREATE (x:IXP {name: 'Test-IX'})").unwrap();
    let r = query(
        &g,
        "MATCH (x:IXP {name: 'Test-IX'}) RETURN x.name \
         UNION MATCH (x:IXP {name: 'Tokyo-IX'}) RETURN x.name",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn merge_inside_load_sequence_is_idempotent() {
    let mut g = Graph::new();
    for _ in 0..3 {
        update(&mut g, "MERGE (c:Country {country_code: 'JP'})").unwrap();
        update(
            &mut g,
            "MATCH (c:Country {country_code: 'JP'}) SET c.name = 'Japan'",
        )
        .unwrap();
    }
    assert_eq!(g.node_count(), 1);
    let r = query(&g, "MATCH (c:Country) RETURN c.name").unwrap();
    assert_eq!(col0(&r), vec!["Japan"]);
}

#[test]
fn self_loop_patterns_dont_double_count() {
    let mut g = Graph::new();
    let a = g.add_node(["AS"], props!("asn" => 1i64));
    g.add_rel(a, "PEERS_WITH", a, Props::new()).unwrap();
    let r = query(&g, "MATCH (a)-[r:PEERS_WITH]-(b) RETURN count(r)").unwrap();
    assert_eq!(r.single_value(), Some(&Value::Int(1)));
}

#[test]
fn null_handling_in_order_by_puts_nulls_last() {
    let mut g = Graph::new();
    g.add_node(["N"], props!("v" => 2i64));
    g.add_node(["N"], Props::new()); // no `v`
    g.add_node(["N"], props!("v" => 1i64));
    let r = query(&g, "MATCH (n:N) RETURN n.v ORDER BY n.v").unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Null]]
    );
}

#[test]
fn deep_var_length_respects_cap() {
    // A 12-node chain: `*` caps expansion at VARLEN_CAP hops.
    let mut g = Graph::new();
    let ids: Vec<_> = (0..12)
        .map(|i| g.add_node(["N"], props!("i" => i as i64)))
        .collect();
    for w in ids.windows(2) {
        g.add_rel(w[0], "R", w[1], Props::new()).unwrap();
    }
    let r = query(&g, "MATCH (s:N {i: 0})-[:R*]->(e:N) RETURN max(e.i)").unwrap();
    assert_eq!(
        r.single_value(),
        Some(&Value::Int(iyp_cypher::exec::VARLEN_CAP as i64))
    );
    // An explicit larger bound reaches further.
    let r = query(&g, "MATCH (s:N {i: 0})-[:R*1..11]->(e:N) RETURN max(e.i)").unwrap();
    assert_eq!(r.single_value(), Some(&Value::Int(11)));
}

#[test]
fn percentile_cont_median_against_sorted_values() {
    let mut g = Graph::new();
    for v in [10i64, 20, 30, 40] {
        g.add_node(["N"], props!("v" => v));
    }
    let r = query(&g, "MATCH (n:N) RETURN percentileCont(n.v, 0.5)").unwrap();
    assert_eq!(r.single_value(), Some(&Value::Float(25.0)));
    let r = query(&g, "MATCH (n:N) RETURN percentileCont(n.v, 1.0)").unwrap();
    assert_eq!(r.single_value(), Some(&Value::Float(40.0)));
}

#[test]
fn distinct_applies_to_every_aggregate() {
    let mut g = Graph::new();
    for v in [10i64, 10, 20, 20, 30] {
        g.add_node(["N"], props!("v" => v));
    }
    let r = query(
        &g,
        "MATCH (n:N) RETURN sum(DISTINCT n.v), avg(DISTINCT n.v), \
         count(DISTINCT n.v), collect(DISTINCT n.v)",
    )
    .unwrap();
    let row = &r.rows[0];
    assert_eq!(row[0], Value::Int(60));
    assert_eq!(row[1], Value::Float(20.0));
    assert_eq!(row[2], Value::Int(3));
    assert_eq!(row[3], Value::from(vec![10i64, 20, 30]));
    // And without DISTINCT the duplicates count.
    let r = query(&g, "MATCH (n:N) RETURN sum(n.v), count(n.v)").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(90));
    assert_eq!(r.rows[0][1], Value::Int(5));
}

#[test]
fn set_plus_equals_merges_maps() {
    let mut g = Graph::new();
    g.add_node(["AS"], props!("asn" => 1i64, "name" => "Old"));
    update(
        &mut g,
        "MATCH (a:AS {asn: 1}) SET a += {name: 'New', tier: 'stub'}",
    )
    .unwrap();
    let r = query(&g, "MATCH (a:AS {asn: 1}) RETURN a.name, a.tier, a.asn").unwrap();
    assert_eq!(
        r.rows[0],
        vec![Value::from("New"), Value::from("stub"), Value::Int(1)]
    );
}

#[test]
fn remove_clears_properties() {
    let mut g = Graph::new();
    g.add_node(
        ["AS"],
        props!("asn" => 1i64, "name" => "X", "tier" => "stub"),
    );
    update(&mut g, "MATCH (a:AS {asn: 1}) REMOVE a.name, a.tier").unwrap();
    let r = query(&g, "MATCH (a:AS {asn: 1}) RETURN a.name, a.tier").unwrap();
    assert!(r.rows[0][0].is_null());
    assert!(r.rows[0][1].is_null());
}

#[test]
fn set_merge_map_rejects_non_map() {
    let mut g = Graph::new();
    g.add_node(["AS"], props!("asn" => 1i64));
    let err = update(&mut g, "MATCH (a:AS {asn: 1}) SET a += 5").unwrap_err();
    assert!(err.message.contains("map"), "{err}");
}
