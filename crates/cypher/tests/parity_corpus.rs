//! Differential parity corpus for the executor.
//!
//! Fifty-plus representative Cypher queries run against the deterministic
//! default IYP dataset, with results recorded as JSON goldens. The goldens
//! were captured from the pre-refactor clause interpreter; the test asserts
//! the current executor reproduces them **byte-identically** (same rows,
//! same order, same serialization), so any operator-tree regression —
//! semantic or ordering — fails loudly.
//!
//! To re-record after an intentional semantic change:
//! `cargo test -p iyp-cypher --test parity_corpus -- --ignored regenerate_goldens`

use iyp_cypher::corpus::PARITY_QUERIES as QUERIES;
use iyp_cypher::query;
use iyp_data::{generate, IypConfig};
use iyp_graphdb::Graph;
use std::path::PathBuf;

fn dataset_graph() -> Graph {
    generate(&IypConfig::default()).graph
}

fn goldens_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join("parity_corpus.json")
}

fn run_corpus(g: &Graph) -> Vec<(String, String)> {
    QUERIES
        .iter()
        .map(|q| {
            let result = query(g, q).unwrap_or_else(|e| panic!("corpus query failed: {q}\n{e}"));
            let json = serde_json::to_string(&result).expect("serialize result");
            (q.to_string(), json)
        })
        .collect()
}

#[test]
fn corpus_matches_recorded_goldens() {
    let goldens = std::fs::read_to_string(goldens_path())
        .expect("goldens missing; run the ignored regenerate_goldens test first");
    let recorded: serde_json::Value = serde_json::from_str(&goldens).expect("parse goldens");
    let entries = recorded.as_array().expect("goldens must be an array");
    assert_eq!(
        entries.len(),
        QUERIES.len(),
        "corpus size changed; re-record goldens"
    );
    let g = dataset_graph();
    let mut mismatches = Vec::new();
    for (i, (q, json)) in run_corpus(&g).into_iter().enumerate() {
        let golden_query = entries[i]["query"].as_str().expect("golden query");
        assert_eq!(golden_query, q, "corpus order changed at #{i}");
        let golden_result = entries[i]["result"].to_string();
        if golden_result != json {
            mismatches.push(format!(
                "query #{i}: {q}\n  golden: {golden_result}\n  actual: {json}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} corpus queries diverged from pre-refactor goldens:\n{}",
        mismatches.len(),
        QUERIES.len(),
        mismatches.join("\n")
    );
}

/// Records the current executor's output as the golden baseline.
#[test]
#[ignore = "writes the golden file; run explicitly to re-record"]
fn regenerate_goldens() {
    let g = dataset_graph();
    let mut out = String::from("[\n");
    for (i, (q, json)) in run_corpus(&g).into_iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let entry = serde_json::json!({"query": q});
        // Splice the already-serialized result in verbatim so the golden
        // file stores exactly what the test will compare against.
        let entry_str = entry.to_string();
        out.push_str(&format!(
            "{},\"result\":{}}}",
            &entry_str[..entry_str.len() - 1],
            json
        ));
    }
    out.push_str("\n]\n");
    let path = goldens_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, out).unwrap();
    println!("wrote {} goldens to {}", QUERIES.len(), path.display());
}
