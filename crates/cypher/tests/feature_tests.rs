//! Tests for the extended Cypher features: UNION / UNION ALL,
//! `shortestPath(...)`, and range-predicate index seeks.

use iyp_cypher::plan::{extract_range_predicates, plan_match, Anchor};
use iyp_cypher::{parse, query};
use iyp_graphdb::{props, Graph, Props, Value};

fn chain_graph() -> Graph {
    // a -> b -> c -> d plus a direct shortcut a -> c.
    let mut g = Graph::new();
    let a = g.add_node(["AS"], props!("asn" => 1i64));
    let b = g.add_node(["AS"], props!("asn" => 2i64));
    let c = g.add_node(["AS"], props!("asn" => 3i64));
    let d = g.add_node(["AS"], props!("asn" => 4i64));
    g.add_rel(a, "DEPENDS_ON", b, Props::new()).unwrap();
    g.add_rel(b, "DEPENDS_ON", c, Props::new()).unwrap();
    g.add_rel(c, "DEPENDS_ON", d, Props::new()).unwrap();
    g.add_rel(a, "DEPENDS_ON", c, Props::new()).unwrap();
    g.create_index("AS", "asn");
    g
}

// ----------------------------------------------------------------------
// UNION
// ----------------------------------------------------------------------

#[test]
fn union_merges_and_dedups() {
    let g = chain_graph();
    let r = query(
        &g,
        "MATCH (a:AS) WHERE a.asn <= 2 RETURN a.asn \
         UNION MATCH (a:AS) WHERE a.asn >= 2 RETURN a.asn",
    )
    .unwrap();
    let mut vals: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_int()).collect();
    vals.sort();
    assert_eq!(vals, vec![1, 2, 3, 4], "duplicate 2 not deduplicated");
}

#[test]
fn union_all_keeps_duplicates() {
    let g = chain_graph();
    let r = query(
        &g,
        "MATCH (a:AS) WHERE a.asn <= 2 RETURN a.asn \
         UNION ALL MATCH (a:AS) WHERE a.asn >= 2 RETURN a.asn",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 5); // 1,2 + 2,3,4
}

#[test]
fn union_three_branches() {
    let g = chain_graph();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 1}) RETURN a.asn \
         UNION MATCH (a:AS {asn: 2}) RETURN a.asn \
         UNION MATCH (a:AS {asn: 1}) RETURN a.asn",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn union_column_mismatch_is_an_error() {
    let g = chain_graph();
    let err = query(
        &g,
        "MATCH (a:AS) RETURN a.asn UNION MATCH (a:AS) RETURN a.asn, a.asn",
    )
    .unwrap_err();
    assert!(err.message.contains("column"), "{err}");
}

#[test]
fn union_roundtrips_through_pretty() {
    let src = "MATCH (a:AS) RETURN a.asn UNION ALL MATCH (b:AS) RETURN b.asn";
    let q1 = parse(src).unwrap();
    let rendered = iyp_cypher::query_to_string(&q1);
    assert!(rendered.contains("UNION ALL"));
    assert_eq!(parse(&rendered).unwrap(), q1);
}

// ----------------------------------------------------------------------
// shortestPath
// ----------------------------------------------------------------------

#[test]
fn shortest_path_picks_the_shortcut() {
    let g = chain_graph();
    // a→c exists directly (length 1) and via b (length 2).
    let r = query(
        &g,
        "MATCH p = shortestPath((a:AS {asn: 1})-[:DEPENDS_ON*1..4]->(c:AS {asn: 3})) \
         RETURN length(p)",
    )
    .unwrap();
    assert_eq!(r.single_value(), Some(&Value::Int(1)));
}

#[test]
fn shortest_path_per_endpoint_pair() {
    let g = chain_graph();
    // From a to every reachable AS: one row per endpoint, each minimal.
    let r = query(
        &g,
        "MATCH p = shortestPath((a:AS {asn: 1})-[:DEPENDS_ON*1..4]->(x:AS)) \
         RETURN x.asn, length(p) ORDER BY x.asn",
    )
    .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::Int(2), Value::Int(1)],
            vec![Value::Int(3), Value::Int(1)], // shortcut, not via b
            vec![Value::Int(4), Value::Int(2)], // a→c→d
        ]
    );
}

#[test]
fn shortest_path_no_route_is_empty() {
    let g = chain_graph();
    let r = query(
        &g,
        "MATCH p = shortestPath((a:AS {asn: 4})-[:DEPENDS_ON*1..4]->(x:AS {asn: 1})) \
         RETURN length(p)",
    )
    .unwrap();
    assert!(r.is_empty());
}

#[test]
fn shortest_path_requires_binding_and_single_hop() {
    assert!(parse("MATCH shortestPath((a)-[*]->(b)) RETURN a").is_err());
    assert!(parse("MATCH p = shortestPath((a)-[*]->(b)-[*]->(c)) RETURN p").is_err());
    assert!(parse("MATCH p = shortestPath((a)-[:R*1..3]->(b)) RETURN p").is_ok());
}

#[test]
fn shortest_path_pretty_roundtrip() {
    let src = "MATCH p = shortestPath((a:AS {asn: 1})-[:DEPENDS_ON*1..4]->(b:AS)) RETURN length(p)";
    let q1 = parse(src).unwrap();
    let rendered = iyp_cypher::query_to_string(&q1);
    assert!(rendered.contains("shortestPath("));
    assert_eq!(parse(&rendered).unwrap(), q1);
}

// ----------------------------------------------------------------------
// Range index seeks
// ----------------------------------------------------------------------

fn big_indexed_graph() -> Graph {
    let mut g = Graph::new();
    for asn in 1..=200i64 {
        g.add_node(["AS"], props!("asn" => asn));
    }
    g.create_index("AS", "asn");
    g
}

#[test]
fn range_predicates_are_extracted_and_merged() {
    let e = iyp_cypher::parse_expression("a.asn > 10 AND a.asn <= 20 AND b.x < 5").unwrap();
    let preds = extract_range_predicates(&e);
    assert_eq!(preds.len(), 2);
    let a = preds.iter().find(|p| p.var == "a").unwrap();
    assert!(a.lo.is_some() && a.hi.is_some());
    assert!(!a.lo.as_ref().unwrap().1); // strict >
    assert!(a.hi.as_ref().unwrap().1); // inclusive <=
    let b = preds.iter().find(|p| p.var == "b").unwrap();
    assert!(b.lo.is_none() && b.hi.is_some());
}

#[test]
fn flipped_operands_extract_correctly() {
    let e = iyp_cypher::parse_expression("10 < a.asn AND 20 >= a.asn").unwrap();
    let preds = extract_range_predicates(&e);
    assert_eq!(preds.len(), 1);
    assert!(!preds[0].lo.as_ref().unwrap().1);
    assert!(preds[0].hi.as_ref().unwrap().1);
}

#[test]
fn planner_chooses_range_seek() {
    let g = big_indexed_graph();
    let q = parse("MATCH (a:AS) WHERE a.asn > 190 RETURN a.asn").unwrap();
    let m = match &q.clauses[0] {
        iyp_cypher::ast::Clause::Match(m) => m,
        other => panic!("{other:?}"),
    };
    let plans = plan_match(&g, m, &mut Vec::new());
    assert!(
        matches!(plans[0].anchor, Anchor::RangeSeek { .. }),
        "got {:?}",
        plans[0].anchor
    );
}

#[test]
fn range_seek_results_match_label_scan() {
    let g = big_indexed_graph();
    // Both bounded and half-open ranges give the same answers as the
    // equivalent filtered scan over an unindexed property would.
    for (pred, expected) in [
        ("a.asn > 195", vec![196i64, 197, 198, 199, 200]),
        ("a.asn >= 199", vec![199, 200]),
        ("a.asn > 3 AND a.asn <= 6", vec![4, 5, 6]),
        ("a.asn < 3", vec![1, 2]),
        ("198 <= a.asn AND a.asn < 200", vec![198, 199]),
    ] {
        let r = query(
            &g,
            &format!("MATCH (a:AS) WHERE {pred} RETURN a.asn ORDER BY a.asn"),
        )
        .unwrap();
        let got: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_int()).collect();
        assert_eq!(got, expected, "predicate {pred}");
    }
}

#[test]
fn range_seek_still_applies_residual_filters() {
    let g = big_indexed_graph();
    // The WHERE clause is still evaluated in full: the range seek is an
    // access path, not a replacement for filtering.
    let r = query(
        &g,
        "MATCH (a:AS) WHERE a.asn > 100 AND a.asn % 50 = 0 RETURN a.asn ORDER BY a.asn",
    )
    .unwrap();
    let got: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_int()).collect();
    assert_eq!(got, vec![150, 200]);
}

// ----------------------------------------------------------------------
// exists(pattern)
// ----------------------------------------------------------------------

#[test]
fn exists_pattern_filters_by_relationship() {
    let g = chain_graph();
    // Only nodes with an outgoing DEPENDS_ON edge: 1, 2, 3 (4 is the sink).
    let r = query(
        &g,
        "MATCH (a:AS) WHERE exists((a)-[:DEPENDS_ON]->(:AS)) RETURN a.asn ORDER BY a.asn",
    )
    .unwrap();
    let got: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_int()).collect();
    assert_eq!(got, vec![1, 2, 3]);
}

#[test]
fn not_exists_pattern() {
    let g = chain_graph();
    let r = query(
        &g,
        "MATCH (a:AS) WHERE NOT exists((a)-[:DEPENDS_ON]->(:AS)) RETURN a.asn",
    )
    .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(4)]]);
}

#[test]
fn exists_pattern_with_far_end_bound() {
    let g = chain_graph();
    // Chain reversed internally: the bound endpoint is on the right.
    let r = query(
        &g,
        "MATCH (a:AS) WHERE exists((:AS {asn: 1})-[:DEPENDS_ON]->(a)) RETURN a.asn ORDER BY a.asn",
    )
    .unwrap();
    let got: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_int()).collect();
    assert_eq!(got, vec![2, 3]); // direct edges 1→2 and the shortcut 1→3
}

#[test]
fn exists_two_hop_pattern() {
    let g = chain_graph();
    // Nodes two DEPENDS_ON hops away from something: 1 and 2 (and 1 via shortcut? 1→3→4 also).
    let r = query(
        &g,
        "MATCH (a:AS) WHERE exists((a)-[:DEPENDS_ON]->(:AS)-[:DEPENDS_ON]->(:AS)) \
         RETURN a.asn ORDER BY a.asn",
    )
    .unwrap();
    let got: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_int()).collect();
    assert_eq!(got, vec![1, 2]);
}

#[test]
fn exists_pattern_between_two_bound_vars() {
    let g = chain_graph();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 1}), (b:AS) WHERE exists((a)-[:DEPENDS_ON]->(b)) \
         RETURN b.asn ORDER BY b.asn",
    )
    .unwrap();
    let got: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_int()).collect();
    assert_eq!(got, vec![2, 3]);
}

#[test]
fn exists_pattern_roundtrips_through_pretty() {
    let src = "MATCH (a:AS) WHERE exists((a)-[:DEPENDS_ON]->(:AS)) RETURN a.asn";
    let q1 = parse(src).unwrap();
    let rendered = iyp_cypher::query_to_string(&q1);
    assert!(
        rendered.contains("exists((a)-[:DEPENDS_ON]->(:AS))"),
        "{rendered}"
    );
    assert_eq!(parse(&rendered).unwrap(), q1);
}

#[test]
fn exists_pattern_without_bound_endpoint_errors() {
    let g = chain_graph();
    let err = query(
        &g,
        "MATCH (a:AS) WHERE exists((x)-[:DEPENDS_ON]->(y)) RETURN a.asn",
    )
    .unwrap_err();
    assert!(err.message.contains("bound endpoint"), "{err}");
}

#[test]
fn bare_pattern_predicate_in_where() {
    let g = chain_graph();
    let r = query(
        &g,
        "MATCH (a:AS) WHERE (a)-[:DEPENDS_ON]->(:AS) RETURN a.asn ORDER BY a.asn",
    )
    .unwrap();
    let got: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_int()).collect();
    assert_eq!(got, vec![1, 2, 3]);
}

#[test]
fn negated_bare_pattern_predicate() {
    let g = chain_graph();
    let r = query(
        &g,
        "MATCH (a:AS) WHERE NOT (a)-[:DEPENDS_ON]->(:AS) RETURN a.asn",
    )
    .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(4)]]);
}

#[test]
fn pattern_predicate_combines_with_boolean_logic() {
    let g = chain_graph();
    let r = query(
        &g,
        "MATCH (a:AS) WHERE (a)-[:DEPENDS_ON]->(:AS) AND a.asn > 1 RETURN a.asn ORDER BY a.asn",
    )
    .unwrap();
    let got: Vec<i64> = r.rows.iter().filter_map(|row| row[0].as_int()).collect();
    assert_eq!(got, vec![2, 3]);
}

#[test]
fn parenthesized_arithmetic_still_works() {
    let g = chain_graph();
    // `(a.asn + 1)` must not be mistaken for a pattern.
    let r = query(&g, "MATCH (a:AS {asn: 1}) RETURN (a.asn + 1) * 2").unwrap();
    assert_eq!(r.single_value(), Some(&Value::Int(4)));
}

#[test]
fn deadline_cuts_off_pathological_queries() {
    use std::time::{Duration, Instant};
    // A dense-ish mesh where unconstrained double var-length expansion
    // explodes combinatorially.
    let mut g = Graph::new();
    let ids: Vec<_> = (0..60)
        .map(|i| g.add_node(["N"], props!("i" => i as i64)))
        .collect();
    for (i, &a) in ids.iter().enumerate() {
        for &b in ids.iter().skip(i + 1).take(6) {
            g.add_rel(a, "R", b, Props::new()).unwrap();
            g.add_rel(b, "R", a, Props::new()).unwrap();
        }
    }
    let started = Instant::now();
    let err = iyp_cypher::query_with_deadline(
        &g,
        "MATCH (a)-[:R*1..6]-(b)-[:R*1..6]-(c) RETURN count(*)",
        &iyp_cypher::Params::new(),
        Duration::from_millis(150),
    )
    .unwrap_err();
    assert!(err.message.contains("deadline"), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline not enforced promptly: {:?}",
        started.elapsed()
    );
}

#[test]
fn deadline_does_not_affect_normal_queries() {
    let g = chain_graph();
    let r = iyp_cypher::query_with_deadline(
        &g,
        "MATCH (a:AS) RETURN count(a)",
        &iyp_cypher::Params::new(),
        std::time::Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(r.single_value(), Some(&Value::Int(4)));
}
