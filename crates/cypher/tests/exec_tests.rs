//! End-to-end tests of the Cypher executor against a small, hand-built
//! Internet-shaped graph.

use iyp_cypher::{query, query_with, update, Params, QueryResult};
use iyp_graphdb::{props, Graph, Props, Value};

/// Builds a miniature IYP-shaped graph:
///
/// - 4 ASes (2497 IIJ/JP, 15169 Google/US, 7018 ATT/US, 64500 Small/JP)
/// - 2 countries (JP, US)
/// - 3 prefixes originated by the ASes
/// - 1 IXP with members
/// - POPULATION edges with `percent`
/// - DEPENDS_ON chain for multi-hop tests
fn mini_iyp() -> Graph {
    let mut g = Graph::new();
    let jp = g.add_node(
        ["Country"],
        props!("country_code" => "JP", "name" => "Japan"),
    );
    let us = g.add_node(
        ["Country"],
        props!("country_code" => "US", "name" => "United States"),
    );

    let iij = g.add_node(["AS"], props!("asn" => 2497i64, "name" => "IIJ"));
    let goog = g.add_node(["AS"], props!("asn" => 15169i64, "name" => "Google"));
    let att = g.add_node(["AS"], props!("asn" => 7018i64, "name" => "ATT"));
    let small = g.add_node(["AS"], props!("asn" => 64500i64, "name" => "SmallISP"));

    g.add_rel(iij, "COUNTRY", jp, Props::new()).unwrap();
    g.add_rel(goog, "COUNTRY", us, Props::new()).unwrap();
    g.add_rel(att, "COUNTRY", us, Props::new()).unwrap();
    g.add_rel(small, "COUNTRY", jp, Props::new()).unwrap();

    g.add_rel(iij, "POPULATION", jp, props!("percent" => 33.3))
        .unwrap();
    g.add_rel(small, "POPULATION", jp, props!("percent" => 1.2))
        .unwrap();

    let p1 = g.add_node(
        ["Prefix"],
        props!("prefix" => "203.0.113.0/24", "af" => 4i64),
    );
    let p2 = g.add_node(
        ["Prefix"],
        props!("prefix" => "198.51.100.0/24", "af" => 4i64),
    );
    let p3 = g.add_node(
        ["Prefix"],
        props!("prefix" => "2001:db8::/32", "af" => 6i64),
    );
    g.add_rel(iij, "ORIGINATE", p1, Props::new()).unwrap();
    g.add_rel(goog, "ORIGINATE", p2, Props::new()).unwrap();
    g.add_rel(goog, "ORIGINATE", p3, Props::new()).unwrap();

    let ixp = g.add_node(["IXP"], props!("name" => "JPIX"));
    g.add_rel(iij, "MEMBER_OF", ixp, Props::new()).unwrap();
    g.add_rel(small, "MEMBER_OF", ixp, Props::new()).unwrap();

    // small -> iij -> att dependency chain; google depends on att too.
    g.add_rel(small, "DEPENDS_ON", iij, Props::new()).unwrap();
    g.add_rel(iij, "DEPENDS_ON", att, Props::new()).unwrap();
    g.add_rel(goog, "DEPENDS_ON", att, Props::new()).unwrap();

    g.add_rel(iij, "PEERS_WITH", goog, Props::new()).unwrap();

    g.create_index("AS", "asn");
    g.create_index("Country", "country_code");
    g
}

fn col0(r: &QueryResult) -> Vec<String> {
    r.rows.iter().map(|row| row[0].to_string()).collect()
}

#[test]
fn single_node_by_indexed_property() {
    let g = mini_iyp();
    let r = query(&g, "MATCH (a:AS {asn: 2497}) RETURN a.name").unwrap();
    assert_eq!(r.columns, vec!["a.name"]);
    assert_eq!(col0(&r), vec!["IIJ"]);
}

#[test]
fn one_hop_pattern() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS)-[:COUNTRY]->(c:Country {country_code: 'JP'}) RETURN a.name ORDER BY a.name",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["IIJ", "SmallISP"]);
}

#[test]
fn the_paper_example_population_query() {
    // "What is the percentage of Japan's population in AS2497?"
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 2497})-[p:POPULATION]->(c:Country {country_code: 'JP'}) \
         RETURN p.percent",
    )
    .unwrap();
    assert_eq!(r.single_value(), Some(&Value::Float(33.3)));
}

#[test]
fn incoming_direction() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (c:Country {country_code: 'US'})<-[:COUNTRY]-(a:AS) RETURN count(a)",
    )
    .unwrap();
    assert_eq!(r.single_value(), Some(&Value::Int(2)));
}

#[test]
fn undirected_pattern() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 2497})-[:PEERS_WITH]-(b:AS) RETURN b.name",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["Google"]);
    // And from the other side.
    let r = query(
        &g,
        "MATCH (a:AS {asn: 15169})-[:PEERS_WITH]-(b:AS) RETURN b.name",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["IIJ"]);
}

#[test]
fn multi_hop_chain() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 64500})-[:DEPENDS_ON]->(m:AS)-[:DEPENDS_ON]->(t:AS) RETURN t.name",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["ATT"]);
}

#[test]
fn variable_length_paths() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 64500})-[:DEPENDS_ON*1..2]->(b:AS) RETURN b.name ORDER BY b.name",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["ATT", "IIJ"]);
    // Exactly two hops.
    let r = query(
        &g,
        "MATCH (a:AS {asn: 64500})-[:DEPENDS_ON*2]->(b:AS) RETURN b.name",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["ATT"]);
}

#[test]
fn variable_length_zero_min_includes_start() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 2497})-[:DEPENDS_ON*0..1]->(b:AS) RETURN b.name ORDER BY b.name",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["ATT", "IIJ"]);
}

#[test]
fn path_variable_and_length() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH p = (a:AS {asn: 64500})-[:DEPENDS_ON*1..3]->(b:AS {asn: 7018}) RETURN length(p)",
    )
    .unwrap();
    assert_eq!(r.single_value(), Some(&Value::Int(2)));
}

#[test]
fn where_filtering() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS) WHERE a.asn > 10000 AND a.name CONTAINS 'o' RETURN a.name",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["Google"]);
}

#[test]
fn aggregation_count_group_by() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS)-[:COUNTRY]->(c:Country) \
         RETURN c.country_code AS cc, count(a) AS n ORDER BY cc",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0], vec![Value::from("JP"), Value::Int(2)]);
    assert_eq!(r.rows[1], vec![Value::from("US"), Value::Int(2)]);
}

#[test]
fn aggregation_sum_avg_min_max_collect() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS) RETURN sum(a.asn), avg(a.asn), min(a.name), max(a.asn), count(*)",
    )
    .unwrap();
    let row = &r.rows[0];
    assert_eq!(row[0], Value::Int(2497 + 15169 + 7018 + 64500));
    assert_eq!(row[2], Value::from("ATT"));
    assert_eq!(row[3], Value::Int(64500));
    assert_eq!(row[4], Value::Int(4));
    let r = query(&g, "MATCH (p:Prefix) RETURN collect(p.af)").unwrap();
    match r.single_value().unwrap() {
        Value::List(items) => assert_eq!(items.len(), 3),
        other => panic!("{other:?}"),
    }
}

#[test]
fn aggregation_over_empty_input() {
    let g = mini_iyp();
    let r = query(&g, "MATCH (x:Nonexistent) RETURN count(x), sum(x.v)").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert_eq!(r.rows[0][1], Value::Int(0));
}

#[test]
fn count_distinct() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN count(DISTINCT c.country_code)",
    )
    .unwrap();
    assert_eq!(r.single_value(), Some(&Value::Int(2)));
}

#[test]
fn mixed_aggregate_expression() {
    let g = mini_iyp();
    // Percentage arithmetic around an aggregate.
    let r = query(&g, "MATCH (a:AS) RETURN 100.0 * count(a) / 4 AS pct").unwrap();
    assert_eq!(r.single_value(), Some(&Value::Float(100.0)));
}

#[test]
fn with_chaining_filters_groups() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS)-[:MEMBER_OF]->(x:IXP) \
         WITH x, count(a) AS members WHERE members >= 2 \
         RETURN x.name, members",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::from("JPIX"));
    assert_eq!(r.rows[0][1], Value::Int(2));
}

#[test]
fn with_preserves_entities() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 2497}) WITH a MATCH (a)-[:ORIGINATE]->(p:Prefix) RETURN p.prefix",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["203.0.113.0/24"]);
}

#[test]
fn order_by_aggregate() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS)-[:COUNTRY]->(c:Country) \
         RETURN c.country_code, count(a) AS n ORDER BY count(a) DESC, c.country_code",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::from("JP"));
}

#[test]
fn order_by_original_variable_after_projection() {
    let g = mini_iyp();
    let r = query(&g, "MATCH (a:AS) RETURN a.name ORDER BY a.asn DESC").unwrap();
    assert_eq!(col0(&r), vec!["SmallISP", "Google", "ATT", "IIJ"]);
}

#[test]
fn skip_and_limit() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS) RETURN a.asn ORDER BY a.asn SKIP 1 LIMIT 2",
    )
    .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::Int(7018)], vec![Value::Int(15169)]]
    );
}

#[test]
fn distinct_rows() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN DISTINCT c.country_code ORDER BY c.country_code",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["JP", "US"]);
}

#[test]
fn optional_match_yields_nulls() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS) OPTIONAL MATCH (a)-[p:POPULATION]->(:Country) \
         RETURN a.name, p.percent ORDER BY a.name",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 4);
    // ATT and Google have no POPULATION edge.
    let att = r
        .rows
        .iter()
        .find(|row| row[0] == Value::from("ATT"))
        .unwrap();
    assert!(att[1].is_null());
    let iij = r
        .rows
        .iter()
        .find(|row| row[0] == Value::from("IIJ"))
        .unwrap();
    assert_eq!(iij[1], Value::Float(33.3));
}

#[test]
fn unwind_rows() {
    let g = mini_iyp();
    let r = query(
        &g,
        "UNWIND [2497, 7018] AS asn MATCH (a:AS {asn: asn}) RETURN a.name ORDER BY a.name",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["ATT", "IIJ"]);
}

#[test]
fn parameters() {
    let g = mini_iyp();
    let mut params = Params::new();
    params.insert("asn".into(), Value::Int(15169));
    let r = query_with(&g, "MATCH (a:AS {asn: $asn}) RETURN a.name", &params).unwrap();
    assert_eq!(col0(&r), vec!["Google"]);
}

#[test]
fn cartesian_product_of_disjoint_patterns() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 2497}), (c:Country) RETURN a.name, c.country_code ORDER BY c.country_code",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn shared_variable_joins_patterns() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS)-[:COUNTRY]->(c:Country {country_code: 'JP'}), (a)-[:MEMBER_OF]->(x:IXP) \
         RETURN a.name ORDER BY a.name",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["IIJ", "SmallISP"]);
}

#[test]
fn relationship_uniqueness_within_pattern() {
    let g = mini_iyp();
    // a-[:PEERS_WITH]-b-[:PEERS_WITH]-c cannot reuse the same edge, so no
    // row where a = c via the single IIJ<->Google edge.
    let r = query(
        &g,
        "MATCH (a:AS)-[:PEERS_WITH]-(b:AS)-[:PEERS_WITH]-(c:AS) RETURN a.name, c.name",
    )
    .unwrap();
    assert!(r.is_empty());
}

#[test]
fn labels_and_type_functions() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 2497})-[r]->(x) RETURN DISTINCT type(r) ORDER BY type(r)",
    )
    .unwrap();
    assert_eq!(
        col0(&r),
        vec![
            "COUNTRY",
            "DEPENDS_ON",
            "MEMBER_OF",
            "ORIGINATE",
            "PEERS_WITH",
            "POPULATION"
        ]
    );
    let r = query(
        &g,
        "MATCH (c:Country {country_code: 'JP'}) RETURN labels(c)",
    )
    .unwrap();
    assert_eq!(r.single_value(), Some(&Value::from(vec!["Country"])));
}

#[test]
fn case_and_string_functions_in_projection() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS) RETURN toUpper(a.name) AS up, \
         CASE WHEN a.asn < 10000 THEN 'low' ELSE 'high' END AS band \
         ORDER BY a.asn LIMIT 2",
    )
    .unwrap();
    assert_eq!(r.rows[0], vec![Value::from("IIJ"), Value::from("low")]);
    assert_eq!(r.rows[1], vec![Value::from("ATT"), Value::from("low")]);
}

#[test]
fn return_star() {
    let g = mini_iyp();
    let r = query(&g, "MATCH (c:Country {country_code: 'JP'}) RETURN *").unwrap();
    assert_eq!(r.columns, vec!["c"]);
    match &r.rows[0][0] {
        Value::Map(m) => assert_eq!(m["country_code"], Value::from("JP")),
        other => panic!("{other:?}"),
    }
}

#[test]
fn write_create_then_read_back() {
    let mut g = mini_iyp();
    update(
        &mut g,
        "CREATE (a:AS {asn: 65000, name: 'NewNet'})-[:COUNTRY]->(c:Country {country_code: 'DE'})",
    )
    .unwrap();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 65000})-[:COUNTRY]->(c) RETURN c.country_code",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["DE"]);
}

#[test]
fn write_match_create_links_existing() {
    let mut g = mini_iyp();
    update(
        &mut g,
        "MATCH (a:AS {asn: 7018}), (x:IXP {name: 'JPIX'}) CREATE (a)-[:MEMBER_OF]->(x)",
    )
    .unwrap();
    let r = query(
        &g,
        "MATCH (:IXP {name: 'JPIX'})<-[:MEMBER_OF]-(a) RETURN count(a)",
    )
    .unwrap();
    assert_eq!(r.single_value(), Some(&Value::Int(3)));
}

#[test]
fn merge_is_idempotent() {
    let mut g = mini_iyp();
    let before = g.node_count();
    update(&mut g, "MERGE (c:Country {country_code: 'JP'})").unwrap();
    assert_eq!(g.node_count(), before);
    update(&mut g, "MERGE (c:Country {country_code: 'FR'})").unwrap();
    assert_eq!(g.node_count(), before + 1);
}

#[test]
fn set_updates_properties() {
    let mut g = mini_iyp();
    update(
        &mut g,
        "MATCH (a:AS {asn: 2497}) SET a.name = 'Internet Initiative Japan'",
    )
    .unwrap();
    let r = query(&g, "MATCH (a:AS {asn: 2497}) RETURN a.name").unwrap();
    assert_eq!(col0(&r), vec!["Internet Initiative Japan"]);
}

#[test]
fn detach_delete_removes_node_and_edges() {
    let mut g = mini_iyp();
    update(&mut g, "MATCH (a:AS {asn: 64500}) DETACH DELETE a").unwrap();
    let r = query(&g, "MATCH (a:AS) RETURN count(a)").unwrap();
    assert_eq!(r.single_value(), Some(&Value::Int(3)));
    // Plain DELETE on a connected node errors.
    let err = update(&mut g, "MATCH (a:AS {asn: 2497}) DELETE a").unwrap_err();
    assert!(err.message.contains("DETACH"));
}

#[test]
fn read_only_execution_rejects_writes() {
    let g = mini_iyp();
    let err = query(&g, "CREATE (x:AS {asn: 1})").unwrap_err();
    assert!(err.message.contains("read-only"));
}

#[test]
fn runtime_errors_surface() {
    let g = mini_iyp();
    assert!(query(&g, "MATCH (a:AS) RETURN ghost.name").is_err());
    assert!(query(&g, "MATCH (a:AS) RETURN frob(a)").is_err());
    assert!(query(&g, "RETURN 1 / 0").is_err());
}

#[test]
fn return_must_be_last() {
    let g = mini_iyp();
    assert!(query(&g, "RETURN 1 RETURN 2").is_err());
}

#[test]
fn optional_match_null_then_rematch_fails_gracefully() {
    let g = mini_iyp();
    // ATT/Google have no POPULATION edge; reusing the null p in MATCH
    // produces no rows for them rather than an error.
    let r = query(
        &g,
        "MATCH (a:AS) OPTIONAL MATCH (a)-[:POPULATION]->(c:Country) \
         WITH a, c MATCH (c)<-[:COUNTRY]-(b:AS) \
         RETURN DISTINCT a.name ORDER BY a.name",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["IIJ", "SmallISP"]);
}

#[test]
fn with_star_keeps_bindings() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS {asn: 2497}) WITH * MATCH (a)-[:COUNTRY]->(c) RETURN c.country_code",
    )
    .unwrap();
    assert_eq!(col0(&r), vec!["JP"]);
}

#[test]
fn percentile_and_stdev() {
    let g = mini_iyp();
    let r = query(
        &g,
        "MATCH (a:AS) RETURN percentileCont(a.asn, 0.5) AS med, stdev(a.asn) AS sd",
    )
    .unwrap();
    let med = r.rows[0][0].as_f64().unwrap();
    assert!(med > 7018.0 && med < 15169.0, "median was {med}");
    assert!(r.rows[0][1].as_f64().unwrap() > 0.0);
}

#[test]
fn chain_reversal_gives_same_answer() {
    let g = mini_iyp();
    // Anchor on the indexed far end; results must match the forward form.
    let a = query(
        &g,
        "MATCH (p:Prefix)<-[:ORIGINATE]-(a:AS {asn: 15169}) RETURN p.prefix ORDER BY p.prefix",
    )
    .unwrap();
    let b = query(
        &g,
        "MATCH (a:AS {asn: 15169})-[:ORIGINATE]->(p:Prefix) RETURN p.prefix ORDER BY p.prefix",
    )
    .unwrap();
    assert_eq!(a.rows, b.rows);
}

#[test]
fn fingerprint_equivalence_across_alias_and_order() {
    let g = mini_iyp();
    let a = query(&g, "MATCH (a:AS) RETURN a.asn AS x ORDER BY x").unwrap();
    let b = query(&g, "MATCH (a:AS) RETURN a.asn AS y ORDER BY y DESC").unwrap();
    assert_eq!(a.fingerprint(false), b.fingerprint(false));
    assert_ne!(a.fingerprint(true), b.fingerprint(true));
}
