//! Golden tests for `PROFILE` output.
//!
//! A representative slice of the parity corpus is profiled against the
//! deterministic default IYP dataset and the *deterministic* rendering
//! (rows and db hits, no wall-clock times — see
//! [`iyp_cypher::QueryProfile::render_deterministic`]) is pinned as a
//! golden file. Row counts and db hits are reproducible on a fixed
//! dataset, so any change to operator row flow, access-path selection,
//! or db-hit accounting fails loudly here.
//!
//! To re-record after an intentional change:
//! `cargo test -p iyp-cypher --test profile_goldens -- --ignored regenerate_profile_goldens`
//!
//! A second test sweeps the *whole* corpus asserting the profiled run
//! agrees with the plain executor: same serialized result, and the
//! profile's `result_rows` matches the result's actual row count.

use iyp_cypher::corpus::PARITY_QUERIES;
use iyp_cypher::{profile_with_limits, query, ExecLimits, Params};
use iyp_data::{generate, IypConfig};
use iyp_graphdb::Graph;
use std::path::PathBuf;

/// Indices into [`PARITY_QUERIES`] chosen to cover the executor's
/// operator shapes: index seek, label scan, range seek, one-hop and
/// multi-hop expansion, aggregation, ORDER BY + LIMIT, OPTIONAL MATCH,
/// UNWIND, and UNION.
const GOLDEN_INDICES: &[usize] = &[0, 2, 5, 9, 13, 17, 22, 27, 33, 39, 45, 52];

fn dataset_graph() -> Graph {
    generate(&IypConfig::default()).graph
}

fn goldens_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join("profile_corpus.json")
}

fn profile_deterministic(g: &Graph, q: &str) -> String {
    let (_result, prof) = profile_with_limits(g, q, &Params::new(), ExecLimits::none())
        .unwrap_or_else(|e| panic!("profile failed: {q}\n{e}"));
    prof.render_deterministic()
}

#[test]
fn profile_matches_recorded_goldens() {
    let goldens = std::fs::read_to_string(goldens_path())
        .expect("goldens missing; run the ignored regenerate_profile_goldens test first");
    let recorded: serde_json::Value = serde_json::from_str(&goldens).expect("parse goldens");
    let entries = recorded.as_array().expect("goldens must be an array");
    assert_eq!(
        entries.len(),
        GOLDEN_INDICES.len(),
        "golden subset changed; re-record"
    );
    let g = dataset_graph();
    let mut mismatches = Vec::new();
    for (entry, &idx) in entries.iter().zip(GOLDEN_INDICES) {
        let q = PARITY_QUERIES[idx];
        assert_eq!(entry["query"].as_str(), Some(q), "golden order changed");
        let expected = entry["profile"].as_str().expect("golden profile text");
        let actual = profile_deterministic(&g, q);
        if expected != actual {
            mismatches.push(format!(
                "query #{idx}: {q}\n--- golden ---\n{expected}\n--- actual ---\n{actual}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} profile goldens diverged:\n{}",
        mismatches.len(),
        GOLDEN_INDICES.len(),
        mismatches.join("\n")
    );
}

/// Profiling is observation, not interference: across the full parity
/// corpus the profiled run returns byte-identical results to the plain
/// executor, and the profile's own row accounting agrees with the
/// result it returned.
#[test]
fn profiled_execution_agrees_with_plain_execution_across_corpus() {
    let g = dataset_graph();
    for q in PARITY_QUERIES {
        let plain = query(&g, q).unwrap_or_else(|e| panic!("plain run failed: {q}\n{e}"));
        let (profiled, prof) = profile_with_limits(&g, q, &Params::new(), ExecLimits::none())
            .unwrap_or_else(|e| panic!("profiled run failed: {q}\n{e}"));
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&profiled).unwrap(),
            "profiling changed the result of: {q}"
        );
        assert_eq!(
            prof.result_rows,
            profiled.rows.len() as u64,
            "profile row accounting disagrees for: {q}"
        );
        // A MATCH that returned rows must have touched storage (pure
        // UNWIND/RETURN queries legitimately cost zero db hits).
        if !profiled.rows.is_empty() && q.contains("MATCH") {
            assert!(prof.total_db_hits() > 0, "no db hits recorded for: {q}");
        }
    }
}

/// Records the current deterministic profile rendering as the golden
/// baseline.
#[test]
#[ignore = "writes the golden file; run explicitly to re-record"]
fn regenerate_profile_goldens() {
    let g = dataset_graph();
    let mut out = String::from("[\n");
    for (i, &idx) in GOLDEN_INDICES.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let q = PARITY_QUERIES[idx];
        let entry = serde_json::json!({
            "query": q,
            "profile": profile_deterministic(&g, q),
        });
        out.push_str(&entry.to_string());
    }
    out.push_str("\n]\n");
    let path = goldens_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, out).unwrap();
    println!(
        "wrote {} profile goldens to {}",
        GOLDEN_INDICES.len(),
        path.display()
    );
}
