//! Differential tests for the snapshot read path: executing the parity
//! corpus through a [`GraphStore`] snapshot handle must be byte-identical
//! to executing directly against the owned `Graph` — interpreted and
//! compiled, at every supported worker count — and a handle acquired
//! before a publish must keep answering from its own version afterwards.

use iyp_cypher::corpus::PARITY_QUERIES as QUERIES;
use iyp_cypher::{execute_read_with_limits, parse, ExecLimits, Params};
use iyp_data::{generate, growth_batch, IypConfig};
use iyp_graphdb::{Graph, GraphStore};

fn run_json(g: &Graph, src: &str, limits: ExecLimits) -> String {
    let q = parse(src).unwrap_or_else(|e| panic!("corpus query failed to parse: {src}\n{e}"));
    let r = execute_read_with_limits(g, &q, &Params::new(), limits)
        .unwrap_or_else(|e| panic!("corpus query failed: {src}\n{e}"));
    serde_json::to_string(&r).expect("serialize result")
}

fn modes() -> Vec<(&'static str, ExecLimits)> {
    vec![
        ("interpreted", ExecLimits::none().with_compiled(false)),
        ("compiled", ExecLimits::none().with_compiled(true)),
        ("parallel=1", ExecLimits::none().with_parallelism(1)),
        ("parallel=2", ExecLimits::none().with_parallelism(2)),
        ("parallel=4", ExecLimits::none().with_parallelism(4)),
    ]
}

/// The snapshot handle is a pure indirection: every corpus query, in
/// every execution mode, returns the same bytes through `store.load()`
/// as against the graph the store was built from.
#[test]
fn corpus_via_snapshot_matches_direct_execution() {
    let graph = generate(&IypConfig::default()).graph;
    let store = GraphStore::new(graph.clone());
    let snap = store.load();
    assert_eq!(snap.version(), 1);
    for q in QUERIES {
        for (name, limits) in modes() {
            let direct = run_json(&graph, q, limits);
            let via_snapshot = run_json(snap.graph(), q, limits);
            assert_eq!(via_snapshot, direct, "{name} diverged via snapshot on: {q}");
        }
    }
}

/// Snapshot isolation proper: a handle acquired before a publish keeps
/// answering the whole corpus byte-identically after the store moves on,
/// while a freshly loaded handle sees the new world.
#[test]
fn held_snapshot_survives_a_publish_unchanged() {
    let store = GraphStore::new(generate(&IypConfig::default()).graph);
    let old = store.load();
    let baseline: Vec<String> = QUERIES
        .iter()
        .map(|q| run_json(old.graph(), q, ExecLimits::none()))
        .collect();

    let batch = growth_batch(old.graph(), 99, 8);
    let report = store.ingest(&batch).expect("batch applies");
    assert_eq!(report.old_version, 1);
    assert_eq!(report.new_version, 2);

    // The held handle is frozen at version 1 ...
    assert_eq!(old.version(), 1);
    for (q, want) in QUERIES.iter().zip(&baseline) {
        let got = run_json(old.graph(), q, ExecLimits::none());
        assert_eq!(&got, want, "held snapshot changed under a publish on: {q}");
    }
    // ... while a fresh load sees the grown graph.
    let new = store.load();
    assert_eq!(new.version(), 2);
    let count_q = "MATCH (a:AS) RETURN count(a)";
    let before = run_json(old.graph(), count_q, ExecLimits::none());
    let after = run_json(new.graph(), count_q, ExecLimits::none());
    assert_ne!(after, before, "publish did not grow the AS count");
}
